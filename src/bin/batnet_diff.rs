//! `batnet-diff` — differential snapshot analysis from the command line.
//!
//! ```text
//! batnet-diff --before DIR --after DIR [flags]
//! batnet-diff --net ID [--scenario NAME --seed N] [flags]
//! ```
//!
//! The first form compares two snapshot directories (one config file per
//! device, file stem = device name). The second builds a suite network;
//! with `--scenario` it perturbs a seed-chosen victim and diffs the
//! before/after pair, without it the network is diffed against itself (a
//! determinism/CI smoke: the result must be empty).
//!
//! Flags: `--format text|json`, `--out FILE`, `--deny any|structural|
//! routes|reach` (exit 1 when the named layer — or any layer — is
//! non-empty), `--max-flows N`, `--max-starts N`, `--threads N` (size
//! the shared execution pool; 0 or omitted = all cores — output is
//! byte-identical at every thread count).
//!
//! Exit codes: 0 clean (or no `--deny` given), 1 the denied layer has
//! differences, 2 usage or I/O error. Unreadable or unparseable devices
//! are quarantined, reported in the output, and excluded from the
//! comparison — they never abort the run.

use batnet::diff::{render_json, render_text, DiffOptions, SnapshotDiff};
use batnet::{Outcome, ResourceGovernor, Snapshot};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    before: Option<String>,
    after: Option<String>,
    net: Option<String>,
    scenario: Option<String>,
    seed: u64,
    format: String,
    out: Option<String>,
    deny: Option<String>,
    max_flows: usize,
    max_starts: usize,
    deadline_ms: Option<u64>,
    threads: usize,
}

const USAGE: &str = "usage: batnet-diff --before DIR --after DIR [--format text|json] \
[--out FILE] [--deny any|structural|routes|reach] [--max-flows N] [--max-starts N] [--deadline-ms N] \
[--threads N]
       batnet-diff --net ID [--scenario NAME --seed N] [...same flags]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let defaults = DiffOptions::default();
    let mut args = Args {
        before: None,
        after: None,
        net: None,
        scenario: None,
        seed: 1,
        format: "text".into(),
        out: None,
        deny: None,
        max_flows: defaults.max_flow_deltas,
        max_starts: defaults.max_starts,
        deadline_ms: None,
        threads: 0,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--before" => args.before = Some(value("--before")?),
            "--after" => args.after = Some(value("--after")?),
            "--net" => args.net = Some(value("--net")?),
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--format" => args.format = value("--format")?,
            "--out" => args.out = Some(value("--out")?),
            "--deny" => args.deny = Some(value("--deny")?),
            "--max-flows" => {
                args.max_flows = value("--max-flows")?
                    .parse()
                    .map_err(|e| format!("--max-flows: {e}"))?;
            }
            "--max-starts" => {
                args.max_starts = value("--max-starts")?
                    .parse()
                    .map_err(|e| format!("--max-starts: {e}"))?;
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                );
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if !matches!(args.format.as_str(), "text" | "json") {
        return Err(format!("--format must be text|json, got '{}'", args.format));
    }
    if let Some(d) = &args.deny {
        if !matches!(d.as_str(), "any" | "structural" | "routes" | "reach") {
            return Err(format!("--deny must be any|structural|routes|reach, got '{d}'"));
        }
    }
    let dir_mode = args.before.is_some() || args.after.is_some();
    let net_mode = args.net.is_some();
    match (dir_mode, net_mode) {
        (true, true) => Err("--before/--after and --net are mutually exclusive".to_string()),
        (false, false) => Err(USAGE.to_string()),
        (true, false) if args.before.is_none() || args.after.is_none() => {
            Err("--before and --after must be given together".to_string())
        }
        _ => {
            if args.scenario.is_some() && args.net.is_none() {
                return Err("--scenario requires --net".to_string());
            }
            Ok(args)
        }
    }
}

/// Builds the before/after snapshot pair.
fn load_sides(args: &Args) -> Result<(Snapshot, Snapshot), String> {
    if let (Some(before), Some(after)) = (&args.before, &args.after) {
        let b = Snapshot::from_dir(std::path::Path::new(before))
            .map_err(|e| format!("--before {before}: {e}"))?;
        let a = Snapshot::from_dir(std::path::Path::new(after))
            .map_err(|e| format!("--after {after}: {e}"))?;
        return Ok((b, a));
    }
    let id = args.net.as_deref().unwrap_or_default();
    let entry = batnet_topogen::suite::suite()
        .into_iter()
        .find(|e| e.id.eq_ignore_ascii_case(id))
        .ok_or_else(|| {
            let ids: Vec<&str> = batnet_topogen::suite::suite().iter().map(|e| e.id).collect();
            format!("unknown network '{id}' (known: {})", ids.join(", "))
        })?;
    let net = (entry.build)();
    let before = Snapshot::from_configs(net.configs.clone()).with_env(net.env.clone());
    let after = match &args.scenario {
        None => Snapshot::from_configs(net.configs.clone()).with_env(net.env.clone()),
        Some(name) => {
            let scenario = batnet_topogen::perturb::Scenario::from_name(name).ok_or_else(|| {
                let names: Vec<&str> = batnet_topogen::perturb::Scenario::ALL
                    .iter()
                    .map(|s| s.name())
                    .collect();
                format!("unknown scenario '{name}' (known: {})", names.join(", "))
            })?;
            let p = batnet_topogen::perturb::perturb(&net, scenario, args.seed)
                .ok_or_else(|| format!("no device on {id} is eligible for scenario '{name}'"))?;
            eprintln!("batnet-diff: {}: {} on {}", scenario.name(), p.description, p.victim);
            Snapshot::from_configs(p.configs).with_env(net.env.clone())
        }
    };
    Ok((before, after))
}

/// Is the `--deny`-named layer non-empty?
fn denied(diff: &SnapshotDiff, deny: &str) -> bool {
    match deny {
        "structural" => !diff.structural.is_empty(),
        "routes" => !diff.routes.is_empty(),
        "reach" => !diff.reach.is_empty(),
        _ => !diff.is_empty(),
    }
}

fn run() -> Result<ExitCode, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;
    if !batnet_exec::configure_threads(args.threads) {
        return Err("--threads: the execution pool is already sized differently".to_string());
    }
    let (before, after) = load_sides(&args)?;

    let opts = DiffOptions {
        max_flow_deltas: args.max_flows,
        max_starts: args.max_starts,
        ..DiffOptions::default()
    };
    // One enforcement mechanism for batch and serve alike: the governor.
    // A blown deadline reports the layers compared so far, never hangs.
    let gov = match args.deadline_ms {
        Some(ms) => ResourceGovernor::with_deadline(Duration::from_millis(ms)),
        None => ResourceGovernor::unlimited(),
    };
    let (diff, partial) = match before.diff_with_governed(&after, &opts, &gov) {
        Outcome::Complete(d) => (d, None),
        Outcome::Partial {
            completed,
            abandoned,
            why,
        } => (completed, Some((abandoned, why))),
    };
    if let Some((abandoned, why)) = &partial {
        batnet::obs::counter_add("diff.partial", 1);
        eprintln!(
            "batnet-diff: partial result: {why}; layers not compared: {}",
            abandoned.join(", ")
        );
    }

    let rendered = match args.format.as_str() {
        "json" => render_json(&diff),
        _ => render_text(&diff),
    };
    match args.out.as_deref() {
        Some(path) => std::fs::write(path, &rendered).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{rendered}"),
    }

    if let Some(deny) = &args.deny {
        if denied(&diff, deny) {
            eprintln!(
                "batnet-diff: differences present (--deny {deny}): \
{} structural, {} route, {} changed start(s)",
                diff.structural.change_count(),
                diff.routes.change_count(),
                diff.reach.changed_starts
            );
            return Ok(ExitCode::FAILURE);
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("batnet-diff: {msg}");
            ExitCode::from(2)
        }
    }
}
