//! Root integration-test and examples package for the batnet workspace.
