# CI entry points. `make ci` is the full gate; the individual targets
# exist for fast local iteration. Everything runs offline — the lockfile
# is committed and the workspace has no external dependencies.

CARGO ?= cargo

.PHONY: ci build test chaos clippy bench

ci: build test chaos clippy

build:
	$(CARGO) build --release --offline --workspace

test:
	$(CARGO) test -q --offline --workspace

# Robustness gate: 25 seeds x all 6 mutation classes over NET1 and the
# N2 data center — zero escaped panics, every quarantined device
# accounted for, monotone degradation.
chaos: build
	$(CARGO) run --release --offline -p batnet-chaos -- --seeds 25 --nets net1,n2

# No unwrap/panic on library paths of the facade and chaos crates (their
# dependency closure is swept in by cargo, so this effectively covers
# every production crate; topogen exempts itself as fixture-only).
clippy:
	$(CARGO) clippy --offline -p batnet -p batnet-chaos -- -D clippy::unwrap_used -D clippy::panic

bench:
	$(CARGO) bench --offline -p batnet-bench
