# CI entry points. `make ci` is the full gate; the individual targets
# exist for fast local iteration. Everything runs offline — the lockfile
# is committed and the workspace has no external dependencies.

CARGO ?= cargo

.PHONY: ci build test chaos clippy obs-smoke lint-smoke perf-smoke diff-smoke serve-smoke cov-smoke profile-smoke par-smoke bench bench-all

ci: build test chaos clippy obs-smoke lint-smoke perf-smoke diff-smoke serve-smoke cov-smoke profile-smoke par-smoke

build:
	$(CARGO) build --release --offline --workspace

test:
	$(CARGO) test -q --offline --workspace

# Robustness gate: 25 seeds x all 6 mutation classes over NET1 and the
# N2 data center — zero escaped panics, every quarantined device
# accounted for, monotone degradation, coverage/repair never panic and
# always balance their accounting — plus the invariant-8 service
# sweep: 5 seeds x 7 adversarial client classes against a live
# batnet-serve, every rejection accounted, the listener never down.
chaos: build
	$(CARGO) run --release --offline -p batnet-chaos -- --seeds 25 --nets net1,n2 --serve-seeds 5

# No unwrap/panic on library paths of the facade and chaos crates (their
# dependency closure is swept in by cargo, so this effectively covers
# every production crate; topogen exempts itself as fixture-only). The
# recorder crate gets its own unwrap gate: a lock-then-`unwrap()` there
# would turn one contained worker panic into poisoned telemetry for the
# whole process, so every lock must recover via `PoisonError::into_inner`.
# The last invocation enforces the workspace-wide timing discipline from
# clippy.toml: `Instant::now` is disallowed outside batnet_obs::clock.
clippy:
	$(CARGO) clippy --offline -p batnet -p batnet-chaos -- -D clippy::unwrap_used -D clippy::panic
	$(CARGO) clippy --offline -p batnet-obs -p batnet-serve -p batnet-lint -p batnet-diff -p batnet-coverage -- -D clippy::unwrap_used
	$(CARGO) clippy --offline --workspace --all-targets -- -D clippy::disallowed_methods

# Observability smoke gate: run the harness pipeline on the smallest
# suite network and validate the emitted JSON with the in-tree
# validator — schema drift fails CI.
obs-smoke: build
	$(CARGO) run --release --offline -p batnet-bench --bin harness -- smoke
	$(CARGO) run --release --offline -p batnet-obs --bin obs-validate -- target/BENCH_smoke.json

# Lint gate: SARIF output on the smallest suite network validates
# against the in-tree checker, the clean network passes `--deny error`,
# and the planted undefined-reference fixture fails it — proving the
# exit gate actually gates.
lint-smoke: build
	$(CARGO) run --release --offline -p batnet-lint --bin batnet-lint -- --net n2 --format sarif --out target/lint-n2.sarif
	$(CARGO) run --release --offline -p batnet-lint --bin batnet-lint -- --validate target/lint-n2.sarif
	$(CARGO) run --release --offline -p batnet-lint --bin batnet-lint -- --net n2 --deny error --out /dev/null
	! $(CARGO) run --release --offline -p batnet-lint --bin batnet-lint -- --dir fixtures/lint-bad --deny error --out /dev/null

# Performance regression gate (structure mode): re-measure the N2 rows
# of Table 2 with 3 repeats, validate the emitted file, and diff it
# against the committed baseline. `--structure-only` skips the timing
# comparison (CI machines are too noisy for that; run obs-diff without
# the flag locally) but still fails on schema drift, missing stages, or
# rows that appear from nowhere.
perf-smoke: build
	$(CARGO) run --release --offline -p batnet-bench --bin harness -- table2 --json --repeat 3 --net N2 --out target/BENCH_perf_smoke.json
	$(CARGO) run --release --offline -p batnet-obs --bin obs-validate -- target/BENCH_perf_smoke.json
	$(CARGO) run --release --offline -p batnet-obs --bin obs-diff -- --structure-only BENCH_table2.json target/BENCH_perf_smoke.json

# Differential-analysis gate: (1) self-diff of the N2 suite network is
# empty, exits 0, and its JSON is byte-identical across two runs
# (determinism is the contract pre-deployment gating stands on);
# (2) the committed fixture pair with one planted ACL edit reports the
# delta and fails under `--deny any` — proving the gate actually gates;
# (3) the diff bench re-measures its stages, the emitted file validates,
# and its structure matches the committed BENCH_diff.json baseline.
diff-smoke: build
	$(CARGO) run --release --offline -p batnet-repro --bin batnet-diff -- --net N2 --format json --out target/diff-self-1.json --deny any
	$(CARGO) run --release --offline -p batnet-repro --bin batnet-diff -- --net N2 --format json --out target/diff-self-2.json
	cmp target/diff-self-1.json target/diff-self-2.json
	! $(CARGO) run --release --offline -p batnet-repro --bin batnet-diff -- --before fixtures/diff-pair/before --after fixtures/diff-pair/after --deny any --out target/diff-pair.txt
	$(CARGO) run --release --offline -p batnet-bench --bin harness -- diff --out target/BENCH_diff_smoke.json
	$(CARGO) run --release --offline -p batnet-obs --bin obs-validate -- target/BENCH_diff_smoke.json
	$(CARGO) run --release --offline -p batnet-obs --bin obs-diff -- --structure-only BENCH_diff.json target/BENCH_diff_smoke.json

# Serving gate: (1) the in-process smoke sequence — spawn, readiness
# under Backoff retry, a complete reachability answer, a forced-206
# partial with accounting, a 404, a seeded deterministic trace-id stream
# on every response, a validator-checked /tracez fetch, a metrics audit
# with per-endpoint SLO meta and zero contained panics, graceful drain;
# (2) the /tracez dump the smoke wrote passes the standalone validator;
# (3) the serve load bench re-measures its stages, the emitted file
# validates, and its structure matches the committed BENCH_serve.json
# baseline (which now carries per-endpoint p50/p99 meta).
serve-smoke: build
	$(CARGO) run --release --offline -p batnet-serve --bin batnet-serve -- --smoke
	$(CARGO) run --release --offline -p batnet-obs --bin obs-validate -- --kind tracez target/tracez-smoke.json
	$(CARGO) run --release --offline -p batnet-bench --bin harness -- serve --out target/BENCH_serve_smoke.json
	$(CARGO) run --release --offline -p batnet-obs --bin obs-validate -- target/BENCH_serve_smoke.json
	$(CARGO) run --release --offline -p batnet-obs --bin obs-diff -- --structure-only BENCH_serve.json target/BENCH_serve_smoke.json

# Coverage + repair gate: (1) the N2 coverage report validates and is
# byte-identical across two runs (the JSON is the audit artifact, so
# determinism is the contract); (2) the planted lint-bad fixture has a
# genuine never-touched gap and fails `--deny gap` — proving the exit
# gate actually gates; (3) `batnet-repair` reproduces both committed
# expected patches byte for byte (lint-driven delete and diff-driven
# revert); (4) the cov bench re-measures its stages, the emitted file
# validates, and its structure matches the committed BENCH_cov.json.
cov-smoke: build
	$(CARGO) run --release --offline -p batnet-coverage --bin batnet-cov -- --net n2 --format json --out target/cov-n2-1.json
	$(CARGO) run --release --offline -p batnet-coverage --bin batnet-cov -- --validate target/cov-n2-1.json
	$(CARGO) run --release --offline -p batnet-coverage --bin batnet-cov -- --net n2 --format json --out target/cov-n2-2.json
	cmp target/cov-n2-1.json target/cov-n2-2.json
	! $(CARGO) run --release --offline -p batnet-coverage --bin batnet-cov -- --dir fixtures/lint-bad --deny gap --out /dev/null
	$(CARGO) run --release --offline -p batnet-coverage --bin batnet-repair -- --dir fixtures/repair-bad/lint --check undefined-reference --out target/repair-lint.patch
	cmp target/repair-lint.patch fixtures/repair-bad/lint/expected.patch
	$(CARGO) run --release --offline -p batnet-coverage --bin batnet-repair -- --before fixtures/repair-bad/diff/before --after fixtures/repair-bad/diff/after --out target/repair-diff.patch
	cmp target/repair-diff.patch fixtures/repair-bad/diff/expected.patch
	$(CARGO) run --release --offline -p batnet-bench --bin harness -- cov --out target/BENCH_cov_smoke.json
	$(CARGO) run --release --offline -p batnet-obs --bin obs-validate -- target/BENCH_cov_smoke.json
	$(CARGO) run --release --offline -p batnet-obs --bin obs-diff -- --structure-only BENCH_cov.json target/BENCH_cov_smoke.json

# Continuous-profiling gate: (1) the smoke bench runs with the 997 Hz
# sampler attached and its `batnet-prof/v1` window artifact passes the
# standalone validator (the `samples == recorded + dropped` balance and
# the stack-count sum are checked, so silent sample loss fails CI);
# (2) the folded-flamegraph export renders; (3) the serve smoke runs
# with `--profile-hz` so every /profilez, /tracez?id=, and sampler-meta
# assertion in the smoke sequence executes against a live server.
profile-smoke: build
	$(CARGO) run --release --offline -p batnet-bench --bin harness -- smoke --profile
	$(CARGO) run --release --offline -p batnet-obs --bin obs-validate -- --kind profile target/BENCH_smoke.profile.json
	$(CARGO) run --release --offline -p batnet-obs --bin obs-trace -- target/BENCH_smoke.profile.json --format folded --out target/BENCH_smoke.folded
	$(CARGO) run --release --offline -p batnet-serve --bin batnet-serve -- --smoke --profile-hz 1997

# Parallel-execution gate: the work-stealing pool's byte-identity
# contract, end to end. (1) `batnet-diff` over N2 at `--threads 1` and
# at the default all-core width writes byte-identical JSON — `cmp`, not
# obs-diff, because the whole report must match, not just its shape;
# (2) the N2 rows of Table 2 measured at `--threads 1` and at the
# default width both validate and both match the committed per-width
# baselines structurally (timings move with the machine; the row set
# must not).
par-smoke: build
	$(CARGO) run --release --offline -p batnet-repro --bin batnet-diff -- --net N2 --threads 1 --format json --out target/par-diff-t1.json
	$(CARGO) run --release --offline -p batnet-repro --bin batnet-diff -- --net N2 --format json --out target/par-diff-tmax.json
	cmp target/par-diff-t1.json target/par-diff-tmax.json
	$(CARGO) run --release --offline -p batnet-bench --bin harness -- table2 --json --net N2 --threads 1 --out target/BENCH_par_t1.json
	$(CARGO) run --release --offline -p batnet-obs --bin obs-validate -- target/BENCH_par_t1.json
	$(CARGO) run --release --offline -p batnet-obs --bin obs-diff -- --structure-only BENCH_table2.threads1.json target/BENCH_par_t1.json
	$(CARGO) run --release --offline -p batnet-bench --bin harness -- table2 --json --net N2 --out target/BENCH_par_tmax.json
	$(CARGO) run --release --offline -p batnet-obs --bin obs-validate -- target/BENCH_par_tmax.json
	$(CARGO) run --release --offline -p batnet-obs --bin obs-diff -- --structure-only BENCH_table2.json target/BENCH_par_tmax.json

bench:
	$(CARGO) bench --offline -p batnet-bench

# Regenerates every committed bench baseline (plus target/BENCH_smoke)
# in one command and appends one commit-stamped row per bench to
# results/TRAJECTORY.jsonl — the recorded perf trajectory of the repo.
bench-all: build
	$(CARGO) run --release --offline -p batnet-bench --bin harness -- bench-all
	$(CARGO) run --release --offline -p batnet-obs --bin obs-validate -- --kind trajectory results/TRAJECTORY.jsonl
