//! Continuous validation (§5.2): periodically analyze the latest
//! deployed snapshot and flag *new* problems since the last run.
//!
//! The paper's observation: brown-field networks are never error-free,
//! and engineers do not urgently fix old debris — the valuable signal is
//! the *delta*. This example diffs two snapshots (yesterday's and
//! today's, where an out-of-band change crept in) and reports only what
//! changed.
//!
//! ```sh
//! cargo run --example continuous_validation
//! ```

use batnet::lint::Finding;
use batnet::net::{Flow, Ip};
use batnet::traceroute::StartLocation;
use batnet::Snapshot;
use batnet_topogen::enterprise::{enterprise, EnterpriseSpec};
use std::collections::BTreeSet;

fn main() {
    let spec = EnterpriseSpec {
        cores: 2,
        dists: 2,
        accesses: 6,
        borders: 1,
        firewalls: 0,
        flat_access_percent: 0,
        nat: true,
    };
    // Yesterday's snapshot — with some pre-existing debris the team has
    // learned to live with (an unused ACL).
    let mut yesterday = enterprise("prod", &spec);
    yesterday.configs[0]
        .1
        .push_str("ip access-list extended OLD-DEBRIS\n 10 permit ip any any\n");

    // Today's snapshot: an out-of-band change on access2 fat-fingered the
    // host ACL — it now denies the whole RFC1918 space instead of the
    // spoofed range.
    let mut today = enterprise("prod", &spec);
    today.configs[0]
        .1
        .push_str("ip access-list extended OLD-DEBRIS\n 10 permit ip any any\n");
    for (name, text) in today.configs.iter_mut() {
        if name == "access2" {
            *text = text.replace(
                "10 deny ip 10.99.0.0 0.0.255.255 any",
                "10 deny ip 10.0.0.0 0.255.255.255 any",
            );
        }
    }

    let snap_a = Snapshot::from_configs(yesterday.configs).with_env(yesterday.env);
    let snap_b = Snapshot::from_configs(today.configs).with_env(today.env);

    // 1. Lint delta: only NEW findings page anyone.
    let base: BTreeSet<String> = snap_a.lint().iter().map(Finding::to_string).collect();
    let new_findings: Vec<Finding> = snap_b
        .lint()
        .into_iter()
        .filter(|f| !base.contains(&f.to_string()))
        .collect();
    println!("lint: {} pre-existing findings (suppressed)", base.len());
    println!("lint: {} NEW findings", new_findings.len());
    for f in &new_findings {
        println!("  {f}");
    }

    // 2. Behaviour delta: trace the same canary flows through both
    //    snapshots and report changed dispositions.
    let analysis_a = snap_a.analyze();
    let analysis_b = snap_b.analyze();
    let canaries = [
        ("access2", "hosts", Flow::tcp(Ip::new(10, 0, 2, 10), 40000, Ip::new(10, 0, 3, 10), 80)),
        ("access0", "hosts", Flow::tcp(Ip::new(10, 0, 0, 10), 40000, Ip::new(10, 0, 1, 10), 80)),
    ];
    let mut regressions = 0;
    for (dev, iface, flow) in canaries {
        let ta = analysis_a
            .tracer()
            .trace(&StartLocation::ingress(dev, iface), &flow);
        let tb = analysis_b
            .tracer()
            .trace(&StartLocation::ingress(dev, iface), &flow);
        let da: Vec<String> = ta.dispositions().iter().map(|d| d.to_string()).collect();
        let db: Vec<String> = tb.dispositions().iter().map(|d| d.to_string()).collect();
        if da != db {
            regressions += 1;
            println!("\nbehaviour change for {flow} from {dev}[{iface}]:");
            println!("  yesterday: {da:?}");
            println!("  today:     {db:?}");
        }
    }
    println!(
        "\ncontinuous validation: {} new findings, {} behaviour regressions",
        new_findings.len(),
        regressions
    );
    std::process::exit(if regressions == 0 && new_findings.is_empty() { 0 } else { 1 });
}
