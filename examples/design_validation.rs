//! Design validation (§5.3): use the analyzer as a *design tool*, before
//! any hardware exists.
//!
//! Two parts, mirroring the paper's use-cases:
//!
//! 1. **New design**: generate a leaf–spine fabric from intent, prove
//!    the design properties (full reachability, ECMP width, no loops)
//!    offline.
//! 2. **Large-scale refactoring**: compress an ACL by deleting its
//!    shadowed (dead) entries, then prove the old and new ACLs are
//!    *semantically identical* with BDDs before rollout.
//!
//! ```sh
//! cargo run --example design_validation
//! ```

use batnet::bdd::NodeId;
use batnet::config::parse_device;
use batnet::dataplane::acl::compile_acl;
use batnet::dataplane::{NodeKind, PacketVars, ReachAnalysis};
use batnet::lint::acl_shadowing;
use batnet::routing::FibAction;
use batnet::Snapshot;
use batnet_topogen::dc::leaf_spine;

fn main() {
    // --- Part 1: validate a brand-new fabric design ----------------------
    let net = leaf_spine("new-fabric", 4, 12);
    println!(
        "design: {} devices, {} config lines (generated from intent)",
        net.node_count(),
        net.config_lines()
    );
    let snapshot = Snapshot::from_configs(net.configs.clone()).with_env(net.env.clone());
    let mut analysis = snapshot.analyze();
    assert!(analysis.dp.convergence.converged);

    // Property 1: every leaf has an ECMP route (one path per spine) to
    // every other leaf's server subnet.
    let mut min_width = usize::MAX;
    for l in 0..12 {
        let leaf = analysis.dp.device(&format!("leaf{l}")).unwrap();
        for other in 0..12 {
            if other == l {
                continue;
            }
            let dst = format!("10.0.{other}.1").parse().unwrap();
            let entry = leaf.fib.lookup(dst).expect("route to every leaf");
            if let FibAction::Forward(hops) = &entry.action {
                min_width = min_width.min(hops.len());
            }
        }
    }
    println!("property: minimum ECMP width across leaf pairs = {min_width} (want 4)");
    assert_eq!(min_width, 4);

    // Property 2: no forwarding loops anywhere.
    let r = {
        let a = ReachAnalysis::new(&analysis.graph);
        a.forward_from_all_sources(&mut analysis.bdd, NodeId::TRUE)
    };
    let loops = {
        let a = ReachAnalysis::new(&analysis.graph);
        a.detect_loops(&mut analysis.bdd, &r)
    };
    println!("property: forwarding loops = {} (want 0)", loops.len());
    assert!(loops.is_empty());

    // Property 3: server traffic reaches every server sink.
    let sinks = analysis
        .graph
        .nodes_where(|k| matches!(k, NodeKind::DeliveredToSubnet(_, i) if i == "servers"));
    let reached = sinks.iter().filter(|&&s| r.at(s) != NodeId::FALSE).count();
    println!("property: {reached}/{} server sinks reachable", sinks.len());
    assert_eq!(reached, sinks.len());

    // --- Part 2: ACL refactoring ----------------------------------------
    // A grown ACL full of redundant entries (the paper cites compressing
    // large ACLs as a common refactoring).
    let before_text = "hostname fw\n\
        ip access-list extended EDGE\n \
        10 permit tcp 10.0.0.0 0.255.255.255 any eq 443\n \
        20 permit tcp 10.1.0.0 0.0.255.255 any eq 443\n \
        30 permit tcp 10.0.0.0 0.255.255.255 any eq 443\n \
        40 permit udp any any eq 53\n \
        50 permit udp 10.2.0.0 0.0.255.255 any eq 53\n \
        60 deny ip any any\n";
    let before = parse_device("fw", before_text).0;
    let dead = acl_shadowing(&before);
    println!("\nrefactoring: {} shadowed entries found:", dead.len());
    for f in &dead {
        println!("  {f}");
    }
    // The compressed ACL drops the dead lines.
    let after_text = "hostname fw\n\
        ip access-list extended EDGE\n \
        10 permit tcp 10.0.0.0 0.255.255.255 any eq 443\n \
        40 permit udp any any eq 53\n \
        60 deny ip any any\n";
    let after = parse_device("fw", after_text).0;

    // Prove equivalence symbolically: the permit sets must be the same
    // BDD node (canonicity makes this a pointer comparison).
    let (mut bdd, vars) = PacketVars::new(0);
    let a = compile_acl(&mut bdd, &vars, &before.acls["EDGE"]);
    let b = compile_acl(&mut bdd, &vars, &after.acls["EDGE"]);
    println!(
        "refactoring: {} lines -> {} lines, semantics identical = {}",
        before.acls["EDGE"].lines.len(),
        after.acls["EDGE"].lines.len(),
        a.permits == b.permits
    );
    assert_eq!(a.permits, b.permits, "refactor must preserve semantics");
    println!("\ndesign validation: PASS — the design is safe to build");
}
