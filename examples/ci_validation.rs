//! Proactive validation in an automated workflow (§5.1.1, "network CI"):
//! a candidate configuration change is checked *before* deployment.
//!
//! The scenario mirrors the paper's manual-workflow anecdote: an engineer
//! switches how the network connects to its transit provider and
//! initially believes only the border needs changing. The CI pipeline —
//! lint, end-to-end reachability, differential engine cross-check —
//! catches the interaction they missed (the new uplink ACL silently
//! blocks BGP).
//!
//! ```sh
//! cargo run --example ci_validation
//! ```

use batnet::differential_test;
use batnet::queries::{service_reachable, ServiceSpec};
use batnet::routing::ExternalAnnouncement;
use batnet::Snapshot;
use batnet_topogen::enterprise::{enterprise, EnterpriseSpec};

fn main() {
    // The running network: a small enterprise with one border.
    let net = enterprise(
        "prod",
        &EnterpriseSpec {
            cores: 2,
            dists: 2,
            accesses: 6,
            borders: 1,
            firewalls: 0,
            flat_access_percent: 0,
            nat: true,
        },
    );
    let mut configs = net.configs.clone();

    // --- The proposed change -------------------------------------------
    // Tighten the border uplink with a new inbound ACL. The engineer
    // permits "established" TCP and ICMP… and forgets BGP (tcp/179).
    let border = configs
        .iter_mut()
        .find(|(n, _)| n == "border0")
        .expect("border present");
    border.1.push_str(
        "ip access-list extended UPLINK-IN\n \
         10 permit tcp any any established\n \
         20 permit icmp any any\n \
         30 deny ip any any\n",
    );
    // Attach it to the uplink interface.
    border.1 = border.1.replacen(
        "interface uplink\n ip address",
        "interface uplink\n ip access-group UPLINK-IN in\n ip address",
        1,
    );

    // --- The CI pipeline ------------------------------------------------
    let snapshot = Snapshot::from_configs(configs).with_env(net.env.clone());
    let mut failures = 0;

    // Gate 1: parse diagnostics must not grow.
    let diags = snapshot.diagnostic_count();
    println!("gate 1 (parse):       {diags} diagnostics");
    if diags > 0 {
        failures += 1;
    }

    // Gate 2: lint (Lesson-5 checks).
    let findings = snapshot.lint();
    let serious: Vec<_> = findings
        .iter()
        .filter(|f| f.check == "undefined-reference" || f.check == "bgp-compat")
        .collect();
    println!("gate 2 (lint):        {} findings, {} serious", findings.len(), serious.len());

    // Gate 3: behaviour checks targeted at the change (§5.1.2: "a new
    // BGP session should come up"): the transit session must be
    // established and the transit-learned prefix present in the border's
    // BGP RIB.
    let mut analysis = snapshot.analyze();
    if !analysis.dp.convergence.converged {
        println!("gate 3 (routing):     DID NOT CONVERGE");
        failures += 1;
    }
    let inet: ExternalAnnouncement = net.env.announcements[1].clone();
    let border = analysis.dp.device("border0").expect("border simulated");
    let transit_session_up = border
        .bgp
        .sessions
        .iter()
        .any(|s| s.peer_device.is_none() && s.established);
    let transit_route = border.bgp.best.contains_key(&inet.prefix);
    println!(
        "gate 3 (behaviour):   transit session up={transit_session_up}, {} in BGP RIB={transit_route}",
        inet.prefix
    );
    if !transit_session_up || !transit_route {
        failures += 1;
        println!(
            "  ^ the new uplink ACL silently blocks tcp/179: the eBGP\n    session never establishes and the transit routes vanish.\n    The change must NOT ship."
        );
    }
    // And internal east-west reachability must be unaffected.
    let service = ServiceSpec::tcp("10.0.1.0/24".parse().unwrap(), 443);
    let mut ctx = analysis.query_context();
    let report = service_reachable(&mut ctx, &service);
    println!(
        "gate 3 (reachability): internal 10.0.1.0/24:443 from {} subnets: holds={}",
        report.starts_checked,
        report.holds()
    );
    if !report.holds() {
        failures += 1;
    }

    // Gate 4: differential engine cross-check (fidelity guard).
    let diff = differential_test(&mut analysis, 4);
    println!(
        "gate 4 (differential): {} checks, {} mismatches",
        diff.checks,
        diff.mismatches.len()
    );
    if !diff.ok() {
        failures += 1;
    }

    println!(
        "\nCI result: {}",
        if failures == 0 { "PASS — safe to deploy" } else { "FAIL — change blocked" }
    );
    std::process::exit(if failures == 0 { 0 } else { 1 });
}
