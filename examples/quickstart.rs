//! Quickstart: parse a 3-router network (the paper's Figure 2), simulate
//! its data plane, ask reachability questions, and trace a packet.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use batnet::net::{Flow, Ip};
use batnet::queries::{service_reachable, ServiceSpec};
use batnet::Snapshot;

fn main() {
    // 1. Configurations arrive as text, one file per device. The ios
    //    dialect is auto-detected; junos (`set …`) and flat (key=value)
    //    dialects work the same way.
    let snapshot = Snapshot::from_configs(vec![
        (
            "r1".into(),
            "hostname r1\n\
             interface i0\n ip address 10.0.9.1/24\n\
             interface i1\n ip address 10.0.12.1/31\n\
             interface i2\n ip address 10.0.13.1/31\n\
             interface i3\n ip address 10.0.3.1/24\n ip access-group SSHONLY out\n\
             ip route 10.0.1.0/24 10.0.12.0\n\
             ip route 10.0.2.0/24 10.0.13.0\n\
             ip access-list extended SSHONLY\n 10 permit tcp any any eq 22\n"
                .into(),
        ),
        (
            "r2".into(),
            "hostname r2\n\
             interface i1\n ip address 10.0.12.0/31\n\
             interface lan\n ip address 10.0.1.1/24\n\
             ip route 0.0.0.0/0 10.0.12.1\n"
                .into(),
        ),
        (
            "r3".into(),
            "hostname r3\n\
             interface i2\n ip address 10.0.13.0/31\n\
             interface lan\n ip address 10.0.2.1/24\n\
             ip route 0.0.0.0/0 10.0.13.1\n"
                .into(),
        ),
    ]);
    println!(
        "parsed {} devices with {} diagnostics",
        snapshot.devices.len(),
        snapshot.diagnostic_count()
    );

    // 2. Generate the data plane: the control-plane fixed point runs and
    //    produces RIBs + FIBs for every device.
    let mut analysis = snapshot.analyze();
    println!(
        "converged: {} (in {} sweeps)",
        analysis.dp.convergence.converged, analysis.dp.convergence.sweeps
    );
    let r1 = analysis.dp.device("r1").expect("r1 simulated");
    println!("r1 has {} routes", r1.main_rib.route_count());

    // 3. Trace a concrete packet — the familiar operator view.
    let flow = Flow::tcp(Ip::new(10, 0, 9, 5), 40000, Ip::new(10, 0, 1, 9), 80);
    let trace = analysis.trace("r1", "i0", &flow);
    println!("\ntraceroute {flow}:\n{trace}");

    // 4. Ask a verification question — all web traffic from every
    //    host-facing subnet must reach the LAN behind r2.
    let service = ServiceSpec::tcp("10.0.1.0/24".parse().unwrap(), 80);
    let mut ctx = analysis.query_context();
    let report = service_reachable(&mut ctx, &service);
    println!(
        "service-reachable 10.0.1.0/24:80 → holds={} ({} starts checked)",
        report.holds(),
        report.starts_checked
    );

    // 5. The ssh-only ACL on r1.i3 means HTTP cannot reach 10.0.3.0/24 —
    //    the same query on that subnet reports a violation, with examples.
    let blocked = ServiceSpec::tcp("10.0.3.0/24".parse().unwrap(), 80);
    let report = service_reachable(&mut ctx, &blocked);
    println!(
        "service-reachable 10.0.3.0/24:80 → holds={}",
        report.holds()
    );
    for v in &report.violations {
        println!("violation:\n{v}");
    }
}
