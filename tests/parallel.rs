//! Cross-thread-count determinism for the `batnet_exec` subsystem.
//!
//! The parallel engine's contract is *byte identity*: every analysis
//! artifact — run-report accounting, lint fingerprints, diff JSON,
//! coverage JSON — must be identical whether the shared pool runs one
//! thread (the sequential code path, by construction) or many. The
//! property sweeps perturbation seeds and pool widths in one process
//! via `with_pool`, so a scheduling-order dependence anywhere in the
//! parse/routing/reach fan-outs fails loudly here before it can reach
//! a committed baseline.
//!
//! The poisoning regression pins the other half of the contract: a task
//! panic mid-sweep is contained to that task's item — the pool keeps
//! working, later runs on the same pool stay byte-identical, and no
//! mutex is left poisoned.

use batnet::config::parse_device;
use batnet::{DiffOptions, Snapshot};
use batnet_exec::{with_pool, MapOptions, Pool};

/// Thread counts swept against the 1-thread baseline: a small pool, and
/// one wider than the shard count so stealing actually happens.
const WIDTHS: [usize; 2] = [4, 7];

/// Perturbation seeds (≥3, per the determinism gate) applied to the N2
/// data center — each seed picks a different victim device, so the
/// sweep covers distinct quarantine-free change shapes.
const SEEDS: [u64; 3] = [1, 2, 3];

/// Everything the sweep compares, rendered to stable text. Span records
/// are deliberately absent: worker spans exist only to attribute time,
/// and which worker participated in a map job is timing-dependent.
/// Everything else — metrics, events, quarantine and partial
/// accounting, the snapshot summary — must not move by a byte.
fn projection(report: &batnet_obs::RunReport) -> String {
    use batnet_obs::metrics::MetricValue;
    let mut out = String::new();
    for (name, value) in &report.metrics {
        match value {
            MetricValue::Counter(n) => out.push_str(&format!("counter {name} {n}\n")),
            MetricValue::Gauge(g) => out.push_str(&format!("gauge {name} {g}\n")),
            MetricValue::Histogram(h) => out.push_str(&format!(
                "histogram {name} count={} sum={} buckets={:?}\n",
                h.count, h.sum, h.buckets
            )),
        }
    }
    for e in &report.events {
        // `at_ns` is wall clock; the projection compares order + content.
        out.push_str(&format!("event {} {} {}\n", e.kind, e.subject, e.detail));
    }
    out.push_str(&format!("events_dropped {}\n", report.events_dropped));
    for q in &report.quarantined {
        out.push_str(&format!(
            "quarantine {} {} {} {}\n",
            q.device, q.stage, q.code, q.detail
        ));
    }
    match &report.partial {
        None => out.push_str("partial none\n"),
        Some(p) => out.push_str(&format!(
            "partial {} {} {:?}\n",
            p.stage, p.limit, p.abandoned
        )),
    }
    if let Some(s) = &report.snapshot {
        out.push_str(&format!(
            "snapshot devices={} quarantined={} diagnostics={}\n",
            s.devices, s.quarantined, s.diagnostics
        ));
    }
    out
}

/// One full run under the *current* pool: analysis projection, lint
/// JSON, diff JSON (unperturbed vs perturbed), coverage JSON. Returns
/// the four artifacts for byte comparison.
fn run_artifacts(
    net: &batnet_topogen::GeneratedNetwork,
    perturbed: &[(String, String)],
) -> (String, String, String, String) {
    batnet_obs::reset();
    let before = Snapshot::from_configs(net.configs.clone()).with_env(net.env.clone());
    let after = Snapshot::from_configs(perturbed.to_vec()).with_env(net.env.clone());
    let analysis = after.analyze();
    let report = projection(&analysis.report);

    // Lint fingerprints over a pool-parallel parse of the same configs.
    let parsed = batnet_exec::current().map_opts(
        perturbed,
        MapOptions::default(),
        |(name, text): &(String, String)| parse_device(name, text),
    );
    let mut devices = Vec::with_capacity(parsed.len());
    let mut diags = Vec::with_capacity(parsed.len());
    for ((name, _), (device, dg)) in perturbed.iter().zip(parsed) {
        devices.push(device);
        diags.push((name.clone(), dg));
    }
    let findings = batnet::lint::run_network(&devices, &diags);
    let lint_json = batnet::lint::output::render_json("N2", &findings);

    let diff = before.diff_with(&after, &DiffOptions::default());
    let diff_json = batnet::diff::render_json(&diff);

    for (device, (name, _)) in devices.iter_mut().zip(perturbed.iter()) {
        device.stamp_source_file(name);
    }
    let coverage = batnet_coverage::analyze(&devices);
    let cov_json = batnet_coverage::render_json("N2", &coverage);

    (report, lint_json, diff_json, cov_json)
}

#[test]
fn artifacts_are_byte_identical_across_thread_counts() {
    let net = batnet_topogen::suite::n2();
    for seed in SEEDS {
        let p = batnet_topogen::perturb::perturb(
            &net,
            batnet_topogen::perturb::Scenario::AclAttachPeering,
            seed,
        )
        .expect("N2 always has an eligible victim");

        let sequential = Pool::new(1);
        let baseline = with_pool(&sequential, || run_artifacts(&net, &p.configs));

        for width in WIDTHS {
            let pool = Pool::new(width);
            let parallel = with_pool(&pool, || run_artifacts(&net, &p.configs));
            for (what, base, got) in [
                ("run report", &baseline.0, &parallel.0),
                ("lint JSON", &baseline.1, &parallel.1),
                ("diff JSON", &baseline.2, &parallel.2),
                ("coverage JSON", &baseline.3, &parallel.3),
            ] {
                assert_eq!(
                    base, got,
                    "seed {seed}: {what} differs between 1 thread and {width}"
                );
            }
        }
    }
}

#[test]
fn pool_survives_a_mid_sweep_panic_without_poisoning() {
    let pool = Pool::new(4);
    let items: Vec<usize> = (0..16).collect();

    // One task panics mid-sweep; every sibling item must still finish.
    let results = with_pool(&pool, || {
        batnet_exec::current().try_map(&items, MapOptions::default(), |&i| {
            assert!(i != 7, "injected failure on item 7");
            i * 2
        })
    });
    let mut failed = 0;
    for (i, r) in results.iter().enumerate() {
        match r {
            Ok(v) => assert_eq!(*v, i * 2, "sibling item {i} corrupted by the panic"),
            Err(p) => {
                failed += 1;
                assert_eq!(i, 7, "only item 7 may fail");
                assert!(
                    p.detail.contains("injected failure"),
                    "panic detail lost: {}",
                    p.detail
                );
            }
        }
    }
    assert_eq!(failed, 1, "exactly one contained panic");

    // The same pool — workers, queues, and condvars all reused — must
    // then produce a byte-identical full analysis: nothing was poisoned
    // and no worker died.
    let net = batnet_topogen::suite::n2();
    let p = batnet_topogen::perturb::perturb(
        &net,
        batnet_topogen::perturb::Scenario::AclAttachPeering,
        1,
    )
    .expect("N2 always has an eligible victim");
    let reference = with_pool(&Pool::new(1), || run_artifacts(&net, &p.configs));
    let reused = with_pool(&pool, || run_artifacts(&net, &p.configs));
    assert_eq!(reference, reused, "a contained panic changed later results");

    let stats = pool.stats();
    assert_eq!(stats.panics_contained, 1, "panic containment accounting");
}
