//! Fidelity labs (§4.3.1): small networks exercising features of
//! interest, with recorded ground-truth expectations.
//!
//! In the paper, labs are built in an emulator (GNS3) with real device
//! images, and runtime state (routes, traceroutes) is collected as ground
//! truth; the model is validated against it daily. Our stand-in ground
//! truth is hand-derived from the configurations (what a lab engineer
//! would read off `show` output), recorded as [`Expectation`]s, and
//! replayed on every test run — including deviations from recommended
//! configuration, the paper's main fidelity lesson.

use batnet::net::{Flow, TcpFlags};
use batnet::traceroute::Disposition;
use batnet::{validate_lab, Expectation, Snapshot};

fn tcp(src: &str, sport: u16, dst: &str, dport: u16) -> Flow {
    Flow::tcp(src.parse().unwrap(), sport, dst.parse().unwrap(), dport)
}

fn expect(
    device: &str,
    iface: &str,
    flow: Flow,
    disposition: Disposition,
) -> Expectation {
    Expectation {
        device: device.into(),
        iface: iface.into(),
        flow,
        disposition,
    }
}

/// Lab 1: basic static routing + ACL, recommended configuration.
#[test]
fn lab_static_routing_and_acl() {
    let snapshot = Snapshot::from_configs(vec![
        (
            "r1".into(),
            "hostname r1\ninterface hosts\n ip address 10.1.0.1/24\n ip access-group EDGE in\ninterface core\n ip address 172.16.0.1/31\nip route 10.2.0.0/24 172.16.0.0\nip access-list extended EDGE\n 10 permit tcp any any eq 80\n 20 permit icmp any any\n 30 deny ip any any\n".into(),
        ),
        (
            "r2".into(),
            "hostname r2\ninterface core\n ip address 172.16.0.0/31\ninterface servers\n ip address 10.2.0.1/24\nip route 10.1.0.0/24 172.16.0.1\n".into(),
        ),
    ]);
    let analysis = snapshot.analyze();
    let truth = vec![
        expect(
            "r1",
            "hosts",
            tcp("10.1.0.5", 40000, "10.2.0.9", 80),
            Disposition::DeliveredToSubnet {
                device: "r2".into(),
                iface: "servers".into(),
            },
        ),
        expect(
            "r1",
            "hosts",
            tcp("10.1.0.5", 40000, "10.2.0.9", 22),
            Disposition::DeniedIn {
                device: "r1".into(),
                acl: "EDGE".into(),
            },
        ),
        expect(
            "r1",
            "hosts",
            Flow::icmp_echo("10.1.0.5".parse().unwrap(), "172.16.0.0".parse().unwrap()),
            Disposition::Accepted { device: "r2".into() },
        ),
        expect(
            "r1",
            "hosts",
            Flow::icmp_echo("10.1.0.5".parse().unwrap(), "192.168.9.9".parse().unwrap()),
            Disposition::NoRoute { device: "r1".into() },
        ),
    ];
    let report = validate_lab(&analysis, &truth);
    assert!(report.ok(), "{:#?}", report.mismatches);
}

/// Lab 2: the undefined-route-map deviation — the paper's motivating
/// fidelity question. Ground truth (our documented default): an
/// undefined import policy rejects everything.
#[test]
fn lab_undefined_route_map_deviation() {
    let snapshot = Snapshot::from_configs(vec![
        (
            "r1".into(),
            "hostname r1\ninterface e0\n ip address 10.0.0.1/31\ninterface lan\n ip address 10.1.0.1/24\nrouter bgp 65001\n redistribute connected\n neighbor 10.0.0.0 remote-as 65002\n neighbor 10.0.0.0 route-map GHOST in\n".into(),
        ),
        (
            "r2".into(),
            "hostname r2\ninterface e0\n ip address 10.0.0.0/31\ninterface lan\n ip address 10.2.0.1/24\nrouter bgp 65002\n redistribute connected\n neighbor 10.0.0.1 remote-as 65001\n".into(),
        ),
    ]);
    // The reference is undefined, yet parsing succeeds (Lesson 3: total
    // parsing) and the documented default applies (fail closed).
    let analysis = snapshot.analyze();
    let r1 = analysis.dp.device("r1").unwrap();
    assert!(
        r1.main_rib.lookup("10.2.0.9".parse().unwrap()).is_none(),
        "undefined import policy must reject the peer's routes"
    );
    // The session itself is up, and r2 (no policy) still learns r1's LAN.
    let r2 = analysis.dp.device("r2").unwrap();
    assert!(r2.main_rib.lookup("10.1.0.9".parse().unwrap()).is_some());
}

/// Lab 3: established-flag handling through an ACL — the Lesson-4
/// "uninteresting violation" case (c): SYN/ACK towards a host that never
/// sent a SYN is dropped by the classic established ACL.
#[test]
fn lab_established_acl() {
    let snapshot = Snapshot::from_configs(vec![(
        "r1".into(),
        "hostname r1\ninterface inside\n ip address 10.1.0.1/24\ninterface outside\n ip address 203.0.113.1/24\n ip access-group RETURN in\nip access-list extended RETURN\n 10 permit tcp any any established\n 20 deny ip any any\n".into(),
    )]);
    let analysis = snapshot.analyze();
    // A bare SYN from outside is dropped…
    let syn = tcp("203.0.113.9", 40000, "10.1.0.5", 80);
    let truth = vec![
        expect(
            "r1",
            "outside",
            syn,
            Disposition::DeniedIn {
                device: "r1".into(),
                acl: "RETURN".into(),
            },
        ),
        // …but an ACK (return traffic) passes.
        expect(
            "r1",
            "outside",
            Flow {
                tcp_flags: TcpFlags::ACK,
                ..syn
            },
            Disposition::DeliveredToSubnet {
                device: "r1".into(),
                iface: "inside".into(),
            },
        ),
    ];
    let report = validate_lab(&analysis, &truth);
    assert!(report.ok(), "{:#?}", report.mismatches);
}

/// Lab 4: ECMP — both paths of a diamond must carry traffic.
#[test]
fn lab_ecmp_diamond() {
    let snapshot = Snapshot::from_configs(vec![
        (
            "src".into(),
            "hostname src\ninterface lan\n ip address 10.1.0.1/24\ninterface a\n ip address 172.16.0.0/31\ninterface b\n ip address 172.16.0.2/31\nip route 10.2.0.0/24 172.16.0.1\nip route 10.2.0.0/24 172.16.0.3\n".into(),
        ),
        (
            "via1".into(),
            "hostname via1\ninterface a\n ip address 172.16.0.1/31\ninterface c\n ip address 172.16.0.4/31\nip route 10.2.0.0/24 172.16.0.5\nip route 10.1.0.0/24 172.16.0.0\n".into(),
        ),
        (
            "via2".into(),
            "hostname via2\ninterface b\n ip address 172.16.0.3/31\ninterface d\n ip address 172.16.0.6/31\nip route 10.2.0.0/24 172.16.0.7\nip route 10.1.0.0/24 172.16.0.2\n".into(),
        ),
        (
            "dst".into(),
            "hostname dst\ninterface c\n ip address 172.16.0.5/31\ninterface d\n ip address 172.16.0.7/31\ninterface lan\n ip address 10.2.0.1/24\nip route 10.1.0.0/24 172.16.0.4\n".into(),
        ),
    ]);
    let analysis = snapshot.analyze();
    let flow = tcp("10.1.0.5", 40000, "10.2.0.9", 80);
    let trace = analysis.trace("src", "lan", &flow);
    assert_eq!(trace.paths.len(), 2, "both ECMP branches explored:\n{trace}");
    assert!(trace.all_succeed(), "{trace}");
    // One path through via1, the other through via2.
    let through: Vec<bool> = ["via1", "via2"]
        .iter()
        .map(|v| {
            trace
                .paths
                .iter()
                .any(|p| p.hops.iter().any(|h| h.device == *v))
        })
        .collect();
    assert_eq!(through, vec![true, true]);
}

/// Lab 5: source NAT round trip at the border.
#[test]
fn lab_source_nat() {
    let snapshot = Snapshot::from_configs(vec![(
        "border".into(),
        "hostname border\ninterface inside\n ip address 10.0.0.1/24\ninterface outside\n ip address 203.0.113.1/24\nip nat pool P 198.51.100.4 198.51.100.7\nip access-list extended INSIDE\n 10 permit ip 10.0.0.0 0.0.0.255 any\nip nat source list INSIDE pool P interface outside\n".into(),
    )]);
    let analysis = snapshot.analyze();
    let flow = tcp("10.0.0.5", 40000, "203.0.113.9", 443);
    let trace = analysis.trace("border", "inside", &flow);
    assert!(trace.paths[0].disposition.is_success(), "{trace}");
    let out = trace.paths[0].final_flow;
    assert!(
        (0x0464..=0x0467).contains(&(out.src_ip.0 & 0xffff)) || out.src_ip.to_string().starts_with("198.51.100."),
        "source must be rewritten into the pool: {out}"
    );
    assert_eq!(out.dst_ip, flow.dst_ip);
}
