//! Continuous-profiling integration over a real pipeline: run the
//! fault-tolerant NET1 analysis single-threaded with the wall-clock
//! sampler attached and pin the subset property — every non-idle path
//! the sampler folded is a path the finished run's exact attribution
//! ([`obs::attr::path_totals`]) also knows. The sampler can only ever
//! see stacks the span recorder published, so a sampled path outside
//! the exact set means the two views of "where time goes" have
//! diverged.
//!
//! A single `#[test]` on purpose: the observability registry is
//! process-global and `cargo test` runs tests on threads, so this file
//! owns the whole run (reset → sample+analyze → capture).

use batnet::obs;
use batnet::routing::SimOptions;
use batnet::{ResourceGovernor, Snapshot};
use std::collections::BTreeSet;

#[test]
fn sampled_paths_are_a_subset_of_exact_attribution() {
    let net = batnet_topogen::suite::net1();
    // The sampler is wall-clock, so whether any given tick lands while
    // the analysis is mid-flight is timing luck; retry a few times
    // rather than assert on one roll of the scheduler dice. The subset
    // property itself must hold on every attempt.
    let mut live_paths_seen = 0usize;
    for _attempt in 0..5 {
        obs::reset();
        let thread = obs::SamplerThread::spawn(4_000);
        let snapshot = Snapshot::from_configs(net.configs.clone()).with_env(net.env.clone());
        let outcome = snapshot
            .analyze_resilient(&SimOptions::default(), 1, &ResourceGovernor::unlimited())
            .expect("NET1 analyzes");
        let analysis = outcome.into_value();
        let sampler = thread.stop();
        let profile = sampler.take_profile();
        let doc = obs::json::parse(&profile).expect("profile parses");
        obs::report::validate_profile(&doc).expect("profile validates");

        // Read-only contract: the captured report carries no trace of
        // the sampler that watched it.
        let report_text = analysis.report.to_json();
        assert!(
            !report_text.contains("obs.sampler."),
            "sampler artifacts leaked into the run report"
        );

        let totals = obs::attr::path_totals(&analysis.report.spans);
        let exact: BTreeSet<&str> = totals.keys().map(String::as_str).collect();
        let stacks = doc
            .get("stacks")
            .and_then(obs::json::Value::as_arr)
            .expect("stacks");
        for s in stacks {
            let stack = s
                .get("stack")
                .and_then(obs::json::Value::as_str)
                .expect("stack string");
            if stack == "(idle)" {
                continue;
            }
            live_paths_seen += 1;
            assert!(
                exact.contains(stack),
                "sampled path {stack:?} is not in the run's exact attribution"
            );
        }
        if live_paths_seen > 0 {
            break;
        }
    }
    assert!(
        live_paths_seen > 0,
        "a 4 kHz sampler never once caught the NET1 pipeline mid-flight"
    );
}
