//! Quarantine integration tests: a snapshot with k corrupted devices
//! must analyze the healthy subset to *byte-identical* results as
//! analyzing that subset alone, with every corrupted device quarantined
//! under a machine-readable reason.

use batnet::routing::SimOptions;
use batnet::{Outcome, QuarantineStage, ResourceGovernor, Snapshot};
use batnet_topogen::dc::leaf_spine;
use batnet_topogen::enterprise::{enterprise, EnterpriseSpec};
use batnet_topogen::GeneratedNetwork;

/// A corruption no parser can make sense of — lands in Parse quarantine.
const GARBAGE: &str = "\u{1}\u{2}\u{3}%PDF-1.4 \u{7f}\u{6}binary\u{5}slush\n\
                       \u{2}\u{4}not a config\u{1}at all\u{3}\n\
                       \u{7}\u{6}\u{5}\u{4}\u{3}\u{2}\u{1}\n";

/// Corrupts `k` devices (every `stride`-th) and returns the mutated
/// configs plus the victim names.
fn corrupt_k(net: &GeneratedNetwork, k: usize) -> (Vec<(String, String)>, Vec<String>) {
    let mut configs = net.configs.clone();
    let stride = (configs.len() / k).max(1);
    let mut victims = Vec::new();
    for i in 0..k {
        let vi = (i * stride) % configs.len();
        let (name, text) = &mut configs[vi];
        if !victims.contains(name) {
            victims.push(name.clone());
            *text = GARBAGE.to_string();
        }
    }
    (configs, victims)
}

fn check_monotone(net: GeneratedNetwork, k: usize) {
    let (configs, victims) = corrupt_k(&net, k);
    let snapshot = Snapshot::from_configs(configs).with_env(net.env.clone());

    // Every victim is quarantined at the Parse stage with a
    // machine-readable reason, and is visible in the diagnostics.
    for v in &victims {
        let q = snapshot
            .quarantined
            .iter()
            .find(|q| &q.device == v)
            .unwrap_or_else(|| panic!("{v}: corrupted but not quarantined"));
        assert_eq!(q.stage, QuarantineStage::Parse, "{v}");
        assert!(!q.reason.code().is_empty(), "{v}: reason must carry a code");
        assert!(
            snapshot.diagnostics.iter().any(|(n, _)| n == v),
            "{v}: quarantined device missing from diagnostics"
        );
    }
    // No healthy device was swept up.
    assert_eq!(snapshot.quarantined.len(), victims.len());
    let survivors: Vec<String> = snapshot.devices.iter().map(|d| d.name.clone()).collect();
    assert_eq!(survivors.len(), net.configs.len() - victims.len());

    // Analyze with the corrupted devices present (quarantined)...
    let with_quarantine = snapshot
        .analyze_resilient(&SimOptions::default(), 1, &ResourceGovernor::unlimited())
        .expect("healthy devices remain")
        .into_value();

    // ...and the healthy subset alone.
    let subset: Vec<(String, String)> = net
        .configs
        .iter()
        .filter(|(n, _)| survivors.contains(n))
        .cloned()
        .collect();
    let alone = Snapshot::from_configs(subset)
        .with_env(net.env)
        .analyze_resilient(&SimOptions::default(), 1, &ResourceGovernor::unlimited())
        .expect("subset analyzes")
        .into_value();

    // Byte-identical routing state for every survivor.
    for name in &survivors {
        let a = with_quarantine.dp.device(name).expect("survivor present");
        let b = alone.dp.device(name).expect("survivor present in subset");
        assert_eq!(a.main_rib, b.main_rib, "{name}: RIB must not bend");
        assert_eq!(
            a.fib.entries(),
            b.fib.entries(),
            "{name}: FIB must not bend"
        );
    }
}

#[test]
fn leaf_spine_with_two_corrupted_devices() {
    check_monotone(leaf_spine("t", 3, 8), 2);
}

#[test]
fn enterprise_with_three_corrupted_devices() {
    check_monotone(
        enterprise(
            "e",
            &EnterpriseSpec {
                cores: 2,
                dists: 4,
                accesses: 4,
                borders: 2,
                firewalls: 0,
                flat_access_percent: 0,
                nat: false,
            },
        ),
        3,
    );
}

/// Corrupting *everything* is a typed error, not a panic.
#[test]
fn all_devices_corrupted_is_typed_error() {
    let net = leaf_spine("t", 2, 4);
    let k = net.configs.len();
    let (configs, _) = corrupt_k(&net, k);
    let snapshot = Snapshot::from_configs(configs).with_env(net.env);
    assert!(snapshot.devices.is_empty());
    match snapshot.analyze_resilient(&SimOptions::default(), 1, &ResourceGovernor::unlimited()) {
        Err(err) => assert!(matches!(err, batnet::Error::EmptySnapshot)),
        Ok(_) => panic!("nothing to analyze: expected a typed error"),
    }
}

/// A healthy snapshot under an unlimited governor completes (the
/// governed path is not lossy when nothing is wrong).
#[test]
fn healthy_snapshot_completes_under_governor() {
    let net = leaf_spine("t", 2, 4);
    let snapshot = Snapshot::from_configs(net.configs).with_env(net.env);
    assert!(snapshot.quarantined.is_empty());
    let outcome = snapshot
        .analyze_resilient(&SimOptions::default(), 1, &ResourceGovernor::unlimited())
        .expect("analyzes");
    assert!(matches!(outcome, Outcome::Complete(_)));
}
