//! Resource-governor integration tests: every [`Limit`] variant —
//! deadline, iteration budget, BDD node ceiling — driven to exhaustion
//! must come back as `Outcome::Partial` with correct accounting,
//! in-process *and* through a live `batnet-serve` endpoint returning
//! partial JSON. Reported, never hung and never panicking.

use batnet::dataplane::{NodeKind, ReachAnalysis};
use batnet::net::governor::{Limit, Outcome, ResourceGovernor};
use batnet::routing::{simulate_governed, SchedulerMode, SimOptions};
use batnet::Snapshot;
use batnet_topogen::gadgets::fig1b;
use batnet_topogen::suite;
use std::time::Duration;

fn lockstep() -> SimOptions {
    SimOptions {
        scheduler: SchedulerMode::Lockstep,
        ..SimOptions::default()
    }
}

/// The fig1b gadget oscillates forever under lockstep; an iteration
/// budget must cut it off with a Partial outcome listing the prefix
/// that never settled.
#[test]
fn fig1b_iteration_budget_yields_partial() {
    let net = fig1b();
    let devices = net.parse();
    let gov = ResourceGovernor::with_iteration_budget(50);
    match simulate_governed(&devices, &net.env, &lockstep(), &gov) {
        Outcome::Partial {
            completed,
            abandoned,
            why,
        } => {
            assert!(matches!(why.limit, Limit::Iterations { .. }), "{why:?}");
            assert!(
                abandoned.iter().any(|p| p == "10.0.0.0/8"),
                "churning prefix must be listed, got {abandoned:?}"
            );
            assert!(completed.convergence.aborted.is_some());
            assert!(!completed.convergence.converged);
        }
        Outcome::Complete(_) => panic!("budget must abort the oscillator"),
    }
}

/// Same gadget, wall-clock deadline instead of an iteration budget.
#[test]
fn fig1b_deadline_yields_partial() {
    let net = fig1b();
    let devices = net.parse();
    let gov = ResourceGovernor::with_deadline(Duration::ZERO);
    let outcome = simulate_governed(&devices, &net.env, &lockstep(), &gov);
    match outcome {
        Outcome::Partial { why, .. } => {
            assert!(matches!(why.limit, Limit::Deadline { .. }), "{why:?}")
        }
        Outcome::Complete(_) => panic!("a zero deadline must abort"),
    }
}

fn two_router_configs() -> Vec<(String, String)> {
    vec![
        (
            "r1".into(),
            "hostname r1\ninterface hosts\n ip address 10.1.0.1/24\ninterface core\n ip address 172.16.0.1/31\nip route 10.2.0.0/24 172.16.0.0\n".into(),
        ),
        (
            "r2".into(),
            "hostname r2\ninterface core\n ip address 172.16.0.0/31\ninterface servers\n ip address 10.2.0.1/24\nip route 10.1.0.0/24 172.16.0.1\n".into(),
        ),
    ]
}

/// The third `Limit` variant in-process: a reachability fixed point
/// under a tiny BDD node ceiling stops with `Limit::BddNodes`,
/// reporting the arena size it saw, the devices still on the worklist,
/// and the sets computed so far — without the ceiling ever being
/// installed into (and thereby poisoning) the shared manager.
#[test]
fn bdd_node_ceiling_yields_partial_reachability() {
    let snapshot = Snapshot::from_configs(two_router_configs());
    let mut analysis = snapshot
        .analyze_resilient(&SimOptions::default(), 1, &ResourceGovernor::unlimited())
        .expect("analyze")
        .into_value();
    let init = analysis.vars.initial_bits(&mut analysis.bdd);
    let seeds: Vec<(usize, batnet::bdd::NodeId)> = analysis
        .graph
        .nodes_where(|k| matches!(k, NodeKind::IfaceSrc(_, _)))
        .into_iter()
        .map(|n| (n, init))
        .collect();
    assert!(!seeds.is_empty());
    let arena_before = analysis.bdd.node_count();
    let gov = ResourceGovernor::with_node_ceiling(2);
    let reach = ReachAnalysis::new(&analysis.graph);
    match reach.forward_governed(&mut analysis.bdd, &seeds, &gov) {
        Outcome::Partial {
            completed,
            abandoned,
            why,
        } => {
            let Limit::BddNodes { ceiling, reached } = why.limit else {
                panic!("expected BddNodes, got {:?}", why.limit);
            };
            assert_eq!(ceiling, 2);
            assert!(reached >= arena_before, "{reached} < {arena_before}");
            assert_eq!(why.stage, "reach-forward");
            assert!(!abandoned.is_empty(), "worklist devices must be named");
            assert_eq!(completed.reach.len(), analysis.graph.nodes.len());
        }
        Outcome::Complete(_) => panic!("a 2-node ceiling must abort"),
    }
    // The same query against the same manager, ungoverned, completes:
    // the ceiling lived in the request's governor, not the manager.
    let again = reach.forward_governed(
        &mut analysis.bdd,
        &seeds,
        &ResourceGovernor::unlimited(),
    );
    assert!(matches!(again, Outcome::Complete(_)));
}

/// Every `Limit` variant through a live serve endpoint: the same
/// governor mechanism, reached via query parameters, must produce an
/// HTTP 206 whose JSON carries the stage/limit/abandoned accounting.
#[test]
fn serve_endpoint_returns_partial_json_for_each_limit() {
    let handle = batnet_serve::spawn(batnet_serve::ServeConfig {
        workers: 2,
        ..Default::default()
    })
    .expect("bind loopback");
    let addr = handle.addr();
    let t = Duration::from_secs(10);

    // Upload a small snapshot through the API (rather than prewarming a
    // suite network) so the governed upload path is exercised too.
    let mut body = String::from("{\"configs\": [");
    for (i, (name, text)) in two_router_configs().iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str("{\"name\": ");
        batnet::obs::json::write_str(&mut body, name);
        body.push_str(", \"text\": ");
        batnet::obs::json::write_str(&mut body, text);
        body.push('}');
    }
    body.push_str("]}");
    let up = batnet_serve::post(addr, "/snapshots/t", body.as_bytes(), t).expect("upload");
    assert_eq!(up.status, 201, "{}", up.body_str());

    for (params, needle) in [
        ("deadline_ms=0", "deadline"),
        ("deadline_ms=60000&max_iterations=1", "iteration budget"),
        ("deadline_ms=60000&max_bdd_nodes=2", "BDD node ceiling"),
    ] {
        let r = batnet_serve::get(
            addr,
            &format!("/query/reach?snapshot=t&port=80&{params}"),
            t,
        )
        .expect("query");
        assert_eq!(r.status, 206, "{params}: {}", r.body_str());
        let text = r.body_str();
        assert!(
            text.contains(needle),
            "{params}: limit {needle:?} not in accounting: {text}"
        );
        assert!(
            text.contains("\"stage\":") && text.contains("\"abandoned\":"),
            "{params}: partial accounting incomplete: {text}"
        );
        let parsed = r.json().expect("partial body is valid JSON");
        assert!(parsed.get("partial").is_some());
    }

    // The same snapshot, ungoverned, still answers completely — the
    // tripped budgets were per-request.
    let ok = batnet_serve::get(addr, "/query/reach?snapshot=t&port=80", t).expect("query");
    assert_eq!(ok.status, 200, "{}", ok.body_str());
    assert!(ok.body_str().contains("\"partial\": null"));
    handle.shutdown();
}

/// A convergent network under a generous governor is Complete and equals
/// the ungoverned result.
#[test]
fn governed_complete_matches_ungoverned() {
    let net = suite::n2();
    let devices = net.parse();
    let opts = SimOptions::default();
    let governed = simulate_governed(
        &devices,
        &net.env,
        &opts,
        &ResourceGovernor::with_deadline(Duration::from_secs(600)),
    );
    let Outcome::Complete(governed) = governed else {
        panic!("a generous deadline must not abort a convergent network");
    };
    let plain = batnet::routing::simulate(&devices, &net.env, &opts);
    for d in &plain.devices {
        let g = governed.device(&d.name).expect("device present");
        assert_eq!(g.main_rib, d.main_rib, "{}", d.name);
        assert_eq!(g.fib.entries(), d.fib.entries(), "{}", d.name);
    }
}
