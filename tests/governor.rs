//! Resource-governor integration tests: the Figure 1b oscillating
//! gadget under a budget must come back as `Outcome::Partial` naming the
//! churning prefixes — reported, never hung and never panicking.

use batnet::net::governor::{Limit, Outcome, ResourceGovernor};
use batnet::routing::{simulate_governed, SchedulerMode, SimOptions};
use batnet_topogen::gadgets::fig1b;
use batnet_topogen::suite;
use std::time::Duration;

fn lockstep() -> SimOptions {
    SimOptions {
        scheduler: SchedulerMode::Lockstep,
        ..SimOptions::default()
    }
}

/// The fig1b gadget oscillates forever under lockstep; an iteration
/// budget must cut it off with a Partial outcome listing the prefix
/// that never settled.
#[test]
fn fig1b_iteration_budget_yields_partial() {
    let net = fig1b();
    let devices = net.parse();
    let gov = ResourceGovernor::with_iteration_budget(50);
    match simulate_governed(&devices, &net.env, &lockstep(), &gov) {
        Outcome::Partial {
            completed,
            abandoned,
            why,
        } => {
            assert!(matches!(why.limit, Limit::Iterations { .. }), "{why:?}");
            assert!(
                abandoned.iter().any(|p| p == "10.0.0.0/8"),
                "churning prefix must be listed, got {abandoned:?}"
            );
            assert!(completed.convergence.aborted.is_some());
            assert!(!completed.convergence.converged);
        }
        Outcome::Complete(_) => panic!("budget must abort the oscillator"),
    }
}

/// Same gadget, wall-clock deadline instead of an iteration budget.
#[test]
fn fig1b_deadline_yields_partial() {
    let net = fig1b();
    let devices = net.parse();
    let gov = ResourceGovernor::with_deadline(Duration::ZERO);
    let outcome = simulate_governed(&devices, &net.env, &lockstep(), &gov);
    match outcome {
        Outcome::Partial { why, .. } => {
            assert!(matches!(why.limit, Limit::Deadline { .. }), "{why:?}")
        }
        Outcome::Complete(_) => panic!("a zero deadline must abort"),
    }
}

/// A convergent network under a generous governor is Complete and equals
/// the ungoverned result.
#[test]
fn governed_complete_matches_ungoverned() {
    let net = suite::n2();
    let devices = net.parse();
    let opts = SimOptions::default();
    let governed = simulate_governed(
        &devices,
        &net.env,
        &opts,
        &ResourceGovernor::with_deadline(Duration::from_secs(600)),
    );
    let Outcome::Complete(governed) = governed else {
        panic!("a generous deadline must not abort a convergent network");
    };
    let plain = batnet::routing::simulate(&devices, &net.env, &opts);
    for d in &plain.devices {
        let g = governed.device(&d.name).expect("device present");
        assert_eq!(g.main_rib, d.main_rib, "{}", d.name);
        assert_eq!(g.fib.entries(), d.fib.entries(), "{}", d.name);
    }
}
