//! Differential-analysis integration tests: the diff-core properties
//! from the PR-5 checklist — self-diff emptiness (including under
//! quarantine), before/after swap symmetry, and a seeded perturbation
//! whose changed-flow set is known exactly.

use batnet::diff::{ChangeKind, FlowDirection, RouteChangeKind};
use batnet::{DiffOptions, Snapshot};
use batnet_topogen::dc::leaf_spine;
use batnet_topogen::perturb::{perturb, Scenario};

fn snapshot_of(configs: &[(String, String)], env: &batnet::routing::Environment) -> Snapshot {
    Snapshot::from_configs(configs.to_vec()).with_env(env.clone())
}

/// diff(s, s) is empty at every layer, and the symbolic stage is skipped
/// outright (the graphs are equal by construction).
#[test]
fn self_diff_is_empty_and_skips_reach() {
    let net = leaf_spine("T", 2, 4);
    let snap = snapshot_of(&net.configs, &net.env);
    let diff = snap.diff(&snap);
    assert!(diff.is_empty(), "self-diff not empty: {} changes", diff.change_count());
    assert!(diff.structural.is_empty());
    assert!(diff.routes.is_empty());
    assert!(diff.reach.skipped_equivalent);
    assert_eq!(diff.reach.starts_compared, 0);
}

/// Quarantined devices do not break self-diff emptiness: the comparison
/// runs on the healthy subset and the quarantine is accounted for on
/// both sides of the report.
#[test]
fn self_diff_is_empty_under_quarantine() {
    let mut net = leaf_spine("T", 1, 2);
    net.configs.push((
        "broken".to_string(),
        "%%% not a router config %%%\ngarbage in\ngarbage out\n".to_string(),
    ));
    let snap = snapshot_of(&net.configs, &net.env);
    assert!(
        !snap.quarantined.is_empty(),
        "fixture must actually quarantine the garbage device"
    );
    let diff = snap.diff(&snap);
    assert!(diff.is_empty(), "self-diff not empty: {} changes", diff.change_count());
    assert_eq!(diff.quarantined_before, diff.quarantined_after);
    assert!(
        diff.quarantined_before.iter().any(|q| q.device == "broken"),
        "{:?}",
        diff.quarantined_before
    );
}

/// Swapping before and after swaps every layer's polarity exactly:
/// structural added <-> removed, routes added <-> withdrawn, flows
/// lost <-> gained. The underlying delta sets are identical, so the
/// counts must match one for one.
#[test]
fn swap_swaps_polarity_at_every_layer() {
    let net = leaf_spine("T", 2, 4);
    let p = perturb(&net, Scenario::AclAttachPeering, 5).expect("leaf eligible");
    let before = snapshot_of(&net.configs, &net.env);
    let after = snapshot_of(&p.configs, &net.env);
    let fwd = before.diff(&after);
    let rev = after.diff(&before);
    assert!(!fwd.is_empty(), "perturbation produced no diff");

    let count = |d: &batnet::SnapshotDiff, k: ChangeKind| {
        d.structural.changes.iter().filter(|c| c.kind == k).count()
    };
    assert_eq!(count(&fwd, ChangeKind::Added), count(&rev, ChangeKind::Removed));
    assert_eq!(count(&fwd, ChangeKind::Removed), count(&rev, ChangeKind::Added));
    assert_eq!(count(&fwd, ChangeKind::Modified), count(&rev, ChangeKind::Modified));

    let route_count = |d: &batnet::SnapshotDiff, k: RouteChangeKind| {
        d.routes.changes.iter().filter(|c| c.kind == k).count()
    };
    assert_eq!(
        route_count(&fwd, RouteChangeKind::Added),
        route_count(&rev, RouteChangeKind::Withdrawn)
    );
    assert_eq!(
        route_count(&fwd, RouteChangeKind::Withdrawn),
        route_count(&rev, RouteChangeKind::Added)
    );
    assert_eq!(
        route_count(&fwd, RouteChangeKind::Changed),
        route_count(&rev, RouteChangeKind::Changed)
    );
    assert_eq!(fwd.routes.changed_devices, rev.routes.changed_devices);

    assert_eq!(fwd.reach.changed_starts, rev.reach.changed_starts);
    let flow_count = |d: &batnet::SnapshotDiff, dir: FlowDirection| {
        d.reach.deltas.iter().filter(|f| f.direction == dir).count()
    };
    assert_eq!(
        flow_count(&fwd, FlowDirection::Lost),
        flow_count(&rev, FlowDirection::Gained)
    );
    assert_eq!(
        flow_count(&fwd, FlowDirection::Gained),
        flow_count(&rev, FlowDirection::Lost)
    );
}

/// The seeded `acl-add-line` perturbation inserts a deny for TCP/443 as
/// the first line of the victim's SERVERS ACL, which is applied inbound
/// only on the victim's `servers` interface. The changed-flow set is
/// therefore known exactly: flows from that one start location are lost
/// (nothing is gained), and every witness is TCP to port 443.
#[test]
fn acl_add_line_loses_exactly_the_denied_flows() {
    let net = leaf_spine("T", 2, 4);
    let p = perturb(&net, Scenario::AclAddLine, 9).expect("leaf eligible");
    let before = snapshot_of(&net.configs, &net.env);
    let after = snapshot_of(&p.configs, &net.env);
    let diff = before.diff_with(&after, &DiffOptions::default());

    assert_eq!(diff.structural.change_count(), 1, "{:?}", diff.structural.changes);
    let c = &diff.structural.changes[0];
    assert_eq!(c.device, p.victim);
    assert_eq!(c.path, "acl SERVERS");
    assert!(c.detail.contains("+ 5 deny tcp any any eq 443"), "{}", c.detail);

    // An ACL edit changes no routes…
    assert!(diff.routes.is_empty(), "{:?}", diff.routes.changes);
    // …but the reach stage still runs (the equivalence fast path must
    // not fire) and pinpoints exactly the one affected start location.
    assert!(!diff.reach.skipped_equivalent);
    assert_eq!(diff.reach.changed_starts, 1);
    assert!(!diff.reach.deltas.is_empty());
    for delta in &diff.reach.deltas {
        assert_eq!(delta.direction, FlowDirection::Lost, "{delta:?}");
        assert_eq!(delta.device, p.victim);
        assert_eq!(delta.iface, "servers");
        assert!(delta.flow.contains("443"), "witness not on port 443: {}", delta.flow);
        assert_ne!(delta.before_trace, delta.after_trace);
    }
}
