//! End-to-end integration tests: generated networks through the whole
//! pipeline, with the §4.3.2 differential engine cross-check on each.

use batnet::differential_test;
use batnet::routing::SimOptions;
use batnet::Snapshot;
use batnet_topogen::dc::{fat_tree, leaf_spine, paired_dcs};
use batnet_topogen::enterprise::{enterprise, EnterpriseSpec};
use batnet_topogen::wan::wan;
use batnet_topogen::GeneratedNetwork;

fn run_pipeline(net: GeneratedNetwork, max_diff_starts: usize) {
    let name = net.name.clone();
    let snapshot = Snapshot::from_configs(net.configs).with_env(net.env);
    assert_eq!(snapshot.diagnostic_count(), 0, "{name}: generated configs parse clean");
    let mut analysis = snapshot.analyze();
    assert!(
        analysis.dp.convergence.converged,
        "{name}: must converge: {:?}",
        analysis.dp.convergence
    );
    let report = differential_test(&mut analysis, max_diff_starts);
    assert!(
        report.ok(),
        "{name}: engines disagree: {:#?}",
        report.mismatches
    );
    assert!(report.checks > 0, "{name}: differential test must do work");
}

#[test]
fn leaf_spine_end_to_end() {
    run_pipeline(leaf_spine("t", 3, 8), 4);
}

#[test]
fn fat_tree_end_to_end() {
    run_pipeline(fat_tree("t", 2, 2, 2, 4), 4);
}

#[test]
fn paired_dcs_end_to_end() {
    run_pipeline(paired_dcs("t", 2, 4), 3);
}

#[test]
fn enterprise_end_to_end() {
    run_pipeline(
        enterprise(
            "t",
            &EnterpriseSpec {
                cores: 2,
                dists: 2,
                accesses: 5,
                borders: 1,
                firewalls: 0,
                flat_access_percent: 20,
                nat: true,
            },
        ),
        4,
    );
}

#[test]
fn enterprise_with_firewalls_end_to_end() {
    run_pipeline(
        enterprise(
            "t",
            &EnterpriseSpec {
                cores: 2,
                dists: 2,
                accesses: 4,
                borders: 1,
                firewalls: 2,
                flat_access_percent: 0,
                nat: true,
            },
        ),
        4,
    );
}

#[test]
fn wan_end_to_end() {
    run_pipeline(wan("t", 4, 8), 4);
}

#[test]
fn determinism_across_runs_and_parallelism() {
    // §4.1.2: stable results across simulations. The same snapshot must
    // produce byte-identical RIBs regardless of parallelism.
    let net = enterprise(
        "t",
        &EnterpriseSpec {
            cores: 3,
            dists: 4,
            accesses: 8,
            borders: 2,
            firewalls: 0,
            flat_access_percent: 0,
            nat: true,
        },
    );
    let devices = net.parse();
    let runs: Vec<_> = [true, false, true]
        .iter()
        .map(|&parallel| {
            batnet::routing::simulate(
                &devices,
                &net.env,
                &SimOptions {
                    parallel,
                    ..SimOptions::default()
                },
            )
        })
        .collect();
    for pair in runs.windows(2) {
        for (a, b) in pair[0].devices.iter().zip(pair[1].devices.iter()) {
            assert_eq!(a.main_rib, b.main_rib, "{}: RIBs must be identical", a.name);
        }
    }
}

#[test]
fn lint_is_quiet_on_generated_networks() {
    // Generated networks should be (nearly) lint-clean: only the known
    // benign classes may appear.
    let net = enterprise(
        "t",
        &EnterpriseSpec {
            cores: 2,
            dists: 2,
            accesses: 4,
            borders: 1,
            firewalls: 0,
            flat_access_percent: 0,
            nat: true,
        },
    );
    let snapshot = Snapshot::from_configs(net.configs).with_env(net.env);
    let findings = snapshot.lint();
    for f in &findings {
        assert!(
            // The transit peer lives outside the snapshot; the generator
            // deliberately reuses the community list only on some paths.
            // Info-severity findings are fine: the generator's
            // deny-specific-then-permit-broad ACLs are exactly the idiom
            // acl-partial-shadow reports at the informational level.
            f.check == "bgp-compat"
                || f.check == "unused-structure"
                || f.severity < batnet::lint::Severity::Warning,
            "unexpected finding: {f}"
        );
    }
}
