//! Observability integration test: one fault-tolerant NET1 analysis
//! must produce a RunReport that (a) contains every pipeline stage span
//! exactly once, (b) validates against the schema-1 validator, and
//! (c) accounts for every quarantined device with its reason code.
//!
//! A single `#[test]` on purpose: the observability registry is
//! process-global and `cargo test` runs tests on threads, so this file
//! owns the whole run (reset → analyze → capture) without interleaving.

use batnet::obs;
use batnet::routing::SimOptions;
use batnet::{ResourceGovernor, Snapshot};

/// Binary slush no parser understands — quarantined at the parse stage.
const GARBAGE: &str = "\u{1}\u{2}\u{3}%PDF-1.4 \u{7f}\u{6}binary\u{5}slush\n\
                       \u{2}\u{4}not a config\u{1}at all\u{3}\n";

#[test]
fn net1_run_report_is_complete_and_accountable() {
    let net = batnet_topogen::suite::net1();
    let mut configs = net.configs.clone();
    // Corrupt two devices so the quarantine sections are non-trivial.
    let victims: Vec<String> = vec![configs[3].0.clone(), configs[11].0.clone()];
    configs[3].1 = GARBAGE.to_string();
    configs[11].1 = GARBAGE.to_string();

    obs::reset();
    let snapshot = Snapshot::from_configs(configs).with_env(net.env.clone());
    let outcome = snapshot
        .analyze_resilient(&SimOptions::default(), 1, &ResourceGovernor::unlimited())
        .expect("healthy subset analyzes");
    assert!(!outcome.is_partial(), "unlimited governor cannot trip");
    let analysis = outcome.into_value();
    let report = &analysis.report;

    // (a) Every pipeline stage appears exactly once. `route.simulate`
    // nests its own phases; reach spans only appear once queries run.
    for stage in ["snapshot.parse", "pipeline", "topology.infer", "route.simulate", "graph.build"] {
        assert_eq!(
            report.span_count(stage),
            1,
            "stage {stage} must appear exactly once, got {}",
            report.span_count(stage)
        );
    }
    // Stage timings are real: every stage span closed with a duration.
    for stage in ["snapshot.parse", "pipeline", "route.simulate", "graph.build"] {
        assert!(
            report.span_ms(stage).is_some(),
            "span {stage} must have closed"
        );
    }

    // (b) The serialized report parses and passes the schema validator.
    let text = report.to_json();
    let parsed = obs::json::parse(&text).expect("report JSON parses");
    obs::report::validate_run_report(&parsed).expect("report validates");

    // (c) Both corrupted devices appear with a machine-readable reason
    // code, in the report and as bridged quarantine events.
    assert_eq!(report.quarantined.len(), 2);
    for v in &victims {
        let entry = report
            .quarantined
            .iter()
            .find(|q| &q.device == v)
            .unwrap_or_else(|| panic!("{v} missing from report.quarantined"));
        assert_eq!(entry.code, "unintelligible");
        assert_eq!(entry.stage, "parse");
        assert!(
            report
                .events
                .iter()
                .any(|e| e.kind == "quarantine" && &e.subject == v),
            "{v} missing a quarantine event"
        );
    }

    // The snapshot summary reflects the input accounting.
    let summary = report.snapshot.expect("snapshot summary present");
    assert_eq!(summary.quarantined, 2);
    assert_eq!(summary.devices, net.configs.len() - 2);

    // Pipeline metrics made it into the report: parse coverage,
    // routing convergence, and BDD statistics.
    assert!(report.counter("route.sweeps").unwrap_or(0) > 0);
    assert!(
        report.metrics.keys().any(|k| k.starts_with("parse.devices.")),
        "per-dialect parse counters missing"
    );
    assert!(
        report.metrics.contains_key("bdd.nodes"),
        "BDD gauges missing"
    );
}
