//! End-to-end property tests: on a fixed fixture network, for *random*
//! flows the two engines must agree — a randomized, continuous version of
//! the §4.3.2 differential protocol.

use batnet::bdd::NodeId;
use batnet::dataplane::{NodeKind, ReachAnalysis};
use batnet::net::{Flow, Ip, IpProtocol, TcpFlags};
use batnet::traceroute::{Disposition, StartLocation};
use batnet::{Analysis, Snapshot};
use proptest::prelude::*;
use std::cell::RefCell;

fn fixture() -> Analysis {
    let snapshot = Snapshot::from_configs(vec![
        (
            "edge".into(),
            "hostname edge\n\
             interface hosts\n ip address 10.1.0.1/24\n ip access-group EDGE in\n\
             interface up\n ip address 172.16.0.1/31\n\
             ip route 0.0.0.0/0 172.16.0.0\n\
             ip access-list extended EDGE\n \
             10 deny ip 10.99.0.0 0.0.255.255 any\n \
             20 permit tcp any any eq 80\n \
             30 permit tcp any any eq 443\n \
             40 permit tcp any any established\n \
             50 permit udp any 10.2.0.0 0.0.255.255 eq 53\n \
             60 permit icmp any any\n \
             70 deny ip any any\n",
        ),
        (
            "core".into(),
            "hostname core\n\
             interface down\n ip address 172.16.0.0/31\n\
             interface servers\n ip address 10.2.0.1/24\n\
             interface null\n ip address 10.3.0.1/24\n\
             ip route 10.1.0.0/24 172.16.0.1\n\
             ip route 10.4.0.0/16 null0\n",
        ),
    ]
    .into_iter()
    .map(|(a, b)| (a, String::from(b)))
    .collect());
    snapshot.analyze()
}

thread_local! {
    static WORLD: RefCell<Option<Analysis>> = const { RefCell::new(None) };
}

fn with_world<R>(f: impl FnOnce(&mut Analysis) -> R) -> R {
    WORLD.with(|w| {
        let mut slot = w.borrow_mut();
        if slot.is_none() {
            *slot = Some(fixture());
        }
        f(slot.as_mut().expect("initialized"))
    })
}

fn arb_flow() -> impl Strategy<Value = Flow> {
    (
        any::<u32>(),
        any::<u16>(),
        // Destinations biased towards the fixture's interesting space.
        prop_oneof![
            (0u32..0x200u32).prop_map(|v| 0x0a010000 + v), // 10.1.x
            (0u32..0x200u32).prop_map(|v| 0x0a020000 + v), // 10.2.x
            (0u32..0x200u32).prop_map(|v| 0x0a040000 + v), // 10.4.x (null routed)
            any::<u32>(),
        ],
        any::<u16>(),
        prop::sample::select(vec![1u8, 6, 17, 47]),
        0u8..64,
    )
        .prop_map(|(src, sport, dst, dport, proto, flags)| {
            let protocol = IpProtocol::from_number(proto);
            Flow {
                src_ip: Ip(src),
                dst_ip: Ip(dst),
                src_port: if protocol.has_ports() { sport } else { 0 },
                dst_port: if protocol.has_ports() { dport } else { 0 },
                protocol,
                icmp_type: if proto == 1 { 8 } else { 0 },
                icmp_code: 0,
                tcp_flags: if proto == 6 { TcpFlags(flags) } else { TcpFlags::EMPTY },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// For any flow entering at the edge's host port, every disposition
    /// the concrete engine reports must be a symbolic sink the BDD engine
    /// reaches with that flow, and vice versa.
    #[test]
    fn engines_agree_on_random_flows(flow in arb_flow()) {
        with_world(|w| {
            let tracer_dispositions: Vec<Disposition> = {
                let tracer = w.tracer();
                let t = tracer.trace(&StartLocation::ingress("edge", "hosts"), &flow);
                t.paths.iter().map(|p| p.disposition.clone()).collect()
            };
            let src = w
                .graph
                .node(&NodeKind::IfaceSrc("edge".into(), "hosts".into()))
                .expect("source node");
            let fset = w.vars.flow(&mut w.bdd, &flow);
            let reach = {
                let a = ReachAnalysis::new(&w.graph);
                a.forward(&mut w.bdd, &[(src, fset)])
            };
            // Direction A: every concrete disposition has a non-empty
            // symbolic counterpart.
            for d in &tracer_dispositions {
                let node = match d {
                    Disposition::Accepted { device } => w.graph.node(&NodeKind::Accept(device.clone())),
                    Disposition::DeliveredToSubnet { device, iface } => {
                        w.graph.node(&NodeKind::DeliveredToSubnet(device.clone(), iface.clone()))
                    }
                    Disposition::ExitsNetwork { device, iface } => {
                        w.graph.node(&NodeKind::ExitsNetwork(device.clone(), iface.clone()))
                    }
                    Disposition::NoRoute { device } => w
                        .graph
                        .node(&NodeKind::Drop(device.clone(), batnet::dataplane::DropKind::NoRoute)),
                    Disposition::NullRouted { device } => w
                        .graph
                        .node(&NodeKind::Drop(device.clone(), batnet::dataplane::DropKind::NullRouted)),
                    Disposition::DeniedIn { device, acl: _ } => w
                        .graph
                        .nodes_where(|k| matches!(k, NodeKind::Drop(dd, batnet::dataplane::DropKind::AclIn(_)) if dd == device))
                        .first()
                        .copied(),
                    other => panic!("fixture should not produce {other:?}"),
                };
                let node = node.unwrap_or_else(|| panic!("no node for {d:?}"));
                prop_assert_ne!(reach.at(node), NodeId::FALSE, "symbolic missed {:?} for {}", d, flow);
            }
            // Direction B: every success sink the symbolic engine reaches
            // with this singleton flow must appear concretely.
            for (ni, kind) in w.graph.nodes.iter().enumerate() {
                if reach.at(ni) == NodeId::FALSE || !kind.is_success_sink() {
                    continue;
                }
                let expected = match kind {
                    NodeKind::Accept(d) => Disposition::Accepted { device: d.clone() },
                    NodeKind::DeliveredToSubnet(d, i) => Disposition::DeliveredToSubnet {
                        device: d.clone(),
                        iface: i.clone(),
                    },
                    NodeKind::ExitsNetwork(d, i) => Disposition::ExitsNetwork {
                        device: d.clone(),
                        iface: i.clone(),
                    },
                    _ => unreachable!(),
                };
                prop_assert!(
                    tracer_dispositions.contains(&expected),
                    "concrete missed {:?} for {} (got {:?})",
                    expected,
                    flow,
                    tracer_dispositions
                );
            }
            Ok(())
        })?;
    }
}
