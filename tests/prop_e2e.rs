//! End-to-end property tests: on a fixed fixture network, for *random*
//! flows the two engines must agree — a randomized, continuous version of
//! the §4.3.2 differential protocol. Flows come from the workspace's
//! seeded PRNG (deterministic; failures name the case index).

use batnet::bdd::NodeId;
use batnet::dataplane::{NodeKind, ReachAnalysis};
use batnet::net::{Flow, Ip, IpProtocol, Rng, TcpFlags};
use batnet::traceroute::{Disposition, StartLocation};
use batnet::{Analysis, Snapshot};

fn fixture() -> Analysis {
    let snapshot = Snapshot::from_configs(vec![
        (
            "edge".into(),
            "hostname edge\n\
             interface hosts\n ip address 10.1.0.1/24\n ip access-group EDGE in\n\
             interface up\n ip address 172.16.0.1/31\n\
             ip route 0.0.0.0/0 172.16.0.0\n\
             ip access-list extended EDGE\n \
             10 deny ip 10.99.0.0 0.0.255.255 any\n \
             20 permit tcp any any eq 80\n \
             30 permit tcp any any eq 443\n \
             40 permit tcp any any established\n \
             50 permit udp any 10.2.0.0 0.0.255.255 eq 53\n \
             60 permit icmp any any\n \
             70 deny ip any any\n",
        ),
        (
            "core".into(),
            "hostname core\n\
             interface down\n ip address 172.16.0.0/31\n\
             interface servers\n ip address 10.2.0.1/24\n\
             interface null\n ip address 10.3.0.1/24\n\
             ip route 10.1.0.0/24 172.16.0.1\n\
             ip route 10.4.0.0/16 null0\n",
        ),
    ]
    .into_iter()
    .map(|(a, b)| (a, String::from(b)))
    .collect());
    snapshot.analyze()
}

fn gen_flow(rng: &mut Rng) -> Flow {
    const PROTOS: [u8; 4] = [1, 6, 17, 47];
    let src = rng.next_u32();
    // Destinations biased towards the fixture's interesting space.
    let dst = match rng.below(4) {
        0 => 0x0a010000 + rng.below(0x200) as u32, // 10.1.x
        1 => 0x0a020000 + rng.below(0x200) as u32, // 10.2.x
        2 => 0x0a040000 + rng.below(0x200) as u32, // 10.4.x (null routed)
        _ => rng.next_u32(),
    };
    let proto = PROTOS[rng.index(PROTOS.len())];
    let protocol = IpProtocol::from_number(proto);
    Flow {
        src_ip: Ip(src),
        dst_ip: Ip(dst),
        src_port: if protocol.has_ports() {
            rng.below(1 << 16) as u16
        } else {
            0
        },
        dst_port: if protocol.has_ports() {
            rng.below(1 << 16) as u16
        } else {
            0
        },
        protocol,
        icmp_type: if proto == 1 { 8 } else { 0 },
        icmp_code: 0,
        tcp_flags: if proto == 6 {
            TcpFlags(rng.below(64) as u8)
        } else {
            TcpFlags::EMPTY
        },
    }
}

/// For any flow entering at the edge's host port, every disposition
/// the concrete engine reports must be a symbolic sink the BDD engine
/// reaches with that flow, and vice versa.
#[test]
fn engines_agree_on_random_flows() {
    let mut w = fixture();
    for case in 0..96u64 {
        let mut rng = Rng::new(0xE2E_F10 ^ case);
        let flow = gen_flow(&mut rng);
        let tracer_dispositions: Vec<Disposition> = {
            let tracer = w.tracer();
            let t = tracer.trace(&StartLocation::ingress("edge", "hosts"), &flow);
            t.paths.iter().map(|p| p.disposition.clone()).collect()
        };
        let src = w
            .graph
            .node(&NodeKind::IfaceSrc("edge".into(), "hosts".into()))
            .expect("source node");
        let fset = w.vars.flow(&mut w.bdd, &flow);
        let reach = {
            let a = ReachAnalysis::new(&w.graph);
            a.forward(&mut w.bdd, &[(src, fset)])
        };
        // Direction A: every concrete disposition has a non-empty
        // symbolic counterpart.
        for d in &tracer_dispositions {
            let node = match d {
                Disposition::Accepted { device } => w.graph.node(&NodeKind::Accept(device.clone())),
                Disposition::DeliveredToSubnet { device, iface } => {
                    w.graph
                        .node(&NodeKind::DeliveredToSubnet(device.clone(), iface.clone()))
                }
                Disposition::ExitsNetwork { device, iface } => {
                    w.graph
                        .node(&NodeKind::ExitsNetwork(device.clone(), iface.clone()))
                }
                Disposition::NoRoute { device } => w.graph.node(&NodeKind::Drop(
                    device.clone(),
                    batnet::dataplane::DropKind::NoRoute,
                )),
                Disposition::NullRouted { device } => w.graph.node(&NodeKind::Drop(
                    device.clone(),
                    batnet::dataplane::DropKind::NullRouted,
                )),
                Disposition::DeniedIn { device, acl: _ } => w
                    .graph
                    .nodes_where(|k| matches!(k, NodeKind::Drop(dd, batnet::dataplane::DropKind::AclIn(_)) if dd == device))
                    .first()
                    .copied(),
                other => panic!("case {case}: fixture should not produce {other:?}"),
            };
            let node = node.unwrap_or_else(|| panic!("case {case}: no node for {d:?}"));
            assert_ne!(
                reach.at(node),
                NodeId::FALSE,
                "case {case}: symbolic missed {d:?} for {flow}"
            );
        }
        // Direction B: every success sink the symbolic engine reaches
        // with this singleton flow must appear concretely.
        for (ni, kind) in w.graph.nodes.iter().enumerate() {
            if reach.at(ni) == NodeId::FALSE || !kind.is_success_sink() {
                continue;
            }
            let expected = match kind {
                NodeKind::Accept(d) => Disposition::Accepted { device: d.clone() },
                NodeKind::DeliveredToSubnet(d, i) => Disposition::DeliveredToSubnet {
                    device: d.clone(),
                    iface: i.clone(),
                },
                NodeKind::ExitsNetwork(d, i) => Disposition::ExitsNetwork {
                    device: d.clone(),
                    iface: i.clone(),
                },
                _ => unreachable!(),
            };
            assert!(
                tracer_dispositions.contains(&expected),
                "case {case}: concrete missed {expected:?} for {flow} (got {tracer_dispositions:?})"
            );
        }
    }
}
