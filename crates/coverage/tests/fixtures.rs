//! Fixture contract tests: the committed expected patches are what
//! `batnet-repair` emits, byte for byte, and the committed lint-bad
//! fixture carries a genuine never-touched coverage gap.

use batnet_coverage::repair::{repair_diff, repair_lint, RepairLimits};
use batnet_coverage::{analyze, render_json, validate_report, Status};
use std::path::{Path, PathBuf};

fn fixture(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../fixtures")
        .join(rel)
}

fn load_dir(dir: &Path) -> Vec<(String, String)> {
    let mut entries: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("fixture dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "cfg"))
        .map(|p| {
            (
                p.file_stem().and_then(|s| s.to_str()).expect("stem").to_string(),
                std::fs::read_to_string(&p).expect("read"),
            )
        })
        .collect();
    entries.sort();
    entries
}

#[test]
fn lint_repair_emits_the_committed_patch_byte_identically() {
    let configs = load_dir(&fixture("repair-bad/lint"));
    let out = repair_lint(&configs, "undefined-reference", None, &RepairLimits::default())
        .expect("planted finding exists");
    assert!(out.balanced(), "accounting: {}", out.summary());
    assert_eq!(out.accepted, 1, "{}", out.summary());
    let patch = out.patch.expect("patch accepted").unified();
    let expected = std::fs::read_to_string(fixture("repair-bad/lint/expected.patch"))
        .expect("committed expectation");
    assert_eq!(patch, expected, "patch must match the committed expectation bytewise");
}

#[test]
fn diff_repair_emits_the_committed_patch_byte_identically() {
    let before = load_dir(&fixture("repair-bad/diff/before"));
    let after = load_dir(&fixture("repair-bad/diff/after"));
    let out = repair_diff(&before, &after, &RepairLimits::default()).expect("repair runs");
    assert!(out.balanced(), "accounting: {}", out.summary());
    assert_eq!(out.accepted, 1, "{}", out.summary());
    let accepted = out.patch.expect("patch accepted");
    let expected = std::fs::read_to_string(fixture("repair-bad/diff/expected.patch"))
        .expect("committed expectation");
    assert_eq!(accepted.unified(), expected, "patch must match the committed expectation bytewise");
    // The patch reverts exactly the planted edit: applying it yields the
    // before text.
    let reverted = &accepted.files[0];
    let original_before = before
        .iter()
        .find(|(n, _)| *n == reverted.device)
        .map(|(_, t)| t.clone())
        .expect("device exists on both sides");
    assert_eq!(reverted.after, original_before);
}

#[test]
fn lint_bad_fixture_has_a_genuine_never_touched_gap() {
    let configs = load_dir(&fixture("lint-bad"));
    let devices: Vec<_> = configs
        .iter()
        .map(|(n, t)| {
            let (mut d, _) = batnet_config::parse_device(n, t);
            d.stamp_source_file(n);
            d
        })
        .collect();
    let report = analyze(&devices);
    let gaps: Vec<_> = report.never_touched().collect();
    assert!(
        gaps.iter().any(|g| g.path.starts_with("acl STALE-FILTER/")),
        "expected the unattached STALE-FILTER ACL to be never-touched: {gaps:?}"
    );
    // The gap carries a real source span from the parser.
    let gap = gaps.first().expect("at least one gap");
    assert_eq!(gap.status, Status::NeverTouched);
    assert!(gap.line > 0 && gap.end_line > gap.line, "block span: {gap:?}");
    // And the JSON report over the fixture is valid and deterministic.
    let json = render_json("lint-bad", &report);
    validate_report(&json).expect("valid report");
    assert_eq!(json, render_json("lint-bad", &analyze(&devices)));
}
