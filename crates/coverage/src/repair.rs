//! Minimal automatic repair: make the finding vanish, change nothing
//! else.
//!
//! Given a target — a lint finding, or a non-empty pre-deployment diff —
//! the repairer enumerates small candidate patches in ascending size
//! (single-line deletes, single-line parameter tweaks borrowed from
//! peer devices, then multi-line inserts/reverts: the inverse moves of
//! `topogen::perturb`), validates each candidate with the full
//! three-layer differential analysis, and accepts the first candidate
//! where
//!
//! * the target is gone (the finding's fingerprint no longer appears,
//!   or the diff is empty at every layer), and
//! * nothing else changed: route and reachability layers are identical,
//!   and the multiset of *other* findings — compared by
//!   `(check, device, severity, message)`, deliberately not by location,
//!   so deleting a line cannot spuriously "change" findings below it —
//!   is exactly the baseline's.
//!
//! Because candidates are tried smallest-first, the first accepted
//! patch is the minimal one in the enumeration order. Every candidate
//! is accounted for: `tried == accepted + rejected_regression +
//! rejected_side_effect` is a chaos-checked invariant.

use batnet::{DiffOptions, Snapshot};
use batnet_lint::Finding;
use std::fmt::Write as _;

/// Tuning knobs for a repair run.
#[derive(Clone, Debug)]
pub struct RepairLimits {
    /// Cap on validated candidates (each validation runs two route
    /// simulations plus a symbolic reachability diff).
    pub max_candidates: usize,
    /// Options for the validation diffs.
    pub diff: DiffOptions,
}

impl Default for RepairLimits {
    fn default() -> RepairLimits {
        RepairLimits {
            max_candidates: 64,
            diff: DiffOptions::default(),
        }
    }
}

/// One file's worth of patch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FilePatch {
    /// Device (file stem) the patch applies to.
    pub device: String,
    /// Original text.
    pub before: String,
    /// Patched text.
    pub after: String,
}

/// An accepted repair, possibly spanning several files.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Patch {
    /// Per-file changes, in device order.
    pub files: Vec<FilePatch>,
}

impl Patch {
    /// Renders the patch as a unified diff with one line of context —
    /// the format the committed repair fixtures are compared against
    /// bytewise.
    pub fn unified(&self) -> String {
        let mut out = String::new();
        for f in &self.files {
            let _ = writeln!(out, "--- a/{}.cfg", f.device);
            let _ = writeln!(out, "+++ b/{}.cfg", f.device);
            out.push_str(&unified_hunks(&f.before, &f.after, 1));
        }
        out
    }
}

/// Outcome of one repair attempt, with full candidate accounting.
#[derive(Clone, Debug, Default)]
pub struct RepairOutcome {
    /// What the repairer was aimed at (for the report line).
    pub target: String,
    /// Candidates validated.
    pub tried: usize,
    /// Candidates accepted (0 or 1: the search stops at the first).
    pub accepted: usize,
    /// Candidates that left the target in place.
    pub rejected_regression: usize,
    /// Candidates that fixed the target but changed something else.
    pub rejected_side_effect: usize,
    /// The minimal accepted patch, if any.
    pub patch: Option<Patch>,
}

impl RepairOutcome {
    /// The accounting invariant the chaos harness asserts.
    pub fn balanced(&self) -> bool {
        self.tried == self.accepted + self.rejected_regression + self.rejected_side_effect
    }

    /// One-line summary for logs and stderr.
    pub fn summary(&self) -> String {
        format!(
            "tried {} candidate(s): {} accepted, {} rejected (target persists), {} rejected (side effects)",
            self.tried, self.accepted, self.rejected_regression, self.rejected_side_effect
        )
    }
}

/// A candidate patch: one device's text rewritten.
struct Candidate {
    device: String,
    after: String,
}

/// The location-insensitive identity of a finding, for "nothing else
/// changed" comparison. Bridged parse findings embed their line number
/// in `path`, so fingerprints shift when a patch deletes a line above
/// them; `(check, device, severity, message)` does not.
fn finding_key(f: &Finding) -> (String, String, String, String) {
    (
        f.check.to_string(),
        f.device.clone(),
        f.severity.to_string(),
        f.message.clone(),
    )
}

fn other_findings(findings: &[Finding], target_fp: &str) -> Vec<(String, String, String, String)> {
    let mut keys: Vec<_> = findings
        .iter()
        .filter(|f| f.fingerprint() != target_fp)
        .map(finding_key)
        .collect();
    keys.sort();
    keys
}

fn patched_configs(
    configs: &[(String, String)],
    device: &str,
    after: &str,
) -> Vec<(String, String)> {
    configs
        .iter()
        .map(|(n, t)| {
            if n == device {
                (n.clone(), after.to_string())
            } else {
                (n.clone(), t.clone())
            }
        })
        .collect()
}

/// Repairs the first lint finding matching `check` (and `device`, when
/// given). Errors when no finding matches; returns an outcome with no
/// patch when every candidate was rejected.
pub fn repair_lint(
    configs: &[(String, String)],
    check: &str,
    device: Option<&str>,
    limits: &RepairLimits,
) -> Result<RepairOutcome, String> {
    let base = Snapshot::from_configs(configs.to_vec());
    let findings = base.lint();
    let target = findings
        .iter()
        .find(|f| f.check == check && device.is_none_or(|d| f.device == d))
        .ok_or_else(|| match device {
            Some(d) => format!("no '{check}' finding on device '{d}'"),
            None => format!("no '{check}' finding in the snapshot"),
        })?
        .clone();
    let target_fp = target.fingerprint();
    let baseline_others = other_findings(&findings, &target_fp);
    let text = configs
        .iter()
        .find(|(n, _)| *n == target.device)
        .map(|(_, t)| t.clone())
        .ok_or_else(|| format!("finding names device '{}' with no config", target.device))?;

    let mut outcome = RepairOutcome {
        target: format!("{} {} {}", target.check, target.device, target.path),
        ..RepairOutcome::default()
    };
    for cand in lint_candidates(&target, &text, configs) {
        if outcome.tried >= limits.max_candidates {
            break;
        }
        outcome.tried += 1;
        let patched = patched_configs(configs, &cand.device, &cand.after);
        let snap = Snapshot::from_configs(patched);
        let after_findings = snap.lint();
        if after_findings.iter().any(|f| f.fingerprint() == target_fp) {
            outcome.rejected_regression += 1;
            continue;
        }
        let d = base.diff_with(&snap, &limits.diff);
        let behavior_same = d.routes.is_empty() && d.reach.is_empty();
        if !behavior_same || other_findings(&after_findings, &target_fp) != baseline_others {
            outcome.rejected_side_effect += 1;
            continue;
        }
        outcome.accepted += 1;
        outcome.patch = Some(Patch {
            files: vec![FilePatch {
                device: cand.device,
                before: text,
                after: cand.after,
            }],
        });
        break;
    }
    Ok(outcome)
}

/// Candidate enumeration for lint repair, smallest patch first:
/// 1. delete one line (nearest the finding's source line first);
/// 2. tweak one parameter to a peer device's value (consensus tweaks);
/// 3. insert a definition for an undefined reference.
fn lint_candidates(
    target: &Finding,
    text: &str,
    configs: &[(String, String)],
) -> Vec<Candidate> {
    let lines: Vec<&str> = text.lines().collect();
    let mut editable: Vec<usize> = (0..lines.len())
        .filter(|&i| {
            let t = lines[i].trim();
            !t.is_empty() && !t.starts_with('!') && !t.starts_with('#')
        })
        .collect();
    // Nearest the finding first (stable on ties); natural order when the
    // finding has no location.
    if target.line > 0 {
        let fl = target.line as i64;
        editable.sort_by_key(|&i| ((i as i64 + 1 - fl).abs(), i));
    }

    let mut out = Vec::new();
    let rebuild = |keep: &dyn Fn(usize) -> Option<String>| -> String {
        let mut s = String::new();
        for i in 0..lines.len() {
            if let Some(l) = keep(i) {
                s.push_str(&l);
                s.push('\n');
            }
        }
        s
    };
    // Class 1: single-line deletes.
    for &del in &editable {
        out.push(Candidate {
            device: target.device.clone(),
            after: rebuild(&|i| (i != del).then(|| lines[i].to_string())),
        });
    }
    // Class 2: consensus parameter tweaks — replace one line with a peer
    // device's variant of the same statement (same first token, same
    // word count, different content). The inverse of perturb's
    // RouteMapEdit / parameter drifts.
    for &idx in &editable {
        let victim = lines[idx];
        let vt: Vec<&str> = victim.split_whitespace().collect();
        let Some(&head) = vt.first() else { continue };
        let indent: String = victim.chars().take_while(|c| c.is_whitespace()).collect();
        let mut variants: Vec<String> = Vec::new();
        for (peer, peer_text) in configs {
            if *peer == target.device {
                continue;
            }
            for pl in peer_text.lines() {
                let pt: Vec<&str> = pl.split_whitespace().collect();
                if pt.first() == Some(&head) && pt.len() == vt.len() && pt != vt {
                    let v = format!("{indent}{}", pt.join(" "));
                    if !variants.contains(&v) {
                        variants.push(v);
                    }
                }
            }
        }
        for v in variants {
            out.push(Candidate {
                device: target.device.clone(),
                after: rebuild(&|i| {
                    Some(if i == idx { v.clone() } else { lines[i].to_string() })
                }),
            });
        }
    }
    // Class 3: define the missing structure (undefined-reference only).
    // The path tail is "<kind> <name>" by the lint path contract.
    if target.check == "undefined-reference" {
        if let Some(tail) = target.path.rsplit('/').next() {
            let stanza = match tail.split_once(' ') {
                Some(("acl", name)) => {
                    Some(format!("ip access-list extended {name}\n 10 permit ip any any\n"))
                }
                Some(("route-map", name)) => Some(format!("route-map {name} permit 10\n")),
                _ => None,
            };
            if let Some(stanza) = stanza {
                out.push(Candidate {
                    device: target.device.clone(),
                    after: format!("{text}{stanza}"),
                });
            }
        }
    }
    out
}

/// Repairs a failing pre-deployment diff: finds the minimal edit to the
/// *after* snapshot that makes `diff(before, after)` empty at every
/// layer. Candidates revert individual textual edits, then whole files.
pub fn repair_diff(
    before: &[(String, String)],
    after: &[(String, String)],
    limits: &RepairLimits,
) -> Result<RepairOutcome, String> {
    let snap_before = Snapshot::from_configs(before.to_vec());
    let snap_after = Snapshot::from_configs(after.to_vec());
    let d0 = snap_before.diff_with(&snap_after, &limits.diff);
    let mut outcome = RepairOutcome {
        target: format!("diff with {} change(s)", d0.change_count()),
        ..RepairOutcome::default()
    };
    if d0.is_empty() {
        outcome.target = "empty diff (nothing to repair)".to_string();
        return Ok(outcome);
    }
    let baseline_changes = d0.change_count();
    for cand in diff_candidates(before, after) {
        if outcome.tried >= limits.max_candidates {
            break;
        }
        outcome.tried += 1;
        let patched = patched_configs(after, &cand.device, &cand.after);
        let snap = Snapshot::from_configs(patched);
        let d = snap_before.diff_with(&snap, &limits.diff);
        if d.is_empty() {
            outcome.accepted += 1;
            let orig = after
                .iter()
                .find(|(n, _)| *n == cand.device)
                .map(|(_, t)| t.clone())
                .unwrap_or_default();
            outcome.patch = Some(Patch {
                files: vec![FilePatch {
                    device: cand.device,
                    before: orig,
                    after: cand.after,
                }],
            });
            break;
        } else if d.change_count() > baseline_changes {
            // The candidate introduced differences the original diff did
            // not have: it broke something new.
            outcome.rejected_side_effect += 1;
        } else {
            outcome.rejected_regression += 1;
        }
    }
    Ok(outcome)
}

/// Candidates for diff repair: for every device whose text differs,
/// revert each individual edit-script operation (smallest first), then
/// the whole file.
fn diff_candidates(before: &[(String, String)], after: &[(String, String)]) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (name, after_text) in after {
        let Some((_, before_text)) = before.iter().find(|(n, _)| n == name) else {
            continue;
        };
        if before_text == after_text {
            continue;
        }
        let a: Vec<&str> = after_text.lines().collect();
        let b: Vec<&str> = before_text.lines().collect();
        let ops = edit_ops(&a, &b);
        let mut sized: Vec<(usize, usize)> = ops.iter().enumerate().map(|(i, op)| (op.size(), i)).collect();
        sized.sort();
        for (_, op_idx) in sized {
            // Apply only op `op_idx` of the after→before script.
            let mut text = String::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    EditOp::Keep(ai) => {
                        text.push_str(a[*ai]);
                        text.push('\n');
                    }
                    EditOp::Delete(ai) => {
                        if i != op_idx {
                            text.push_str(a[*ai]);
                            text.push('\n');
                        }
                    }
                    EditOp::Insert(bi) => {
                        if i == op_idx {
                            text.push_str(b[*bi]);
                            text.push('\n');
                        }
                    }
                }
            }
            if text != *after_text {
                out.push(Candidate {
                    device: name.clone(),
                    after: text,
                });
            }
        }
        // Last resort: full revert of this device.
        out.push(Candidate {
            device: name.clone(),
            after: before_text.clone(),
        });
    }
    out
}

/// One operation of the line-level edit script turning `a` into `b`.
enum EditOp {
    /// Line `a[i]` is common to both sides.
    Keep(usize),
    /// Line `a[i]` must be removed.
    Delete(usize),
    /// Line `b[i]` must be inserted.
    Insert(usize),
}

impl EditOp {
    fn size(&self) -> usize {
        match self {
            EditOp::Keep(_) => 0,
            EditOp::Delete(_) | EditOp::Insert(_) => 1,
        }
    }
}

/// Classic LCS edit script (quadratic table; config files are small).
fn edit_ops(a: &[&str], b: &[&str]) -> Vec<EditOp> {
    let (n, m) = (a.len(), b.len());
    let mut lcs = vec![0u32; (n + 1) * (m + 1)];
    let at = |i: usize, j: usize| i * (m + 1) + j;
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[at(i, j)] = if a[i] == b[j] {
                lcs[at(i + 1, j + 1)] + 1
            } else {
                lcs[at(i + 1, j)].max(lcs[at(i, j + 1)])
            };
        }
    }
    let mut ops = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            ops.push(EditOp::Keep(i));
            i += 1;
            j += 1;
        } else if lcs[at(i + 1, j)] >= lcs[at(i, j + 1)] {
            ops.push(EditOp::Delete(i));
            i += 1;
        } else {
            ops.push(EditOp::Insert(j));
            j += 1;
        }
    }
    while i < n {
        ops.push(EditOp::Delete(i));
        i += 1;
    }
    while j < m {
        ops.push(EditOp::Insert(j));
        j += 1;
    }
    ops
}

/// Renders the hunks of a unified diff between two texts with the given
/// number of context lines.
fn unified_hunks(before: &str, after: &str, context: usize) -> String {
    let a: Vec<&str> = before.lines().collect();
    let b: Vec<&str> = after.lines().collect();
    let ops = edit_ops(&a, &b);

    // Group ops into hunks: runs of changes with at most 2*context
    // common lines between them, padded by `context` lines each side.
    let change_idx: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter(|(_, op)| op.size() > 0)
        .map(|(i, _)| i)
        .collect();
    let mut out = String::new();
    if change_idx.is_empty() {
        return out;
    }
    let mut groups: Vec<(usize, usize)> = Vec::new();
    for &c in &change_idx {
        match groups.last_mut() {
            Some((_, end)) if c <= *end + 2 * context => *end = c,
            _ => groups.push((c, c)),
        }
    }
    // Positions of each op in the a/b line spaces.
    let mut a_pos = Vec::with_capacity(ops.len());
    let mut b_pos = Vec::with_capacity(ops.len());
    let (mut ai, mut bi) = (0usize, 0usize);
    for op in &ops {
        a_pos.push(ai);
        b_pos.push(bi);
        match op {
            EditOp::Keep(_) => {
                ai += 1;
                bi += 1;
            }
            EditOp::Delete(_) => ai += 1,
            EditOp::Insert(_) => bi += 1,
        }
    }
    for (first, last) in groups {
        let start = first.saturating_sub(context);
        let end = (last + context).min(ops.len().saturating_sub(1));
        let (mut a_len, mut b_len) = (0usize, 0usize);
        for op in &ops[start..=end] {
            match op {
                EditOp::Keep(_) => {
                    a_len += 1;
                    b_len += 1;
                }
                EditOp::Delete(_) => a_len += 1,
                EditOp::Insert(_) => b_len += 1,
            }
        }
        let a_start = if a_len == 0 { a_pos[start] } else { a_pos[start] + 1 };
        let b_start = if b_len == 0 { b_pos[start] } else { b_pos[start] + 1 };
        let _ = writeln!(out, "@@ -{a_start},{a_len} +{b_start},{b_len} @@");
        for op in &ops[start..=end] {
            match op {
                EditOp::Keep(i) => {
                    let _ = writeln!(out, " {}", a[*i]);
                }
                EditOp::Delete(i) => {
                    let _ = writeln!(out, "-{}", a[*i]);
                }
                EditOp::Insert(j) => {
                    let _ = writeln!(out, "+{}", b[*j]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_diff_single_deletion() {
        let before = "a\nb\nc\nd\n";
        let after = "a\nb\nd\n";
        let hunks = unified_hunks(before, after, 1);
        assert_eq!(hunks, "@@ -2,3 +2,2 @@\n b\n-c\n d\n");
    }

    #[test]
    fn unified_diff_replacement_and_insert() {
        let before = "one\ntwo\nthree\n";
        let after = "one\nTWO\nthree\nfour\n";
        let hunks = unified_hunks(before, after, 1);
        assert!(hunks.contains("-two\n"), "{hunks}");
        assert!(hunks.contains("+TWO\n"), "{hunks}");
        assert!(hunks.contains("+four\n"), "{hunks}");
        // Patch applies: reconstruct by replay.
        let patch = Patch {
            files: vec![FilePatch {
                device: "r1".into(),
                before: before.into(),
                after: after.into(),
            }],
        };
        let text = patch.unified();
        assert!(text.starts_with("--- a/r1.cfg\n+++ b/r1.cfg\n"));
    }

    #[test]
    fn identical_texts_produce_no_hunks() {
        assert_eq!(unified_hunks("a\nb\n", "a\nb\n", 1), "");
    }

    #[test]
    fn repair_deletes_planted_undefined_reference() {
        let configs = vec![(
            "r1".to_string(),
            "hostname r1\ninterface e0\n ip address 10.0.0.1/24\n ip access-group MISSING in\n no shutdown\n"
                .to_string(),
        )];
        let out = repair_lint(&configs, "undefined-reference", None, &RepairLimits::default())
            .expect("target finding exists");
        assert!(out.balanced(), "accounting: {}", out.summary());
        assert_eq!(out.accepted, 1, "{}", out.summary());
        let patch = out.patch.expect("patch accepted");
        let text = patch.unified();
        assert!(text.contains("- ip access-group MISSING in\n"), "{text}");
        // Minimality: a one-line deletion, nothing else.
        let dels = text.lines().filter(|l| l.starts_with('-') && !l.starts_with("---")).count();
        let adds = text.lines().filter(|l| l.starts_with('+') && !l.starts_with("+++")).count();
        assert_eq!((dels, adds), (1, 0), "{text}");
    }

    #[test]
    fn repair_diff_reverts_the_planted_edit() {
        let before = vec![(
            "r1".to_string(),
            "hostname r1\ninterface e0\n ip address 10.0.0.1/24\nip access-list extended A\n 10 permit ip any any\n"
                .to_string(),
        )];
        let mut after = before.clone();
        after[0].1 = after[0]
            .1
            .replace(" 10 permit ip any any\n", " 5 deny tcp any any eq 179\n 10 permit ip any any\n");
        let out = repair_diff(&before, &after, &RepairLimits::default()).expect("diff repair runs");
        assert!(out.balanced(), "accounting: {}", out.summary());
        assert_eq!(out.accepted, 1, "{}", out.summary());
        let patch = out.patch.expect("patch");
        assert!(patch.unified().contains("- 5 deny tcp any any eq 179\n"));
        // No-difference inputs are a no-op, not an error.
        let clean = repair_diff(&before, &before, &RepairLimits::default()).expect("runs");
        assert_eq!(clean.tried, 0);
        assert!(clean.patch.is_none());
    }

    #[test]
    fn missing_target_is_an_error() {
        let configs = vec![("r1".to_string(), "hostname r1\n".to_string())];
        let err = repair_lint(&configs, "undefined-reference", None, &RepairLimits::default());
        assert!(err.is_err());
    }
}
