//! `batnet-cov` — config coverage analysis from the command line.
//!
//! ```text
//! batnet-cov (--net ID | --dir PATH) [--format text|json|sarif]
//!            [--out FILE] [--deny gap|shadow]
//! batnet-cov --validate report.json
//! ```
//!
//! Exit codes: 0 clean (or nothing at/above the `--deny` class),
//! 1 denied coverage gaps present, 2 usage or I/O error. `--deny gap`
//! fails on never-touched items; `--deny shadow` also fails on
//! shadowed ones. The JSON report is deterministic — byte-identical
//! across runs and device orderings — and `--validate` checks one
//! against the in-tree schema.

use batnet_config::parse_device;
use batnet_config::vi::Device;
use batnet_coverage::{analyze, render_json, render_text, validate_report, CoverageReport};
use std::process::ExitCode;

struct Args {
    net: Option<String>,
    dir: Option<String>,
    format: String,
    deny: Option<String>,
    out: Option<String>,
    validate: Option<String>,
}

const USAGE: &str = "usage: batnet-cov (--net ID | --dir PATH) [--format text|json|sarif] \
[--deny gap|shadow] [--out FILE]
       batnet-cov --validate FILE.json";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        net: None,
        dir: None,
        format: "text".into(),
        deny: None,
        out: None,
        validate: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--net" => args.net = Some(value("--net")?),
            "--dir" => args.dir = Some(value("--dir")?),
            "--format" => args.format = value("--format")?,
            "--deny" => args.deny = Some(value("--deny")?),
            "--out" => args.out = Some(value("--out")?),
            "--validate" => args.validate = Some(value("--validate")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if !matches!(args.format.as_str(), "text" | "json" | "sarif") {
        return Err(format!("--format must be text|json|sarif, got '{}'", args.format));
    }
    if let Some(deny) = &args.deny {
        if !matches!(deny.as_str(), "gap" | "shadow") {
            return Err(format!("--deny must be gap|shadow, got '{deny}'"));
        }
    }
    if args.validate.is_none() && args.net.is_none() && args.dir.is_none() {
        return Err(USAGE.to_string());
    }
    Ok(args)
}

/// Loads the configs to analyze: a suite network by id, or every
/// regular file in a directory (sorted; the file stem is the device
/// name) — the same contract as `batnet-lint`.
fn load_configs(args: &Args) -> Result<(String, Vec<(String, String)>), String> {
    if let Some(id) = &args.net {
        let entry = batnet_topogen::suite::suite()
            .into_iter()
            .find(|e| e.id.eq_ignore_ascii_case(id))
            .ok_or_else(|| {
                let ids: Vec<&str> = batnet_topogen::suite::suite().iter().map(|e| e.id).collect();
                format!("unknown network '{id}' (known: {})", ids.join(", "))
            })?;
        let net = (entry.build)();
        Ok((net.name, net.configs))
    } else if let Some(dir) = &args.dir {
        let mut entries: Vec<(String, String)> = Vec::new();
        let rd = std::fs::read_dir(dir).map_err(|e| format!("--dir {dir}: {e}"))?;
        for entry in rd {
            let entry = entry.map_err(|e| format!("--dir {dir}: {e}"))?;
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("unnamed")
                .to_string();
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            entries.push((name, text));
        }
        if entries.is_empty() {
            return Err(format!("--dir {dir}: no config files"));
        }
        entries.sort();
        Ok((dir.clone(), entries))
    } else {
        Err(USAGE.to_string())
    }
}

fn write_output(out: Option<&str>, text: &str) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("{path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn denied(report: &CoverageReport, deny: Option<&str>) -> usize {
    match deny {
        Some("gap") => report.never_touched().count(),
        Some("shadow") => report.gaps().count(),
        _ => 0,
    }
}

fn run(args: &Args) -> Result<ExitCode, String> {
    if let Some(path) = &args.validate {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        validate_report(&text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("{path}: valid batnet-cov/v1 report");
        return Ok(ExitCode::SUCCESS);
    }
    let (network, configs) = load_configs(args)?;
    let devices: Vec<Device> = configs
        .iter()
        .map(|(name, text)| {
            let (mut d, _) = parse_device(name, text);
            d.stamp_source_file(name);
            d
        })
        .collect();
    let report = analyze(&devices);
    let rendered = match args.format.as_str() {
        "json" => render_json(&network, &report),
        "sarif" => batnet_lint::output::render_sarif(&batnet_lint::unexercised_config(&devices)),
        _ => render_text(&network, &report),
    };
    write_output(args.out.as_deref(), &rendered)?;
    let blocked = denied(&report, args.deny.as_deref());
    if blocked > 0 {
        eprintln!(
            "batnet-cov: {blocked} coverage gap(s) at or above the --deny {} threshold",
            args.deny.as_deref().unwrap_or("gap")
        );
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("batnet-cov: {msg}");
            ExitCode::from(2)
        }
    }
}
