//! `batnet-repair` — minimal automatic repair from the command line.
//!
//! ```text
//! batnet-repair --dir PATH --check ID [--device NAME] [--out FILE]
//! batnet-repair --before PATH --after PATH [--out FILE]
//! ```
//!
//! Lint mode targets the first finding of `--check` (optionally on
//! `--device`) and searches for the smallest patch that makes it vanish
//! while changing nothing else — no route or reachability deltas, no
//! other finding added or removed. Diff mode targets a failing
//! `diff(before, after)` and finds the smallest edit to *after* that
//! makes the diff empty at every layer.
//!
//! The accepted patch is written as a unified diff (one context line)
//! to `--out` or stdout; the candidate accounting goes to stderr.
//! Exit codes: 0 patch emitted (or nothing to repair), 1 no candidate
//! passed validation, 2 usage or I/O error.

use batnet_coverage::repair::{repair_diff, repair_lint, RepairLimits};
use std::process::ExitCode;

struct Args {
    dir: Option<String>,
    check: Option<String>,
    device: Option<String>,
    before: Option<String>,
    after: Option<String>,
    out: Option<String>,
    max_candidates: Option<usize>,
}

const USAGE: &str = "usage: batnet-repair --dir PATH --check ID [--device NAME] [--out FILE] \
[--max-candidates N]
       batnet-repair --before PATH --after PATH [--out FILE] [--max-candidates N]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        dir: None,
        check: None,
        device: None,
        before: None,
        after: None,
        out: None,
        max_candidates: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--dir" => args.dir = Some(value("--dir")?),
            "--check" => args.check = Some(value("--check")?),
            "--device" => args.device = Some(value("--device")?),
            "--before" => args.before = Some(value("--before")?),
            "--after" => args.after = Some(value("--after")?),
            "--out" => args.out = Some(value("--out")?),
            "--max-candidates" => {
                let v = value("--max-candidates")?;
                args.max_candidates =
                    Some(v.parse().map_err(|_| format!("--max-candidates: bad value '{v}'"))?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    let lint_mode = args.dir.is_some();
    let diff_mode = args.before.is_some() || args.after.is_some();
    if lint_mode == diff_mode {
        return Err(USAGE.to_string());
    }
    if lint_mode && args.check.is_none() {
        return Err(format!("--dir needs --check\n{USAGE}"));
    }
    if diff_mode && (args.before.is_none() || args.after.is_none()) {
        return Err(format!("--before and --after go together\n{USAGE}"));
    }
    Ok(args)
}

/// Every regular file in `dir`, sorted; the file stem is the device
/// name (the `batnet-lint` loading contract).
fn load_dir(dir: &str) -> Result<Vec<(String, String)>, String> {
    let mut entries: Vec<(String, String)> = Vec::new();
    let rd = std::fs::read_dir(dir).map_err(|e| format!("{dir}: {e}"))?;
    for entry in rd {
        let entry = entry.map_err(|e| format!("{dir}: {e}"))?;
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("unnamed")
            .to_string();
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        entries.push((name, text));
    }
    if entries.is_empty() {
        return Err(format!("{dir}: no config files"));
    }
    entries.sort();
    Ok(entries)
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let mut limits = RepairLimits::default();
    if let Some(n) = args.max_candidates {
        limits.max_candidates = n;
    }
    let outcome = if let Some(dir) = &args.dir {
        let configs = load_dir(dir)?;
        let check = args.check.as_deref().unwrap_or_default();
        repair_lint(&configs, check, args.device.as_deref(), &limits)?
    } else {
        let before = load_dir(args.before.as_deref().unwrap_or_default())?;
        let after = load_dir(args.after.as_deref().unwrap_or_default())?;
        repair_diff(&before, &after, &limits)?
    };
    eprintln!("batnet-repair: target: {}", outcome.target);
    eprintln!("batnet-repair: {}", outcome.summary());
    match &outcome.patch {
        Some(patch) => {
            let text = patch.unified();
            match args.out.as_deref() {
                Some(path) => std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?,
                None => print!("{text}"),
            }
            Ok(ExitCode::SUCCESS)
        }
        None if outcome.tried == 0 => {
            eprintln!("batnet-repair: nothing to repair");
            Ok(ExitCode::SUCCESS)
        }
        None => {
            eprintln!("batnet-repair: no candidate patch passed validation");
            Ok(ExitCode::from(1))
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("batnet-repair: {msg}");
            ExitCode::from(2)
        }
    }
}
