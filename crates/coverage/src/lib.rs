//! # batnet-coverage — which config does the analysis actually exercise?
//!
//! Batfish's central promise is *proactive* validation: find the bug
//! before deployment. That promise is only as good as the query suite —
//! an ACL line no reachability start, traceroute, or lint BDD pass can
//! ever touch is config the analysis says nothing about, exactly like
//! an untested branch in a code-coverage report. This crate runs the
//! standard query suite symbolically and classifies every ACL line,
//! route-map clause, and BGP-neighbor stanza as:
//!
//! * **exercised** — some packet or route evaluates it (its BDD cube is
//!   non-empty and the structure is reachable from a query entry point);
//! * **shadowed** — the structure is evaluated, but earlier lines or
//!   clauses carve away its entire match space (the per-cube `line_hits`
//!   attribution from the BDD ACL compiler, and the route-map
//!   dead-clause analysis);
//! * **never-touched** — no query can reach the structure at all: an ACL
//!   attached nowhere (or only to inactive interfaces), a route map no
//!   BGP neighbor applies, a neighbor whose peer address resolves to no
//!   device. This classification is shared with the lint engine's
//!   `unexercised-config` check ([`batnet_lint::never_touched_structures`])
//!   so reports and SARIF findings can never disagree.
//!
//! Reports are deterministic — the same devices always serialize to the
//! same bytes regardless of input order — because the CI gate compares
//! runs bytewise ([`render_json`], validated by [`validate_report`]).
//!
//! The sibling module [`repair`] closes the loop: given a lint finding
//! or a failing diff, it enumerates small candidate patches and emits
//! the minimal one that fixes the target without changing anything else.

#![deny(clippy::unwrap_used, clippy::panic)]

pub mod repair;

use batnet_bdd::NodeId;
use batnet_config::vi::{Device, SourceSpan};
use batnet_dataplane::{acl::compile_acl, PacketVars};
use batnet_lint::{dead_clauses, never_touched_structures, StructureRef};
use batnet_obs::json::{self, write_str, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Coverage classification of one config item.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// Some query evaluates this item with a non-empty match space.
    Exercised,
    /// Evaluated, but its entire match space is carved away earlier.
    Shadowed,
    /// No query of the suite can reach it at all.
    NeverTouched,
}

impl Status {
    /// Stable lowercase name (the JSON `status` value).
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Exercised => "exercised",
            Status::Shadowed => "shadowed",
            Status::NeverTouched => "never-touched",
        }
    }
}

/// One covered (or not) config item.
#[derive(Clone, Debug)]
pub struct Item {
    /// Owning device.
    pub device: String,
    /// Item path, matching the lint path vocabulary: `acl A/line 10`,
    /// `route-map RM/clause 20`, `neighbor 10.0.0.1`.
    pub path: String,
    /// Classification.
    pub status: Status,
    /// Why, for shadowed and never-touched items ("" when exercised).
    pub reason: String,
    /// Source file ("" when unknown).
    pub file: String,
    /// 1-based first line of the item's structure (0 when unknown).
    pub line: u32,
    /// 1-based last line of the structure's block.
    pub end_line: u32,
}

impl Item {
    fn new(device: &str, path: String, status: Status, reason: &str, src: &SourceSpan) -> Item {
        Item {
            device: device.to_string(),
            path,
            status,
            reason: reason.to_string(),
            file: src.file.clone(),
            line: src.line,
            end_line: src.end(),
        }
    }
}

/// Per-device (or total, with `device == ""`) item counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Summary {
    /// Device name, or "" for the network total.
    pub device: String,
    /// Total items.
    pub items: usize,
    /// Exercised items.
    pub exercised: usize,
    /// Shadowed items.
    pub shadowed: usize,
    /// Never-touched items.
    pub never_touched: usize,
}

impl Summary {
    /// Exercised fraction in permille (integer, so reports are
    /// byte-identical with no float formatting concerns). A device with
    /// no coverable items is vacuously fully covered.
    pub fn coverage_permille(&self) -> u32 {
        if self.items == 0 {
            1000
        } else {
            (self.exercised * 1000 / self.items) as u32
        }
    }

    fn absorb(&mut self, item: &Item) {
        self.items += 1;
        match item.status {
            Status::Exercised => self.exercised += 1,
            Status::Shadowed => self.shadowed += 1,
            Status::NeverTouched => self.never_touched += 1,
        }
    }
}

/// The full coverage report: one entry per coverable item.
#[derive(Clone, Debug, Default)]
pub struct CoverageReport {
    /// All items, sorted by (device, path).
    pub items: Vec<Item>,
}

impl CoverageReport {
    /// Per-device summaries, sorted by device name.
    pub fn device_summaries(&self) -> Vec<Summary> {
        let mut by_dev: BTreeMap<&str, Summary> = BTreeMap::new();
        for item in &self.items {
            let s = by_dev.entry(&item.device).or_default();
            s.device = item.device.clone();
            s.absorb(item);
        }
        by_dev.into_values().collect()
    }

    /// The network-wide total (`device == ""`).
    pub fn totals(&self) -> Summary {
        let mut total = Summary::default();
        for item in &self.items {
            total.absorb(item);
        }
        total
    }

    /// The coverage gaps: every shadowed or never-touched item.
    pub fn gaps(&self) -> impl Iterator<Item = &Item> {
        self.items.iter().filter(|i| i.status != Status::Exercised)
    }

    /// Never-touched items only (the `--deny gap` trigger).
    pub fn never_touched(&self) -> impl Iterator<Item = &Item> {
        self.items
            .iter()
            .filter(|i| i.status == Status::NeverTouched)
    }
}

const SHADOWED_ACL_LINE: &str = "no packet reaches this line; earlier lines cover its match space";
const SHADOWED_CLAUSE: &str = "no route reaches this clause; earlier clauses cover its match space";
const SHADOWED_NEIGHBOR: &str =
    "peer address resolves, but the peer configures no compatible return session";

/// Runs the coverage analysis over a snapshot's devices.
///
/// Deterministic by construction: devices are processed in name order
/// (so the report is independent of input order), structures iterate in
/// `BTreeMap` order, and the never-touched classification comes from
/// the shared lint helper.
pub fn analyze(devices: &[Device]) -> CoverageReport {
    let mut order: Vec<&Device> = devices.iter().collect();
    order.sort_by(|a, b| a.name.cmp(&b.name));
    let never: BTreeMap<(String, StructureRef), String> = never_touched_structures(devices)
        .into_iter()
        .map(|nt| ((nt.device, nt.what), nt.reason))
        .collect();

    let mut items = Vec::new();
    for d in order {
        let (mut bdd, vars) = PacketVars::new(0);
        for (name, acl) in &d.acls {
            let key = (d.name.clone(), StructureRef::Acl(name.clone()));
            if let Some(reason) = never.get(&key) {
                for line in &acl.lines {
                    items.push(Item::new(
                        &d.name,
                        format!("acl {name}/line {}", line.seq),
                        Status::NeverTouched,
                        reason,
                        &acl.src,
                    ));
                }
                continue;
            }
            let compiled = compile_acl(&mut bdd, &vars, acl);
            for (i, line) in acl.lines.iter().enumerate() {
                let hit = compiled.line_hits.get(i).copied().unwrap_or(NodeId::FALSE);
                let (status, reason) = if hit == NodeId::FALSE {
                    (Status::Shadowed, SHADOWED_ACL_LINE)
                } else {
                    (Status::Exercised, "")
                };
                items.push(Item::new(
                    &d.name,
                    format!("acl {name}/line {}", line.seq),
                    status,
                    reason,
                    &acl.src,
                ));
            }
        }
        for (name, rm) in &d.route_maps {
            let key = (d.name.clone(), StructureRef::RouteMap(name.clone()));
            let never_reason = never.get(&key);
            let dead = if never_reason.is_some() {
                Vec::new()
            } else {
                dead_clauses(d, rm)
            };
            for clause in &rm.clauses {
                let (status, reason) = match never_reason {
                    Some(r) => (Status::NeverTouched, r.as_str()),
                    None if dead.contains(&clause.seq) => (Status::Shadowed, SHADOWED_CLAUSE),
                    None => (Status::Exercised, ""),
                };
                items.push(Item::new(
                    &d.name,
                    format!("route-map {name}/clause {}", clause.seq),
                    status,
                    reason,
                    &clause.src,
                ));
            }
        }
        if let Some(bgp) = &d.bgp {
            for nb in &bgp.neighbors {
                let key = (d.name.clone(), StructureRef::BgpNeighbor(nb.peer_ip));
                let (status, reason) = match never.get(&key) {
                    Some(r) => (Status::NeverTouched, r.as_str()),
                    None if session_comes_up(d, bgp.asn, nb.peer_ip, nb.remote_as, devices) => {
                        (Status::Exercised, "")
                    }
                    None => (Status::Shadowed, SHADOWED_NEIGHBOR),
                };
                items.push(Item::new(
                    &d.name,
                    format!("neighbor {}", nb.peer_ip),
                    status,
                    reason,
                    &nb.src,
                ));
            }
        }
    }
    items.sort_by(|a, b| (&a.device, &a.path).cmp(&(&b.device, &b.path)));
    CoverageReport { items }
}

/// Would the session to `peer_ip` actually establish? The peer device
/// must own the address, run BGP in the AS we dialed, and configure a
/// compatible return neighbor towards one of our addresses.
fn session_comes_up(
    d: &Device,
    local_as: batnet_net::Asn,
    peer_ip: batnet_net::Ip,
    remote_as: batnet_net::Asn,
    devices: &[Device],
) -> bool {
    devices.iter().any(|peer| {
        peer.interface_owning_ip(peer_ip).is_some()
            && peer.bgp.as_ref().is_some_and(|pb| {
                pb.asn == remote_as
                    && pb.neighbors.iter().any(|back| {
                        back.remote_as == local_as && d.interface_owning_ip(back.peer_ip).is_some()
                    })
            })
    })
}

fn write_summary(out: &mut String, s: &Summary) {
    let _ = write!(
        out,
        "{{\"device\":{device},\"items\":{},\"exercised\":{},\"shadowed\":{},\
         \"never_touched\":{},\"coverage_permille\":{}}}",
        s.items,
        s.exercised,
        s.shadowed,
        s.never_touched,
        s.coverage_permille(),
        device = {
            let mut q = String::new();
            write_str(&mut q, &s.device);
            q
        },
    );
}

/// The JSON report (schema `batnet-cov/v1`). Timestamp-free and fully
/// sorted: the same devices serialize to the same bytes in any input
/// order, which is what the determinism gate compares.
pub fn render_json(network: &str, report: &CoverageReport) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"batnet-cov/v1\",\"network\":");
    write_str(&mut out, network);
    out.push_str(",\"totals\":");
    write_summary(&mut out, &report.totals());
    out.push_str(",\"devices\":[");
    for (i, s) in report.device_summaries().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_summary(&mut out, s);
    }
    out.push_str("],\"items\":[");
    for (i, item) in report.items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"device\":");
        write_str(&mut out, &item.device);
        out.push_str(",\"path\":");
        write_str(&mut out, &item.path);
        out.push_str(",\"status\":");
        write_str(&mut out, item.status.as_str());
        if !item.reason.is_empty() {
            out.push_str(",\"reason\":");
            write_str(&mut out, &item.reason);
        }
        if !item.file.is_empty() {
            out.push_str(",\"file\":");
            write_str(&mut out, &item.file);
            let _ = write!(out, ",\"line\":{},\"end_line\":{}", item.line, item.end_line);
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Plain-text rendering: per-device percentages, then the gap list.
pub fn render_text(network: &str, report: &CoverageReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "coverage report for {network}");
    let pct = |s: &Summary| {
        let p = s.coverage_permille();
        format!("{}.{}%", p / 10, p % 10)
    };
    for s in report.device_summaries() {
        let _ = writeln!(
            out,
            "  {}: {} items, {} exercised, {} shadowed, {} never-touched ({} exercised)",
            s.device,
            s.items,
            s.exercised,
            s.shadowed,
            s.never_touched,
            pct(&s)
        );
    }
    let t = report.totals();
    let _ = writeln!(
        out,
        "total: {} items, {} exercised, {} shadowed, {} never-touched ({} exercised)",
        t.items,
        t.exercised,
        t.shadowed,
        t.never_touched,
        pct(&t)
    );
    let gaps: Vec<&Item> = report.gaps().collect();
    if !gaps.is_empty() {
        let _ = writeln!(out, "gaps:");
        for g in gaps {
            let _ = write!(out, "  {} {}: {} — {}", g.device, g.path, g.status.as_str(), g.reason);
            if !g.file.is_empty() {
                if g.end_line > g.line {
                    let _ = write!(out, " [{}:{}-{}]", g.file, g.line, g.end_line);
                } else {
                    let _ = write!(out, " [{}:{}]", g.file, g.line);
                }
            }
            out.push('\n');
        }
    }
    out
}

fn get_count(v: &Value, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .map(|f| f as usize)
        .ok_or_else(|| format!("summary missing numeric '{key}'"))
}

fn validate_summary(v: &Value, label: &str) -> Result<Summary, String> {
    let s = Summary {
        device: v
            .get("device")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{label}: missing device"))?
            .to_string(),
        items: get_count(v, "items").map_err(|e| format!("{label}: {e}"))?,
        exercised: get_count(v, "exercised").map_err(|e| format!("{label}: {e}"))?,
        shadowed: get_count(v, "shadowed").map_err(|e| format!("{label}: {e}"))?,
        never_touched: get_count(v, "never_touched").map_err(|e| format!("{label}: {e}"))?,
    };
    if s.items != s.exercised + s.shadowed + s.never_touched {
        return Err(format!(
            "{label}: items {} != exercised {} + shadowed {} + never_touched {}",
            s.items, s.exercised, s.shadowed, s.never_touched
        ));
    }
    let permille = get_count(v, "coverage_permille").map_err(|e| format!("{label}: {e}"))?;
    if permille as u32 != s.coverage_permille() {
        return Err(format!(
            "{label}: coverage_permille {} does not match counts (expected {})",
            permille,
            s.coverage_permille()
        ));
    }
    Ok(s)
}

/// Validates a `batnet-cov/v1` report: schema id, consistent counts at
/// every level (totals, per device, and against the item list), and
/// well-formed items. Writer and reader live in-tree so schema drift is
/// a test failure, not a consumer surprise.
pub fn validate_report(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    if doc.get("schema").and_then(Value::as_str) != Some("batnet-cov/v1") {
        return Err("schema must be \"batnet-cov/v1\"".into());
    }
    if doc.get("network").and_then(Value::as_str).is_none() {
        return Err("missing network name".into());
    }
    let totals = validate_summary(doc.get("totals").ok_or("missing totals")?, "totals")?;
    let devices = doc
        .get("devices")
        .and_then(Value::as_arr)
        .ok_or("missing devices array")?;
    let mut dev_sum = Summary::default();
    for (i, d) in devices.iter().enumerate() {
        let s = validate_summary(d, &format!("devices[{i}]"))?;
        dev_sum.items += s.items;
        dev_sum.exercised += s.exercised;
        dev_sum.shadowed += s.shadowed;
        dev_sum.never_touched += s.never_touched;
    }
    let items = doc
        .get("items")
        .and_then(Value::as_arr)
        .ok_or("missing items array")?;
    let mut item_sum = Summary::default();
    for (i, item) in items.iter().enumerate() {
        let status = item
            .get("status")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("items[{i}]: missing status"))?;
        match status {
            "exercised" => item_sum.exercised += 1,
            "shadowed" => item_sum.shadowed += 1,
            "never-touched" => item_sum.never_touched += 1,
            other => return Err(format!("items[{i}]: unknown status '{other}'")),
        }
        item_sum.items += 1;
        if item.get("device").and_then(Value::as_str).is_none()
            || item.get("path").and_then(Value::as_str).is_none()
        {
            return Err(format!("items[{i}]: missing device or path"));
        }
    }
    for (label, a, b) in [
        ("devices", dev_sum.items, totals.items),
        ("items", item_sum.items, totals.items),
        ("exercised items", item_sum.exercised, totals.exercised),
        ("shadowed items", item_sum.shadowed, totals.shadowed),
        ("never-touched items", item_sum.never_touched, totals.never_touched),
    ] {
        if a != b {
            return Err(format!("{label} count {a} disagrees with totals {b}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::parse_device;

    fn devices(cfgs: &[(&str, &str)]) -> Vec<Device> {
        cfgs.iter()
            .map(|(n, t)| {
                let (mut d, _) = parse_device(n, t);
                d.stamp_source_file(n);
                d
            })
            .collect()
    }

    const R1: &str = "\
hostname r1
interface e0
 ip address 172.16.0.0/31
 ip access-group EDGE in
router bgp 65001
 neighbor 172.16.0.1 remote-as 65002
ip access-list extended EDGE
 10 deny tcp any any eq 22
 20 deny tcp any any eq 22
 30 permit ip any any
ip access-list extended ORPHAN
 10 permit ip any any
route-map UNAPPLIED permit 10
 set local-preference 50
";

    const R2: &str = "\
hostname r2
interface e0
 ip address 172.16.0.1/31
router bgp 65002
 neighbor 172.16.0.0 remote-as 65001
";

    #[test]
    fn classifies_all_three_statuses() {
        let devs = devices(&[("r1", R1), ("r2", R2)]);
        let report = analyze(&devs);
        let status_of = |path: &str| {
            report
                .items
                .iter()
                .find(|i| i.device == "r1" && i.path == path)
                .map(|i| i.status)
        };
        assert_eq!(status_of("acl EDGE/line 10"), Some(Status::Exercised));
        assert_eq!(status_of("acl EDGE/line 20"), Some(Status::Shadowed));
        assert_eq!(status_of("acl EDGE/line 30"), Some(Status::Exercised));
        assert_eq!(status_of("acl ORPHAN/line 10"), Some(Status::NeverTouched));
        assert_eq!(
            status_of("route-map UNAPPLIED/clause 10"),
            Some(Status::NeverTouched)
        );
        assert_eq!(status_of("neighbor 172.16.0.1"), Some(Status::Exercised));
        // Gap items carry source spans from the parsers.
        let orphan = report
            .items
            .iter()
            .find(|i| i.path == "acl ORPHAN/line 10")
            .expect("orphan item");
        assert_eq!(orphan.file, "r1");
        assert!(orphan.line > 0 && orphan.end_line >= orphan.line);
    }

    #[test]
    fn half_configured_session_is_shadowed() {
        let one_sided = "\
hostname r1
interface e0
 ip address 172.16.0.0/31
router bgp 65001
 neighbor 172.16.0.1 remote-as 65002
";
        let silent_peer = "\
hostname r2
interface e0
 ip address 172.16.0.1/31
";
        let devs = devices(&[("r1", one_sided), ("r2", silent_peer)]);
        let report = analyze(&devs);
        let nb = report
            .items
            .iter()
            .find(|i| i.path == "neighbor 172.16.0.1")
            .expect("neighbor item");
        assert_eq!(nb.status, Status::Shadowed);
    }

    #[test]
    fn json_is_deterministic_and_order_independent() {
        let mut devs = devices(&[("r1", R1), ("r2", R2)]);
        let a = render_json("t", &analyze(&devs));
        let b = render_json("t", &analyze(&devs));
        assert_eq!(a, b, "same devices, same bytes");
        devs.reverse();
        let c = render_json("t", &analyze(&devs));
        assert_eq!(a, c, "device order must not matter");
        validate_report(&a).expect("own report validates");
    }

    #[test]
    fn validator_rejects_inconsistent_reports() {
        assert!(validate_report("{}").is_err());
        let devs = devices(&[("r1", R1), ("r2", R2)]);
        let good = render_json("t", &analyze(&devs));
        // Corrupt a count: totals no longer match the item list.
        let bad = good.replace("\"exercised\":4", "\"exercised\":3");
        assert_ne!(good, bad, "fixture must actually corrupt something");
        assert!(validate_report(&bad).is_err());
        // Unknown status value.
        let bad = good.replace("\"status\":\"shadowed\"", "\"status\":\"mystery\"");
        assert!(validate_report(&bad).is_err());
    }

    #[test]
    fn summaries_add_up() {
        let devs = devices(&[("r1", R1), ("r2", R2)]);
        let report = analyze(&devs);
        let totals = report.totals();
        let by_dev = report.device_summaries();
        assert_eq!(by_dev.iter().map(|s| s.items).sum::<usize>(), totals.items);
        assert_eq!(
            totals.items,
            totals.exercised + totals.shadowed + totals.never_touched
        );
        // Permille arithmetic: 0 items is vacuously covered.
        assert_eq!(Summary::default().coverage_permille(), 1000);
        let text = render_text("t", &report);
        assert!(text.contains("gaps:"));
        assert!(text.contains("never-touched"));
    }
}
