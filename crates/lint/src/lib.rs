//! # batnet-lint — configuration analyses beyond forwarding (Lesson 5)
//!
//! *"Deep configuration modeling has many applications."* The detailed VI
//! model built for data plane generation answers many questions network
//! engineers ask that never touch forwarding: are all referenced
//! structures defined? Are IP assignments unique? Are BGP sessions
//! configured compatibly on both ends? Are management-plane settings
//! (NTP) consistent? These analyses are *local* — easy to localize, cheap
//! to run — and the paper notes they are often the fastest route to a
//! root cause (*"much easier to find this error by checking for
//! undefined route-maps than by debugging … a data plane verification
//! query"*).

pub mod routemap;

pub use routemap::{dead_clauses, route_map_dead_clauses};

use batnet_bdd::NodeId;
use batnet_config::vi::{Device, RouteMapMatch};
use batnet_config::Topology;
use batnet_dataplane::acl::compile_acl;
use batnet_dataplane::PacketVars;
use batnet_net::Ip;
use std::collections::BTreeMap;
use std::fmt;

/// One finding.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Finding {
    /// Which check produced it.
    pub check: &'static str,
    /// Device concerned ("" for network-wide findings).
    pub device: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.device.is_empty() {
            write!(f, "[{}] {}", self.check, self.message)
        } else {
            write!(f, "[{}] {}: {}", self.check, self.device, self.message)
        }
    }
}

/// Runs every network-wide check.
pub fn run_all(devices: &[Device]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for d in devices {
        findings.extend(undefined_references(d));
        findings.extend(unused_structures(d));
        findings.extend(route_map_dead_clauses(d));
    }
    findings.extend(duplicate_ips(devices));
    findings.extend(bgp_compatibility(devices));
    findings.extend(ntp_consistency(devices));
    findings.extend(mtu_mismatch(devices));
    findings.sort();
    findings
}

/// Undefined references: route maps, ACLs, prefix lists, and community
/// lists that are used but defined nowhere (the paper's canonical
/// Lesson-5 example).
pub fn undefined_references(d: &Device) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut missing = |kind: &str, name: &str, site: String| {
        out.push(Finding {
            check: "undefined-reference",
            device: d.name.clone(),
            message: format!("{kind} {name} referenced by {site} is not defined"),
        });
    };
    for iface in d.interfaces.values() {
        for (dir, acl) in [("in", &iface.acl_in), ("out", &iface.acl_out)] {
            if let Some(name) = acl {
                if !d.acls.contains_key(name) {
                    missing("acl", name, format!("interface {} ({dir})", iface.name));
                }
            }
        }
    }
    if let Some(bgp) = &d.bgp {
        for nb in &bgp.neighbors {
            for (dir, policy) in [("in", &nb.import_policy), ("out", &nb.export_policy)] {
                if let Some(name) = policy {
                    if !d.route_maps.contains_key(name) {
                        missing("route-map", name, format!("neighbor {} ({dir})", nb.peer_ip));
                    }
                }
            }
        }
    }
    for rm in d.route_maps.values() {
        for clause in &rm.clauses {
            for m in &clause.matches {
                match m {
                    RouteMapMatch::PrefixLists(names) => {
                        for n in names {
                            if !d.prefix_lists.contains_key(n) {
                                missing("prefix-list", n, format!("route-map {}", rm.name));
                            }
                        }
                    }
                    RouteMapMatch::CommunityLists(names) => {
                        for n in names {
                            if !d.community_lists.contains_key(n) {
                                missing("community-list", n, format!("route-map {}", rm.name));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

/// Structures that are defined but referenced nowhere — usually debris
/// from old changes, occasionally a typo'd attachment.
pub fn unused_structures(d: &Device) -> Vec<Finding> {
    let mut used_acls: Vec<&str> = Vec::new();
    for iface in d.interfaces.values() {
        used_acls.extend(iface.acl_in.as_deref());
        used_acls.extend(iface.acl_out.as_deref());
    }
    // NAT rule expansion and zone policies embed ACLs by value; their
    // names appear in rule text, so check those too.
    let nat_text: String = d.nat_rules.iter().map(|r| r.text.as_str()).collect();
    let mut used_maps: Vec<&str> = Vec::new();
    if let Some(bgp) = &d.bgp {
        for nb in &bgp.neighbors {
            used_maps.extend(nb.import_policy.as_deref());
            used_maps.extend(nb.export_policy.as_deref());
        }
    }
    let mut used_lists: Vec<&str> = Vec::new();
    for rm in d.route_maps.values() {
        for clause in &rm.clauses {
            for m in &clause.matches {
                match m {
                    RouteMapMatch::PrefixLists(ns) => used_lists.extend(ns.iter().map(String::as_str)),
                    RouteMapMatch::CommunityLists(ns) => used_lists.extend(ns.iter().map(String::as_str)),
                    _ => {}
                }
            }
        }
    }
    let mut out = Vec::new();
    for name in d.acls.keys() {
        let zone_used = d.zone_policies.iter().any(|zp| zp.acl.name == *name);
        if !used_acls.contains(&name.as_str()) && !zone_used && !nat_text.contains(name) {
            out.push(Finding {
                check: "unused-structure",
                device: d.name.clone(),
                message: format!("acl {name} is defined but never used"),
            });
        }
    }
    for name in d.route_maps.keys() {
        if !used_maps.contains(&name.as_str()) {
            out.push(Finding {
                check: "unused-structure",
                device: d.name.clone(),
                message: format!("route-map {name} is defined but never used"),
            });
        }
    }
    for name in d.prefix_lists.keys() {
        if !used_lists.contains(&name.as_str()) {
            out.push(Finding {
                check: "unused-structure",
                device: d.name.clone(),
                message: format!("prefix-list {name} is defined but never used"),
            });
        }
    }
    out
}

/// Duplicate interface addresses across the network (the paper's
/// "uniqueness of assigned IP addresses" example).
pub fn duplicate_ips(devices: &[Device]) -> Vec<Finding> {
    let mut owners: BTreeMap<Ip, Vec<String>> = BTreeMap::new();
    for d in devices {
        for iface in d.active_interfaces() {
            if let Some(ip) = iface.ip() {
                owners
                    .entry(ip)
                    .or_default()
                    .push(format!("{}[{}]", d.name, iface.name));
            }
        }
    }
    owners
        .into_iter()
        .filter(|(_, sites)| sites.len() > 1)
        .map(|(ip, sites)| Finding {
            check: "duplicate-ip",
            device: String::new(),
            message: format!("{ip} assigned at {}", sites.join(", ")),
        })
        .collect()
}

/// BGP session compatibility: a configured neighbor should have a
/// matching configuration on the other end (right AS, pointing back).
/// Half-configured sessions are the paper's original static-analysis
/// example ("a BGP session is not configured on both ends").
pub fn bgp_compatibility(devices: &[Device]) -> Vec<Finding> {
    // Interface IP → device.
    let mut ip_owner: BTreeMap<Ip, &Device> = BTreeMap::new();
    for d in devices {
        for iface in d.active_interfaces() {
            if let Some(ip) = iface.ip() {
                ip_owner.insert(ip, d);
            }
        }
    }
    let mut out = Vec::new();
    for d in devices {
        let Some(bgp) = &d.bgp else { continue };
        let my_ips: Vec<Ip> = d.active_interfaces().filter_map(|i| i.ip()).collect();
        for nb in &bgp.neighbors {
            match ip_owner.get(&nb.peer_ip) {
                None => {
                    // Could be an external peer; flag softly only when the
                    // address is in private space (likely internal typo).
                    let p: batnet_net::Prefix = "10.0.0.0/8".parse().expect("const");
                    let q: batnet_net::Prefix = "172.16.0.0/12".parse().expect("const");
                    let r: batnet_net::Prefix = "192.168.0.0/16".parse().expect("const");
                    if p.contains(nb.peer_ip) || q.contains(nb.peer_ip) || r.contains(nb.peer_ip) {
                        out.push(Finding {
                            check: "bgp-compat",
                            device: d.name.clone(),
                            message: format!(
                                "neighbor {} is in private space but no device owns it",
                                nb.peer_ip
                            ),
                        });
                    }
                }
                Some(peer) => match &peer.bgp {
                    None => out.push(Finding {
                        check: "bgp-compat",
                        device: d.name.clone(),
                        message: format!(
                            "neighbor {} ({}) does not run BGP",
                            nb.peer_ip, peer.name
                        ),
                    }),
                    Some(pb) => {
                        if pb.asn != nb.remote_as {
                            out.push(Finding {
                                check: "bgp-compat",
                                device: d.name.clone(),
                                message: format!(
                                    "neighbor {} expects AS {} but {} is AS {}",
                                    nb.peer_ip, nb.remote_as, peer.name, pb.asn
                                ),
                            });
                        }
                        let points_back = pb
                            .neighbors
                            .iter()
                            .any(|pn| my_ips.contains(&pn.peer_ip) && pn.remote_as == bgp.asn);
                        if !points_back {
                            out.push(Finding {
                                check: "bgp-compat",
                                device: d.name.clone(),
                                message: format!(
                                    "session to {} is not configured on {} (half-open)",
                                    nb.peer_ip, peer.name
                                ),
                            });
                        }
                    }
                },
            }
        }
    }
    out
}

/// NTP server consistency: every device should use the majority NTP set
/// (the paper's canonical management-plane check).
pub fn ntp_consistency(devices: &[Device]) -> Vec<Finding> {
    let mut counts: BTreeMap<Vec<Ip>, usize> = BTreeMap::new();
    for d in devices {
        let mut servers = d.ntp_servers.clone();
        servers.sort();
        *counts.entry(servers).or_default() += 1;
    }
    let Some((majority, _)) = counts.iter().max_by_key(|(_, &c)| c) else {
        return Vec::new();
    };
    let majority = majority.clone();
    devices
        .iter()
        .filter(|d| {
            let mut s = d.ntp_servers.clone();
            s.sort();
            s != majority
        })
        .map(|d| Finding {
            check: "ntp-consistency",
            device: d.name.clone(),
            message: format!(
                "ntp servers {:?} differ from the majority {:?}",
                d.ntp_servers, majority
            ),
        })
        .collect()
}

/// MTU mismatch across inferred links (a classic silent breaker of OSPF
/// adjacency and of large packets).
pub fn mtu_mismatch(devices: &[Device]) -> Vec<Finding> {
    let topo = Topology::infer(devices);
    let by_name: BTreeMap<&str, &Device> = devices.iter().map(|d| (d.name.as_str(), d)).collect();
    let mut out = Vec::new();
    let mut seen: Vec<(String, String)> = Vec::new();
    for iface_ref in topo.connected_interfaces() {
        for nb in topo.neighbors_of(iface_ref) {
            let key = if (iface_ref.device.as_str(), iface_ref.interface.as_str())
                < (nb.device.as_str(), nb.interface.as_str())
            {
                (iface_ref.to_string(), nb.to_string())
            } else {
                (nb.to_string(), iface_ref.to_string())
            };
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let (Some(a), Some(b)) = (by_name.get(iface_ref.device.as_str()), by_name.get(nb.device.as_str()))
            else {
                continue;
            };
            let (Some(ia), Some(ib)) = (
                a.interfaces.get(&iface_ref.interface),
                b.interfaces.get(&nb.interface),
            ) else {
                continue;
            };
            if ia.mtu != ib.mtu {
                out.push(Finding {
                    check: "mtu-mismatch",
                    device: String::new(),
                    message: format!(
                        "{iface_ref} mtu {} != {nb} mtu {}",
                        ia.mtu, ib.mtu
                    ),
                });
            }
        }
    }
    out
}

/// ACL shadowing via BDDs: lines that can never match because earlier
/// lines cover them — the symbolic Lesson-5 analysis, and the building
/// block of the §5.3 ACL-refactoring use-case (dead entries are safe to
/// delete).
pub fn acl_shadowing(d: &Device) -> Vec<Finding> {
    let (mut bdd, vars) = PacketVars::new(0);
    let mut out = Vec::new();
    for acl in d.acls.values() {
        let compiled = compile_acl(&mut bdd, &vars, acl);
        for (i, hit) in compiled.line_hits.iter().enumerate() {
            if *hit == NodeId::FALSE {
                out.push(Finding {
                    check: "acl-shadowing",
                    device: d.name.clone(),
                    message: format!(
                        "acl {} line {} ({}) is fully shadowed by earlier lines",
                        acl.name, acl.lines[i].seq, acl.lines[i].text
                    ),
                });
            }
        }
    }
    out
}

/// "Does this ACL permit this packet?" — the paper's direct ACL query,
/// answered symbolically so the result can also report *which* line.
pub fn acl_permits(
    d: &Device,
    acl_name: &str,
    flow: &batnet_net::Flow,
) -> Option<(bool, Option<String>)> {
    let acl = d.acls.get(acl_name)?;
    let (mut bdd, vars) = PacketVars::new(0);
    let compiled = compile_acl(&mut bdd, &vars, acl);
    let f = vars.flow(&mut bdd, flow);
    let permitted = bdd.and(compiled.permits, f) != NodeId::FALSE;
    let line = compiled
        .line_hits
        .iter()
        .position(|&h| {
            let hit = bdd.and(h, f);
            hit != NodeId::FALSE
        })
        .map(|i| acl.lines[i].text.clone());
    Some((permitted, line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::parse_device;
    use batnet_net::Flow;

    fn dev(text: &str) -> Device {
        parse_device("t", text).0
    }

    #[test]
    fn undefined_reference_findings() {
        let d = dev(
            "hostname r1\ninterface e0\n ip address 10.0.0.1/24\n ip access-group NOPE in\nrouter bgp 65001\n neighbor 10.0.0.2 remote-as 65002\n neighbor 10.0.0.2 route-map MISSING in\nroute-map USED permit 10\n match ip address prefix-list ABSENT\n",
        );
        let f = undefined_references(&d);
        let checks: Vec<&str> = f.iter().map(|x| x.message.split(' ').next().unwrap()).collect();
        assert!(checks.contains(&"acl"));
        assert!(checks.contains(&"route-map"));
        assert!(checks.contains(&"prefix-list"));
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn unused_structure_findings() {
        let d = dev(
            "hostname r1\ninterface e0\n ip address 10.0.0.1/24\n ip access-group USED in\nip access-list extended USED\n 10 permit ip any any\nip access-list extended DEAD\n 10 permit ip any any\nroute-map ORPHAN permit 10\nip prefix-list LONELY seq 5 permit 10.0.0.0/8\n",
        );
        let f = unused_structures(&d);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("acl DEAD")));
        assert!(f.iter().any(|x| x.message.contains("route-map ORPHAN")));
        assert!(f.iter().any(|x| x.message.contains("prefix-list LONELY")));
    }

    #[test]
    fn duplicate_ip_detection() {
        let a = dev("hostname a\ninterface e0\n ip address 10.0.0.1/24\n");
        let mut b = dev("hostname b\ninterface e0\n ip address 10.0.0.1/24\n");
        b.name = "b".into();
        let f = duplicate_ips(&[a, b]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("10.0.0.1"));
        // Distinct addresses are clean.
        let c = dev("hostname c\ninterface e0\n ip address 10.0.0.2/24\n");
        let d2 = dev("hostname d\ninterface e0\n ip address 10.0.0.3/24\n");
        assert!(duplicate_ips(&[c, d2]).is_empty());
    }

    #[test]
    fn bgp_compat_findings() {
        let a = dev(
            "hostname a\ninterface e0\n ip address 10.0.0.1/31\nrouter bgp 65001\n neighbor 10.0.0.0 remote-as 65099\n neighbor 10.9.9.9 remote-as 65003\n",
        );
        let mut b = dev(
            "hostname b\ninterface e0\n ip address 10.0.0.0/31\nrouter bgp 65002\n",
        );
        b.name = "b".into();
        let f = bgp_compatibility(&[a, b]);
        // Wrong AS + not pointing back + private-space missing peer.
        assert!(f.iter().any(|x| x.message.contains("expects AS 65099")), "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("half-open")), "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("no device owns")), "{f:?}");
    }

    #[test]
    fn ntp_majority() {
        let a = dev("hostname a\nntp server 10.255.0.1\ninterface e0\n ip address 10.0.0.1/24\n");
        let b = dev("hostname b\nntp server 10.255.0.1\ninterface e0\n ip address 10.0.1.1/24\n");
        let c = dev("hostname c\nntp server 10.255.0.9\ninterface e0\n ip address 10.0.2.1/24\n");
        let f = ntp_consistency(&[a, b, c]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].device, "c");
    }

    #[test]
    fn mtu_mismatch_on_link() {
        let a = dev("hostname a\ninterface e0\n ip address 10.0.0.0/31\n mtu 9000\n");
        let mut b = dev("hostname b\ninterface e0\n ip address 10.0.0.1/31\n");
        b.name = "b".into();
        let f = mtu_mismatch(&[a, b]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("9000"));
    }

    #[test]
    fn shadowed_acl_line_found() {
        let d = dev(
            "hostname r1\nip access-list extended A\n 10 permit tcp any any\n 20 permit tcp any any eq 80\n 30 deny ip any any\n",
        );
        let f = acl_shadowing(&d);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("line 20"));
    }

    #[test]
    fn acl_permit_query_names_the_line() {
        let d = dev(
            "hostname r1\nip access-list extended A\n 10 deny tcp any any eq 22\n 20 permit tcp any any\n",
        );
        let ssh = Flow::tcp("1.1.1.1".parse().unwrap(), 9, "2.2.2.2".parse().unwrap(), 22);
        let (ok, line) = acl_permits(&d, "A", &ssh).unwrap();
        assert!(!ok);
        assert!(line.unwrap().contains("eq 22"));
        let http = Flow::tcp("1.1.1.1".parse().unwrap(), 9, "2.2.2.2".parse().unwrap(), 80);
        let (ok, line) = acl_permits(&d, "A", &http).unwrap();
        assert!(ok);
        assert!(line.unwrap().contains("permit tcp"));
        assert!(acl_permits(&d, "NOPE", &http).is_none());
    }

    #[test]
    fn run_all_aggregates() {
        let a = dev("hostname a\nntp server 1.1.1.1\ninterface e0\n ip address 10.0.0.1/24\n ip access-group NOPE in\n");
        let f = run_all(std::slice::from_ref(&a));
        assert!(f.iter().any(|x| x.check == "undefined-reference"));
    }
}
