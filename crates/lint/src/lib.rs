//! # batnet-lint — configuration analyses beyond forwarding (Lesson 5)
//!
//! *"Deep configuration modeling has many applications."* The detailed VI
//! model built for data plane generation answers many questions network
//! engineers ask that never touch forwarding: are all referenced
//! structures defined? Are IP assignments unique? Are BGP sessions
//! configured compatibly on both ends? Are management-plane settings
//! (NTP) consistent? These analyses are *local* — easy to localize, cheap
//! to run — and the paper notes they are often the fastest route to a
//! root cause (*"much easier to find this error by checking for
//! undefined route-maps than by debugging … a data plane verification
//! query"*).
//!
//! This crate grew from a bag of functions into a small static-analysis
//! engine:
//!
//! * every check is registered in the [`CHECKS`] catalog and dispatched
//!   through the [`PASSES`] table, so a check cannot silently fall out of
//!   [`run_all`];
//! * findings carry a stable [`Finding::fingerprint`] (check + device +
//!   structure path — insensitive to message wording), a [`Severity`], a
//!   source location, and, for the symbolic checks, a concrete witness;
//! * devices can mute checks with inline `! batnet-lint-disable <check>`
//!   directives (scanned by every dialect parser), and whole runs can be
//!   baselined by fingerprint so CI gates on *new* findings only;
//! * parse diagnostics bridge into the same finding stream
//!   ([`diagnostics_findings`]), so one report covers both what the
//!   parser could not model and what the model reveals.

pub mod drift;
pub mod exercise;
pub mod output;
pub mod routemap;

pub use drift::{policy_drift, role_of};
pub use exercise::{never_touched_structures, unexercised_config, NeverTouched, StructureRef};
pub use routemap::{dead_clauses, route_map_dead_clauses};

use batnet_bdd::NodeId;
use batnet_config::diag::{self, Diagnostics};
use batnet_config::vi::{Device, RouteMapMatch, SourceSpan};
use batnet_config::Topology;
use batnet_dataplane::acl::compile_acl;
use batnet_dataplane::PacketVars;
use batnet_net::Ip;
use std::collections::BTreeMap;
use std::fmt;

/// How serious a finding is. Ordered: `Info < Warning < Error`, so
/// `--deny warning` means "warning or worse".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Advisory: worth a look, usually intentional.
    Info,
    /// Likely misconfiguration; the network still functions.
    Warning,
    /// Definite error: a referenced structure is missing, an address is
    /// double-assigned, a config could not be parsed.
    Error,
}

impl Severity {
    /// Stable lowercase name (also the SARIF `level`, except `Info`
    /// which SARIF spells `note`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// SARIF result level.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Info => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Severity {
    type Err = String;
    fn from_str(s: &str) -> Result<Severity, String> {
        match s {
            "info" | "note" => Ok(Severity::Info),
            "warning" | "warn" => Ok(Severity::Warning),
            "error" => Ok(Severity::Error),
            other => Err(format!("unknown severity '{other}' (expected info|warning|error)")),
        }
    }
}

/// One finding.
///
/// `check`, `device`, and `path` identify *what* is wrong structurally
/// and feed the fingerprint; `message` is free prose and may change
/// between versions without invalidating baselines.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Finding {
    /// Which check produced it (an id from [`CHECKS`]).
    pub check: &'static str,
    /// Device concerned ("" for network-wide findings).
    pub device: String,
    /// Structure path within the device ("acl SERVERS/line 30",
    /// "neighbor 10.0.0.1/half-open", …). Stable across message rewords.
    pub path: String,
    /// How serious it is (from the [`CHECKS`] catalog).
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Source file the finding points into ("" when unknown).
    pub file: String,
    /// 1-based source line (0 when unknown).
    pub line: u32,
    /// Concrete witness for symbolic checks: a flow or prefix that
    /// demonstrates the problem ("" when not applicable).
    pub witness: String,
}

impl Finding {
    /// A finding with severity looked up from the catalog and no source
    /// location or witness yet.
    pub fn new(
        check: &'static str,
        device: impl Into<String>,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            check,
            severity: severity_of(check),
            device: device.into(),
            path: path.into(),
            message: message.into(),
            file: String::new(),
            line: 0,
            witness: String::new(),
        }
    }

    /// Attaches a source location (no-op for unknown spans).
    pub fn at(mut self, src: &SourceSpan) -> Finding {
        if src.is_known() {
            self.file = src.file.clone();
            self.line = src.line;
        }
        self
    }

    /// Attaches a concrete witness.
    pub fn with_witness(mut self, witness: impl Into<String>) -> Finding {
        self.witness = witness.into();
        self
    }

    /// Stable fingerprint: 16 hex chars of FNV-1a 64 over
    /// `check \0 device \0 path`. Deliberately excludes the message (so
    /// rewording does not invalidate baselines), the location (so
    /// re-ordering a config does not either), and the witness (which
    /// depends on BDD internals).
    pub fn fingerprint(&self) -> String {
        format!("{:016x}", fnv1a64(&[self.check, &self.device, &self.path]))
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.device.is_empty() {
            write!(f, "[{}] {}", self.check, self.message)
        } else {
            write!(f, "[{}] {}: {}", self.check, self.device, self.message)
        }
    }
}

fn fnv1a64(parts: &[&str]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for (i, part) in parts.iter().enumerate() {
        if i > 0 {
            // NUL separator so ("ab","c") != ("a","bc").
            h ^= 0;
            h = h.wrapping_mul(PRIME);
        }
        for b in part.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Catalog entry for one check.
pub struct CheckInfo {
    /// Stable check id (the `check` field of findings it emits).
    pub id: &'static str,
    /// Severity of its findings.
    pub severity: Severity,
    /// True when the check is bridged from parse diagnostics rather than
    /// run as a VI-model pass.
    pub bridged: bool,
    /// One-line description.
    pub what: &'static str,
}

/// Every check the engine knows, with its severity. The registry test
/// asserts that every non-bridged entry is wired into [`PASSES`].
pub const CHECKS: &[CheckInfo] = &[
    CheckInfo { id: "undefined-reference", severity: Severity::Error, bridged: false, what: "a used structure (acl, route-map, prefix-list, community-list) is not defined" },
    CheckInfo { id: "duplicate-ip", severity: Severity::Error, bridged: false, what: "the same interface address is assigned on more than one device" },
    CheckInfo { id: "unused-structure", severity: Severity::Warning, bridged: false, what: "a defined structure is referenced nowhere" },
    CheckInfo { id: "bgp-compat", severity: Severity::Warning, bridged: false, what: "a BGP session is not configured compatibly on both ends" },
    CheckInfo { id: "ntp-consistency", severity: Severity::Warning, bridged: false, what: "a device's NTP servers differ from the network majority" },
    CheckInfo { id: "mtu-mismatch", severity: Severity::Warning, bridged: false, what: "the two ends of a link disagree on MTU" },
    CheckInfo { id: "acl-shadowing", severity: Severity::Warning, bridged: false, what: "an ACL line can never match (fully covered by earlier lines)" },
    CheckInfo { id: "acl-partial-shadow", severity: Severity::Info, bridged: false, what: "an ACL line matches strictly less than written because earlier opposite-action lines steal part of its space" },
    CheckInfo { id: "route-map-dead-clause", severity: Severity::Warning, bridged: false, what: "a route-map clause can never match (covered by earlier clauses)" },
    CheckInfo { id: "dead-device", severity: Severity::Warning, bridged: false, what: "a device cannot do anything: all interfaces shutdown, or a BGP process with no sessions" },
    CheckInfo { id: "policy-drift", severity: Severity::Warning, bridged: false, what: "a device's policy semantically diverges from the majority of its role peers" },
    CheckInfo { id: "unexercised-config", severity: Severity::Info, bridged: false, what: "a structure (acl, route-map, bgp neighbor) that no query of the coverage suite can ever exercise" },
    CheckInfo { id: "parse-info", severity: Severity::Info, bridged: true, what: "parser note (deprecated form, implicit default)" },
    CheckInfo { id: "unrecognized-line", severity: Severity::Warning, bridged: true, what: "a config line outside the model was skipped" },
    CheckInfo { id: "parse-error", severity: Severity::Error, bridged: true, what: "a malformed config line was dropped" },
];

/// Severity of a check id, from the catalog (unknown ids are warnings —
/// only possible if a pass emits an unregistered id, which the registry
/// test rejects).
pub fn severity_of(check: &str) -> Severity {
    CHECKS
        .iter()
        .find(|c| c.id == check)
        .map(|c| c.severity)
        .unwrap_or(Severity::Warning)
}

/// One dispatchable pass: per-device or network-wide.
pub enum Pass {
    /// Runs once per device.
    Device(fn(&Device) -> Vec<Finding>),
    /// Runs once over the whole device list.
    Network(fn(&[Device]) -> Vec<Finding>),
}

/// The dispatch table: (pass name, check ids it may emit, entry point).
/// [`run_all`] iterates this table, so adding a check here is all it
/// takes to have it run everywhere — the historical bug where
/// `acl_shadowing` was exported but never invoked cannot recur.
pub const PASSES: &[(&str, &[&str], Pass)] = &[
    ("undefined-references", &["undefined-reference"], Pass::Device(undefined_references)),
    ("unused-structures", &["unused-structure"], Pass::Device(unused_structures)),
    ("route-map-dead-clauses", &["route-map-dead-clause"], Pass::Device(route_map_dead_clauses)),
    ("acl-shadowing", &["acl-shadowing", "acl-partial-shadow"], Pass::Device(acl_shadowing)),
    ("dead-device", &["dead-device"], Pass::Device(dead_device)),
    ("duplicate-ips", &["duplicate-ip"], Pass::Network(duplicate_ips)),
    ("bgp-compatibility", &["bgp-compat"], Pass::Network(bgp_compatibility)),
    ("ntp-consistency", &["ntp-consistency"], Pass::Network(ntp_consistency)),
    ("mtu-mismatch", &["mtu-mismatch"], Pass::Network(mtu_mismatch)),
    ("policy-drift", &["policy-drift"], Pass::Network(policy_drift)),
    ("unexercised-config", &["unexercised-config"], Pass::Network(unexercised_config)),
];

/// Runs every registered pass, applies device-level suppressions, and
/// returns the sorted finding list. Emits one `lint.<pass>` span and a
/// `lint.findings.<pass>` counter per pass.
pub fn run_all(devices: &[Device]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (name, _, pass) in PASSES {
        let span = batnet_obs::Span::enter(format!("lint.{name}"));
        let produced = match pass {
            Pass::Device(f) => devices.iter().flat_map(f).collect::<Vec<_>>(),
            Pass::Network(f) => f(devices),
        };
        span.close();
        batnet_obs::counter_add(&format!("lint.findings.{name}"), produced.len() as u64);
        findings.extend(produced);
    }
    apply_suppressions(devices, &mut findings);
    findings.sort();
    findings.dedup();
    findings
}

/// [`run_all`] under a [`batnet_net::governor::ResourceGovernor`]: the
/// budget is polled before each pass and each pass ticks the iteration
/// budget once. Passes are local and cheap (Lesson 5), so a deadline
/// lands between passes within milliseconds — that is the checkpoint
/// granularity. A tripped budget abandons the remaining passes *by
/// name* and returns the findings of the passes that did run, sorted,
/// deduped, and suppression-filtered like a complete run.
pub fn run_all_governed(
    devices: &[Device],
    gov: &batnet_net::governor::ResourceGovernor,
) -> batnet_net::governor::Outcome<Vec<Finding>> {
    use batnet_net::governor::Outcome;
    let mut findings = Vec::new();
    let finish = |mut f: Vec<Finding>| {
        apply_suppressions(devices, &mut f);
        f.sort();
        f.dedup();
        f
    };
    for (i, (name, _, pass)) in PASSES.iter().enumerate() {
        let stage = format!("lint.{name}");
        if let Err(why) = gov.tick(&stage, 1) {
            return Outcome::Partial {
                completed: finish(findings),
                abandoned: PASSES[i..].iter().map(|(n, _, _)| (*n).to_string()).collect(),
                why,
            };
        }
        let span = batnet_obs::Span::enter(stage);
        let produced = match pass {
            Pass::Device(f) => devices.iter().flat_map(f).collect::<Vec<_>>(),
            Pass::Network(f) => f(devices),
        };
        span.close();
        batnet_obs::counter_add(&format!("lint.findings.{name}"), produced.len() as u64);
        findings.extend(produced);
    }
    Outcome::Complete(finish(findings))
}

/// [`run_network`] under a governor: governed passes via
/// [`run_all_governed`], plus the diagnostics bridge — which is always
/// included, complete or partial, because the diagnostics were already
/// computed at parse time and cost nothing to surface.
pub fn run_network_governed(
    devices: &[Device],
    diags: &[(String, Diagnostics)],
    gov: &batnet_net::governor::ResourceGovernor,
) -> batnet_net::governor::Outcome<Vec<Finding>> {
    let mut bridged: Vec<Finding> = diags
        .iter()
        .flat_map(|(name, dg)| diagnostics_findings(name, dg))
        .collect();
    batnet_obs::counter_add("lint.findings.bridged", bridged.len() as u64);
    apply_suppressions(devices, &mut bridged);
    run_all_governed(devices, gov).map(|mut findings| {
        findings.extend(bridged);
        findings.sort();
        findings.dedup();
        findings
    })
}

/// [`run_all`] plus parse diagnostics bridged into the same stream, for
/// callers (the CLI) that hold the per-device [`Diagnostics`].
pub fn run_network(devices: &[Device], diags: &[(String, Diagnostics)]) -> Vec<Finding> {
    let mut findings = run_all(devices);
    let mut bridged: Vec<Finding> = diags
        .iter()
        .flat_map(|(name, dg)| diagnostics_findings(name, dg))
        .collect();
    batnet_obs::counter_add("lint.findings.bridged", bridged.len() as u64);
    apply_suppressions(devices, &mut bridged);
    findings.extend(bridged);
    findings.sort();
    findings.dedup();
    findings
}

/// Bridges one device's parse diagnostics into findings, with the same
/// fingerprint scheme as VI-model checks (path = `line <n>`).
pub fn diagnostics_findings(device: &str, diags: &Diagnostics) -> Vec<Finding> {
    diags
        .items()
        .iter()
        .map(|d| {
            let check = match d.severity {
                diag::Severity::Info => "parse-info",
                diag::Severity::UnrecognizedLine => "unrecognized-line",
                diag::Severity::UndefinedReference => "undefined-reference",
                diag::Severity::ParseError => "parse-error",
            };
            let mut f = Finding::new(
                check,
                device,
                format!("line {}", d.line),
                d.message.clone(),
            );
            f.file = device.to_string();
            f.line = d.line as u32;
            f
        })
        .collect()
}

/// Drops findings whose check the owning device muted with an inline
/// `! batnet-lint-disable <check>` directive.
fn apply_suppressions(devices: &[Device], findings: &mut Vec<Finding>) {
    let muted: BTreeMap<&str, &[String]> = devices
        .iter()
        .filter(|d| !d.lint_suppressions.is_empty())
        .map(|d| (d.name.as_str(), d.lint_suppressions.as_slice()))
        .collect();
    if muted.is_empty() {
        return;
    }
    let before = findings.len();
    findings.retain(|f| {
        !muted
            .get(f.device.as_str())
            .is_some_and(|checks| checks.iter().any(|c| c == f.check))
    });
    batnet_obs::counter_add("lint.suppressed", (before - findings.len()) as u64);
}

/// Undefined references: route maps, ACLs, prefix lists, and community
/// lists that are used but defined nowhere (the paper's canonical
/// Lesson-5 example).
pub fn undefined_references(d: &Device) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut missing = |kind: &str, name: &str, site: String, src: Option<&SourceSpan>| {
        let mut f = Finding::new(
            "undefined-reference",
            &d.name,
            format!("{site}/{kind} {name}"),
            format!("{kind} {name} referenced by {site} is not defined"),
        );
        if let Some(s) = src {
            f = f.at(s);
        }
        out.push(f);
    };
    for iface in d.interfaces.values() {
        for (dir, acl) in [("in", &iface.acl_in), ("out", &iface.acl_out)] {
            if let Some(name) = acl {
                if !d.acls.contains_key(name) {
                    missing("acl", name, format!("interface {} ({dir})", iface.name), None);
                }
            }
        }
    }
    if let Some(bgp) = &d.bgp {
        for nb in &bgp.neighbors {
            for (dir, policy) in [("in", &nb.import_policy), ("out", &nb.export_policy)] {
                if let Some(name) = policy {
                    if !d.route_maps.contains_key(name) {
                        missing(
                            "route-map",
                            name,
                            format!("neighbor {} ({dir})", nb.peer_ip),
                            Some(&nb.src),
                        );
                    }
                }
            }
        }
    }
    for rm in d.route_maps.values() {
        for clause in &rm.clauses {
            for m in &clause.matches {
                match m {
                    RouteMapMatch::PrefixLists(names) => {
                        for n in names {
                            if !d.prefix_lists.contains_key(n) {
                                missing("prefix-list", n, format!("route-map {}", rm.name), Some(&rm.src));
                            }
                        }
                    }
                    RouteMapMatch::CommunityLists(names) => {
                        for n in names {
                            if !d.community_lists.contains_key(n) {
                                missing("community-list", n, format!("route-map {}", rm.name), Some(&rm.src));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

/// Structures that are defined but referenced nowhere — usually debris
/// from old changes, occasionally a typo'd attachment.
pub fn unused_structures(d: &Device) -> Vec<Finding> {
    let mut used_acls: Vec<&str> = Vec::new();
    for iface in d.interfaces.values() {
        used_acls.extend(iface.acl_in.as_deref());
        used_acls.extend(iface.acl_out.as_deref());
    }
    // NAT rule expansion and zone policies embed ACLs by value; their
    // names appear in rule text, so check those too.
    let nat_text: String = d.nat_rules.iter().map(|r| r.text.as_str()).collect();
    let mut used_maps: Vec<&str> = Vec::new();
    if let Some(bgp) = &d.bgp {
        for nb in &bgp.neighbors {
            used_maps.extend(nb.import_policy.as_deref());
            used_maps.extend(nb.export_policy.as_deref());
        }
    }
    let mut used_lists: Vec<&str> = Vec::new();
    for rm in d.route_maps.values() {
        for clause in &rm.clauses {
            for m in &clause.matches {
                match m {
                    RouteMapMatch::PrefixLists(ns) => used_lists.extend(ns.iter().map(String::as_str)),
                    RouteMapMatch::CommunityLists(ns) => used_lists.extend(ns.iter().map(String::as_str)),
                    _ => {}
                }
            }
        }
    }
    let mut out = Vec::new();
    for (name, acl) in &d.acls {
        let zone_used = d.zone_policies.iter().any(|zp| zp.acl.name == *name);
        if !used_acls.contains(&name.as_str()) && !zone_used && !nat_text.contains(name) {
            out.push(
                Finding::new(
                    "unused-structure",
                    &d.name,
                    format!("acl {name}"),
                    format!("acl {name} is defined but never used"),
                )
                .at(&acl.src),
            );
        }
    }
    for (name, rm) in &d.route_maps {
        if !used_maps.contains(&name.as_str()) {
            out.push(
                Finding::new(
                    "unused-structure",
                    &d.name,
                    format!("route-map {name}"),
                    format!("route-map {name} is defined but never used"),
                )
                .at(&rm.src),
            );
        }
    }
    for name in d.prefix_lists.keys() {
        if !used_lists.contains(&name.as_str()) {
            out.push(Finding::new(
                "unused-structure",
                &d.name,
                format!("prefix-list {name}"),
                format!("prefix-list {name} is defined but never used"),
            ));
        }
    }
    out
}

/// Duplicate interface addresses across the network (the paper's
/// "uniqueness of assigned IP addresses" example).
pub fn duplicate_ips(devices: &[Device]) -> Vec<Finding> {
    let mut owners: BTreeMap<Ip, Vec<String>> = BTreeMap::new();
    for d in devices {
        for iface in d.active_interfaces() {
            if let Some(ip) = iface.ip() {
                owners
                    .entry(ip)
                    .or_default()
                    .push(format!("{}[{}]", d.name, iface.name));
            }
        }
    }
    owners
        .into_iter()
        .filter(|(_, sites)| sites.len() > 1)
        .map(|(ip, sites)| {
            Finding::new(
                "duplicate-ip",
                "",
                format!("ip {ip}"),
                format!("{ip} assigned at {}", sites.join(", ")),
            )
        })
        .collect()
}

/// BGP session compatibility: a configured neighbor should have a
/// matching configuration on the other end (right AS, pointing back).
/// Half-configured sessions are the paper's original static-analysis
/// example ("a BGP session is not configured on both ends").
pub fn bgp_compatibility(devices: &[Device]) -> Vec<Finding> {
    // Interface IP → device.
    let mut ip_owner: BTreeMap<Ip, &Device> = BTreeMap::new();
    for d in devices {
        for iface in d.active_interfaces() {
            if let Some(ip) = iface.ip() {
                ip_owner.insert(ip, d);
            }
        }
    }
    let mut out = Vec::new();
    for d in devices {
        let Some(bgp) = &d.bgp else { continue };
        let my_ips: Vec<Ip> = d.active_interfaces().filter_map(|i| i.ip()).collect();
        for nb in &bgp.neighbors {
            match ip_owner.get(&nb.peer_ip) {
                None => {
                    // Could be an external peer; flag softly only when the
                    // address is in private space (likely internal typo).
                    let p: batnet_net::Prefix = "10.0.0.0/8".parse().expect("const");
                    let q: batnet_net::Prefix = "172.16.0.0/12".parse().expect("const");
                    let r: batnet_net::Prefix = "192.168.0.0/16".parse().expect("const");
                    if p.contains(nb.peer_ip) || q.contains(nb.peer_ip) || r.contains(nb.peer_ip) {
                        out.push(
                            Finding::new(
                                "bgp-compat",
                                &d.name,
                                format!("neighbor {}/missing-peer", nb.peer_ip),
                                format!(
                                    "neighbor {} is in private space but no device owns it",
                                    nb.peer_ip
                                ),
                            )
                            .at(&nb.src),
                        );
                    }
                }
                Some(peer) => match &peer.bgp {
                    None => out.push(
                        Finding::new(
                            "bgp-compat",
                            &d.name,
                            format!("neighbor {}/no-bgp", nb.peer_ip),
                            format!("neighbor {} ({}) does not run BGP", nb.peer_ip, peer.name),
                        )
                        .at(&nb.src),
                    ),
                    Some(pb) => {
                        if pb.asn != nb.remote_as {
                            out.push(
                                Finding::new(
                                    "bgp-compat",
                                    &d.name,
                                    format!("neighbor {}/as-mismatch", nb.peer_ip),
                                    format!(
                                        "neighbor {} expects AS {} but {} is AS {}",
                                        nb.peer_ip, nb.remote_as, peer.name, pb.asn
                                    ),
                                )
                                .at(&nb.src),
                            );
                        }
                        let points_back = pb
                            .neighbors
                            .iter()
                            .any(|pn| my_ips.contains(&pn.peer_ip) && pn.remote_as == bgp.asn);
                        if !points_back {
                            out.push(
                                Finding::new(
                                    "bgp-compat",
                                    &d.name,
                                    format!("neighbor {}/half-open", nb.peer_ip),
                                    format!(
                                        "session to {} is not configured on {} (half-open)",
                                        nb.peer_ip, peer.name
                                    ),
                                )
                                .at(&nb.src),
                            );
                        }
                    }
                },
            }
        }
    }
    out
}

/// NTP server consistency: every device should use the majority NTP set
/// (the paper's canonical management-plane check).
pub fn ntp_consistency(devices: &[Device]) -> Vec<Finding> {
    let mut counts: BTreeMap<Vec<Ip>, usize> = BTreeMap::new();
    for d in devices {
        let mut servers = d.ntp_servers.clone();
        servers.sort();
        *counts.entry(servers).or_default() += 1;
    }
    let Some((majority, _)) = counts.iter().max_by_key(|(_, &c)| c) else {
        return Vec::new();
    };
    let majority = majority.clone();
    devices
        .iter()
        .filter(|d| {
            let mut s = d.ntp_servers.clone();
            s.sort();
            s != majority
        })
        .map(|d| {
            Finding::new(
                "ntp-consistency",
                &d.name,
                "ntp",
                format!(
                    "ntp servers {:?} differ from the majority {:?}",
                    d.ntp_servers, majority
                ),
            )
        })
        .collect()
}

/// MTU mismatch across inferred links (a classic silent breaker of OSPF
/// adjacency and of large packets).
pub fn mtu_mismatch(devices: &[Device]) -> Vec<Finding> {
    let topo = Topology::infer(devices);
    let by_name: BTreeMap<&str, &Device> = devices.iter().map(|d| (d.name.as_str(), d)).collect();
    let mut out = Vec::new();
    let mut seen: Vec<(String, String)> = Vec::new();
    for iface_ref in topo.connected_interfaces() {
        for nb in topo.neighbors_of(iface_ref) {
            let key = if (iface_ref.device.as_str(), iface_ref.interface.as_str())
                < (nb.device.as_str(), nb.interface.as_str())
            {
                (iface_ref.to_string(), nb.to_string())
            } else {
                (nb.to_string(), iface_ref.to_string())
            };
            if seen.contains(&key) {
                continue;
            }
            seen.push(key.clone());
            let (Some(a), Some(b)) = (by_name.get(iface_ref.device.as_str()), by_name.get(nb.device.as_str()))
            else {
                continue;
            };
            let (Some(ia), Some(ib)) = (
                a.interfaces.get(&iface_ref.interface),
                b.interfaces.get(&nb.interface),
            ) else {
                continue;
            };
            if ia.mtu != ib.mtu {
                out.push(Finding::new(
                    "mtu-mismatch",
                    "",
                    format!("link {} ~ {}", key.0, key.1),
                    format!("{iface_ref} mtu {} != {nb} mtu {}", ia.mtu, ib.mtu),
                ));
            }
        }
    }
    out
}

/// ACL shadowing via BDDs — the symbolic Lesson-5 analysis, and the
/// building block of the §5.3 ACL-refactoring use-case.
///
/// Two flavors:
/// * **full shadow** (`acl-shadowing`, warning): the line can never match
///   — every packet it names is claimed by earlier lines; it is safe to
///   delete.
/// * **partial shadow** (`acl-partial-shadow`, info): the line is
///   reachable but matches strictly less than written, *and* the stolen
///   region goes to earlier lines with the opposite action — i.e. the
///   overlap changes behaviour, not just bookkeeping. The finding's
///   witness is a concrete flow from the lost region. Catch-all tails
///   (`deny ip any any`) are exempt: their written space is the full
///   universe by idiom, not by intent.
pub fn acl_shadowing(d: &Device) -> Vec<Finding> {
    let (mut bdd, vars) = PacketVars::new(0);
    let mut out = Vec::new();
    for acl in d.acls.values() {
        let compiled = compile_acl(&mut bdd, &vars, acl);
        for (i, line) in acl.lines.iter().enumerate() {
            let hit = compiled.line_hits[i];
            if hit == NodeId::FALSE {
                out.push(
                    Finding::new(
                        "acl-shadowing",
                        &d.name,
                        format!("acl {}/line {}", acl.name, line.seq),
                        format!(
                            "acl {} line {} ({}) is fully shadowed by earlier lines",
                            acl.name, line.seq, line.text
                        ),
                    )
                    .at(&acl.src),
                );
                continue;
            }
            let written = vars.headerspace(&mut bdd, &line.space);
            if written == NodeId::TRUE {
                continue; // catch-all idiom: written space is everything
            }
            let lost = bdd.diff(written, hit);
            if lost == NodeId::FALSE {
                continue;
            }
            // Only report when the lost region lands on earlier lines of
            // the *opposite* action: same-action overlap is harmless.
            let mut conflict = NodeId::FALSE;
            for (j, earlier) in acl.lines.iter().enumerate().take(i) {
                if earlier.action != line.action {
                    let stolen = bdd.and(lost, compiled.line_hits[j]);
                    conflict = bdd.or(conflict, stolen);
                }
            }
            if conflict == NodeId::FALSE {
                continue;
            }
            let witness = bdd
                .pick_cube(conflict)
                .map(|c| vars.cube_to_flow(&c).to_string())
                .unwrap_or_default();
            out.push(
                Finding::new(
                    "acl-partial-shadow",
                    &d.name,
                    format!("acl {}/line {}", acl.name, line.seq),
                    format!(
                        "acl {} line {} ({}) is partially shadowed: earlier opposite-action lines take part of its match set",
                        acl.name, line.seq, line.text
                    ),
                )
                .at(&acl.src)
                .with_witness(witness),
            );
        }
    }
    out
}

/// Dead devices: configured but unable to do anything. Reuses the
/// quarantine vocabulary (kebab-case reason codes in the witness field)
/// so operators see one set of names across quarantine and lint.
pub fn dead_device(d: &Device) -> Vec<Finding> {
    let mut out = Vec::new();
    if !d.interfaces.is_empty() && d.active_interfaces().next().is_none() {
        out.push(
            Finding::new(
                "dead-device",
                &d.name,
                "interfaces",
                "every interface is shutdown; the device cannot forward or peer",
            )
            .with_witness("all-interfaces-shutdown"),
        );
    }
    if let Some(bgp) = &d.bgp {
        if bgp.neighbors.is_empty() {
            out.push(
                Finding::new(
                    "dead-device",
                    &d.name,
                    "bgp",
                    format!("BGP process (AS {}) has no configured sessions", bgp.asn),
                )
                .with_witness("no-bgp-sessions"),
            );
        }
    }
    out
}

/// "Does this ACL permit this packet?" — the paper's direct ACL query,
/// answered symbolically so the result can also report *which* line.
pub fn acl_permits(
    d: &Device,
    acl_name: &str,
    flow: &batnet_net::Flow,
) -> Option<(bool, Option<String>)> {
    let acl = d.acls.get(acl_name)?;
    let (mut bdd, vars) = PacketVars::new(0);
    let compiled = compile_acl(&mut bdd, &vars, acl);
    let f = vars.flow(&mut bdd, flow);
    let permitted = bdd.and(compiled.permits, f) != NodeId::FALSE;
    let line = compiled
        .line_hits
        .iter()
        .position(|&h| {
            let hit = bdd.and(h, f);
            hit != NodeId::FALSE
        })
        .map(|i| acl.lines[i].text.clone());
    Some((permitted, line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::parse_device;
    use batnet_net::Flow;

    fn dev(text: &str) -> Device {
        parse_device("t", text).0
    }

    #[test]
    fn undefined_reference_findings() {
        let d = dev(
            "hostname r1\ninterface e0\n ip address 10.0.0.1/24\n ip access-group NOPE in\nrouter bgp 65001\n neighbor 10.0.0.2 remote-as 65002\n neighbor 10.0.0.2 route-map MISSING in\nroute-map USED permit 10\n match ip address prefix-list ABSENT\n",
        );
        let f = undefined_references(&d);
        let checks: Vec<&str> = f.iter().map(|x| x.message.split(' ').next().unwrap()).collect();
        assert!(checks.contains(&"acl"));
        assert!(checks.contains(&"route-map"));
        assert!(checks.contains(&"prefix-list"));
        assert_eq!(f.len(), 3);
        // All carry the error severity from the catalog.
        assert!(f.iter().all(|x| x.severity == Severity::Error));
        // The BGP-sourced one has a source location (file stamped by
        // parse_device, line by the parser).
        let rm = f.iter().find(|x| x.path.contains("route-map MISSING")).unwrap();
        assert_eq!(rm.file, "t");
        assert!(rm.line > 0);
    }

    #[test]
    fn unused_structure_findings() {
        let d = dev(
            "hostname r1\ninterface e0\n ip address 10.0.0.1/24\n ip access-group USED in\nip access-list extended USED\n 10 permit ip any any\nip access-list extended DEAD\n 10 permit ip any any\nroute-map ORPHAN permit 10\nip prefix-list LONELY seq 5 permit 10.0.0.0/8\n",
        );
        let f = unused_structures(&d);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("acl DEAD")));
        assert!(f.iter().any(|x| x.message.contains("route-map ORPHAN")));
        assert!(f.iter().any(|x| x.message.contains("prefix-list LONELY")));
    }

    #[test]
    fn duplicate_ip_detection() {
        let a = dev("hostname a\ninterface e0\n ip address 10.0.0.1/24\n");
        let mut b = dev("hostname b\ninterface e0\n ip address 10.0.0.1/24\n");
        b.name = "b".into();
        let f = duplicate_ips(&[a, b]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("10.0.0.1"));
        // Distinct addresses are clean.
        let c = dev("hostname c\ninterface e0\n ip address 10.0.0.2/24\n");
        let d2 = dev("hostname d\ninterface e0\n ip address 10.0.0.3/24\n");
        assert!(duplicate_ips(&[c, d2]).is_empty());
    }

    #[test]
    fn bgp_compat_findings() {
        let a = dev(
            "hostname a\ninterface e0\n ip address 10.0.0.1/31\nrouter bgp 65001\n neighbor 10.0.0.0 remote-as 65099\n neighbor 10.9.9.9 remote-as 65003\n",
        );
        let mut b = dev(
            "hostname b\ninterface e0\n ip address 10.0.0.0/31\nrouter bgp 65002\n",
        );
        b.name = "b".into();
        let f = bgp_compatibility(&[a, b]);
        // Wrong AS + not pointing back + private-space missing peer.
        assert!(f.iter().any(|x| x.message.contains("expects AS 65099")), "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("half-open")), "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("no device owns")), "{f:?}");
    }

    #[test]
    fn ntp_majority() {
        let a = dev("hostname a\nntp server 10.255.0.1\ninterface e0\n ip address 10.0.0.1/24\n");
        let b = dev("hostname b\nntp server 10.255.0.1\ninterface e0\n ip address 10.0.1.1/24\n");
        let c = dev("hostname c\nntp server 10.255.0.9\ninterface e0\n ip address 10.0.2.1/24\n");
        let f = ntp_consistency(&[a, b, c]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].device, "c");
    }

    #[test]
    fn mtu_mismatch_on_link() {
        let a = dev("hostname a\ninterface e0\n ip address 10.0.0.0/31\n mtu 9000\n");
        let mut b = dev("hostname b\ninterface e0\n ip address 10.0.0.1/31\n");
        b.name = "b".into();
        let f = mtu_mismatch(&[a, b]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("9000"));
    }

    #[test]
    fn shadowed_acl_line_found() {
        let d = dev(
            "hostname r1\nip access-list extended A\n 10 permit tcp any any\n 20 permit tcp any any eq 80\n 30 deny ip any any\n",
        );
        let f = acl_shadowing(&d);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("line 20"));
        assert_eq!(f[0].check, "acl-shadowing");
    }

    #[test]
    fn partial_shadow_reports_lost_region_with_witness() {
        // Line 20 wants all TCP but line 10 already denied port 22: a
        // behaviour-relevant partial shadow with a concrete witness.
        let d = dev(
            "hostname r1\nip access-list extended A\n 10 deny tcp any any eq 22\n 20 permit tcp any any\n",
        );
        let f = acl_shadowing(&d);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].check, "acl-partial-shadow");
        assert_eq!(f[0].severity, Severity::Info);
        assert!(f[0].path.contains("line 20"));
        assert!(f[0].witness.contains(":22"), "witness names port 22: {}", f[0].witness);
    }

    #[test]
    fn partial_shadow_ignores_same_action_overlap_and_catch_alls() {
        // Same-action overlap (both permit) and an unconstrained final
        // deny: neither is worth a report.
        let d = dev(
            "hostname r1\nip access-list extended A\n 10 permit tcp any any eq 80\n 20 permit tcp any any\n 30 deny ip any any\n",
        );
        assert!(acl_shadowing(&d).is_empty());
    }

    #[test]
    fn dead_device_findings() {
        let d = dev(
            "hostname r1\ninterface e0\n ip address 10.0.0.1/24\n shutdown\nrouter bgp 65001\n",
        );
        let f = dead_device(&d);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.witness == "all-interfaces-shutdown"));
        assert!(f.iter().any(|x| x.witness == "no-bgp-sessions"));
        // A live device is clean.
        let live = dev("hostname r2\ninterface e0\n ip address 10.0.0.2/24\n");
        assert!(dead_device(&live).is_empty());
    }

    #[test]
    fn acl_permit_query_names_the_line() {
        let d = dev(
            "hostname r1\nip access-list extended A\n 10 deny tcp any any eq 22\n 20 permit tcp any any\n",
        );
        let ssh = Flow::tcp("1.1.1.1".parse().unwrap(), 9, "2.2.2.2".parse().unwrap(), 22);
        let (ok, line) = acl_permits(&d, "A", &ssh).unwrap();
        assert!(!ok);
        assert!(line.unwrap().contains("eq 22"));
        let http = Flow::tcp("1.1.1.1".parse().unwrap(), 9, "2.2.2.2".parse().unwrap(), 80);
        let (ok, line) = acl_permits(&d, "A", &http).unwrap();
        assert!(ok);
        assert!(line.unwrap().contains("permit tcp"));
        assert!(acl_permits(&d, "NOPE", &http).is_none());
    }

    #[test]
    fn run_all_aggregates() {
        let a = dev("hostname a\nntp server 1.1.1.1\ninterface e0\n ip address 10.0.0.1/24\n ip access-group NOPE in\n");
        let f = run_all(std::slice::from_ref(&a));
        assert!(f.iter().any(|x| x.check == "undefined-reference"));
    }

    /// The registry invariant: every non-bridged catalog check is wired
    /// into PASSES, every PASSES check id is in the catalog, and no pass
    /// is registered twice. This is the regression test for the historical
    /// bug where `acl_shadowing` was exported but never run.
    #[test]
    fn registry_covers_every_check() {
        let mut from_passes: Vec<&str> = PASSES.iter().flat_map(|(_, ids, _)| ids.iter().copied()).collect();
        from_passes.sort();
        let dup = from_passes.windows(2).find(|w| w[0] == w[1]);
        assert!(dup.is_none(), "check id owned by two passes: {dup:?}");
        for c in CHECKS.iter().filter(|c| !c.bridged) {
            assert!(
                from_passes.contains(&c.id),
                "catalog check '{}' is not dispatched by any pass",
                c.id
            );
        }
        for id in &from_passes {
            assert!(
                CHECKS.iter().any(|c| c.id == *id && !c.bridged),
                "pass emits unregistered check '{id}'"
            );
        }
        let mut names: Vec<&str> = PASSES.iter().map(|(n, _, _)| *n).collect();
        names.sort();
        assert!(names.windows(2).all(|w| w[0] != w[1]), "duplicate pass name");
        // Specifically: the shadowing pass is present.
        assert!(PASSES.iter().any(|(n, _, _)| *n == "acl-shadowing"));
        // And the coverage-gap check is registered exactly once on each side.
        assert_eq!(
            CHECKS.iter().filter(|c| c.id == "unexercised-config").count(),
            1,
            "unexercised-config must appear exactly once in the catalog"
        );
        assert_eq!(
            from_passes.iter().filter(|id| **id == "unexercised-config").count(),
            1,
            "unexercised-config must be dispatched by exactly one pass"
        );
        assert_eq!(severity_of("unexercised-config"), Severity::Info);
    }

    #[test]
    fn fingerprints_are_stable_and_message_insensitive() {
        let mut a = Finding::new("acl-shadowing", "leaf1", "acl SERVERS/line 20", "old wording");
        let b = Finding::new("acl-shadowing", "leaf1", "acl SERVERS/line 20", "completely new wording");
        a.line = 7; // location does not participate either
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint().len(), 16);
        // Known-answer so the scheme cannot drift silently.
        assert_eq!(a.fingerprint(), format!("{:016x}", fnv1a64(&["acl-shadowing", "leaf1", "acl SERVERS/line 20"])));
        // Different path → different fingerprint.
        let c = Finding::new("acl-shadowing", "leaf1", "acl SERVERS/line 30", "x");
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Separator matters: ("ab","c","") vs ("a","bc","").
        assert_ne!(fnv1a64(&["ab", "c", ""]), fnv1a64(&["a", "bc", ""]));
    }

    #[test]
    fn inline_suppression_mutes_a_check() {
        let text = "hostname a\n! batnet-lint-disable unused-structure\ninterface e0\n ip address 10.0.0.1/24\nip access-list extended DEAD\n 10 permit ip any any\n";
        let noisy = dev("hostname a\ninterface e0\n ip address 10.0.0.1/24\nip access-list extended DEAD\n 10 permit ip any any\n");
        assert!(run_all(std::slice::from_ref(&noisy)).iter().any(|f| f.check == "unused-structure"));
        let quiet = dev(text);
        let f = run_all(std::slice::from_ref(&quiet));
        assert!(
            !f.iter().any(|x| x.check == "unused-structure"),
            "directive should mute the check: {f:?}"
        );
    }

    #[test]
    fn diagnostics_bridge_maps_severities() {
        let mut dg = Diagnostics::new();
        dg.push(diag::Severity::UnrecognizedLine, 3, "mystery knob");
        dg.push(diag::Severity::UndefinedReference, 9, "route-map NOPE");
        dg.push(diag::Severity::ParseError, 12, "garbled");
        let f = diagnostics_findings("r1", &dg);
        assert_eq!(f.len(), 3);
        assert!(f.iter().any(|x| x.check == "unrecognized-line" && x.severity == Severity::Warning));
        assert!(f.iter().any(|x| x.check == "undefined-reference" && x.severity == Severity::Error));
        assert!(f.iter().any(|x| x.check == "parse-error" && x.line == 12 && x.file == "r1"));
    }

    #[test]
    fn severity_parses_and_orders() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!("warn".parse::<Severity>().unwrap(), Severity::Warning);
        assert_eq!("note".parse::<Severity>().unwrap(), Severity::Info);
        assert!("loud".parse::<Severity>().is_err());
        assert_eq!(Severity::Info.sarif_level(), "note");
    }
}
