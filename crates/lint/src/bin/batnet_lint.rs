//! `batnet-lint` — run the configuration static-analysis engine from the
//! command line.
//!
//! ```text
//! batnet-lint --net N2 [--format text|json|sarif] [--deny SEV]
//!             [--baseline FILE] [--out FILE] [--drift DEVICE]
//! batnet-lint --dir path/to/configs [...same flags]
//! batnet-lint --validate report.sarif
//! ```
//!
//! Exit codes: 0 clean (or everything below the `--deny` threshold),
//! 1 findings at or above the threshold, 2 usage or I/O error. The
//! binary never panics on input: configs are parsed through the
//! diagnostic-collecting `parse_device`, and parse problems become
//! findings, not aborts.

use batnet_config::parse_device;
use batnet_config::vi::Device;
use batnet_lint::output;
use batnet_lint::{run_network_governed, Severity};
use batnet_net::governor::{Outcome, ResourceGovernor};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    net: Option<String>,
    dir: Option<String>,
    drift: Option<String>,
    format: String,
    deny: Option<Severity>,
    baseline: Option<String>,
    out: Option<String>,
    validate: Option<String>,
    write_baseline: Option<String>,
    deadline_ms: Option<u64>,
}

const USAGE: &str = "usage: batnet-lint (--net ID | --dir PATH) [--format text|json|sarif] \
[--deny info|warning|error] [--baseline FILE] [--write-baseline FILE] [--out FILE] [--drift DEVICE] \
[--deadline-ms N]
       batnet-lint --validate FILE.sarif";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        net: None,
        dir: None,
        drift: None,
        format: "text".into(),
        deny: None,
        baseline: None,
        out: None,
        validate: None,
        write_baseline: None,
        deadline_ms: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--net" => args.net = Some(value("--net")?),
            "--dir" => args.dir = Some(value("--dir")?),
            "--drift" => args.drift = Some(value("--drift")?),
            "--format" => args.format = value("--format")?,
            "--deny" => args.deny = Some(value("--deny")?.parse::<Severity>()?),
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--write-baseline" => args.write_baseline = Some(value("--write-baseline")?),
            "--out" => args.out = Some(value("--out")?),
            "--validate" => args.validate = Some(value("--validate")?),
            "--deadline-ms" => {
                let v = value("--deadline-ms")?;
                args.deadline_ms =
                    Some(v.parse().map_err(|_| format!("--deadline-ms: bad value '{v}'"))?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if !matches!(args.format.as_str(), "text" | "json" | "sarif") {
        return Err(format!("--format must be text|json|sarif, got '{}'", args.format));
    }
    if args.validate.is_none() && args.net.is_none() && args.dir.is_none() {
        return Err(USAGE.to_string());
    }
    Ok(args)
}

/// Loads the configs to lint: a suite network by id, or every regular
/// file in a directory (sorted by name; the file name is the device
/// name).
fn load_configs(args: &Args) -> Result<(String, Vec<(String, String)>), String> {
    if let Some(id) = &args.net {
        let entry = batnet_topogen::suite::suite()
            .into_iter()
            .find(|e| e.id.eq_ignore_ascii_case(id))
            .ok_or_else(|| {
                let ids: Vec<&str> = batnet_topogen::suite::suite().iter().map(|e| e.id).collect();
                format!("unknown network '{id}' (known: {})", ids.join(", "))
            })?;
        let mut net = (entry.build)();
        if let Some(victim) = &args.drift {
            if !net.seed_policy_drift(victim) {
                return Err(format!("--drift: no DNS ACL line to perturb on '{victim}'"));
            }
        }
        Ok((net.name, net.configs))
    } else if let Some(dir) = &args.dir {
        let mut entries: Vec<(String, String)> = Vec::new();
        let rd = std::fs::read_dir(dir).map_err(|e| format!("--dir {dir}: {e}"))?;
        for entry in rd {
            let entry = entry.map_err(|e| format!("--dir {dir}: {e}"))?;
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("unnamed")
                .to_string();
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            entries.push((name, text));
        }
        if entries.is_empty() {
            return Err(format!("--dir {dir}: no config files"));
        }
        entries.sort();
        Ok((dir.clone(), entries))
    } else {
        Err(USAGE.to_string())
    }
}

fn write_output(out: Option<&str>, text: &str) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("{path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;

    if let Some(path) = &args.validate {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        output::validate_sarif(&text).map_err(|e| format!("{path}: invalid SARIF: {e}"))?;
        println!("{path}: ok");
        return Ok(ExitCode::SUCCESS);
    }

    let (network, configs) = load_configs(&args)?;
    let span = batnet_obs::Span::enter("lint.cli");
    let mut devices: Vec<Device> = Vec::with_capacity(configs.len());
    let mut diags = Vec::with_capacity(configs.len());
    for (name, text) in &configs {
        let (device, dg) = parse_device(name, text);
        devices.push(device);
        diags.push((name.clone(), dg));
    }
    // The same ResourceGovernor the analysis pipeline and batnet-serve
    // use: a blown deadline degrades the run to a partial finding list
    // with accounting, never a hang.
    let gov = match args.deadline_ms {
        Some(ms) => ResourceGovernor::with_deadline(Duration::from_millis(ms)),
        None => ResourceGovernor::unlimited(),
    };
    let (mut findings, partial) = match run_network_governed(&devices, &diags, &gov) {
        Outcome::Complete(f) => (f, None),
        Outcome::Partial {
            completed,
            abandoned,
            why,
        } => (completed, Some((abandoned, why))),
    };
    span.close();
    if let Some((abandoned, why)) = &partial {
        batnet_obs::counter_add("lint.partial", 1);
        eprintln!(
            "batnet-lint: partial result: {why}; abandoned passes: {}",
            abandoned.join(", ")
        );
    }

    if let Some(path) = &args.write_baseline {
        std::fs::write(path, output::write_baseline(&findings)).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = &args.baseline {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let fps = output::parse_baseline(&text).map_err(|e| format!("{path}: {e}"))?;
        let (kept, muted) = output::apply_baseline(findings, &fps);
        findings = kept;
        batnet_obs::counter_add("lint.baselined", muted as u64);
    }

    let rendered = match args.format.as_str() {
        "json" => output::render_json(&network, &findings),
        "sarif" => output::render_sarif(&findings),
        _ => output::render_text(&findings),
    };
    write_output(args.out.as_deref(), &rendered)?;

    if let Some(deny) = args.deny {
        let over = findings.iter().filter(|f| f.severity >= deny).count();
        if over > 0 {
            eprintln!("batnet-lint: {over} finding(s) at or above --deny {deny}");
            return Ok(ExitCode::FAILURE);
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("batnet-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
