//! Cross-device policy-drift detection.
//!
//! In a well-run network, devices playing the same topology role (leaf,
//! spine, border…) carry the *same* policy: the SERVERS ACL on leaf 17
//! should mean the same thing as on leaf 4, even if the text differs.
//! Drift — one device quietly diverging from its peers — is a classic
//! slow-burn outage source, and it is invisible to purely local checks
//! because every individual config is well-formed.
//!
//! The pass groups devices by role, compiles each role-peer's ACLs and
//! route-map accept-sets to BDDs *in one shared manager per group* (so
//! semantically equal policies hash-cons to the same node id), and flags
//! devices whose policy differs from the role majority, with a concrete
//! witness flow (ACLs) or prefix (route maps) from the symmetric
//! difference. Devices missing a structure that a strict majority of
//! peers define are flagged too.
//!
//! Role inference is deliberately cheap: the longest alphabetic run in
//! the device name ("leaf17" → "leaf", "agg0-1" → "agg"), falling back to
//! a degree bucket (`degree-N` by BGP session count) for names with no
//! letters. Groups smaller than three devices are skipped — with two
//! members there is no majority, only a tie.

use crate::routemap::{cube_route, permit_set, RouteVars};
use crate::Finding;
use batnet_bdd::NodeId;
use batnet_config::vi::Device;
use batnet_dataplane::acl::compile_acl;
use batnet_dataplane::PacketVars;
use std::collections::{BTreeMap, BTreeSet};

/// The inferred role of a device: longest alphabetic run of its name
/// (ties broken toward the last run), lowercased; `degree-<n>` when the
/// name has no letters.
pub fn role_of(d: &Device) -> String {
    let mut best: &str = "";
    let mut start = None;
    let name = d.name.as_str();
    for (i, c) in name.char_indices().chain([(name.len(), '0')]) {
        match (start, c.is_ascii_alphabetic()) {
            (None, true) => start = Some(i),
            (Some(s), false) => {
                let run = &name[s..i];
                if run.len() >= best.len() {
                    best = run;
                }
                start = None;
            }
            _ => {}
        }
    }
    if best.is_empty() {
        format!("degree-{}", d.bgp.as_ref().map_or(0, |b| b.neighbors.len()))
    } else {
        best.to_ascii_lowercase()
    }
}

/// The drift pass: see the module docs.
pub fn policy_drift(devices: &[Device]) -> Vec<Finding> {
    let mut groups: BTreeMap<String, Vec<&Device>> = BTreeMap::new();
    for d in devices {
        groups.entry(role_of(d)).or_default().push(d);
    }
    let mut out = Vec::new();
    for (role, mut members) in groups {
        if members.len() < 3 {
            continue;
        }
        // Sort by name so results are independent of input order.
        members.sort_by(|a, b| a.name.cmp(&b.name));
        drift_acls(&role, &members, &mut out);
        drift_route_maps(&role, &members, &mut out);
    }
    out
}

/// Buckets `holders` (device, compiled-policy) pairs by policy function
/// and returns the bucket index of the majority. Equal functions share a
/// node id (one manager per group), so bucketing is a pointer compare;
/// ties break toward the bucket containing the alphabetically smallest
/// device, which keeps the result independent of input order.
fn majority_bucket<'a>(holders: &[(&'a Device, NodeId)]) -> Vec<(NodeId, Vec<&'a Device>)> {
    let mut buckets: Vec<(NodeId, Vec<&'a Device>)> = Vec::new();
    for (d, f) in holders {
        match buckets.iter_mut().find(|(g, _)| g == f) {
            Some((_, devs)) => devs.push(d),
            None => buckets.push((*f, vec![d])),
        }
    }
    // Move the majority bucket to index 0.
    if let Some(maj) = (0..buckets.len()).max_by(|&i, &j| {
        buckets[i]
            .1
            .len()
            .cmp(&buckets[j].1.len())
            .then_with(|| buckets[j].1[0].name.cmp(&buckets[i].1[0].name))
    }) {
        buckets.swap(0, maj);
    }
    buckets
}

fn drift_acls(role: &str, members: &[&Device], out: &mut Vec<Finding>) {
    let names: BTreeSet<&str> = members
        .iter()
        .flat_map(|d| d.acls.keys().map(String::as_str))
        .collect();
    if names.is_empty() {
        return;
    }
    let (mut bdd, vars) = PacketVars::new(0);
    for name in names {
        let mut holders: Vec<(&Device, NodeId)> = Vec::new();
        let mut missing: Vec<&Device> = Vec::new();
        for d in members {
            match d.acls.get(name) {
                Some(acl) => holders.push((d, compile_acl(&mut bdd, &vars, acl).permits)),
                None => missing.push(d),
            }
        }
        // Only a structure a strict majority of the role defines is a
        // role norm worth comparing against.
        if holders.len() * 2 <= members.len() {
            continue;
        }
        for d in &missing {
            out.push(Finding::new(
                "policy-drift",
                &d.name,
                format!("acl {name}/missing"),
                format!(
                    "role '{role}': {} of {} peers define acl {name} but this device does not",
                    holders.len(),
                    members.len()
                ),
            ));
        }
        let buckets = majority_bucket(&holders);
        if buckets.len() < 2 {
            continue; // consensus
        }
        let (maj_fn, maj_devs) = (buckets[0].0, buckets[0].1.len());
        for (g, devs) in &buckets[1..] {
            for d in devs {
                let extra = bdd.diff(*g, maj_fn);
                let (region, verdict) = if extra != NodeId::FALSE {
                    (extra, "permits")
                } else {
                    (bdd.diff(maj_fn, *g), "denies")
                };
                let witness = bdd
                    .pick_cube(region)
                    .map(|c| vars.cube_to_flow(&c).to_string())
                    .unwrap_or_default();
                out.push(
                    Finding::new(
                        "policy-drift",
                        &d.name,
                        format!("acl {name}"),
                        format!(
                            "role '{role}': acl {name} diverges from the role majority \
                             ({maj_devs} of {} peers agree); this device {verdict} traffic the majority does not",
                            holders.len()
                        ),
                    )
                    .at(&d.acls[name].src)
                    .with_witness(witness),
                );
            }
        }
    }
}

fn drift_route_maps(role: &str, members: &[&Device], out: &mut Vec<Finding>) {
    let names: BTreeSet<&str> = members
        .iter()
        .flat_map(|d| d.route_maps.keys().map(String::as_str))
        .collect();
    if names.is_empty() {
        return;
    }
    // One shared route space across the whole group: community/regex
    // indicator bits span the union of what members mention.
    let (mut bdd, vars) = RouteVars::for_devices(members);
    for name in names {
        let mut holders: Vec<(&Device, NodeId)> = Vec::new();
        let mut missing: Vec<&Device> = Vec::new();
        for d in members {
            match d.route_maps.get(name) {
                Some(rm) => holders.push((d, permit_set(&mut bdd, &vars, d, rm))),
                None => missing.push(d),
            }
        }
        if holders.len() * 2 <= members.len() {
            continue;
        }
        for d in &missing {
            out.push(Finding::new(
                "policy-drift",
                &d.name,
                format!("route-map {name}/missing"),
                format!(
                    "role '{role}': {} of {} peers define route-map {name} but this device does not",
                    holders.len(),
                    members.len()
                ),
            ));
        }
        let buckets = majority_bucket(&holders);
        if buckets.len() < 2 {
            continue;
        }
        let (maj_fn, maj_devs) = (buckets[0].0, buckets[0].1.len());
        for (g, devs) in &buckets[1..] {
            for d in devs {
                let extra = bdd.diff(*g, maj_fn);
                let (region, verdict) = if extra != NodeId::FALSE {
                    (extra, "accepts")
                } else {
                    (bdd.diff(maj_fn, *g), "rejects")
                };
                let witness = bdd.pick_cube(region).map(|c| cube_route(&c)).unwrap_or_default();
                out.push(
                    Finding::new(
                        "policy-drift",
                        &d.name,
                        format!("route-map {name}"),
                        format!(
                            "role '{role}': route-map {name} diverges from the role majority \
                             ({maj_devs} of {} peers agree); this device {verdict} routes the majority does not",
                            holders.len()
                        ),
                    )
                    .at(&d.route_maps[name].src)
                    .with_witness(witness),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::parse_device;

    fn dev(name: &str, text: &str) -> Device {
        parse_device(name, text).0
    }

    fn leaf(name: &str, dns_port: u16) -> Device {
        dev(
            name,
            &format!(
                "hostname {name}\ninterface servers\n ip access-group SERVERS in\n ip address 10.0.0.1/24\nip access-list extended SERVERS\n 10 permit tcp any any eq 80\n 20 permit udp any any eq {dns_port}\n 30 deny ip any any\n"
            ),
        )
    }

    #[test]
    fn role_inference() {
        for (name, want) in [
            ("leaf17", "leaf"),
            ("spine0", "spine"),
            ("agg0-1", "agg"),
            ("a-leaf3", "leaf"),
            ("border_a", "border"),
            ("core", "core"),
            ("Access9", "access"),
        ] {
            let d = dev(name, &format!("hostname {name}\n"));
            assert_eq!(role_of(&d), want, "{name}");
        }
        // No letters at all: degree bucket.
        let d = dev("17", "hostname 17\nrouter bgp 65000\n neighbor 10.0.0.1 remote-as 65001\n");
        assert_eq!(role_of(&d), "degree-1");
    }

    #[test]
    fn detects_acl_drift_with_witness() {
        let devices = vec![leaf("leaf0", 53), leaf("leaf1", 53), leaf("leaf2", 53), leaf("leaf3", 5353)];
        let f = policy_drift(&devices);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].check, "policy-drift");
        assert_eq!(f[0].device, "leaf3");
        assert!(f[0].message.contains("3 of 4 peers agree"), "{}", f[0].message);
        assert!(!f[0].witness.is_empty());
        // The witness flow names one of the diverging DNS ports.
        assert!(
            f[0].witness.contains(":53") || f[0].witness.contains(":5353"),
            "witness: {}",
            f[0].witness
        );
    }

    #[test]
    fn identical_policies_are_clean_and_order_insensitive() {
        let mut devices = vec![leaf("leaf0", 53), leaf("leaf1", 53), leaf("leaf2", 53)];
        assert!(policy_drift(&devices).is_empty());
        // Add drift, then shuffle the input order: same single finding.
        devices.push(leaf("leaf3", 5353));
        let forward = policy_drift(&devices);
        devices.reverse();
        let reversed = policy_drift(&devices);
        assert_eq!(forward, reversed);
    }

    #[test]
    fn missing_structure_is_drift() {
        let bare = dev("leaf9", "hostname leaf9\ninterface servers\n ip address 10.0.9.1/24\n");
        let devices = vec![leaf("leaf0", 53), leaf("leaf1", 53), leaf("leaf2", 53), bare];
        let f = policy_drift(&devices);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].device, "leaf9");
        assert!(f[0].path.ends_with("/missing"));
    }

    #[test]
    fn small_groups_are_skipped() {
        let devices = vec![leaf("leaf0", 53), leaf("leaf1", 5353)];
        assert!(policy_drift(&devices).is_empty());
    }

    #[test]
    fn route_map_drift_detected() {
        let rm_dev = |name: &str, tag: u32| {
            dev(
                name,
                &format!(
                    "hostname {name}\nrouter bgp 65001\n neighbor 10.0.0.2 remote-as 65002\n neighbor 10.0.0.2 route-map EXPORT out\nroute-map EXPORT permit 10\n match tag {tag}\n"
                ),
            )
        };
        let devices = vec![rm_dev("bdr0", 7), rm_dev("bdr1", 7), rm_dev("bdr2", 9)];
        let f = policy_drift(&devices);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].device, "bdr2");
        assert!(f[0].path.contains("route-map EXPORT"));
    }
}
