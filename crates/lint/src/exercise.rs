//! Which structures can a query suite exercise at all?
//!
//! The coverage engine (`batnet-coverage`) classifies every ACL line,
//! route-map clause, and BGP neighbor stanza as *exercised*,
//! *shadowed-but-present*, or *never-touched*. The third bucket is a
//! pure reachability-of-reference property of the VI model — no BDD
//! work needed — so it lives here, registered as the `unexercised-config`
//! check: lint runs report the gaps, and the coverage engine consumes
//! [`never_touched_structures`] directly so both layers agree on what
//! "never touched" means.
//!
//! A structure is never-touched when no query of the suite (reachability
//! starts, traceroutes, lint BDD passes) can reach it:
//!
//! * an ACL that is never attached to an interface, zone policy, or NAT
//!   rule — or attached only to inactive (shutdown/unaddressed)
//!   interfaces that forwarding never consults;
//! * a route-map that no BGP neighbor applies as import or export
//!   policy (route propagation never evaluates it);
//! * a BGP neighbor whose peer address is owned by no active interface
//!   in the snapshot (the session can never even be attempted).

use crate::Finding;
use batnet_config::vi::{Device, SourceSpan};
use batnet_net::Ip;

/// A reference to one coverable structure on a device.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StructureRef {
    /// An ACL by name.
    Acl(String),
    /// A route map by name.
    RouteMap(String),
    /// A BGP neighbor by peer address.
    BgpNeighbor(Ip),
}

impl StructureRef {
    /// The finding path / coverage item path for this structure.
    pub fn path(&self) -> String {
        match self {
            StructureRef::Acl(n) => format!("acl {n}"),
            StructureRef::RouteMap(n) => format!("route-map {n}"),
            StructureRef::BgpNeighbor(ip) => format!("neighbor {ip}"),
        }
    }
}

/// One structure no query suite can exercise, with the reason.
#[derive(Clone, Debug)]
pub struct NeverTouched {
    /// Owning device name.
    pub device: String,
    /// Which structure.
    pub what: StructureRef,
    /// Where it was defined.
    pub span: SourceSpan,
    /// Why no query reaches it.
    pub reason: String,
}

/// Every never-touched structure in the snapshot, deterministically
/// ordered (device, then structure kind, then name/address).
pub fn never_touched_structures(devices: &[Device]) -> Vec<NeverTouched> {
    let mut out = Vec::new();
    for d in devices {
        for (name, acl) in &d.acls {
            let mut active_attach = false;
            let mut inactive_attach = false;
            for iface in d.interfaces.values() {
                if iface.acl_in.as_deref() == Some(name) || iface.acl_out.as_deref() == Some(name) {
                    if iface.is_active() {
                        active_attach = true;
                    } else {
                        inactive_attach = true;
                    }
                }
            }
            let zone_used = d.zone_policies.iter().any(|zp| zp.acl.name == *name);
            let nat_used = d.nat_rules.iter().any(|r| r.text.contains(name.as_str()));
            if active_attach || zone_used || nat_used {
                continue;
            }
            let reason = if inactive_attach {
                "attached only to inactive interfaces; forwarding never consults it"
            } else {
                "never attached to an interface, zone policy, or NAT rule"
            };
            out.push(NeverTouched {
                device: d.name.clone(),
                what: StructureRef::Acl(name.clone()),
                span: acl.src.clone(),
                reason: reason.to_string(),
            });
        }
        for (name, rm) in &d.route_maps {
            let referenced = d.bgp.as_ref().is_some_and(|bgp| {
                bgp.neighbors.iter().any(|nb| {
                    nb.import_policy.as_deref() == Some(name)
                        || nb.export_policy.as_deref() == Some(name)
                })
            });
            if !referenced {
                out.push(NeverTouched {
                    device: d.name.clone(),
                    what: StructureRef::RouteMap(name.clone()),
                    span: rm.src.clone(),
                    reason: "no BGP neighbor applies it as import or export policy".to_string(),
                });
            }
        }
        if let Some(bgp) = &d.bgp {
            for nb in &bgp.neighbors {
                let resolvable = devices
                    .iter()
                    .any(|peer| peer.interface_owning_ip(nb.peer_ip).is_some());
                if !resolvable {
                    out.push(NeverTouched {
                        device: d.name.clone(),
                        what: StructureRef::BgpNeighbor(nb.peer_ip),
                        span: nb.src.clone(),
                        reason: format!(
                            "peer {} is owned by no active interface in the snapshot",
                            nb.peer_ip
                        ),
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.device, &a.what).cmp(&(&b.device, &b.what)));
    out
}

/// The `unexercised-config` pass: one finding per never-touched
/// structure. These are coverage gaps, not outright errors — a config
/// the query suite cannot exercise is config the analysis says nothing
/// about (untested config, per the coverage literature).
pub fn unexercised_config(devices: &[Device]) -> Vec<Finding> {
    never_touched_structures(devices)
        .into_iter()
        .map(|nt| {
            let path = nt.what.path();
            let message = format!("{path} can never be exercised: {}", nt.reason);
            Finding::new("unexercised-config", &nt.device, path, message).at(&nt.span)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::parse_device;

    #[test]
    fn unattached_acl_and_unreferenced_route_map_flagged() {
        let text = "\
hostname r1
interface e0
 ip address 10.0.0.1/24
 ip access-group USED in
ip access-list extended USED
 10 permit ip any any
ip access-list extended ORPHAN
 10 deny ip any any
route-map RM-LOST permit 10
 set local-preference 99
";
        let (d, _) = parse_device("r1", text);
        let nts = never_touched_structures(&[d]);
        let paths: Vec<String> = nts.iter().map(|n| n.what.path()).collect();
        assert_eq!(paths, vec!["acl ORPHAN", "route-map RM-LOST"]);
        assert!(nts[0].span.is_known(), "gap findings carry source spans");
    }

    #[test]
    fn acl_on_shutdown_interface_is_never_touched() {
        let text = "\
hostname r1
interface e0
 ip address 10.0.0.1/24
 ip access-group A in
 shutdown
ip access-list extended A
 10 permit ip any any
";
        let (d, _) = parse_device("r1", text);
        let nts = never_touched_structures(&[d]);
        assert_eq!(nts.len(), 1);
        assert!(nts[0].reason.contains("inactive interfaces"));
    }

    #[test]
    fn unresolvable_bgp_neighbor_flagged_and_resolvable_not() {
        let r1 = "\
hostname r1
interface e0
 ip address 172.16.0.0/31
router bgp 65001
 neighbor 172.16.0.1 remote-as 65002
 neighbor 192.0.2.99 remote-as 65099
";
        let r2 = "\
hostname r2
interface e0
 ip address 172.16.0.1/31
router bgp 65002
 neighbor 172.16.0.0 remote-as 65001
";
        let (d1, _) = parse_device("r1", r1);
        let (d2, _) = parse_device("r2", r2);
        let nts = never_touched_structures(&[d1, d2]);
        let paths: Vec<String> = nts.iter().map(|n| n.what.path()).collect();
        assert_eq!(paths, vec!["neighbor 192.0.2.99"]);
    }

    #[test]
    fn findings_flow_through_registry() {
        let text = "\
hostname r1
ip access-list extended ORPHAN
 10 deny ip any any
";
        let (d, _) = parse_device("r1", text);
        let findings = crate::run_all(&[d]);
        assert!(
            findings
                .iter()
                .any(|f| f.check == "unexercised-config" && f.path == "acl ORPHAN"),
            "run_all dispatches the unexercised-config pass: {findings:?}"
        );
    }
}
