//! Finding serialization: text, a stable JSON report, SARIF-lite, and
//! fingerprint baselines.
//!
//! All JSON is hand-rolled over [`batnet_obs::json`] (the workspace is
//! offline — no serde) and deliberately timestamp-free: the same devices
//! always serialize to the same bytes, which is what lets CI diff
//! reports and the determinism tests compare runs bytewise.
//!
//! The SARIF output is a pragmatic subset of SARIF 2.1.0 — `tool.driver`
//! with a rule per catalog check, one `result` per finding with
//! `level`, `message.text`, a `partialFingerprints."batnet/v1"` entry
//! (the stable fingerprint), and a physical location when the finding
//! has one. [`validate_sarif`] checks exactly that contract, in the
//! spirit of `obs-validate`: produce *and* verify the format in-tree so
//! drift between writer and reader is a test failure, not a consumer
//! surprise.

use crate::{Finding, Severity, CHECKS};
use batnet_obs::json::{self, write_str, Value};
use std::fmt::Write as _;

/// Plain-text rendering, one finding per line:
/// `severity[check] device path: message (witness: …) [file:line]`.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = write!(out, "{}[{}]", f.severity, f.check);
        if !f.device.is_empty() {
            let _ = write!(out, " {}", f.device);
        }
        if !f.path.is_empty() {
            let _ = write!(out, " {}", f.path);
        }
        let _ = write!(out, ": {}", f.message);
        if !f.witness.is_empty() {
            let _ = write!(out, " (witness: {})", f.witness);
        }
        if !f.file.is_empty() {
            let _ = write!(out, " [{}:{}]", f.file, f.line);
        }
        out.push('\n');
    }
    out
}

fn count_by(findings: &[Finding], sev: Severity) -> usize {
    findings.iter().filter(|f| f.severity == sev).count()
}

/// The JSON report: schema id, network name, per-severity counts, and
/// the full finding list (sorted by the caller; [`crate::run_all`]
/// already sorts). No timestamps — byte-identical across runs.
pub fn render_json(network: &str, findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"batnet-lint/v1\",\"network\":");
    write_str(&mut out, network);
    let _ = write!(
        out,
        ",\"counts\":{{\"error\":{},\"warning\":{},\"info\":{},\"total\":{}}},\"findings\":[",
        count_by(findings, Severity::Error),
        count_by(findings, Severity::Warning),
        count_by(findings, Severity::Info),
        findings.len()
    );
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"fingerprint\":");
        write_str(&mut out, &f.fingerprint());
        out.push_str(",\"check\":");
        write_str(&mut out, f.check);
        out.push_str(",\"severity\":");
        write_str(&mut out, f.severity.as_str());
        out.push_str(",\"device\":");
        write_str(&mut out, &f.device);
        out.push_str(",\"path\":");
        write_str(&mut out, &f.path);
        out.push_str(",\"message\":");
        write_str(&mut out, &f.message);
        if !f.file.is_empty() {
            out.push_str(",\"file\":");
            write_str(&mut out, &f.file);
            let _ = write!(out, ",\"line\":{}", f.line);
        }
        if !f.witness.is_empty() {
            out.push_str(",\"witness\":");
            write_str(&mut out, &f.witness);
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// SARIF-lite 2.1.0: one run, one rule per catalog check, one result per
/// finding.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str(
        "{\"version\":\"2.1.0\",\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"runs\":[{\"tool\":{\"driver\":{\"name\":\"batnet-lint\",\"rules\":[",
    );
    for (i, c) in CHECKS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        write_str(&mut out, c.id);
        out.push_str(",\"shortDescription\":{\"text\":");
        write_str(&mut out, c.what);
        out.push_str("},\"defaultConfiguration\":{\"level\":");
        write_str(&mut out, c.severity.sarif_level());
        out.push_str("}}");
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"ruleId\":");
        write_str(&mut out, f.check);
        out.push_str(",\"level\":");
        write_str(&mut out, f.severity.sarif_level());
        out.push_str(",\"message\":{\"text\":");
        let text = if f.witness.is_empty() {
            f.message.clone()
        } else {
            format!("{} (witness: {})", f.message, f.witness)
        };
        write_str(&mut out, &text);
        out.push_str("},\"partialFingerprints\":{\"batnet/v1\":");
        write_str(&mut out, &f.fingerprint());
        out.push('}');
        if !f.device.is_empty() || !f.file.is_empty() {
            // Physical location when we have a file, logical otherwise.
            out.push_str(",\"locations\":[{");
            if !f.file.is_empty() {
                out.push_str("\"physicalLocation\":{\"artifactLocation\":{\"uri\":");
                write_str(&mut out, &f.file);
                let _ = write!(out, "}},\"region\":{{\"startLine\":{}}}}}", f.line.max(1));
                if !f.device.is_empty() {
                    out.push(',');
                }
            }
            if !f.device.is_empty() {
                out.push_str("\"logicalLocations\":[{\"name\":");
                write_str(&mut out, &f.device);
                out.push_str("}]");
            }
            out.push_str("}]");
        }
        out.push('}');
    }
    out.push_str("]}]}\n");
    out
}

fn is_fingerprint(s: &str) -> bool {
    s.len() == 16 && s.bytes().all(|b| b.is_ascii_hexdigit())
}

/// Validates the SARIF-lite contract: version, one run with a named
/// driver and rules, and for every result a known `ruleId`, a legal
/// `level`, a `message.text`, and a well-formed `batnet/v1` fingerprint.
pub fn validate_sarif(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    if doc.get("version").and_then(Value::as_str) != Some("2.1.0") {
        return Err("version must be \"2.1.0\"".into());
    }
    let runs = doc
        .get("runs")
        .and_then(Value::as_arr)
        .ok_or("missing runs array")?;
    if runs.is_empty() {
        return Err("runs is empty".into());
    }
    for run in runs {
        let driver = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .ok_or("run missing tool.driver")?;
        if driver.get("name").and_then(Value::as_str).is_none() {
            return Err("driver missing name".into());
        }
        let rules = driver
            .get("rules")
            .and_then(Value::as_arr)
            .ok_or("driver missing rules")?;
        let rule_ids: Vec<&str> = rules
            .iter()
            .filter_map(|r| r.get("id").and_then(Value::as_str))
            .collect();
        if rule_ids.len() != rules.len() {
            return Err("every rule needs a string id".into());
        }
        let results = run
            .get("results")
            .and_then(Value::as_arr)
            .ok_or("run missing results array")?;
        for (i, r) in results.iter().enumerate() {
            let rule = r
                .get("ruleId")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("result {i}: missing ruleId"))?;
            if !rule_ids.contains(&rule) {
                return Err(format!("result {i}: ruleId '{rule}' not declared in rules"));
            }
            let level = r
                .get("level")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("result {i}: missing level"))?;
            if !matches!(level, "error" | "warning" | "note") {
                return Err(format!("result {i}: bad level '{level}'"));
            }
            if r.get("message").and_then(|m| m.get("text")).and_then(Value::as_str).is_none() {
                return Err(format!("result {i}: missing message.text"));
            }
            let fp = r
                .get("partialFingerprints")
                .and_then(|p| p.get("batnet/v1"))
                .and_then(Value::as_str)
                .ok_or_else(|| format!("result {i}: missing partialFingerprints.batnet/v1"))?;
            if !is_fingerprint(fp) {
                return Err(format!("result {i}: malformed fingerprint '{fp}'"));
            }
        }
    }
    Ok(())
}

/// Serializes a baseline: the fingerprints of `findings`, to be muted in
/// later runs.
pub fn write_baseline(findings: &[Finding]) -> String {
    let mut fps: Vec<String> = findings.iter().map(Finding::fingerprint).collect();
    fps.sort();
    fps.dedup();
    let mut out = String::new();
    out.push_str("{\"schema\":\"batnet-lint-baseline/v1\",\"fingerprints\":[");
    for (i, fp) in fps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(&mut out, fp);
    }
    out.push_str("]}\n");
    out
}

/// Parses a baseline file into its fingerprint list.
pub fn parse_baseline(text: &str) -> Result<Vec<String>, String> {
    let doc = json::parse(text)?;
    if doc.get("schema").and_then(Value::as_str) != Some("batnet-lint-baseline/v1") {
        return Err("baseline schema must be \"batnet-lint-baseline/v1\"".into());
    }
    let arr = doc
        .get("fingerprints")
        .and_then(Value::as_arr)
        .ok_or("baseline missing fingerprints array")?;
    let mut out = Vec::with_capacity(arr.len());
    for v in arr {
        let fp = v.as_str().ok_or("fingerprints must be strings")?;
        if !is_fingerprint(fp) {
            return Err(format!("malformed fingerprint '{fp}'"));
        }
        out.push(fp.to_string());
    }
    Ok(out)
}

/// Drops findings whose fingerprint is baselined; returns the survivors
/// and the number muted.
pub fn apply_baseline(findings: Vec<Finding>, baseline: &[String]) -> (Vec<Finding>, usize) {
    let before = findings.len();
    let kept: Vec<Finding> = findings
        .into_iter()
        .filter(|f| !baseline.contains(&f.fingerprint()))
        .collect();
    let muted = before - kept.len();
    (kept, muted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::vi::SourceSpan;

    fn sample() -> Vec<Finding> {
        vec![
            Finding::new("undefined-reference", "r1", "interface e0 (in)/acl NOPE", "acl NOPE is not defined")
                .at(&SourceSpan { file: "r1".into(), line: 4, end_line: 4 }),
            Finding::new("acl-partial-shadow", "r2", "acl A/line 20", "partially shadowed")
                .with_witness("tcp 0.0.0.0:0 -> 0.0.0.0:22"),
            Finding::new("duplicate-ip", "", "ip 10.0.0.1", "10.0.0.1 assigned twice"),
        ]
    }

    #[test]
    fn text_rendering_lists_everything() {
        let text = render_text(&sample());
        assert!(text.contains("error[undefined-reference] r1"));
        assert!(text.contains("[r1:4]"));
        assert!(text.contains("witness: tcp"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn json_report_roundtrips_and_counts() {
        let findings = sample();
        let text = render_json("T1", &findings);
        let doc = json::parse(&text).expect("valid json");
        assert_eq!(doc.get("schema").and_then(Value::as_str), Some("batnet-lint/v1"));
        assert_eq!(doc.get("network").and_then(Value::as_str), Some("T1"));
        let counts = doc.get("counts").expect("counts");
        assert_eq!(counts.get("error").and_then(Value::as_f64), Some(2.0));
        assert_eq!(counts.get("info").and_then(Value::as_f64), Some(1.0));
        assert_eq!(counts.get("total").and_then(Value::as_f64), Some(3.0));
        let arr = doc.get("findings").and_then(Value::as_arr).expect("findings");
        assert_eq!(arr.len(), 3);
        assert_eq!(
            arr[0].get("fingerprint").and_then(Value::as_str),
            Some(findings[0].fingerprint().as_str())
        );
        // Determinism: same input, same bytes.
        assert_eq!(text, render_json("T1", &findings));
    }

    #[test]
    fn sarif_output_validates() {
        let text = render_sarif(&sample());
        validate_sarif(&text).expect("own SARIF validates");
        // And it is real JSON with the right shape.
        let doc = json::parse(&text).expect("valid json");
        let runs = doc.get("runs").and_then(Value::as_arr).expect("runs");
        let results = runs[0].get("results").and_then(Value::as_arr).expect("results");
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn sarif_validator_rejects_bad_documents() {
        assert!(validate_sarif("{}").is_err());
        assert!(validate_sarif("{\"version\":\"2.1.0\",\"runs\":[]}").is_err());
        // Undeclared ruleId.
        let bad = "{\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"x\",\"rules\":[]}},\
                   \"results\":[{\"ruleId\":\"ghost\",\"level\":\"error\",\"message\":{\"text\":\"m\"},\
                   \"partialFingerprints\":{\"batnet/v1\":\"0123456789abcdef\"}}]}]}";
        let err = validate_sarif(bad).expect_err("undeclared rule");
        assert!(err.contains("ghost"));
        // Malformed fingerprint.
        let bad_fp = bad.replace("0123456789abcdef", "xyz");
        let err = validate_sarif(&bad_fp.replace("ghost", "g").replace("\"rules\":[]", "\"rules\":[{\"id\":\"g\"}]"))
            .expect_err("bad fingerprint");
        assert!(err.contains("fingerprint"));
    }

    #[test]
    fn baseline_roundtrip_and_apply() {
        let findings = sample();
        let baseline_text = write_baseline(&findings[..1]);
        let fps = parse_baseline(&baseline_text).expect("parses");
        assert_eq!(fps, vec![findings[0].fingerprint()]);
        let (kept, muted) = apply_baseline(findings.clone(), &fps);
        assert_eq!(muted, 1);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|f| f.fingerprint() != fps[0]));
        // Bad baselines are rejected.
        assert!(parse_baseline("{\"fingerprints\":[]}").is_err());
        assert!(parse_baseline("{\"schema\":\"batnet-lint-baseline/v1\",\"fingerprints\":[\"zz\"]}").is_err());
    }
}
