//! Symbolic route-map analysis: dead-clause detection over *route* space.
//!
//! Route maps match on route attributes, not packet headers, so this
//! analysis builds a second BDD space whose variables describe a route:
//! its prefix (network bits + length), tag, MED, one indicator bit per
//! community the device's config mentions, and one uninterpreted bit per
//! AS-path regex (sound: an uninterpreted condition never makes a clause
//! *appear* dead). A clause is dead when every route it matches is
//! already claimed by earlier clauses — the same first-match carving the
//! packet ACL compiler uses, pointed at a different domain. This powers
//! the route-map half of the §5.3 refactoring use-case.

use crate::Finding;
use batnet_bdd::{Bdd, Cube, NodeId};
use batnet_config::vi::{AclAction, Device, PrefixListEntry, RouteMap, RouteMapMatch};
use batnet_net::Community;
use std::collections::BTreeMap;

/// Variable layout for the route space.
///
/// Crate-visible so the policy-drift pass can compile route maps from
/// *several* devices into one shared manager (equal functions then get
/// equal node ids, which makes semantic comparison a pointer compare).
pub(crate) struct RouteVars {
    /// Network address bits (MSB first): vars 0..32.
    /// Prefix length (6 bits): vars 32..38.
    /// Tag (16 bits): vars 38..54.
    /// MED (16 bits): vars 54..70.
    /// Community indicator bits, then regex bits.
    community_bits: BTreeMap<Community, u32>,
    regex_bits: BTreeMap<String, u32>,
}

const NET_BASE: u32 = 0;
const LEN_BASE: u32 = 32;
const TAG_BASE: u32 = 38;
const MED_BASE: u32 = 54;
const EXTRA_BASE: u32 = 70;

impl RouteVars {
    fn new(device: &Device) -> (Bdd, RouteVars) {
        RouteVars::for_devices(&[device])
    }

    /// Allocates a route space covering every community and AS-path regex
    /// any of `devices` mentions. The same community (or regex string) on
    /// two devices shares one indicator bit, so their compiled policies
    /// are directly comparable. Callers must pass `devices` in a
    /// deterministic order (the drift pass sorts by name).
    pub(crate) fn for_devices(devices: &[&Device]) -> (Bdd, RouteVars) {
        let mut community_bits = BTreeMap::new();
        let mut next = EXTRA_BASE;
        for device in devices {
            for cl in device.community_lists.values() {
                for e in &cl.entries {
                    community_bits.entry(e.community).or_insert_with(|| {
                        let v = next;
                        next += 1;
                        v
                    });
                }
            }
        }
        let mut regex_bits = BTreeMap::new();
        for device in devices {
            for rm in device.route_maps.values() {
                for clause in &rm.clauses {
                    for m in &clause.matches {
                        if let RouteMapMatch::AsPathRegex(re) = m {
                            regex_bits.entry(re.clone()).or_insert_with(|| {
                                let v = next;
                                next += 1;
                                v
                            });
                        }
                    }
                }
            }
        }
        (
            Bdd::new(next),
            RouteVars {
                community_bits,
                regex_bits,
            },
        )
    }

    /// `value == field` over `bits` variables starting at `base`.
    fn value(&self, bdd: &mut Bdd, base: u32, bits: u32, value: u64) -> NodeId {
        bdd.value_cube(base, bits, value)
    }

    /// `lo <= field <= hi` over `bits` variables at `base`, by masked
    /// block decomposition.
    fn range(&self, bdd: &mut Bdd, base: u32, bits: u32, lo: u64, hi: u64) -> NodeId {
        let mut acc = NodeId::FALSE;
        let mut cur = lo;
        while cur <= hi {
            let align = if cur == 0 { bits } else { cur.trailing_zeros().min(bits) };
            let span = 64 - (hi - cur + 1).leading_zeros() - 1;
            let take = align.min(span);
            let mut block = NodeId::TRUE;
            for i in 0..bits - take {
                let bit = (cur >> (bits - 1 - i)) & 1 == 1;
                let lit = bdd.literal(base + i, bit);
                block = bdd.and(block, lit);
            }
            acc = bdd.or(acc, block);
            cur += 1u64 << take;
            if cur == 0 {
                break; // wrapped
            }
        }
        acc
    }

    /// The routes matched by one prefix-list entry.
    fn prefix_entry(&self, bdd: &mut Bdd, e: &PrefixListEntry) -> NodeId {
        // Network containment: the candidate's top entry.len bits equal
        // the entry prefix's.
        let mut net = NodeId::TRUE;
        for i in 0..e.prefix.len() as u32 {
            let bit = (e.prefix.network().0 >> (31 - i)) & 1 == 1;
            let lit = bdd.literal(NET_BASE + i, bit);
            net = bdd.and(net, lit);
        }
        // Length window.
        let (lo, hi) = match (e.ge, e.le) {
            (None, None) => (e.prefix.len() as u64, e.prefix.len() as u64),
            (ge, le) => (
                ge.map(u64::from).unwrap_or(e.prefix.len() as u64),
                le.map(u64::from).unwrap_or(32),
            ),
        };
        let len = self.range(bdd, LEN_BASE, 6, lo, hi.min(63));
        bdd.and(net, len)
    }

    /// The routes matched by one `match` line.
    fn match_line(&self, bdd: &mut Bdd, device: &Device, m: &RouteMapMatch) -> NodeId {
        match m {
            RouteMapMatch::PrefixLists(names) => {
                let mut acc = NodeId::FALSE;
                for n in names {
                    let Some(pl) = device.prefix_lists.get(n) else {
                        continue; // undefined list: matches nothing
                    };
                    // First-match carving within the list.
                    let mut remaining = NodeId::TRUE;
                    for e in &pl.entries {
                        let s = self.prefix_entry(bdd, e);
                        let hit = bdd.and(remaining, s);
                        if e.action == batnet_config::vi::AclAction::Permit {
                            acc = bdd.or(acc, hit);
                        }
                        remaining = bdd.diff(remaining, s);
                    }
                }
                acc
            }
            RouteMapMatch::CommunityLists(names) => {
                let mut acc = NodeId::FALSE;
                for n in names {
                    let Some(cl) = device.community_lists.get(n) else {
                        continue;
                    };
                    // For each community, the first entry mentioning it
                    // decides; the route matches if any community with an
                    // effective permit is present.
                    let mut decided: BTreeMap<Community, bool> = BTreeMap::new();
                    for e in &cl.entries {
                        decided
                            .entry(e.community)
                            .or_insert(e.action == batnet_config::vi::AclAction::Permit);
                    }
                    for (c, permit) in decided {
                        if permit {
                            let bit = self.community_bits[&c];
                            let v = bdd.var(bit);
                            acc = bdd.or(acc, v);
                        }
                    }
                }
                acc
            }
            RouteMapMatch::AsPathRegex(re) => bdd.var(self.regex_bits[re]),
            RouteMapMatch::Metric(m) => self.value(bdd, MED_BASE, 16, *m as u64 & 0xffff),
            RouteMapMatch::Tag(t) => self.value(bdd, TAG_BASE, 16, *t as u64 & 0xffff),
            // Protocol matches partition a dimension we do not model;
            // treat as uninterpreted-true (conservative: never creates a
            // false dead-clause report, may miss some).
            RouteMapMatch::Protocol(_) => NodeId::TRUE,
        }
    }

    /// The routes matched by a whole clause (conjunction of lines).
    fn clause(&self, bdd: &mut Bdd, device: &Device, matches: &[RouteMapMatch]) -> NodeId {
        let mut acc = NodeId::TRUE;
        for m in matches {
            let s = self.match_line(bdd, device, m);
            acc = bdd.and(acc, s);
        }
        acc
    }
}

/// The set of routes a route map *accepts*: union of the fresh (not yet
/// claimed) match sets of its permit clauses, by first-match carving.
/// `set` actions are attribute rewrites and do not change acceptance, so
/// they are ignored here; this is the comparison function the
/// policy-drift pass uses.
pub(crate) fn permit_set(bdd: &mut Bdd, vars: &RouteVars, device: &Device, rm: &RouteMap) -> NodeId {
    let mut claimed = NodeId::FALSE;
    let mut permits = NodeId::FALSE;
    for clause in &rm.clauses {
        let set = vars.clause(bdd, device, &clause.matches);
        let fresh = bdd.diff(set, claimed);
        if clause.action == AclAction::Permit {
            permits = bdd.or(permits, fresh);
        }
        claimed = bdd.or(claimed, set);
    }
    permits
}

/// Renders a route-space cube as a concrete witness prefix (don't-care
/// bits resolve to 0, the numerically smallest completion).
pub(crate) fn cube_route(cube: &Cube) -> String {
    let net = cube.field(NET_BASE, 32) as u32;
    let len = cube.field(LEN_BASE, 6).min(32);
    format!(
        "{}.{}.{}.{}/{len}",
        net >> 24,
        (net >> 16) & 0xff,
        (net >> 8) & 0xff,
        net & 0xff
    )
}

/// Dead clauses of one route map: clauses whose match set is fully
/// covered by earlier clauses.
pub fn dead_clauses(device: &Device, rm: &RouteMap) -> Vec<u32> {
    let (mut bdd, vars) = RouteVars::new(device);
    let mut claimed = NodeId::FALSE;
    let mut dead = Vec::new();
    for clause in &rm.clauses {
        let set = vars.clause(&mut bdd, device, &clause.matches);
        let fresh = bdd.diff(set, claimed);
        if fresh == NodeId::FALSE {
            dead.push(clause.seq);
        }
        claimed = bdd.or(claimed, set);
    }
    dead
}

/// The lint entry point: dead clauses across every route map of a device.
pub fn route_map_dead_clauses(device: &Device) -> Vec<Finding> {
    let mut out = Vec::new();
    for rm in device.route_maps.values() {
        for seq in dead_clauses(device, rm) {
            out.push(
                Finding::new(
                    "route-map-dead-clause",
                    &device.name,
                    format!("route-map {}/clause {seq}", rm.name),
                    format!(
                        "route-map {} clause {seq} can never match (covered by earlier clauses)",
                        rm.name
                    ),
                )
                .at(&rm.src),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::parse_device;

    fn dev(text: &str) -> Device {
        parse_device("t", text).0
    }

    #[test]
    fn shadowed_prefix_clause_is_dead() {
        let d = dev(
            "hostname t\n\
             ip prefix-list WIDE seq 5 permit 10.0.0.0/8 le 32\n\
             ip prefix-list NARROW seq 5 permit 10.1.0.0/16 le 24\n\
             route-map RM permit 10\n match ip address prefix-list WIDE\n\
             route-map RM permit 20\n match ip address prefix-list NARROW\n\
             route-map RM permit 30\n",
        );
        let dead = dead_clauses(&d, &d.route_maps["RM"]);
        assert_eq!(dead, vec![20], "NARROW ⊆ WIDE, final match-all is live");
    }

    #[test]
    fn match_all_shadows_everything_after() {
        let d = dev(
            "hostname t\n\
             route-map RM permit 10\n\
             route-map RM deny 20\n match tag 7\n",
        );
        let dead = dead_clauses(&d, &d.route_maps["RM"]);
        assert_eq!(dead, vec![20]);
    }

    #[test]
    fn disjoint_clauses_all_live() {
        let d = dev(
            "hostname t\n\
             route-map RM permit 10\n match tag 7\n\
             route-map RM permit 20\n match tag 9\n\
             route-map RM deny 99\n",
        );
        assert!(dead_clauses(&d, &d.route_maps["RM"]).is_empty());
    }

    #[test]
    fn regex_clauses_conservative() {
        // Two different regexes: neither shadows the other (uninterpreted
        // bits), and a later narrower regex clause is NOT reported dead.
        let d = dev(
            "hostname t\n\
             route-map RM permit 10\n match as-path regex _65001_\n\
             route-map RM permit 20\n match as-path regex _65002_\n",
        );
        assert!(dead_clauses(&d, &d.route_maps["RM"]).is_empty());
        // But the *same* regex twice: the second is dead.
        let d2 = dev(
            "hostname t\n\
             route-map RM permit 10\n match as-path regex _65001_\n\
             route-map RM permit 20\n match as-path regex _65001_\n",
        );
        assert_eq!(dead_clauses(&d2, &d2.route_maps["RM"]), vec![20]);
    }

    #[test]
    fn community_shadowing() {
        let d = dev(
            "hostname t\n\
             ip community-list standard CL1 permit 65001:100\n\
             ip community-list standard CL2 permit 65001:100\n\
             route-map RM permit 10\n match community CL1\n\
             route-map RM permit 20\n match community CL2\n",
        );
        assert_eq!(dead_clauses(&d, &d.route_maps["RM"]), vec![20]);
    }

    #[test]
    fn ge_le_windows_respected() {
        // Clause 10 permits /16-/24; clause 20 permits /25-/28 of the
        // same space — live, not shadowed.
        let d = dev(
            "hostname t\n\
             ip prefix-list A seq 5 permit 10.0.0.0/8 ge 16 le 24\n\
             ip prefix-list B seq 5 permit 10.0.0.0/8 ge 25 le 28\n\
             route-map RM permit 10\n match ip address prefix-list A\n\
             route-map RM permit 20\n match ip address prefix-list B\n",
        );
        assert!(dead_clauses(&d, &d.route_maps["RM"]).is_empty());
    }

    #[test]
    fn lint_wrapper_emits_findings() {
        let d = dev(
            "hostname t\nroute-map RM permit 10\nroute-map RM permit 20\n match tag 3\n",
        );
        let f = route_map_dead_clauses(&d);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("clause 20"));
    }
}
