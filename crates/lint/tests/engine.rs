//! End-to-end engine properties over generated networks: determinism,
//! order-insensitivity, clean baselines, and seeded drift detection.

use batnet_config::parse_device;
use batnet_config::vi::Device;
use batnet_lint::{output, run_all, Finding, Severity};
use batnet_topogen::suite::n2;

fn parse_net(net: &batnet_topogen::GeneratedNetwork) -> Vec<Device> {
    net.configs
        .iter()
        .map(|(name, text)| parse_device(name, text).0)
        .collect()
}

/// The generated N2 leaf–spine is policy-clean: no warnings or errors,
/// which is what lets `make lint-smoke` gate on `--deny error` against
/// it.
#[test]
fn clean_n2_has_no_warning_or_error_findings() {
    let devices = parse_net(&n2());
    let findings = run_all(&devices);
    let loud: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.severity >= Severity::Warning)
        .collect();
    assert!(loud.is_empty(), "clean N2 should be quiet, got {loud:?}");
}

/// Determinism: two independent parse+lint runs produce byte-identical
/// JSON, and a shuffled device order produces the identical finding
/// list (fingerprints included).
#[test]
fn lint_is_deterministic_and_order_insensitive() {
    let run = || {
        let devices = parse_net(&n2());
        let findings = run_all(&devices);
        output::render_json("N2", &findings)
    };
    assert_eq!(run(), run(), "two runs must serialize identically");

    let mut devices = parse_net(&n2());
    let sorted_fps = |findings: &[Finding]| -> Vec<String> {
        findings.iter().map(Finding::fingerprint).collect()
    };
    let baseline = run_all(&devices);
    // Reverse and rotate: same findings regardless of input order.
    devices.reverse();
    devices.rotate_left(13);
    let shuffled = run_all(&devices);
    assert_eq!(baseline, shuffled);
    assert_eq!(sorted_fps(&baseline), sorted_fps(&shuffled));
}

/// Seeded drift: perturbing one leaf's DNS port makes the policy-drift
/// pass flag exactly that device, with a concrete witness flow; putting
/// the finding's fingerprint in a baseline mutes it again.
#[test]
fn seeded_drift_flags_exactly_the_victim() {
    let mut net = n2();
    assert!(net.seed_policy_drift("leaf3"), "fixture must perturb leaf3");
    let devices = parse_net(&net);
    let findings = run_all(&devices);
    let drift: Vec<&Finding> = findings.iter().filter(|f| f.check == "policy-drift").collect();
    assert_eq!(drift.len(), 1, "exactly the victim: {drift:?}");
    assert_eq!(drift[0].device, "leaf3");
    assert_eq!(drift[0].severity, Severity::Warning);
    assert!(
        drift[0].witness.contains(":53") || drift[0].witness.contains(":5353"),
        "witness should name the diverging port: {}",
        drift[0].witness
    );
    // No other warning+ findings appear as a side effect.
    assert!(
        findings
            .iter()
            .all(|f| f.check == "policy-drift" || f.severity < Severity::Warning),
        "{findings:?}"
    );

    // Baseline the drift fingerprint: the report is quiet again (CI
    // gates on *new* findings only).
    let fps = vec![drift[0].fingerprint()];
    let total = findings.len();
    let (kept, muted) = output::apply_baseline(findings, &fps);
    assert_eq!(muted, 1);
    assert_eq!(kept.len(), total - 1);
    assert!(kept.iter().all(|f| f.severity < Severity::Warning));
}

/// The drift fixture helper refuses unknown or port-less victims.
#[test]
fn drift_seeding_rejects_bad_victims() {
    let mut net = n2();
    assert!(!net.seed_policy_drift("spine0"), "spines carry no DNS ACL");
    assert!(!net.seed_policy_drift("ghost99"));
}
