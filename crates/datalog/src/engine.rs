//! A bottom-up Datalog engine with stratified negation, arithmetic
//! builtins, full fact retention, and provenance.
//!
//! Values are `u64`; strings are interned through [`SymbolTable`].
//! Programs are lists of strata; each stratum runs semi-naive to a fixed
//! point before the next begins (negation may only reference earlier
//! strata, which the caller guarantees — asserted in debug builds).

use std::collections::{BTreeMap, HashMap};

/// A constant value (numbers, interned symbols, packed prefixes).
pub type Value = u64;

/// A term in an atom.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Term {
    /// A variable, identified by index.
    Var(u32),
    /// A constant.
    Const(Value),
}

/// A predicate identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pred(pub u32);

/// A (possibly non-ground) atom.
#[derive(Clone, Debug)]
pub struct Atom {
    /// Predicate.
    pub pred: Pred,
    /// Terms.
    pub terms: Vec<Term>,
}

/// Arithmetic/comparison builtins (the LogicBlox-variant extensions the
/// paper mentions).
#[derive(Clone, Copy, Debug)]
pub enum Builtin {
    /// `z = x + y` (x, y must be bound; z may bind).
    Add(Term, Term, Term),
    /// `x < y` (both bound).
    Lt(Term, Term),
    /// `x != y` (both bound).
    Ne(Term, Term),
}

/// One rule: `head :- body, builtins, !negated…`.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Derived atom.
    pub head: Atom,
    /// Positive body atoms (joined in order).
    pub body: Vec<Atom>,
    /// Builtin constraints, applied after the joins.
    pub builtins: Vec<Builtin>,
    /// Negated atoms (must refer to earlier strata).
    pub negated: Vec<Atom>,
}

/// A ground fact.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Fact {
    /// Predicate.
    pub pred: Pred,
    /// Constant tuple.
    pub values: Vec<Value>,
}

/// A stratified program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Strata, evaluated in order.
    pub strata: Vec<Vec<Rule>>,
}

/// Interns strings to values.
#[derive(Default, Debug)]
pub struct SymbolTable {
    map: HashMap<String, Value>,
    rev: Vec<String>,
}

impl SymbolTable {
    /// Interns `s`, returning a stable value.
    pub fn intern(&mut self, s: &str) -> Value {
        if let Some(&v) = self.map.get(s) {
            return v;
        }
        let v = self.rev.len() as Value;
        self.rev.push(s.to_string());
        self.map.insert(s.to_string(), v);
        v
    }

    /// The string behind a symbol value.
    pub fn resolve(&self, v: Value) -> Option<&str> {
        self.rev.get(v as usize).map(String::as_str)
    }
}

/// Provenance of a derived fact: the rule and premise facts.
#[derive(Clone, Debug)]
pub struct Derivation {
    /// (stratum, rule index) that fired.
    pub rule: (usize, usize),
    /// Premise fact ids.
    pub premises: Vec<usize>,
}

/// The evaluation engine. Facts are never discarded (the Lesson-1
/// pathology this crate exists to reproduce).
#[derive(Default)]
pub struct Engine {
    /// All facts ever derived, in derivation order.
    facts: Vec<Fact>,
    /// Fact → id.
    index: HashMap<Fact, usize>,
    /// Per predicate: fact ids.
    by_pred: BTreeMap<Pred, Vec<usize>>,
    /// Hash-join index on the leading two columns (one column padded with
    /// a sentinel). LogicBlox maintained such indexes too — engine-level
    /// indexing is not where its pathologies lay.
    by_prefix2: HashMap<(Pred, Value, Value), Vec<usize>>,
    /// Hash-join index on the leading column alone.
    by_prefix1: HashMap<(Pred, Value), Vec<usize>>,
    /// Provenance per fact id (`None` for input facts).
    provenance: Vec<Option<Derivation>>,
}

/// Sentinel for the second index column of unary facts.
const PAD: Value = Value::MAX;

impl Engine {
    /// A fresh engine.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Adds an input fact. Returns its id (existing id if duplicate).
    pub fn insert_input(&mut self, fact: Fact) -> usize {
        self.insert(fact, None)
    }

    fn insert(&mut self, fact: Fact, derivation: Option<Derivation>) -> usize {
        if let Some(&id) = self.index.get(&fact) {
            return id;
        }
        let id = self.facts.len();
        self.index.insert(fact.clone(), id);
        self.by_pred.entry(fact.pred).or_default().push(id);
        let k0 = fact.values.first().copied().unwrap_or(PAD);
        let k1 = fact.values.get(1).copied().unwrap_or(PAD);
        self.by_prefix2
            .entry((fact.pred, k0, k1))
            .or_default()
            .push(id);
        self.by_prefix1.entry((fact.pred, k0)).or_default().push(id);
        self.facts.push(fact);
        self.provenance.push(derivation);
        id
    }

    /// Does the engine hold this exact fact?
    pub fn contains(&self, fact: &Fact) -> bool {
        self.index.contains_key(fact)
    }

    /// Total number of facts retained (inputs + every derivation).
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    /// All tuples of a predicate.
    pub fn tuples(&self, pred: Pred) -> Vec<&[Value]> {
        self.by_pred
            .get(&pred)
            .map(|ids| ids.iter().map(|&i| self.facts[i].values.as_slice()).collect())
            .unwrap_or_default()
    }

    /// The provenance of a fact, if derived.
    pub fn provenance_of(&self, fact: &Fact) -> Option<&Derivation> {
        let id = *self.index.get(fact)?;
        self.provenance[id].as_ref()
    }

    /// The fact behind an id (for walking derivation trees).
    pub fn fact(&self, id: usize) -> &Fact {
        &self.facts[id]
    }

    /// Runs the program to fixed point, stratum by stratum. Returns the
    /// number of rule firings (a proxy for the work a solver would do).
    ///
    /// Semi-naive: on passes after the first, each rule is evaluated once
    /// per body position with that position restricted to the frontier
    /// (facts new since the previous pass), so join work scales with the
    /// delta rather than the whole database.
    pub fn run(&mut self, program: &Program) -> u64 {
        let mut firings = 0u64;
        for (si, stratum) in program.strata.iter().enumerate() {
            let mut first_pass = true;
            let mut frontier: Vec<usize> = Vec::new();
            loop {
                let before = self.facts.len();
                let trace = std::env::var_os("BATNET_DL_TRACE").is_some();
                for (ri, rule) in stratum.iter().enumerate() {
                    let t0 = batnet_obs::clock::now();
                    if first_pass {
                        firings += self.fire(rule, (si, ri), None, &frontier);
                    } else {
                        for pos in 0..rule.body.len() {
                            firings += self.fire(rule, (si, ri), Some(pos), &frontier);
                        }
                    }
                    if trace && t0.elapsed().as_millis() > 200 {
                        eprintln!("  rule {si}.{ri}: {:?}", t0.elapsed());
                    }
                }
                let after = self.facts.len();
                if std::env::var_os("BATNET_DL_TRACE").is_some() {
                    eprintln!("stratum {si}: pass grew {} -> {} facts", before, after);
                }
                if after == before {
                    break;
                }
                frontier = (before..after).collect();
                first_pass = false;
            }
        }
        firings
    }

    /// Evaluates one rule. `frontier_pos` restricts that body position to
    /// frontier facts (the semi-naive delta join); `None` means the
    /// unrestricted (first) pass.
    fn fire(
        &mut self,
        rule: &Rule,
        rule_id: (usize, usize),
        frontier_pos: Option<usize>,
        frontier: &[usize],
    ) -> u64 {
        let mut firings = 0u64;
        // Slot-array bindings: rules are tiny, so size by the largest
        // variable index (hot path: no hashing, no allocation per fact).
        let nvars = rule_max_var(rule) + 1;
        let mut bindings: Vec<Option<Value>> = vec![None; nvars];
        let mut premises: Vec<usize> = Vec::new();
        let mut new_facts: Vec<(Fact, Vec<usize>)> = Vec::new();
        self.join(
            rule,
            0,
            &mut bindings,
            &mut premises,
            frontier_pos,
            frontier,
            &mut new_facts,
            &mut firings,
        );
        for (fact, premises) in new_facts {
            self.insert(
                fact,
                Some(Derivation {
                    rule: rule_id,
                    premises,
                }),
            );
        }
        firings
    }

    #[allow(clippy::too_many_arguments)]
    fn join(
        &self,
        rule: &Rule,
        depth: usize,
        bindings: &mut Vec<Option<Value>>,
        premises: &mut Vec<usize>,
        frontier_pos: Option<usize>,
        frontier: &[usize],
        out: &mut Vec<(Fact, Vec<usize>)>,
        firings: &mut u64,
    ) {
        if depth == rule.body.len() {
            self.finish_rule(rule, bindings, premises, out, firings);
            return;
        }
        let atom = &rule.body[depth];
        let Some(ids) = self.by_pred.get(&atom.pred) else { return };
        // The semi-naive delta position scans only frontier facts;
        // otherwise use the two-column hash index when the atom's leading
        // terms are already bound.
        let resolve = |t: &Term, b: &[Option<Value>]| -> Option<Value> {
            match t {
                Term::Const(c) => Some(*c),
                Term::Var(v) => b[*v as usize],
            }
        };
        let empty: Vec<usize> = Vec::new();
        let scan: &[usize] = if frontier_pos == Some(depth) {
            frontier
        } else {
            let k0 = atom.terms.first().and_then(|t| resolve(t, bindings));
            let k1 = atom.terms.get(1).and_then(|t| resolve(t, bindings));
            match (k0, k1) {
                (Some(a), Some(b)) if atom.terms.len() >= 2 => {
                    self.by_prefix2.get(&(atom.pred, a, b)).unwrap_or(&empty)
                }
                (Some(a), _) => self.by_prefix1.get(&(atom.pred, a)).unwrap_or(&empty),
                _ => ids,
            }
        };
        for &fid in scan {
            let fact = &self.facts[fid];
            if fact.pred != atom.pred || fact.values.len() != atom.terms.len() {
                continue; // frontier holds mixed predicates
            }
            // Unify, recording which slots this atom bound.
            let mut local: [u32; 8] = [u32::MAX; 8];
            let mut nlocal = 0usize;
            let mut ok = true;
            for (t, &v) in atom.terms.iter().zip(&fact.values) {
                match *t {
                    Term::Const(c) => {
                        if c != v {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(var) => match bindings[var as usize] {
                        Some(b) => {
                            if b != v {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            bindings[var as usize] = Some(v);
                            local[nlocal] = var;
                            nlocal += 1;
                        }
                    },
                }
            }
            if ok {
                premises.push(fid);
                self.join(
                    rule,
                    depth + 1,
                    bindings,
                    premises,
                    frontier_pos,
                    frontier,
                    out,
                    firings,
                );
                premises.pop();
            }
            for &var in &local[..nlocal] {
                bindings[var as usize] = None;
            }
        }
    }

    /// Builtins, negation, and head grounding once the body is joined.
    fn finish_rule(
        &self,
        rule: &Rule,
        bindings: &mut Vec<Option<Value>>,
        premises: &[usize],
        out: &mut Vec<(Fact, Vec<usize>)>,
        firings: &mut u64,
    ) {
        let value_of = |t: Term, b: &[Option<Value>]| -> Option<Value> {
            match t {
                Term::Const(c) => Some(c),
                Term::Var(v) => b[v as usize],
            }
        };
        // Builtins may bind one extra slot (Add output); track for undo.
        let mut bound_by_builtin: Option<u32> = None;
        let mut failed = false;
        for b in &rule.builtins {
            match *b {
                Builtin::Add(x, y, z) => {
                    let (Some(xv), Some(yv)) =
                        (value_of(x, bindings), value_of(y, bindings))
                    else {
                        failed = true;
                        break;
                    };
                    let sum = xv.wrapping_add(yv);
                    match z {
                        Term::Const(c) => {
                            if c != sum {
                                failed = true;
                                break;
                            }
                        }
                        Term::Var(v) => match bindings[v as usize] {
                            Some(existing) => {
                                if existing != sum {
                                    failed = true;
                                    break;
                                }
                            }
                            None => {
                                bindings[v as usize] = Some(sum);
                                bound_by_builtin = Some(v);
                            }
                        },
                    }
                }
                Builtin::Lt(x, y) => {
                    let (Some(xv), Some(yv)) =
                        (value_of(x, bindings), value_of(y, bindings))
                    else {
                        failed = true;
                        break;
                    };
                    if xv >= yv {
                        failed = true;
                        break;
                    }
                }
                Builtin::Ne(x, y) => {
                    let (Some(xv), Some(yv)) =
                        (value_of(x, bindings), value_of(y, bindings))
                    else {
                        failed = true;
                        break;
                    };
                    if xv == yv {
                        failed = true;
                        break;
                    }
                }
            }
        }
        if !failed {
            // Negation (must be fully ground).
            'check: {
                for neg in &rule.negated {
                    let values: Option<Vec<Value>> =
                        neg.terms.iter().map(|t| value_of(*t, bindings)).collect();
                    let Some(values) = values else {
                        failed = true;
                        break 'check;
                    };
                    if self.contains(&Fact {
                        pred: neg.pred,
                        values,
                    }) {
                        failed = true;
                        break 'check;
                    }
                }
                // Ground the head.
                let values: Option<Vec<Value>> =
                    rule.head.terms.iter().map(|t| value_of(*t, bindings)).collect();
                if let Some(values) = values {
                    *firings += 1;
                    let fact = Fact {
                        pred: rule.head.pred,
                        values,
                    };
                    // `insert` dedups; duplicates within one pass are
                    // simply re-inserted as no-ops.
                    if !self.contains(&fact) {
                        out.push((fact, premises.to_vec()));
                    }
                }
            }
        }
        let _ = failed;
        if let Some(v) = bound_by_builtin {
            bindings[v as usize] = None;
        }
    }

}


/// The largest variable index used anywhere in a rule.
fn rule_max_var(rule: &Rule) -> usize {
    let mut m = 0usize;
    let mut see = |t: &Term| {
        if let Term::Var(v) = t {
            m = m.max(*v as usize);
        }
    };
    for t in &rule.head.terms {
        see(t);
    }
    for a in rule.body.iter().chain(&rule.negated) {
        for t in &a.terms {
            see(t);
        }
    }
    for b in &rule.builtins {
        match b {
            Builtin::Add(x, y, z) => {
                see(x);
                see(y);
                see(z);
            }
            Builtin::Lt(x, y) | Builtin::Ne(x, y) => {
                see(x);
                see(y);
            }
        }
    }
    m
}

#[cfg(test)]

mod tests {
    use super::*;

    const EDGE: Pred = Pred(0);
    const PATH: Pred = Pred(1);

    fn atom(pred: Pred, terms: &[Term]) -> Atom {
        Atom {
            pred,
            terms: terms.to_vec(),
        }
    }

    fn fact(pred: Pred, values: &[Value]) -> Fact {
        Fact {
            pred,
            values: values.to_vec(),
        }
    }

    fn transitive_closure_program() -> Program {
        let v = |i| Term::Var(i);
        Program {
            strata: vec![vec![
                Rule {
                    head: atom(PATH, &[v(0), v(1)]),
                    body: vec![atom(EDGE, &[v(0), v(1)])],
                    builtins: vec![],
                    negated: vec![],
                },
                Rule {
                    head: atom(PATH, &[v(0), v(2)]),
                    body: vec![atom(PATH, &[v(0), v(1)]), atom(EDGE, &[v(1), v(2)])],
                    builtins: vec![],
                    negated: vec![],
                },
            ]],
        }
    }

    #[test]
    fn transitive_closure() {
        let mut e = Engine::new();
        for (a, b) in [(1u64, 2u64), (2, 3), (3, 4)] {
            e.insert_input(fact(EDGE, &[a, b]));
        }
        e.run(&transitive_closure_program());
        assert!(e.contains(&fact(PATH, &[1, 4])));
        assert!(e.contains(&fact(PATH, &[2, 4])));
        assert!(!e.contains(&fact(PATH, &[4, 1])));
        // 3 edges + 6 paths.
        assert_eq!(e.tuples(PATH).len(), 6);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut e = Engine::new();
        for (a, b) in [(1u64, 2u64), (2, 3), (3, 1)] {
            e.insert_input(fact(EDGE, &[a, b]));
        }
        e.run(&transitive_closure_program());
        // All 9 pairs reachable on a 3-cycle.
        assert_eq!(e.tuples(PATH).len(), 9);
    }

    #[test]
    fn provenance_recorded() {
        let mut e = Engine::new();
        e.insert_input(fact(EDGE, &[1, 2]));
        e.insert_input(fact(EDGE, &[2, 3]));
        e.run(&transitive_closure_program());
        let d = e.provenance_of(&fact(PATH, &[1, 3])).expect("derived");
        assert_eq!(d.rule.1, 1, "derived by the recursive rule");
        // Premises chain back to input facts.
        let names: Vec<&Fact> = d.premises.iter().map(|&i| e.fact(i)).collect();
        assert_eq!(names.len(), 2);
        // Input facts have no provenance.
        assert!(e.provenance_of(&fact(EDGE, &[1, 2])).is_none());
    }

    #[test]
    fn builtins_add_and_lt() {
        // dist(a,b,c): bounded-cost path weights.
        const W: Pred = Pred(2);
        const DIST: Pred = Pred(3);
        let v = |i| Term::Var(i);
        let program = Program {
            strata: vec![vec![
                Rule {
                    head: atom(DIST, &[v(0), v(1), v(2)]),
                    body: vec![atom(W, &[v(0), v(1), v(2)])],
                    builtins: vec![],
                    negated: vec![],
                },
                Rule {
                    head: atom(DIST, &[v(0), v(3), v(5)]),
                    body: vec![atom(DIST, &[v(0), v(1), v(2)]), atom(W, &[v(1), v(3), v(4)])],
                    builtins: vec![
                        Builtin::Add(v(2), v(4), v(5)),
                        Builtin::Lt(v(5), Term::Const(100)),
                    ],
                    negated: vec![],
                },
            ]],
        };
        let mut e = Engine::new();
        e.insert_input(fact(W, &[1, 2, 30]));
        e.insert_input(fact(W, &[2, 3, 40]));
        e.insert_input(fact(W, &[3, 4, 50]));
        e.run(&program);
        assert!(e.contains(&fact(DIST, &[1, 3, 70])));
        // 30+40+50 = 120 ≥ 100: pruned by the bound.
        assert!(!e.contains(&fact(DIST, &[1, 4, 120])));
    }

    #[test]
    fn stratified_negation_minimum() {
        // best(a,b,c) := dist(a,b,c) ∧ ¬worse(a,b,c)
        const DIST: Pred = Pred(4);
        const WORSE: Pred = Pred(5);
        const BEST: Pred = Pred(6);
        let v = |i| Term::Var(i);
        let program = Program {
            strata: vec![
                vec![Rule {
                    head: atom(WORSE, &[v(0), v(1), v(2)]),
                    body: vec![atom(DIST, &[v(0), v(1), v(2)]), atom(DIST, &[v(0), v(1), v(3)])],
                    builtins: vec![Builtin::Lt(v(3), v(2))],
                    negated: vec![],
                }],
                vec![Rule {
                    head: atom(BEST, &[v(0), v(1), v(2)]),
                    body: vec![atom(DIST, &[v(0), v(1), v(2)])],
                    builtins: vec![],
                    negated: vec![atom(WORSE, &[v(0), v(1), v(2)])],
                }],
            ],
        };
        let mut e = Engine::new();
        e.insert_input(fact(DIST, &[1, 2, 30]));
        e.insert_input(fact(DIST, &[1, 2, 20]));
        e.insert_input(fact(DIST, &[1, 2, 45]));
        e.run(&program);
        assert!(e.contains(&fact(BEST, &[1, 2, 20])));
        assert!(!e.contains(&fact(BEST, &[1, 2, 30])));
        assert_eq!(e.tuples(BEST).len(), 1);
        // All intermediates retained (the Lesson-1 pathology).
        assert_eq!(e.tuples(DIST).len(), 3);
    }

    #[test]
    fn symbol_table_roundtrip() {
        let mut syms = SymbolTable::default();
        let a = syms.intern("r1");
        let b = syms.intern("r2");
        assert_ne!(a, b);
        assert_eq!(syms.intern("r1"), a);
        assert_eq!(syms.resolve(a), Some("r1"));
        assert_eq!(syms.resolve(999), None);
    }
}
