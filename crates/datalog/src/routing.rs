//! The original Batfish control-plane model, as Datalog rules.
//!
//! This is the Stage-2 program of §2 of the paper: connected routes,
//! recursive OSPF distance with best-selection via stratified negation,
//! and a path-vector BGP over established sessions. It covers the feature
//! set of the original paper's evaluation (NET1-class networks: OSPF,
//! statics, policy-free eBGP) — and *only* that, which is itself Lesson 1:
//! route maps with regexes and arithmetic, session establishment gated on
//! data-plane state, and AS-path loop checks were impractical to encode.
//!
//! Termination note: recursive distance rules in pure Datalog enumerate
//! *all* path costs, including around cycles, so the model bounds the
//! cost domain ([`RoutingInputs::cost_bound`]) exactly the way LogicBlox
//! programs bounded recursive numeric domains. Every derived fact is
//! retained — [`DatalogRoutes::fact_count`] measures the paper's
//! "intermediate facts" memory complaint.

use crate::engine::{Atom, Builtin, Engine, Fact, Pred, Program, Rule, SymbolTable, Term, Value};
use batnet_config::vi::Device;
use batnet_config::{InterfaceRef, Topology};
use batnet_net::{Ip, Prefix};
use std::collections::BTreeMap;

// Predicate ids.
const LINK: Pred = Pred(0); // link(d1, d2, cost, nh_ip)
const ADV: Pred = Pred(1); // adv(d, prefix, cost)
const CONNECTED: Pred = Pred(2); // connected(d, prefix)
const STATIC: Pred = Pred(3); // static(d, prefix, nh_ip)
const SESSION: Pred = Pred(4); // session(d1, d2, nh_ip)  (eBGP)
const ORIGINATE: Pred = Pred(5); // originate(d, prefix)
const DIST: Pred = Pred(6); // dist(src, dst, cost)
const WORSE_DIST: Pred = Pred(7); // worse_dist(src, dst, cost)
const BEST_DIST: Pred = Pred(8); // best_dist(src, dst, cost)
const FIRST_HOP: Pred = Pred(19); // first_hop(src, dst, nh_ip)
const OSPF_CAND: Pred = Pred(9); // ospf_cand(d, prefix, cost, nh)
const WORSE_OSPF: Pred = Pred(10);
const OSPF_ROUTE: Pred = Pred(11); // ospf_route(d, prefix, cost, nh)
const BGP_CAND: Pred = Pred(12); // bgp_cand(d, prefix, pathlen, nh_ip)
const WORSE_BGP: Pred = Pred(13);
const BGP_ROUTE: Pred = Pred(14); // bgp_route(d, prefix, len, nh)
const FWD: Pred = Pred(15); // fwd(d, prefix, proto, nh_ip)
const HAS_CONN: Pred = Pred(16);
const HAS_STATIC: Pred = Pred(17);
const HAS_OSPF: Pred = Pred(18);

/// Protocol tags in FWD facts.
pub const PROTO_CONNECTED: Value = 0;
/// Static route tag.
pub const PROTO_STATIC: Value = 1;
/// OSPF tag.
pub const PROTO_OSPF: Value = 2;
/// BGP tag.
pub const PROTO_BGP: Value = 3;

/// Packs a prefix into a value.
fn pack_prefix(p: Prefix) -> Value {
    ((p.network().0 as u64) << 6) | p.len() as u64
}

/// Unpacks a prefix value.
fn unpack_prefix(v: Value) -> Prefix {
    Prefix::new(Ip((v >> 6) as u32), (v & 0x3f) as u8)
}

/// Inputs for the Datalog routing computation.
#[derive(Clone, Debug)]
pub struct RoutingInputs {
    /// Upper bound on OSPF path cost (derived distances must stay below
    /// it; pick max-shortest-path + slack).
    pub cost_bound: u64,
    /// Upper bound on BGP path length.
    pub path_bound: u64,
}

impl Default for RoutingInputs {
    fn default() -> Self {
        RoutingInputs {
            cost_bound: 256,
            path_bound: 16,
        }
    }
}

impl RoutingInputs {
    /// Derives tight bounds from the network: cost bound = the maximum
    /// shortest-path cost plus the largest advertised cost plus slack,
    /// path bound = hop diameter plus slack. (The original deployments
    /// tuned such domain bounds by hand; computing them from the input is
    /// the honest equivalent.)
    pub fn for_network(devices: &[Device], topo: &Topology) -> RoutingInputs {
        // Build the OSPF cost graph and run a simple Dijkstra per node.
        let index: BTreeMap<&str, usize> = devices
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.as_str(), i))
            .collect();
        let n = devices.len();
        let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        let mut max_adv = 1u64;
        for (di, d) in devices.iter().enumerate() {
            if d.ospf.is_none() {
                continue;
            }
            for iface in d.active_interfaces() {
                if iface.ospf_area.is_none() {
                    continue;
                }
                let cost = iface.ospf_cost.unwrap_or(1) as u64;
                max_adv = max_adv.max(cost);
                if iface.ospf_passive {
                    continue;
                }
                let me = InterfaceRef::new(&d.name, &iface.name);
                for nb in topo.neighbors_of(&me) {
                    if let Some(&ni) = index.get(nb.device.as_str()) {
                        adj[di].push((ni, cost));
                    }
                }
            }
        }
        let mut max_dist = 0u64;
        let mut max_hops = 1u64;
        for s in 0..n {
            let mut dist = vec![u64::MAX; n];
            let mut hops = vec![u64::MAX; n];
            dist[s] = 0;
            hops[s] = 0;
            let mut heap = std::collections::BinaryHeap::new();
            heap.push(std::cmp::Reverse((0u64, s)));
            while let Some(std::cmp::Reverse((c, u))) = heap.pop() {
                if c > dist[u] {
                    continue;
                }
                for &(v, w) in &adj[u] {
                    if c + w < dist[v] {
                        dist[v] = c + w;
                        hops[v] = hops[u] + 1;
                        heap.push(std::cmp::Reverse((c + w, v)));
                    }
                }
            }
            for v in 0..n {
                if dist[v] != u64::MAX {
                    max_dist = max_dist.max(dist[v]);
                    max_hops = max_hops.max(hops[v]);
                }
            }
        }
        RoutingInputs {
            cost_bound: max_dist + max_adv + 2,
            path_bound: (max_hops.max(devices.len() as u64 / 8) + 3).min(64),
        }
    }
}

/// One extracted route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatalogRoute {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Protocol tag (`PROTO_*`).
    pub proto: Value,
    /// Next-hop address (0 for connected).
    pub next_hop: Ip,
}

/// The result of the Datalog data plane generation.
pub struct DatalogRoutes {
    /// Per device name: forwarding entries.
    pub routes: BTreeMap<String, Vec<DatalogRoute>>,
    /// Total facts retained by the engine (the memory pathology metric).
    pub fact_count: usize,
    /// Rule firings (work metric).
    pub firings: u64,
}

/// Builds the rule program. Variables are numbered per rule.
fn program() -> Program {
    let v = |i| Term::Var(i);
    let a = |p, ts: &[Term]| Atom {
        pred: p,
        terms: ts.to_vec(),
    };
    let plain = |head: Atom, body: Vec<Atom>| Rule {
        head,
        body,
        builtins: vec![],
        negated: vec![],
    };
    // Stratum 0: recursive distances and BGP candidates (monotone).
    let s0 = vec![
        // dist(s, d, c) :- link(s, d, c, _).
        plain(
            a(DIST, &[v(0), v(1), v(2)]),
            vec![a(LINK, &[v(0), v(1), v(2), v(3)])],
        ),
        // dist(s, d, c) :- dist(s, m, c1), link(m, d, c2, _), c = c1+c2, c < BOUND, d != s.
        Rule {
            head: a(DIST, &[v(0), v(4), v(6)]),
            body: vec![
                a(DIST, &[v(0), v(1), v(2)]),
                a(LINK, &[v(1), v(4), v(5), v(7)]),
            ],
            builtins: vec![
                Builtin::Add(v(2), v(5), v(6)),
                Builtin::Lt(v(6), Term::Const(0)), // patched to cost_bound
                Builtin::Ne(v(4), v(0)),
            ],
            negated: vec![],
        },
        // worse_dist(s,d,c) :- dist(s,d,c), dist(s,d,c2), c2 < c.
        Rule {
            head: a(WORSE_DIST, &[v(0), v(1), v(2)]),
            body: vec![
                a(DIST, &[v(0), v(1), v(2)]),
                a(DIST, &[v(0), v(1), v(4)]),
            ],
            builtins: vec![Builtin::Lt(v(4), v(2))],
            negated: vec![],
        },
        // bgp_cand(d, p, 0, 0) :- originate(d, p).
        Rule {
            head: a(BGP_CAND, &[v(0), v(1), Term::Const(0), Term::Const(0)]),
            body: vec![a(ORIGINATE, &[v(0), v(1)])],
            builtins: vec![],
            negated: vec![],
        },
        // bgp_cand(d, p, l+1, nh) :- bgp_cand(peer, p, l, _), session(d, peer, nh), l+1 < BOUND.
        Rule {
            head: a(BGP_CAND, &[v(0), v(1), v(5), v(4)]),
            body: vec![
                a(BGP_CAND, &[v(2), v(1), v(3), v(6)]),
                a(SESSION, &[v(0), v(2), v(4)]),
            ],
            builtins: vec![
                Builtin::Add(v(3), Term::Const(1), v(5)),
                Builtin::Lt(v(5), Term::Const(0)), // patched to path_bound
            ],
            negated: vec![],
        },
        // worse_bgp: shorter length wins; equal length, smaller nh wins.
        Rule {
            head: a(WORSE_BGP, &[v(0), v(1), v(2), v(3)]),
            body: vec![
                a(BGP_CAND, &[v(0), v(1), v(2), v(3)]),
                a(BGP_CAND, &[v(0), v(1), v(4), v(5)]),
            ],
            builtins: vec![Builtin::Lt(v(4), v(2))],
            negated: vec![],
        },
        Rule {
            head: a(WORSE_BGP, &[v(0), v(1), v(2), v(3)]),
            body: vec![
                a(BGP_CAND, &[v(0), v(1), v(2), v(3)]),
                a(BGP_CAND, &[v(0), v(1), v(2), v(5)]),
            ],
            builtins: vec![Builtin::Lt(v(5), v(3))],
            negated: vec![],
        },
    ];
    // Stratum 1: best selections (negation over stratum 0).
    let s1 = vec![
        Rule {
            head: a(BEST_DIST, &[v(0), v(1), v(2)]),
            body: vec![a(DIST, &[v(0), v(1), v(2)])],
            builtins: vec![],
            negated: vec![a(WORSE_DIST, &[v(0), v(1), v(2)])],
        },
        Rule {
            head: a(BGP_ROUTE, &[v(0), v(1), v(2), v(3)]),
            body: vec![a(BGP_CAND, &[v(0), v(1), v(2), v(3)])],
            builtins: vec![Builtin::Ne(v(2), Term::Const(0))],
            negated: vec![a(WORSE_BGP, &[v(0), v(1), v(2), v(3)])],
        },
    ];
    // Stratum 2: recover the first hops of shortest paths.
    let s2 = vec![
        // Direct link on a shortest path.
        Rule {
            head: a(FIRST_HOP, &[v(0), v(1), v(3)]),
            body: vec![
                a(LINK, &[v(0), v(1), v(2), v(3)]),
                a(BEST_DIST, &[v(0), v(1), v(2)]),
            ],
            builtins: vec![],
            negated: vec![],
        },
        // Through neighbor m: cost(link) + dist(m, d) = best(s, d).
        Rule {
            head: a(FIRST_HOP, &[v(0), v(4), v(3)]),
            body: vec![
                a(BEST_DIST, &[v(0), v(4), v(6)]),
                a(LINK, &[v(0), v(1), v(2), v(3)]),
                a(DIST, &[v(1), v(4), v(5)]),
            ],
            builtins: vec![Builtin::Add(v(2), v(5), v(6))],
            negated: vec![],
        },
    ];
    // Stratum 3: OSPF route candidates from best distances.
    let s3 = vec![
        // ospf_cand(d, p, c, nh) :- best_dist(d, adv, c1), adv(adv, p, c2),
        //                           first_hop(d, adv, nh), c = c1+c2.
        Rule {
            head: a(OSPF_CAND, &[v(0), v(4), v(6), v(7)]),
            body: vec![
                a(BEST_DIST, &[v(0), v(1), v(2)]),
                a(ADV, &[v(1), v(4), v(5)]),
                a(FIRST_HOP, &[v(0), v(1), v(7)]),
            ],
            builtins: vec![Builtin::Add(v(2), v(5), v(6))],
            negated: vec![],
        },
        Rule {
            head: a(WORSE_OSPF, &[v(0), v(1), v(2), v(3)]),
            body: vec![
                a(OSPF_CAND, &[v(0), v(1), v(2), v(3)]),
                a(OSPF_CAND, &[v(0), v(1), v(4), v(5)]),
            ],
            builtins: vec![Builtin::Lt(v(4), v(2))],
            negated: vec![],
        },
    ];
    // Stratum 4: final OSPF routes and protocol preference marks.
    let s4 = vec![
        Rule {
            head: a(OSPF_ROUTE, &[v(0), v(1), v(2), v(3)]),
            body: vec![a(OSPF_CAND, &[v(0), v(1), v(2), v(3)])],
            builtins: vec![],
            negated: vec![a(WORSE_OSPF, &[v(0), v(1), v(2), v(3)])],
        },
        plain(a(HAS_CONN, &[v(0), v(1)]), vec![a(CONNECTED, &[v(0), v(1)])]),
        plain(
            a(HAS_STATIC, &[v(0), v(1)]),
            vec![a(STATIC, &[v(0), v(1), v(2)])],
        ),
    ];
    // Stratum 5: has_ospf (needs final OSPF routes).
    let s5 = vec![plain(
        a(HAS_OSPF, &[v(0), v(1)]),
        vec![a(OSPF_ROUTE, &[v(0), v(1), v(2), v(3)])],
    )];
    // Stratum 6: the forwarding relation with administrative preference:
    // connected > static > ospf > bgp, encoded as negation chains.
    let s6 = vec![
        plain(
            a(FWD, &[v(0), v(1), Term::Const(PROTO_CONNECTED), Term::Const(0)]),
            vec![a(CONNECTED, &[v(0), v(1)])],
        ),
        Rule {
            head: a(FWD, &[v(0), v(1), Term::Const(PROTO_STATIC), v(2)]),
            body: vec![a(STATIC, &[v(0), v(1), v(2)])],
            builtins: vec![],
            negated: vec![a(HAS_CONN, &[v(0), v(1)])],
        },
        Rule {
            head: a(FWD, &[v(0), v(1), Term::Const(PROTO_OSPF), v(3)]),
            body: vec![a(OSPF_ROUTE, &[v(0), v(1), v(2), v(3)])],
            builtins: vec![],
            negated: vec![a(HAS_CONN, &[v(0), v(1)]), a(HAS_STATIC, &[v(0), v(1)])],
        },
        Rule {
            head: a(FWD, &[v(0), v(1), Term::Const(PROTO_BGP), v(3)]),
            body: vec![a(BGP_ROUTE, &[v(0), v(1), v(2), v(3)])],
            builtins: vec![],
            negated: vec![
                a(HAS_CONN, &[v(0), v(1)]),
                a(HAS_STATIC, &[v(0), v(1)]),
                a(HAS_OSPF, &[v(0), v(1)]),
            ],
        },
    ];
    Program {
        strata: vec![s0, s1, s2, s3, s4, s5, s6],
    }
}

/// Patches the cost/path bounds into the program's placeholder constants.
fn patch_bounds(p: &mut Program, inputs: &RoutingInputs) {
    // Stratum 0, rule 1 (dist recursion): Lt(_, cost_bound).
    if let Builtin::Lt(x, _) = p.strata[0][1].builtins[1] {
        p.strata[0][1].builtins[1] = Builtin::Lt(x, Term::Const(inputs.cost_bound));
    }
    // Stratum 0, rule 4 (bgp recursion): Lt(_, path_bound).
    if let Builtin::Lt(x, _) = p.strata[0][4].builtins[1] {
        p.strata[0][4].builtins[1] = Builtin::Lt(x, Term::Const(inputs.path_bound));
    }
}

/// Runs the original-architecture data plane generation.
pub fn compute(devices: &[Device], topo: &Topology, inputs: &RoutingInputs) -> DatalogRoutes {
    let mut syms = SymbolTable::default();
    let mut engine = Engine::new();
    let index: BTreeMap<&str, usize> = devices
        .iter()
        .enumerate()
        .map(|(i, d)| (d.name.as_str(), i))
        .collect();
    let mut dev_sym: Vec<Value> = Vec::with_capacity(devices.len());
    for d in devices {
        dev_sym.push(syms.intern(&d.name));
    }

    // Facts from the VI model (the original Stage 1 output).
    for (di, d) in devices.iter().enumerate() {
        let ds = dev_sym[di];
        for iface in d.active_interfaces() {
            if let Some(p) = iface.connected_prefix() {
                engine.insert_input(Fact {
                    pred: CONNECTED,
                    values: vec![ds, pack_prefix(p)],
                });
            }
            // OSPF adjacency facts.
            if d.ospf.is_some() {
                if let Some(area) = iface.ospf_area {
                    let cost = iface.ospf_cost.unwrap_or(1) as Value;
                    if let Some(p) = iface.connected_prefix() {
                        engine.insert_input(Fact {
                            pred: ADV,
                            values: vec![ds, pack_prefix(p), cost],
                        });
                    }
                    if !iface.ospf_passive {
                        let me = InterfaceRef::new(&d.name, &iface.name);
                        for nb in topo.neighbors_of(&me) {
                            let Some(&ni) = index.get(nb.device.as_str()) else { continue };
                            let nd = &devices[ni];
                            if nd.ospf.is_none() {
                                continue;
                            }
                            let Some(niface) = nd.interfaces.get(&nb.interface) else { continue };
                            if niface.ospf_area != Some(area) || niface.ospf_passive {
                                continue;
                            }
                            let Some(nh) = niface.ip() else { continue };
                            engine.insert_input(Fact {
                                pred: LINK,
                                values: vec![ds, dev_sym[ni], cost, nh.0 as Value],
                            });
                        }
                    }
                }
            }
        }
        for sr in &d.static_routes {
            let nh = match sr.next_hop {
                batnet_config::vi::NextHop::Ip(ip) => ip.0 as Value,
                batnet_config::vi::NextHop::Discard => 0,
            };
            engine.insert_input(Fact {
                pred: STATIC,
                values: vec![ds, pack_prefix(sr.prefix), nh],
            });
        }
        // BGP sessions + originations (config-level pairing only — the
        // original model had no data-plane-gated establishment).
        if let Some(bgp) = &d.bgp {
            for nb in &bgp.neighbors {
                // Find the device owning the peer address.
                for (pi, peer) in devices.iter().enumerate() {
                    if pi == di {
                        continue;
                    }
                    let Some(pb) = &peer.bgp else { continue };
                    if pb.asn != nb.remote_as {
                        continue;
                    }
                    let owns = peer.active_interfaces().any(|i| i.ip() == Some(nb.peer_ip));
                    if owns {
                        engine.insert_input(Fact {
                            pred: SESSION,
                            values: vec![ds, dev_sym[pi], nb.peer_ip.0 as Value],
                        });
                    }
                }
            }
            for &p in &bgp.networks {
                engine.insert_input(Fact {
                    pred: ORIGINATE,
                    values: vec![ds, pack_prefix(p)],
                });
            }
            if bgp.redistribute_connected {
                for iface in d.active_interfaces() {
                    if let Some(p) = iface.connected_prefix() {
                        engine.insert_input(Fact {
                            pred: ORIGINATE,
                            values: vec![ds, pack_prefix(p)],
                        });
                    }
                }
            }
        }
    }

    let mut prog = program();
    patch_bounds(&mut prog, inputs);
    let firings = engine.run(&prog);

    // Extract FWD facts per device.
    let mut routes: BTreeMap<String, Vec<DatalogRoute>> = BTreeMap::new();
    for d in devices {
        routes.insert(d.name.clone(), Vec::new());
    }
    for tuple in engine.tuples(FWD) {
        let [ds, p, proto, nh] = tuple else { continue };
        let Some(name) = syms.resolve(*ds) else { continue };
        routes.entry(name.to_string()).or_default().push(DatalogRoute {
            prefix: unpack_prefix(*p),
            proto: *proto,
            next_hop: Ip(*nh as u32),
        });
    }
    for v in routes.values_mut() {
        v.sort_by_key(|r| (r.prefix, r.proto, r.next_hop));
        v.dedup();
    }
    DatalogRoutes {
        routes,
        fact_count: engine.fact_count(),
        firings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::parse_device;

    fn devices(configs: &[(&str, &str)]) -> Vec<Device> {
        configs.iter().map(|(n, t)| parse_device(n, t).0).collect()
    }

    /// OSPF triangle with asymmetric costs (same shape as the imperative
    /// engine's test).
    fn triangle() -> Vec<Device> {
        devices(&[
            (
                "r0",
                "hostname r0\ninterface a\n ip address 10.0.1.0/31\n ip ospf area 0\n ip ospf cost 1\ninterface b\n ip address 10.0.2.0/31\n ip ospf area 0\n ip ospf cost 10\nrouter ospf 1\n",
            ),
            (
                "r1",
                "hostname r1\ninterface a\n ip address 10.0.1.1/31\n ip ospf area 0\n ip ospf cost 1\ninterface c\n ip address 10.0.3.0/31\n ip ospf area 0\n ip ospf cost 1\nrouter ospf 1\n",
            ),
            (
                "r2",
                "hostname r2\ninterface b\n ip address 10.0.2.1/31\n ip ospf area 0\n ip ospf cost 10\ninterface c\n ip address 10.0.3.1/31\n ip ospf area 0\n ip ospf cost 1\ninterface lan\n ip address 10.2.0.1/24\n ip ospf area 0\n ip ospf cost 5\n ip ospf passive\nrouter ospf 1\n",
            ),
        ])
    }

    #[test]
    fn ospf_shortest_path_via_datalog() {
        let devs = triangle();
        let topo = Topology::infer(&devs);
        let result = compute(&devs, &topo, &RoutingInputs { cost_bound: 64, path_bound: 8 });
        let r0 = &result.routes["r0"];
        let lan: Vec<_> = r0
            .iter()
            .filter(|r| r.prefix.to_string() == "10.2.0.0/24")
            .collect();
        assert_eq!(lan.len(), 1, "{r0:?}");
        assert_eq!(lan[0].proto, PROTO_OSPF);
        // Best path r0→r1→r2 enters via r1's 10.0.1.1.
        assert_eq!(lan[0].next_hop, "10.0.1.1".parse::<Ip>().unwrap());
    }

    #[test]
    fn intermediate_facts_are_retained() {
        let devs = triangle();
        let topo = Topology::infer(&devs);
        let result = compute(&devs, &topo, &RoutingInputs { cost_bound: 64, path_bound: 8 });
        // The engine must hold strictly more facts than final routes —
        // the Lesson-1 memory pathology on display.
        let total_routes: usize = result.routes.values().map(Vec::len).sum();
        assert!(
            result.fact_count > 3 * total_routes,
            "facts {} vs routes {total_routes}",
            result.fact_count
        );
        assert!(result.firings > result.fact_count as u64);
    }

    #[test]
    fn bgp_path_vector_propagates() {
        let devs = devices(&[
            (
                "r1",
                "hostname r1\ninterface e0\n ip address 10.0.0.1/31\ninterface lan\n ip address 10.1.0.1/24\nrouter bgp 65001\n redistribute connected\n neighbor 10.0.0.0 remote-as 65002\n",
            ),
            (
                "r2",
                "hostname r2\ninterface e0\n ip address 10.0.0.0/31\ninterface e1\n ip address 10.0.1.0/31\nrouter bgp 65002\n neighbor 10.0.0.1 remote-as 65001\n neighbor 10.0.1.1 remote-as 65003\n",
            ),
            (
                "r3",
                "hostname r3\ninterface e1\n ip address 10.0.1.1/31\nrouter bgp 65003\n neighbor 10.0.1.0 remote-as 65002\n",
            ),
        ]);
        let topo = Topology::infer(&devs);
        let result = compute(&devs, &topo, &RoutingInputs::for_network(&devs, &topo));
        // r3 must have a BGP route to r1's LAN via r2.
        let r3 = &result.routes["r3"];
        let lan: Vec<_> = r3
            .iter()
            .filter(|r| r.prefix.to_string() == "10.1.0.0/24")
            .collect();
        assert_eq!(lan.len(), 1, "{r3:?}");
        assert_eq!(lan[0].proto, PROTO_BGP);
        assert_eq!(lan[0].next_hop, "10.0.1.0".parse::<Ip>().unwrap());
    }

    #[test]
    fn protocol_preference_applies() {
        // A device with a connected prefix also announced via BGP by a
        // peer: connected must win in FWD.
        let devs = devices(&[
            (
                "r1",
                "hostname r1\ninterface e0\n ip address 10.0.0.1/31\ninterface lan\n ip address 10.5.0.1/24\nrouter bgp 65001\n neighbor 10.0.0.0 remote-as 65002\n",
            ),
            (
                "r2",
                "hostname r2\ninterface e0\n ip address 10.0.0.0/31\ninterface lan\n ip address 10.5.0.1/24\nrouter bgp 65002\n redistribute connected\n neighbor 10.0.0.1 remote-as 65001\n",
            ),
        ]);
        let topo = Topology::infer(&devs);
        let result = compute(&devs, &topo, &RoutingInputs::for_network(&devs, &topo));
        let r1 = &result.routes["r1"];
        let entries: Vec<_> = r1
            .iter()
            .filter(|r| r.prefix.to_string() == "10.5.0.0/24")
            .collect();
        assert_eq!(entries.len(), 1, "{entries:?}");
        assert_eq!(entries[0].proto, PROTO_CONNECTED);
    }

    #[test]
    fn prefix_packing_roundtrip() {
        for s in ["0.0.0.0/0", "10.1.2.0/24", "255.255.255.255/32"] {
            let p: Prefix = s.parse().unwrap();
            assert_eq!(unpack_prefix(pack_prefix(p)), p);
        }
    }
}
