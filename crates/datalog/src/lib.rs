//! # batnet-datalog — the *original* Batfish architecture, reproduced
//!
//! The paper's Lesson 1 is about what went wrong with Datalog in
//! production. To regenerate the Figure 3 comparison honestly, this crate
//! reimplements the original architecture's Stage 2: a bottom-up Datalog
//! engine (standing in for LogicBlox) evaluating a routing model written
//! as recursive rules.
//!
//! The engine deliberately keeps the properties the paper identifies as
//! the production roadblocks:
//!
//! * **No execution-order control** — rules fire in whatever order the
//!   semi-naive loop reaches them; BGP rules happily derive facts from
//!   not-yet-converged IGP facts and re-derive them later (§3, Lesson 1,
//!   "Performance").
//! * **Full fact retention** — every derived fact, including routes that
//!   are eventually sub-optimal, stays in memory (*"the Datalog engine
//!   retains in memory all intermediate facts"*); [`Engine::fact_count`]
//!   exposes the blow-up, and the memory ablation reports it.
//! * **Automatic provenance** — each fact records the rule and premises
//!   that derived it (*"producing this extra information was trivial in
//!   Datalog"*), which powered the original Stage 4.
//!
//! [`routing`] encodes the original control-plane model: connected
//! routes, bounded-cost OSPF distance with min-selection via stratified
//! negation, and a path-vector BGP on AS-path length. It supports the
//! feature set of the original paper's evaluation network (NET1); the
//! evolved feature set (route maps, communities, sessions gated on data
//! plane state, …) is exactly what Lesson 1 says was impractical here.

pub mod engine;
pub mod routing;

pub use engine::{Engine, Fact, Program, Rule, Term, Value};
pub use routing::{compute as datalog_routes, DatalogRoute, DatalogRoutes, RoutingInputs};
