//! # batnet-chaos — fault injection for the analysis pipeline
//!
//! A configuration analysis tool earns trust by what it does with bad
//! input: real snapshots arrive truncated, duplicated, garbled, and
//! half-deleted, and links flap while the analysis runs. This crate
//! injects exactly those faults — deterministically, from a seed — and
//! asserts the pipeline's robustness contract:
//!
//! * **no panics** escape the library, ever;
//! * broken devices are **quarantined** with machine-readable reasons;
//! * degradation is **monotone**: healthy devices produce byte-identical
//!   results whether or not broken ones were present.
//!
//! Run the sweep with the `chaos` binary:
//!
//! ```text
//! cargo run --release -p batnet-chaos -- --seeds 25 --nets net1,n2
//! ```

#![deny(clippy::unwrap_used, clippy::panic)]

pub mod harness;
pub mod mutate;
pub mod serve;

pub use harness::{run_chaos, ChaosConfig, ChaosReport, ChaosRun};
pub use mutate::{mutate, Mutation, MutationClass};
pub use serve::{run_serve_chaos, AbuseClass, ServeChaosConfig, ServeChaosReport};
