//! Seeded, deterministic fault injectors.
//!
//! Each mutation class models a real failure mode seen by configuration
//! analysis pipelines in production: truncated file transfers, duplicated
//! stanzas from bad merges, binary garbage, partial deletions, dangling
//! references, and links flapping while the analysis runs. The same
//! `(class, seed)` pair always produces the same mutation.

use batnet_net::Rng;
use batnet_routing::Environment;

/// One class of injected fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MutationClass {
    /// Cut the config off mid-file (interrupted transfer).
    TruncateLines,
    /// Duplicate a block of lines in place (bad merge).
    DuplicateLines,
    /// Splice garbage bytes into the text (corruption).
    GarbageBytes,
    /// Delete one top-level stanza (partial rollout).
    DeleteStanza,
    /// Add statements referencing structures that do not exist.
    UndefinedReference,
    /// Fail a random set of links in the environment (mid-analysis
    /// flaps: the harness analyzes the flapped and restored states
    /// back-to-back).
    LinkFlap,
}

impl MutationClass {
    /// Every class, in a stable order.
    pub const ALL: [MutationClass; 6] = [
        MutationClass::TruncateLines,
        MutationClass::DuplicateLines,
        MutationClass::GarbageBytes,
        MutationClass::DeleteStanza,
        MutationClass::UndefinedReference,
        MutationClass::LinkFlap,
    ];

    /// Stable name (CLI argument / report key).
    pub fn name(&self) -> &'static str {
        match self {
            MutationClass::TruncateLines => "truncate",
            MutationClass::DuplicateLines => "duplicate",
            MutationClass::GarbageBytes => "garbage",
            MutationClass::DeleteStanza => "delete-stanza",
            MutationClass::UndefinedReference => "undefined-ref",
            MutationClass::LinkFlap => "link-flap",
        }
    }

    /// Parses a class name as produced by [`MutationClass::name`].
    pub fn from_name(s: &str) -> Option<MutationClass> {
        MutationClass::ALL.iter().copied().find(|c| c.name() == s)
    }

    /// Does this class corrupt config text (as opposed to the
    /// environment)?
    pub fn mutates_text(&self) -> bool {
        !matches!(self, MutationClass::LinkFlap)
    }
}

/// The outcome of applying a mutation to a network.
pub struct Mutation {
    /// Mutated `(hostname, config text)` pairs (all devices; only the
    /// victims differ from the input).
    pub configs: Vec<(String, String)>,
    /// Mutated environment (differs only for [`MutationClass::LinkFlap`]).
    pub env: Environment,
    /// Names of the devices whose config text was corrupted. Empty for
    /// environment-only mutations.
    pub victims: Vec<String>,
}

/// Applies `class` with `seed` to `k` victim devices (capped at the
/// network size). Deterministic: same inputs, same output.
pub fn mutate(
    configs: &[(String, String)],
    env: &Environment,
    class: MutationClass,
    seed: u64,
    k: usize,
) -> Mutation {
    let mut rng = Rng::new(seed ^ 0xC4A0_5EED ^ (class as u64) << 32);
    let mut out: Vec<(String, String)> = configs.to_vec();
    let mut env = env.clone();
    let mut victims = Vec::new();
    if out.is_empty() {
        return Mutation {
            configs: out,
            env,
            victims,
        };
    }
    match class {
        MutationClass::LinkFlap => {
            // Fail 1..=3 random interfaces network-wide.
            let flaps = 1 + rng.below(3) as usize;
            for _ in 0..flaps {
                let vi = rng.index(out.len());
                let (name, text) = &out[vi];
                let ifaces: Vec<&str> = text
                    .lines()
                    .filter_map(|l| l.strip_prefix("interface "))
                    .map(str::trim)
                    .collect();
                if ifaces.is_empty() {
                    continue;
                }
                let iface = ifaces[rng.index(ifaces.len())].to_string();
                env.failed_interfaces.push((name.clone(), iface));
            }
        }
        _ => {
            let k = k.clamp(1, out.len());
            // Distinct victims, deterministic order.
            let mut picks: Vec<usize> = (0..out.len()).collect();
            rng.shuffle(&mut picks);
            picks.truncate(k);
            picks.sort_unstable();
            for vi in picks {
                let (name, text) = &out[vi];
                let mutated = mutate_text(text, class, &mut rng);
                victims.push(name.clone());
                out[vi] = (name.clone(), mutated);
            }
        }
    }
    Mutation {
        configs: out,
        env,
        victims,
    }
}

/// Corrupts one config text with `class`.
fn mutate_text(text: &str, class: MutationClass, rng: &mut Rng) -> String {
    let lines: Vec<&str> = text.lines().collect();
    match class {
        MutationClass::TruncateLines => {
            // Keep a random prefix — possibly zero lines — and cut the
            // last kept line in half to model a mid-line cutoff.
            let keep = rng.index(lines.len() + 1);
            let mut kept: Vec<String> = lines[..keep].iter().map(|s| s.to_string()).collect();
            if let Some(last) = kept.last_mut() {
                // len/2 of ASCII config text is a boundary; walk back for
                // the rare multi-byte case.
                let mut cut = last.len() / 2;
                while cut > 0 && !last.is_char_boundary(cut) {
                    cut -= 1;
                }
                last.truncate(cut);
            }
            kept.join("\n")
        }
        MutationClass::DuplicateLines => {
            if lines.is_empty() {
                return String::new();
            }
            let start = rng.index(lines.len());
            let len = 1 + rng.index((lines.len() - start).min(8));
            let mut out: Vec<&str> = Vec::with_capacity(lines.len() + len);
            out.extend_from_slice(&lines[..start + len]);
            out.extend_from_slice(&lines[start..start + len]); // the duplicate
            out.extend_from_slice(&lines[start + len..]);
            out.join("\n")
        }
        MutationClass::GarbageBytes => {
            // One time in three the whole file is junk (a binary blob
            // where a config should be) — this is the case that must
            // land in quarantine. Otherwise splice runs of garbage at
            // 1..=4 random positions (char-boundary safe: positions are
            // line starts).
            if rng.chance(1, 3) {
                let blob_lines = 4 + rng.index(24);
                return (0..blob_lines)
                    .map(|_| {
                        let len = 8 + rng.index(56);
                        (0..len)
                            .map(|_| {
                                let b = rng.below(96) as u8;
                                if b < 8 {
                                    (1 + b) as char
                                } else {
                                    (33 + (b % 90)) as char
                                }
                            })
                            .collect::<String>()
                    })
                    .collect::<Vec<_>>()
                    .join("\n");
            }
            let mut out: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
            let splices = 1 + rng.below(4) as usize;
            for _ in 0..splices {
                let pos = rng.index(out.len().max(1));
                let len = 3 + rng.index(24);
                let garbage: String = (0..len)
                    .map(|_| {
                        let b = rng.below(96) as u8;
                        // Mix of control chars and high-ASCII noise.
                        if b < 8 {
                            (1 + b) as char
                        } else {
                            (33 + (b % 90)) as char
                        }
                    })
                    .collect();
                if pos < out.len() {
                    out[pos] = format!("{garbage}{}", out[pos]);
                } else {
                    out.push(garbage);
                }
            }
            out.join("\n")
        }
        MutationClass::DeleteStanza => {
            // Top-level stanza boundaries: lines with no leading space.
            let heads: Vec<usize> = lines
                .iter()
                .enumerate()
                .filter(|(_, l)| !l.is_empty() && !l.starts_with(' '))
                .map(|(i, _)| i)
                .collect();
            if heads.is_empty() {
                return String::new();
            }
            let hi = rng.index(heads.len());
            let start = heads[hi];
            let end = heads.get(hi + 1).copied().unwrap_or(lines.len());
            let mut out: Vec<&str> = Vec::with_capacity(lines.len());
            out.extend_from_slice(&lines[..start]);
            out.extend_from_slice(&lines[end..]);
            out.join("\n")
        }
        MutationClass::UndefinedReference => {
            // Append an interface carrying references to structures that
            // do not exist anywhere in the config.
            let n = rng.below(200);
            format!(
                "{text}\ninterface Chaos{n}\n ip address 10.254.{}.1/24\n ip access-group CHAOS_MISSING_{n} in\n ip access-group CHAOS_MISSING_OUT_{n} out\n",
                n % 250
            )
        }
        MutationClass::LinkFlap => text.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfgs() -> Vec<(String, String)> {
        vec![
            (
                "a".to_string(),
                "hostname a\ninterface e0\n ip address 10.0.0.1/24\nip route 0.0.0.0/0 10.0.0.2\n"
                    .to_string(),
            ),
            (
                "b".to_string(),
                "hostname b\ninterface e0\n ip address 10.0.0.2/24\n".to_string(),
            ),
        ]
    }

    #[test]
    fn deterministic_per_seed() {
        for class in MutationClass::ALL {
            let m1 = mutate(&cfgs(), &Environment::none(), class, 7, 1);
            let m2 = mutate(&cfgs(), &Environment::none(), class, 7, 1);
            assert_eq!(m1.configs, m2.configs, "{}", class.name());
            assert_eq!(m1.victims, m2.victims, "{}", class.name());
            assert_eq!(
                m1.env.failed_interfaces, m2.env.failed_interfaces,
                "{}",
                class.name()
            );
        }
    }

    #[test]
    fn text_classes_change_victim_only() {
        for class in MutationClass::ALL.iter().filter(|c| c.mutates_text()) {
            let m = mutate(&cfgs(), &Environment::none(), *class, 3, 1);
            assert_eq!(m.victims.len(), 1, "{}", class.name());
            let changed = m
                .configs
                .iter()
                .zip(cfgs())
                .filter(|(a, b)| a.1 != b.1)
                .count();
            assert!(changed <= 1, "{}: at most the victim changes", class.name());
        }
    }

    #[test]
    fn link_flap_touches_env_not_text() {
        let m = mutate(&cfgs(), &Environment::none(), MutationClass::LinkFlap, 5, 1);
        assert_eq!(m.configs, cfgs());
        assert!(m.victims.is_empty());
        assert!(!m.env.failed_interfaces.is_empty());
    }

    #[test]
    fn class_names_round_trip() {
        for class in MutationClass::ALL {
            assert_eq!(MutationClass::from_name(class.name()), Some(class));
        }
    }
}
