//! The chaos harness: inject faults, assert the pipeline never panics
//! and degrades monotonically.
//!
//! For every `(network, class, seed)` triple the harness mutates the
//! network, runs the fault-tolerant pipeline, and checks seven
//! invariants:
//!
//! 1. **Zero panics** — no panic escapes the pipeline (containment via
//!    typed errors and quarantine is fine; an escaping panic is a
//!    violation).
//! 2. **Accountability** — every quarantined device appears in the
//!    snapshot diagnostics and carries a machine-readable reason code.
//! 3. **Monotone degradation** — when devices were quarantined, the
//!    results for the surviving devices are byte-identical to analyzing
//!    the surviving subset alone: broken inputs cannot bend healthy
//!    state.
//! 4. **Report validation** — the analysis's [`batnet_obs::RunReport`]
//!    serializes to JSON that parses and passes the schema-1 validator
//!    even under faults, and every quarantined device is accounted for
//!    in it with its reason code.
//! 5. **Lint robustness** — the lint engine never panics on mutated
//!    configs, and its finding fingerprints are identical across two
//!    runs over the same devices (reproducible reports are what the CI
//!    baseline gate stands on).
//! 6. **Tooling round trip** — under every mutation class the run
//!    report exports to Chrome trace JSON that passes the in-tree
//!    trace validator, and `obs-diff` of the report against itself is
//!    empty (the regression gate never invents findings from a
//!    degraded run).
//! 7. **Differential robustness** — `Snapshot::diff` of the faulted
//!    snapshot against itself never panics, is empty at every layer,
//!    and accounts for every quarantined device on both sides of the
//!    report (the change-validation gate cannot be confused by broken
//!    inputs).
//! 10. **Coverage/repair robustness** — the coverage engine never
//!    panics on mutated configs and its JSON report is byte-identical
//!    across two runs over the same devices; the repairer never panics
//!    and its candidate accounting always balances
//!    (`tried == accepted + rejected_regression + rejected_side_effect`).
//! 11. **Profiler read-onlyness** — with an aggressive (2500 Hz)
//!    continuous sampler attached, lint fingerprints and coverage JSON
//!    over the mutated configs are byte-identical to the sampler-off
//!    baselines, nothing panics, the sampler never writes the metric
//!    registry, and its window passes the profile validator (which
//!    enforces `samples == recorded + dropped`).
//! 12. **Parallel-engine parity** — the whole faulted pipeline re-run on
//!    a dedicated 4-thread work-stealing pool (with the aggressive
//!    sampler attached) quarantines the same devices with the same
//!    reason codes and reports the same partial/complete outcome as the
//!    ambient run, every panic the pool contains is accounted for in
//!    the quarantine report (zero leaks), and the sampler profile still
//!    passes the validator.
//!    (Invariants 8–9 are the `batnet-serve` sweep in [`crate::serve`].)

use crate::mutate::{mutate, MutationClass};
use batnet::{ResourceGovernor, Snapshot};
use batnet_routing::SimOptions;
use batnet_topogen::GeneratedNetwork;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// What to run.
pub struct ChaosConfig {
    /// Seeds to sweep.
    pub seeds: Vec<u64>,
    /// Mutation classes to inject.
    pub classes: Vec<MutationClass>,
    /// Victim devices per text mutation.
    pub victims_per_run: usize,
    /// Per-run wall-clock deadline (a hang is also a failure mode).
    pub deadline: Duration,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seeds: (1..=25).collect(),
            classes: MutationClass::ALL.to_vec(),
            victims_per_run: 2,
            deadline: Duration::from_secs(120),
        }
    }
}

/// One `(network, class, seed)` result.
pub struct ChaosRun {
    /// Network name.
    pub net: String,
    /// Mutation class name.
    pub class: &'static str,
    /// Seed.
    pub seed: u64,
    /// `(device, reason code)` for everything quarantined.
    pub quarantined: Vec<(String, &'static str)>,
    /// Invariant violations (empty = pass).
    pub violations: Vec<String>,
}

/// Aggregated sweep outcome.
#[derive(Default)]
pub struct ChaosReport {
    /// Per-run results.
    pub runs: Vec<ChaosRun>,
}

impl ChaosReport {
    /// Total runs.
    pub fn total(&self) -> usize {
        self.runs.len()
    }

    /// Total quarantined devices across runs.
    pub fn quarantine_total(&self) -> usize {
        self.runs.iter().map(|r| r.quarantined.len()).sum()
    }

    /// All violations, labeled by run.
    pub fn violations(&self) -> Vec<String> {
        self.runs
            .iter()
            .flat_map(|r| {
                r.violations
                    .iter()
                    .map(move |v| format!("[{} {} seed={}] {v}", r.net, r.class, r.seed))
            })
            .collect()
    }

    /// Did every run uphold every invariant?
    pub fn ok(&self) -> bool {
        self.runs.iter().all(|r| r.violations.is_empty())
    }
}

/// Runs the sweep over `nets`. The default panic hook is silenced for
/// the duration (contained panics would otherwise spam stderr) and
/// restored afterwards.
pub fn run_chaos(nets: &[GeneratedNetwork], cfg: &ChaosConfig) -> ChaosReport {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut report = ChaosReport::default();
    for net in nets {
        for &class in &cfg.classes {
            for &seed in &cfg.seeds {
                report.runs.push(run_one(net, class, seed, cfg));
            }
        }
    }
    std::panic::set_hook(prev_hook);
    report
}

fn run_one(net: &GeneratedNetwork, class: MutationClass, seed: u64, cfg: &ChaosConfig) -> ChaosRun {
    let mut run = ChaosRun {
        net: net.name.clone(),
        class: class.name(),
        seed,
        quarantined: Vec::new(),
        violations: Vec::new(),
    };
    let m = mutate(&net.configs, &net.env, class, seed, cfg.victims_per_run);
    let configs = m.configs.clone();
    let env = m.env.clone();
    let deadline = cfg.deadline;
    // One observability run per chaos run: the captured report must
    // describe exactly this (network, class, seed) triple.
    batnet_obs::reset();

    // Invariant 1: the entire pipeline, end to end, must not panic.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let snapshot = Snapshot::from_configs(configs).with_env(env);
        let gov = ResourceGovernor::with_deadline(deadline);
        let quarantine: Vec<(String, &'static str)> = snapshot
            .quarantined
            .iter()
            .map(|q| (q.device.clone(), q.reason.code()))
            .collect();
        let diag_names: Vec<String> =
            snapshot.diagnostics.iter().map(|(n, _)| n.clone()).collect();
        let healthy: Vec<String> = snapshot.devices.iter().map(|d| d.name.clone()).collect();
        let result = snapshot.analyze_resilient(&SimOptions::default(), 1, &gov);
        (snapshot, quarantine, diag_names, healthy, result)
    }));
    let (snapshot, quarantine, diag_names, _healthy, result) = match outcome {
        Ok(v) => v,
        Err(_) => {
            run.violations.push("panic escaped the pipeline".to_string());
            return run;
        }
    };
    run.quarantined = quarantine;

    // Invariant 2: every quarantined device is accounted for in the
    // diagnostics with a machine-readable reason.
    for (device, code) in &run.quarantined {
        if code.is_empty() {
            run.violations
                .push(format!("{device}: quarantine reason has no code"));
        }
        if !diag_names.iter().any(|n| n == device) {
            run.violations
                .push(format!("{device}: quarantined but absent from diagnostics"));
        }
    }

    // Invariant 7: differential analysis of the faulted snapshot
    // against itself never panics, reports no differences, and carries
    // the quarantine accounting on both sides.
    let diff_outcome = catch_unwind(AssertUnwindSafe(|| {
        let opts = batnet::DiffOptions {
            max_flow_deltas: 4,
            max_starts: 8,
            ..batnet::DiffOptions::default()
        };
        snapshot.diff_with(&snapshot, &opts)
    }));
    match diff_outcome {
        Err(_) => run
            .violations
            .push("diff panicked on the faulted snapshot".to_string()),
        Ok(diff) => {
            if !diff.is_empty() {
                run.violations.push(format!(
                    "self-diff of faulted snapshot is not empty: {} change(s)",
                    diff.change_count()
                ));
            }
            for q in &snapshot.quarantined {
                let on_both = [&diff.quarantined_before, &diff.quarantined_after]
                    .iter()
                    .all(|side| {
                        side.iter()
                            .any(|e| e.device == q.device && e.code == q.reason.code())
                    });
                if !on_both {
                    run.violations.push(format!(
                        "{}: quarantined but missing from the self-diff report",
                        q.device
                    ));
                }
            }
        }
    }

    // Invariant 5: the lint engine never panics on mutated configs, and
    // its finding fingerprints are deterministic across runs over the
    // same parsed devices (the CI gate depends on reproducible reports).
    let lint_outcome = catch_unwind(AssertUnwindSafe(|| {
        let devices: Vec<batnet_config::vi::Device> = m
            .configs
            .iter()
            .map(|(name, text)| batnet_config::parse_device(name, text).0)
            .collect();
        let fingerprints = |findings: &[batnet::lint::Finding]| -> Vec<String> {
            findings.iter().map(batnet::lint::Finding::fingerprint).collect()
        };
        let first = fingerprints(&batnet::lint::run_all(&devices));
        let second = fingerprints(&batnet::lint::run_all(&devices));
        (first, second)
    }));
    let mut lint_baseline = None;
    match lint_outcome {
        Err(_) => run
            .violations
            .push("lint panicked on mutated configs".to_string()),
        Ok((first, second)) => {
            if first != second {
                run.violations
                    .push("lint fingerprints differ across identical runs".to_string());
            }
            lint_baseline = Some(first);
        }
    }

    // Invariant 10: coverage analysis never panics on mutated configs
    // and reports byte-identically across runs; the repairer never
    // panics and always balances its candidate accounting. Repair
    // validation runs two route simulations per candidate, so the
    // repair half is sampled on the low seeds only — every class still
    // gets exercised.
    let cov_outcome = catch_unwind(AssertUnwindSafe(|| {
        let devices: Vec<batnet_config::vi::Device> = m
            .configs
            .iter()
            .map(|(name, text)| batnet_config::parse_device(name, text).0)
            .collect();
        let first = batnet_coverage::render_json(&run.net, &batnet_coverage::analyze(&devices));
        let second = batnet_coverage::render_json(&run.net, &batnet_coverage::analyze(&devices));
        (first, second)
    }));
    let mut cov_baseline = None;
    match cov_outcome {
        Err(_) => run
            .violations
            .push("coverage analysis panicked on mutated configs".to_string()),
        Ok((first, second)) => {
            if first != second {
                run.violations
                    .push("coverage JSON differs across identical runs".to_string());
            }
            cov_baseline = Some(first);
        }
    }

    // Invariant 11: an aggressive continuous profiler is strictly
    // read-only. Re-run lint and coverage over the same mutated configs
    // with a 2500 Hz sampler attached: the fingerprints and the JSON
    // must be byte-identical to the sampler-off baselines above, nothing
    // may panic, the sampler must never write the metric registry, and
    // its window must pass the profile validator (which enforces the
    // `samples == recorded + dropped` accounting balance).
    if let (Some(lint_base), Some(cov_base)) = (&lint_baseline, &cov_baseline) {
        let thread = batnet_obs::SamplerThread::spawn(2500);
        let sampled = catch_unwind(AssertUnwindSafe(|| {
            let devices: Vec<batnet_config::vi::Device> = m
                .configs
                .iter()
                .map(|(name, text)| batnet_config::parse_device(name, text).0)
                .collect();
            let lints: Vec<String> =
                batnet::lint::run_all(&devices).iter().map(batnet::lint::Finding::fingerprint).collect();
            let cov = batnet_coverage::render_json(&run.net, &batnet_coverage::analyze(&devices));
            (lints, cov)
        }));
        let profile = thread.stop().take_profile();
        match sampled {
            Err(_) => run
                .violations
                .push("panic with the sampler attached".to_string()),
            Ok((lints, cov)) => {
                if &lints != lint_base {
                    run.violations
                        .push("lint fingerprints differ with the sampler attached".to_string());
                }
                if &cov != cov_base {
                    run.violations
                        .push("coverage JSON differs with the sampler attached".to_string());
                }
            }
        }
        if batnet_obs::metrics::gauge("obs.sampler.samples").is_some() {
            run.violations
                .push("sampler leaked its stats into the metric registry".to_string());
        }
        match batnet_obs::json::parse(&profile) {
            Err(e) => run
                .violations
                .push(format!("sampler profile does not parse: {e}")),
            Ok(v) => {
                if let Err(e) = batnet_obs::report::validate_profile(&v) {
                    run.violations
                        .push(format!("sampler profile fails validation: {e}"));
                }
            }
        }
    }
    if seed <= 3 {
        let configs = m.configs.clone();
        let repair_outcome = catch_unwind(AssertUnwindSafe(|| {
            let snapshot = Snapshot::from_configs(configs.clone());
            let target = snapshot.lint().first().map(|f| (f.check, f.device.clone()));
            target.map(|(check, device)| {
                let limits = batnet_coverage::repair::RepairLimits {
                    max_candidates: 3,
                    diff: batnet::DiffOptions {
                        max_flow_deltas: 4,
                        max_starts: 8,
                        ..batnet::DiffOptions::default()
                    },
                };
                let dev = (!device.is_empty()).then_some(device);
                batnet_coverage::repair::repair_lint(&configs, check, dev.as_deref(), &limits)
            })
        }));
        match repair_outcome {
            Err(_) => run
                .violations
                .push("repair panicked on mutated configs".to_string()),
            // No findings to target, or the target vanished between lint
            // and repair (an Err) — nothing to account for.
            Ok(None) | Ok(Some(Err(_))) => {}
            Ok(Some(Ok(outcome))) => {
                if !outcome.balanced() {
                    run.violations.push(format!(
                        "repair accounting does not balance: {}",
                        outcome.summary()
                    ));
                }
            }
        }
    }

    let analysis = match result {
        Err(e) => {
            // A typed error is acceptable only when nothing survived.
            if !snapshot.devices.is_empty() {
                run.violations
                    .push(format!("typed error despite healthy devices: {e}"));
            }
            return run;
        }
        Ok(outcome) => outcome,
    };
    // A Partial outcome (deadline hit) has honestly-incomplete RIBs; the
    // byte-identical monotone comparison only applies to complete runs.
    let partial = analysis.is_partial();
    let analysis = analysis.into_value();

    // Route-stage quarantines surface on the analysis.
    for q in &analysis.quarantined {
        if !run.quarantined.iter().any(|(d, _)| d == &q.device) {
            run.quarantined.push((q.device.clone(), q.reason.code()));
        }
    }

    // Invariant 4: the run report is machine-readable even under faults
    // and accounts for every quarantined device.
    let report_text = analysis.report.to_json();
    match batnet_obs::json::parse(&report_text) {
        Err(e) => run
            .violations
            .push(format!("run report does not parse as JSON: {e}")),
        Ok(v) => {
            if let Err(e) = batnet_obs::report::validate_run_report(&v) {
                run.violations.push(format!("run report fails schema: {e}"));
            }
            check_trace_and_self_diff(&v, &mut run.violations);
        }
    }
    for q in &analysis.quarantined {
        let accounted = analysis
            .report
            .quarantined
            .iter()
            .any(|e| e.device == q.device && e.code == q.reason.code());
        if !accounted {
            run.violations.push(format!(
                "{}: quarantined but missing from the run report",
                q.device
            ));
        }
    }

    // Invariant 3: monotone degradation. When anything was quarantined,
    // re-analyze the surviving subset alone and require byte-identical
    // routing results for every survivor.
    if !partial && !run.quarantined.is_empty() && !analysis.devices.is_empty() {
        let survivors: Vec<String> = analysis.devices.iter().map(|d| d.name.clone()).collect();
        let subset: Vec<(String, String)> = m
            .configs
            .iter()
            .filter(|(n, _)| survivors.contains(n))
            .cloned()
            .collect();
        let check = catch_unwind(AssertUnwindSafe(|| {
            let snap = Snapshot::from_configs(subset).with_env(m.env.clone());
            batnet_routing::simulate(&snap.devices, &snap.env, &SimOptions::default())
        }));
        match check {
            Err(_) => run
                .violations
                .push("panic while re-analyzing the healthy subset".to_string()),
            Ok(alone) => {
                for name in &survivors {
                    let (a, b) = (analysis.dp.device(name), alone.device(name));
                    let same = match (a, b) {
                        (Some(a), Some(b)) => {
                            a.main_rib == b.main_rib && a.fib.entries() == b.fib.entries()
                        }
                        _ => false,
                    };
                    if !same {
                        run.violations.push(format!(
                            "non-monotone: {name} differs between quarantined-run and subset-alone"
                        ));
                    }
                }
            }
        }
    }

    // Invariant 12: the parallel engine degrades identically. Re-run
    // the whole pipeline on a dedicated 4-thread work-stealing pool
    // with the aggressive sampler attached: the quarantine list (device
    // and reason code, in order) and the partial/complete outcome must
    // match the ambient run above, every panic the pool contained must
    // surface as a panic-coded quarantine entry (a contained panic that
    // vanishes from the accounting is a leak), and the sampler's
    // profile must still pass the validator. The re-run is a full
    // analysis, so like the repair half it is sampled on the low seeds
    // only — every mutation class still gets exercised.
    if seed <= 3 {
        let pool = batnet_exec::Pool::new(4);
        let thread = batnet_obs::SamplerThread::spawn(2500);
        let par = catch_unwind(AssertUnwindSafe(|| {
            batnet_exec::with_pool(&pool, || {
                let snap = Snapshot::from_configs(m.configs.clone()).with_env(m.env.clone());
                let gov = ResourceGovernor::with_deadline(deadline);
                let quarantine: Vec<(String, &'static str)> = snap
                    .quarantined
                    .iter()
                    .map(|q| (q.device.clone(), q.reason.code()))
                    .collect();
                let result = snap.analyze_resilient(&SimOptions::default(), 1, &gov);
                (quarantine, result)
            })
        }));
        let profile = thread.stop().take_profile();
        match par {
            Err(_) => run
                .violations
                .push("panic escaped the parallel pipeline".to_string()),
            Ok((mut par_quarantine, par_result)) => {
                let par_partial = match par_result {
                    Err(_) => false,
                    Ok(outcome) => {
                        let is_partial = outcome.is_partial();
                        let par_analysis = outcome.into_value();
                        for q in &par_analysis.quarantined {
                            if !par_quarantine.iter().any(|(d, _)| d == &q.device) {
                                par_quarantine.push((q.device.clone(), q.reason.code()));
                            }
                        }
                        is_partial
                    }
                };
                if par_quarantine != run.quarantined {
                    run.violations.push(format!(
                        "parallel quarantine accounting differs: {:?} (parallel) vs {:?}",
                        par_quarantine, run.quarantined
                    ));
                }
                if par_partial != partial {
                    run.violations.push(format!(
                        "parallel partiality differs: {par_partial} (parallel) vs {partial}"
                    ));
                }
                let contained = pool.stats().panics_contained as usize;
                let accounted = par_quarantine
                    .iter()
                    .filter(|(_, code)| *code == "parse-panic" || *code == "route-panic")
                    .count();
                if contained > accounted {
                    run.violations.push(format!(
                        "contained-panic leak: the pool contained {contained} panic(s) \
but only {accounted} are accounted in the quarantine"
                    ));
                }
            }
        }
        match batnet_obs::json::parse(&profile) {
            Err(e) => run
                .violations
                .push(format!("parallel-run sampler profile does not parse: {e}")),
            Ok(v) => {
                if let Err(e) = batnet_obs::report::validate_profile(&v) {
                    run.violations
                        .push(format!("parallel-run sampler profile fails validation: {e}"));
                }
            }
        }
    }
    run
}

/// Invariant 6: a faulted run's report still round-trips through the
/// performance tooling — its span forest exports to Chrome trace JSON
/// that passes the in-tree trace validator, and `obs-diff` comparing
/// the report against itself reports nothing (the regression gate can
/// never hallucinate a finding out of a degraded run).
fn check_trace_and_self_diff(report: &batnet_obs::json::Value, violations: &mut Vec<String>) {
    let forest = match batnet_obs::trace::forest_from_json(report) {
        Ok(f) => f,
        Err(e) => {
            violations.push(format!("span forest does not export: {e}"));
            return;
        }
    };
    match batnet_obs::json::parse(&batnet_obs::trace::chrome_trace(&forest)) {
        Err(e) => violations.push(format!("chrome trace does not parse: {e}")),
        Ok(t) => {
            if let Err(e) = batnet_obs::trace::validate_chrome_trace(&t) {
                violations.push(format!("chrome trace fails validation: {e}"));
            }
        }
    }
    match batnet_obs::diff::diff_reports(report, report, &batnet_obs::diff::DiffOptions::default())
    {
        Err(e) => violations.push(format!("self-diff refused to compare: {e}")),
        Ok(d) => {
            if !d.findings.is_empty() {
                violations.push(format!(
                    "self-diff is not empty: {} findings (first: {})",
                    d.findings.len(),
                    d.findings[0].render()
                ));
            }
        }
    }
}
