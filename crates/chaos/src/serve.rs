//! Chaos invariant 8: adversarial clients against a live `batnet-serve`.
//!
//! Invariants 1–7 abuse the *pipeline* with mutated inputs; this module
//! abuses the *service* with hostile bytes on real sockets. For every
//! seed it drives one connection per abuse class against an in-process
//! server — malformed request lines, oversized headers and bodies,
//! duplicate-header floods, uploads truncated mid-body, peers that
//! vanish mid-request, and
//! slow-loris drips that hold a worker hostage — with well-behaved
//! probes interleaved throughout. The contract:
//!
//! * **Zero panics** — `serve.panics.contained` never ticks; abuse is
//!   rejected by the parser and the governor, not by unwinding.
//! * **The listener keeps serving** — every interleaved probe and the
//!   post-abuse health check and reachability query answer normally.
//! * **Every rejection is accounted** — each abuse class lands in its
//!   `serve.rejected.<class>` counter with the exact expected count,
//!   and the books balance: accepted connections equal requests served
//!   plus rejections plus idle closes plus contained panics.
//!
//! Invariant 9 audits the *tracing* books on the same sweep, with a
//! deliberately tiny trace ring so eviction is forced: every
//! well-behaved response carries `X-Batnet-Trace-Id`, every collected
//! id is either retained in `/tracez` (validator-clean) or covered by
//! the eviction counter, a known-evicted id's `/tracez?id=` lookup
//! answers 404 with `"reason": "evicted"` (distinguished from ids the
//! server never issued), and after drain the identity
//! `requests.total == ring retained + evicted == access-log lines`
//! holds exactly — a trace is never silently dropped.
//!
//! Invariant 11 (serve half; the pipeline half lives in
//! [`crate::harness`]) runs the whole sweep with the continuous
//! profiler attached at an aggressive cadence: the server must uphold
//! every contract above while being sampled, and `/profilez` must
//! answer a validator-clean `batnet-prof/v1` window whose accounting
//! balances (`samples == recorded + dropped`).

use batnet_net::Rng;
use batnet_serve::{client, AccessLog, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One adversarial client behavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbuseClass {
    /// A request line no HTTP parser should accept.
    MalformedLine,
    /// A request line or header far over the parser's line limit.
    OversizedHeader,
    /// More header *lines* than the parser's header-count limit, all
    /// with the same name — duplicates collapse into one map entry, so
    /// only a per-line counter catches this worker-pinning stream.
    HeaderFlood,
    /// A `Content-Length` over the configured body cap.
    OversizedBody,
    /// A well-formed upload whose body stops short of `Content-Length`.
    TruncatedUpload,
    /// A peer that disconnects with a request half-sent.
    MidRequestDisconnect,
    /// A peer that sends a few bytes and then goes silent past the
    /// watchdog timeout.
    SlowLoris,
}

impl AbuseClass {
    /// Every class, in sweep order.
    pub const ALL: [AbuseClass; 7] = [
        AbuseClass::MalformedLine,
        AbuseClass::OversizedHeader,
        AbuseClass::HeaderFlood,
        AbuseClass::OversizedBody,
        AbuseClass::TruncatedUpload,
        AbuseClass::MidRequestDisconnect,
        AbuseClass::SlowLoris,
    ];

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            AbuseClass::MalformedLine => "malformed-line",
            AbuseClass::OversizedHeader => "oversized-header",
            AbuseClass::HeaderFlood => "header-flood",
            AbuseClass::OversizedBody => "oversized-body",
            AbuseClass::TruncatedUpload => "truncated-upload",
            AbuseClass::MidRequestDisconnect => "mid-request-disconnect",
            AbuseClass::SlowLoris => "slow-loris",
        }
    }

    /// The `serve.rejected.<class>` counter this abuse must land in.
    pub fn expected_metric(self) -> &'static str {
        match self {
            AbuseClass::MalformedLine => "malformed",
            AbuseClass::OversizedHeader
            | AbuseClass::HeaderFlood
            | AbuseClass::OversizedBody => "too-large",
            AbuseClass::TruncatedUpload | AbuseClass::MidRequestDisconnect => "truncated",
            AbuseClass::SlowLoris => "watchdog",
        }
    }
}

/// What to run.
pub struct ServeChaosConfig {
    /// Seeds to sweep; each seed drives one connection per abuse class.
    pub seeds: Vec<u64>,
    /// Watchdog timeout for the server under test. Short, so slow-loris
    /// verdicts arrive quickly; every slow client costs one such slice.
    pub io_timeout_ms: u64,
}

impl Default for ServeChaosConfig {
    fn default() -> ServeChaosConfig {
        ServeChaosConfig {
            seeds: (1..=5).collect(),
            io_timeout_ms: 300,
        }
    }
}

/// Aggregated sweep outcome.
#[derive(Default)]
pub struct ServeChaosReport {
    /// Adversarial connections driven.
    pub connections: usize,
    /// Well-behaved probes interleaved with the abuse.
    pub probes: usize,
    /// Final `serve.rejected.*` accounting, by class.
    pub rejections: Vec<(String, u64)>,
    /// Parsed requests served (`serve.requests.total` after drain).
    pub requests: u64,
    /// Request traces still retained in the ring after drain.
    pub traces_retained: usize,
    /// Request traces evicted from the (deliberately tiny) ring.
    pub traces_evicted: u64,
    /// Structured access-log lines captured by the sink.
    pub access_lines: usize,
    /// Invariant violations (empty = pass).
    pub violations: Vec<String>,
}

impl ServeChaosReport {
    /// Did the service uphold the contract?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The two-router fixture the well-behaved probes query: small enough
/// to upload and analyze in milliseconds, rich enough that a
/// reachability answer is non-trivial.
fn fixture_upload_body() -> String {
    let configs = [
        (
            "r1",
            "hostname r1\ninterface hosts\n ip address 10.1.0.1/24\ninterface core\n ip address 172.16.0.1/31\nip route 10.2.0.0/24 172.16.0.0\n",
        ),
        (
            "r2",
            "hostname r2\ninterface core\n ip address 172.16.0.0/31\ninterface servers\n ip address 10.2.0.1/24\nip route 10.1.0.0/24 172.16.0.1\n",
        ),
    ];
    let mut body = String::from("{\"configs\": [");
    for (i, (name, text)) in configs.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str("{\"name\": ");
        batnet_obs::json::write_str(&mut body, name);
        body.push_str(", \"text\": ");
        batnet_obs::json::write_str(&mut body, text);
        body.push('}');
    }
    body.push_str("]}");
    body
}

/// Runs the adversarial sweep against a fresh in-process server and
/// checks the invariant-8 and invariant-9 contracts. The metrics window
/// is reset first so the accounting identity is auditable from
/// `/metricsz` alone. The trace ring is sized far below the request
/// count so invariant 9 exercises eviction accounting, not just
/// retention.
pub fn run_serve_chaos(cfg: &ServeChaosConfig) -> ServeChaosReport {
    let mut report = ServeChaosReport::default();
    batnet_obs::reset();
    let (access_log, access_buf) = AccessLog::sink();
    let handle = match batnet_serve::spawn(ServeConfig {
        workers: 2,
        queue_depth: 8,
        io_timeout_ms: cfg.io_timeout_ms.max(50),
        max_body_bytes: 64 << 10,
        store_capacity: 4,
        trace_ring_capacity: 4,
        // Invariant 11: the whole adversarial sweep runs under an
        // aggressive continuous profiler — sampling must never change
        // the service's behavior or books.
        profile_hz: 1999,
        access_log,
        ..ServeConfig::default()
    }) {
        Ok(h) => h,
        Err(e) => {
            report
                .violations
                .push(format!("server failed to bind loopback: {e}"));
            return report;
        }
    };
    let addr = handle.addr();
    let t = Duration::from_secs(10);
    // Invariant 9's evidence: the trace id of every well-behaved
    // response we drive, to be matched against the ring later.
    let mut trace_ids: Vec<String> = Vec::new();

    // A known-good snapshot, through the public upload path, so probes
    // exercise a real query.
    match client::post(addr, "/snapshots/chaos", fixture_upload_body().as_bytes(), t) {
        Ok(r) if r.status == 201 => collect_trace_id(&r, "fixture upload", &mut trace_ids, &mut report),
        Ok(r) => report.violations.push(format!(
            "fixture upload: expected 201, got {}: {}",
            r.status,
            r.body_str()
        )),
        Err(e) => report
            .violations
            .push(format!("fixture upload: transport: {e}")),
    }

    // The sweep: per seed, one connection per class, probe between
    // classes. Slow-loris runs last and batched — its connections are
    // answered by the watchdog, one worker slice each.
    for &seed in &cfg.seeds {
        for class in AbuseClass::ALL {
            if class == AbuseClass::SlowLoris {
                continue;
            }
            let mut rng = Rng::new(seed ^ (class as u64).wrapping_mul(0x9E37_79B9));
            if let Err(v) = abuse_once(addr, class, &mut rng, t) {
                report.violations.push(format!("[{} seed={seed}] {v}", class.name()));
            }
            report.connections += 1;
        }
        probe(addr, t, &mut trace_ids, &mut report);
    }
    slow_loris_sweep(addr, cfg, t, &mut report);
    probe(addr, t, &mut trace_ids, &mut report);

    // The listener still serves real work after the abuse.
    match client::get(addr, "/query/reach?snapshot=chaos&port=80", t) {
        Ok(r) if r.status == 200 => {
            collect_trace_id(&r, "post-abuse reach query", &mut trace_ids, &mut report)
        }
        Ok(r) => report.violations.push(format!(
            "post-abuse reach query: expected 200, got {}: {}",
            r.status,
            r.body_str()
        )),
        Err(e) => report
            .violations
            .push(format!("post-abuse reach query: transport: {e}")),
    }

    audit_metrics(addr, cfg, t, &mut trace_ids, &mut report);
    audit_tracez(addr, t, &trace_ids, &mut report);
    audit_profilez(addr, t, &mut report);

    // Invariant 9, post-drain: the ring outlives the handle, so the
    // final books are read with zero requests in flight.
    let ring = handle.trace_ring();
    handle.shutdown();
    let (retained, evicted) = ring.stats();
    let requests = match batnet_obs::capture().metrics.get("serve.requests.total") {
        Some(batnet_obs::metrics::MetricValue::Counter(n)) => *n,
        _ => 0,
    };
    let access_lines = access_buf.lock().unwrap_or_else(|e| e.into_inner()).len();
    report.requests = requests;
    report.traces_retained = retained;
    report.traces_evicted = evicted;
    report.access_lines = access_lines;
    if requests != retained as u64 + evicted {
        report.violations.push(format!(
            "trace books don't balance: requests.total={requests} but \
             ring retained={retained} + evicted={evicted}"
        ));
    }
    if access_lines as u64 != requests {
        report.violations.push(format!(
            "access log out of step: {access_lines} lines for {requests} requests"
        ));
    }
    let missing = trace_ids.iter().filter(|id| !ring.contains(id)).count() as u64;
    if missing > evicted {
        report.violations.push(format!(
            "{missing} collected trace id(s) absent from the ring but only \
             {evicted} eviction(s) accounted"
        ));
    }
    report
}

/// Records a well-behaved response's trace id; a missing header is
/// itself an invariant-9 violation.
fn collect_trace_id(
    r: &client::ClientResponse,
    step: &str,
    ids: &mut Vec<String>,
    report: &mut ServeChaosReport,
) {
    match r.header("X-Batnet-Trace-Id") {
        Some(id) => ids.push(id.to_string()),
        None => report
            .violations
            .push(format!("{step}: response missing X-Batnet-Trace-Id")),
    }
}

/// One adversarial connection. Returns `Err` only for harness-side
/// failures (the server refusing to talk at all); the server's verdict
/// is audited later from `/metricsz`.
fn abuse_once(
    addr: SocketAddr,
    class: AbuseClass,
    rng: &mut Rng,
    t: Duration,
) -> Result<(), String> {
    let mut s = TcpStream::connect_timeout(&addr, t).map_err(|e| format!("connect: {e}"))?;
    let _ = s.set_read_timeout(Some(t));
    let _ = s.set_write_timeout(Some(t));
    match class {
        AbuseClass::MalformedLine => {
            let line: &[u8] = *rng.pick(&[
                b"GARBAGE\r\n".as_slice(),
                b"GET\r\n".as_slice(),
                b"FROB /x HTTP/1.1\r\n".as_slice(),
                b"GET /x SMTP/3.0\r\n".as_slice(),
                b"\x16\x03\x01\x02\x00 a b\r\n".as_slice(),
            ]);
            send_then_drain(&mut s, line);
        }
        AbuseClass::OversizedHeader => {
            let n = 4097 + rng.index(4096);
            let junk = "a".repeat(n);
            let payload = if rng.flip() {
                format!("GET /{junk} HTTP/1.1\r\n\r\n")
            } else {
                format!("GET /healthz HTTP/1.1\r\nX-Big: {junk}\r\n\r\n")
            };
            send_then_drain(&mut s, payload.as_bytes());
        }
        AbuseClass::HeaderFlood => {
            // Far more duplicate header lines than the parser admits;
            // the server must answer 431 after its line budget, never
            // read the stream forever.
            let n = 80 + rng.index(64);
            let mut payload = b"GET /healthz HTTP/1.1\r\n".to_vec();
            for _ in 0..n {
                payload.extend_from_slice(b"X-Flood: x\r\n");
            }
            payload.extend_from_slice(b"\r\n");
            send_then_drain(&mut s, &payload);
        }
        AbuseClass::OversizedBody => {
            let declared = (1 << 20) + rng.index(1 << 20);
            let payload = format!(
                "POST /snapshots/huge HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n"
            );
            send_then_drain(&mut s, payload.as_bytes());
        }
        AbuseClass::TruncatedUpload => {
            let declared = 1024 + rng.index(1024);
            let sent = rng.index(declared.saturating_sub(1));
            let mut payload = format!(
                "POST /snapshots/cut HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n"
            )
            .into_bytes();
            payload.extend(std::iter::repeat(b'x').take(sent));
            let _ = s.write_all(&payload);
            // Drop with the body short: the server must answer 400
            // Truncated, never block waiting for the missing bytes.
        }
        AbuseClass::MidRequestDisconnect => {
            let full = b"GET /query/reach?snapshot=chaos&port=80 HTTP/1.1\r\nAccept: anything\r\n\r\n";
            let cut = 1 + rng.index(full.len() - 2);
            let _ = s.write_all(&full[..cut]);
            // Drop mid-request-line or mid-header; at least one byte was
            // sent, so this is a truncation, not an idle probe.
        }
        AbuseClass::SlowLoris => unreachable!("driven by slow_loris_sweep"),
    }
    Ok(())
}

/// Writes the payload (tolerating the server closing first — an early
/// rejection races our write) and reads the connection to EOF so the
/// server-side verdict is fully delivered before the socket drops.
fn send_then_drain(s: &mut TcpStream, payload: &[u8]) {
    let _ = s.write_all(payload);
    let mut sink = [0u8; 1024];
    while matches!(s.read(&mut sink), Ok(n) if n > 0) {}
}

/// Opens every slow-loris connection up front — more than the worker
/// pool, so some wedge workers while others wait queued — then drains
/// each for its 408 verdict. Every slow client must cost exactly one
/// watchdog slice, never a hung worker.
fn slow_loris_sweep(
    addr: SocketAddr,
    cfg: &ServeChaosConfig,
    t: Duration,
    report: &mut ServeChaosReport,
) {
    let mut held = Vec::new();
    for &seed in &cfg.seeds {
        let mut rng = Rng::new(seed);
        match TcpStream::connect_timeout(&addr, t) {
            Ok(mut s) => {
                let _ = s.set_read_timeout(Some(t));
                let _ = s.set_write_timeout(Some(t));
                let drip = format!("GET /healthz HTTP/1.1\r\nX-Drip: {}", rng.next_u32());
                let _ = s.write_all(drip.as_bytes());
                held.push((seed, s));
                report.connections += 1;
            }
            Err(e) => report
                .violations
                .push(format!("[slow-loris seed={seed}] connect: {e}")),
        }
    }
    for (seed, mut s) in held {
        let mut buf = Vec::new();
        match s.read_to_end(&mut buf) {
            Ok(_) => {
                let text = String::from_utf8_lossy(&buf);
                if !text.starts_with("HTTP/1.1 408") {
                    report.violations.push(format!(
                        "[slow-loris seed={seed}] expected a 408 verdict, got: {}",
                        text.lines().next().unwrap_or("<nothing>")
                    ));
                }
            }
            Err(e) => report
                .violations
                .push(format!("[slow-loris seed={seed}] read verdict: {e}")),
        }
    }
}

/// A well-behaved client interleaved with the abuse: the listener must
/// answer it normally — and trace it — no matter what the adversaries
/// are doing.
fn probe(
    addr: SocketAddr,
    t: Duration,
    trace_ids: &mut Vec<String>,
    report: &mut ServeChaosReport,
) {
    report.probes += 1;
    match client::get(addr, "/healthz", t) {
        Ok(r) if r.status == 200 => {
            let step = format!("interleaved probe #{}", report.probes);
            collect_trace_id(&r, &step, trace_ids, report);
        }
        Ok(r) => report.violations.push(format!(
            "interleaved probe #{}: healthz answered {}",
            report.probes, r.status
        )),
        Err(e) => report.violations.push(format!(
            "interleaved probe #{}: transport: {e}",
            report.probes
        )),
    }
}

/// Audits `/metricsz` for the invariant-8 books: zero contained panics,
/// per-class rejection counts exactly as driven, and the conservation
/// identity `accepted = requests + rejections + idle + panics`.
/// Retries briefly — the last adversarial sockets may still be settling
/// when the first audit request lands.
fn audit_metrics(
    addr: SocketAddr,
    cfg: &ServeChaosConfig,
    t: Duration,
    trace_ids: &mut Vec<String>,
    report: &mut ServeChaosReport,
) {
    let n = cfg.seeds.len() as u64;
    let expected: Vec<(&str, u64)> = vec![
        ("malformed", n),
        ("too-large", 3 * n),
        ("truncated", 2 * n),
        ("watchdog", n),
    ];
    let mut last = String::new();
    for _ in 0..80 {
        let counters = match client::get(addr, "/metricsz", t) {
            Ok(r) if r.status == 200 => match r.json() {
                Ok(v) => {
                    collect_trace_id(&r, "metricsz audit", trace_ids, report);
                    v
                }
                Err(e) => {
                    report
                        .violations
                        .push(format!("metricsz does not parse as JSON: {e}"));
                    return;
                }
            },
            Ok(r) => {
                report
                    .violations
                    .push(format!("metricsz answered {}", r.status));
                return;
            }
            Err(e) => {
                report.violations.push(format!("metricsz: transport: {e}"));
                return;
            }
        };
        let c = |name: &str| -> u64 {
            counters
                .get("metrics")
                .and_then(|m| m.get(name))
                .and_then(|v| v.get("value"))
                .and_then(batnet_obs::json::Value::as_f64)
                .unwrap_or(0.0) as u64
        };
        let panics = c("serve.panics.contained");
        if panics > 0 {
            report
                .violations
                .push(format!("{panics} panic(s) contained during the sweep"));
            return;
        }
        let accepted = c("serve.accepted");
        let accounted = c("serve.requests.total")
            + c("serve.closed.idle")
            + c("serve.rejected.backpressure")
            + expected
                .iter()
                .map(|(class, _)| c(&format!("serve.rejected.{class}")))
                .sum::<u64>();
        let classes_ok = expected
            .iter()
            .all(|(class, want)| c(&format!("serve.rejected.{class}")) == *want);
        if accepted == accounted && classes_ok {
            report.rejections = expected
                .iter()
                .map(|(class, _)| {
                    (class.to_string(), c(&format!("serve.rejected.{class}")))
                })
                .collect();
            return;
        }
        last = format!(
            "accepted={accepted} accounted={accounted}; rejections: {}",
            expected
                .iter()
                .map(|(class, want)| format!(
                    "{class}={} (want {want})",
                    c(&format!("serve.rejected.{class}"))
                ))
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    report
        .violations
        .push(format!("metrics never balanced: {last}"));
}

/// Invariant 9, live half: `/tracez` must answer validator-clean, and
/// every trace id we collected must be either retained in the document
/// or covered by its eviction counter. (The exact post-drain identity
/// is checked against the ring itself in [`run_serve_chaos`].)
fn audit_tracez(
    addr: SocketAddr,
    t: Duration,
    trace_ids: &[String],
    report: &mut ServeChaosReport,
) {
    let doc = match client::get(addr, "/tracez", t) {
        Ok(r) if r.status == 200 => match r.json() {
            Ok(v) => v,
            Err(e) => {
                report
                    .violations
                    .push(format!("tracez does not parse as JSON: {e}"));
                return;
            }
        },
        Ok(r) => {
            report.violations.push(format!("tracez answered {}", r.status));
            return;
        }
        Err(e) => {
            report.violations.push(format!("tracez: transport: {e}"));
            return;
        }
    };
    if let Err(e) = batnet_obs::report::validate_tracez(&doc) {
        report.violations.push(format!("tracez INVALID: {e}"));
        return;
    }
    let retained: std::collections::BTreeSet<&str> = doc
        .get("traces")
        .and_then(batnet_obs::json::Value::as_arr)
        .map(|traces| {
            traces
                .iter()
                .filter_map(|tr| {
                    tr.get("trace_id").and_then(batnet_obs::json::Value::as_str)
                })
                .collect()
        })
        .unwrap_or_default();
    let evicted = doc
        .get("evicted")
        .and_then(batnet_obs::json::Value::as_f64)
        .unwrap_or(0.0) as u64;
    let missing = trace_ids
        .iter()
        .filter(|id| !retained.contains(id.as_str()))
        .count() as u64;
    if missing > evicted {
        report.violations.push(format!(
            "tracez: {missing} collected id(s) unretained but only {evicted} \
             eviction(s) accounted"
        ));
    }
    // Lookup half: an id we hold but the ring no longer does must 404
    // as *evicted*, not as never-issued — the ring only moves forward,
    // so an id absent from the dump above stays absent.
    if let Some(gone) = trace_ids.iter().find(|id| !retained.contains(id.as_str())) {
        match client::get(addr, &format!("/tracez?id={gone}"), t) {
            Ok(r) if r.status == 404 => {
                let body = r.body_str();
                if !body.contains("\"reason\": \"evicted\"") {
                    report.violations.push(format!(
                        "tracez lookup of evicted {gone}: 404 body does not \
                         distinguish eviction: {body}"
                    ));
                }
            }
            Ok(r) => report.violations.push(format!(
                "tracez lookup of evicted {gone}: expected 404, got {}",
                r.status
            )),
            Err(e) => report
                .violations
                .push(format!("tracez lookup of evicted id: transport: {e}")),
        }
    }
}

/// Invariant 11, serve half: after the full adversarial sweep the
/// profiler's window must still render a validator-clean
/// `batnet-prof/v1` document — the validator enforces the
/// `samples == recorded + dropped` balance and the stack-count sum, so
/// sample loss under abuse can't hide.
fn audit_profilez(addr: SocketAddr, t: Duration, report: &mut ServeChaosReport) {
    let doc = match client::get(addr, "/profilez", t) {
        Ok(r) if r.status == 200 => match r.json() {
            Ok(v) => v,
            Err(e) => {
                report
                    .violations
                    .push(format!("profilez does not parse as JSON: {e}"));
                return;
            }
        },
        Ok(r) => {
            report
                .violations
                .push(format!("profilez answered {}", r.status));
            return;
        }
        Err(e) => {
            report.violations.push(format!("profilez: transport: {e}"));
            return;
        }
    };
    if let Err(e) = batnet_obs::report::validate_profile(&doc) {
        report.violations.push(format!("profilez INVALID: {e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short sweep upholds the whole contract: no panics, exact
    /// rejection accounting, the listener alive throughout, and the
    /// trace books balanced through forced ring eviction.
    #[test]
    fn short_adversarial_sweep_passes() {
        let report = run_serve_chaos(&ServeChaosConfig {
            seeds: vec![11, 12],
            io_timeout_ms: 200,
        });
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.connections, 2 * AbuseClass::ALL.len());
        assert!(report.probes >= 3);
        assert!(report
            .rejections
            .iter()
            .all(|(_, n)| *n > 0));
        // Invariant 9 actually exercised eviction, and its identity held
        // (a violation would have tripped the empty-violations assert).
        assert!(report.requests > 0, "no parsed requests counted");
        assert!(
            report.traces_evicted > 0,
            "the tiny ring never evicted — the sweep didn't stress it"
        );
        assert_eq!(
            report.requests,
            report.traces_retained as u64 + report.traces_evicted
        );
        assert_eq!(report.access_lines as u64, report.requests);
    }
}
