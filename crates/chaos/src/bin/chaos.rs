//! Chaos sweep CLI: inject faults, assert zero panics and monotone
//! degradation — in the pipeline (invariants 1–7, 10, the
//! sampler-read-onlyness half of 11, and the parallel-engine parity
//! sweep of 12), and against a live `batnet-serve` under adversarial
//! clients with the continuous profiler attached (invariants 8–9 and
//! 11's serve half). Exits non-zero on any violation.
//!
//! ```text
//! chaos [--seeds N] [--classes truncate,garbage,...] [--nets net1,n2] \
//!       [--victims K] [--deadline-secs S] [--serve-seeds N]
//! ```
//!
//! `--serve-seeds 0` skips the service sweep; the default drives five
//! seeded adversaries per abuse class.

#![deny(clippy::unwrap_used, clippy::panic)]

use batnet_chaos::{run_chaos, run_serve_chaos, ChaosConfig, MutationClass, ServeChaosConfig};
use batnet_topogen::{suite, GeneratedNetwork};
use std::process::ExitCode;
use std::time::Duration;

fn net_by_name(name: &str) -> Option<GeneratedNetwork> {
    match name {
        "net1" => Some(suite::net1()),
        "n2" => Some(suite::n2()),
        "n3" => Some(suite::n3()),
        "n7" => Some(suite::n7()),
        _ => None,
    }
}

fn main() -> ExitCode {
    let mut cfg = ChaosConfig::default();
    let mut serve_cfg = ServeChaosConfig::default();
    let mut net_names: Vec<String> = vec!["net1".to_string(), "n2".to_string()];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("{arg} requires a {what}");
            }
            v
        };
        match arg.as_str() {
            "--seeds" => {
                let Some(v) = take("count") else { return ExitCode::from(2) };
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => cfg.seeds = (1..=n).collect(),
                    _ => {
                        eprintln!("--seeds wants a positive integer, got {v:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--classes" => {
                let Some(v) = take("list") else { return ExitCode::from(2) };
                let mut classes = Vec::new();
                for name in v.split(',') {
                    match MutationClass::from_name(name.trim()) {
                        Some(c) => classes.push(c),
                        None => {
                            eprintln!("unknown mutation class {name:?}");
                            return ExitCode::from(2);
                        }
                    }
                }
                cfg.classes = classes;
            }
            "--nets" => {
                let Some(v) = take("list") else { return ExitCode::from(2) };
                net_names = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--victims" => {
                let Some(v) = take("count") else { return ExitCode::from(2) };
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => cfg.victims_per_run = n,
                    _ => {
                        eprintln!("--victims wants a positive integer, got {v:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--deadline-secs" => {
                let Some(v) = take("seconds") else { return ExitCode::from(2) };
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => cfg.deadline = Duration::from_secs(n),
                    _ => {
                        eprintln!("--deadline-secs wants a positive integer, got {v:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--serve-seeds" => {
                let Some(v) = take("count") else { return ExitCode::from(2) };
                match v.parse::<u64>() {
                    Ok(n) => serve_cfg.seeds = (1..=n).collect(),
                    _ => {
                        eprintln!("--serve-seeds wants an integer, got {v:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let mut nets = Vec::new();
    for name in &net_names {
        match net_by_name(name) {
            Some(n) => nets.push(n),
            None => {
                eprintln!("unknown network {name:?} (known: net1, n2, n3, n7)");
                return ExitCode::from(2);
            }
        }
    }

    let t0 = batnet_obs::clock::now();
    let report = run_chaos(&nets, &cfg);
    let elapsed = t0.elapsed();
    println!(
        "chaos: {} runs over {} nets x {} classes x {} seeds in {:.1}s",
        report.total(),
        nets.len(),
        cfg.classes.len(),
        cfg.seeds.len(),
        elapsed.as_secs_f64()
    );
    println!(
        "chaos: {} devices quarantined across all runs",
        report.quarantine_total()
    );
    let mut violations = report.violations();

    if serve_cfg.seeds.is_empty() {
        println!("chaos: serve sweep skipped (--serve-seeds 0)");
    } else {
        let t1 = batnet_obs::clock::now();
        let serve_report = run_serve_chaos(&serve_cfg);
        println!(
            "chaos: serve sweep — {} adversarial connections, {} probes in {:.1}s",
            serve_report.connections,
            serve_report.probes,
            t1.elapsed().as_secs_f64()
        );
        for (class, n) in &serve_report.rejections {
            println!("chaos: serve rejected {n} as {class}, all accounted");
        }
        println!(
            "chaos: serve traced {} requests — {} retained + {} evicted in the \
             ring, {} access-log lines",
            serve_report.requests,
            serve_report.traces_retained,
            serve_report.traces_evicted,
            serve_report.access_lines
        );
        violations.extend(
            serve_report
                .violations
                .iter()
                .map(|v| format!("[serve] {v}")),
        );
    }

    if violations.is_empty() {
        println!("chaos: PASS — zero panics, monotone degradation, valid run reports");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("chaos: VIOLATION {v}");
        }
        eprintln!("chaos: FAIL — {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
