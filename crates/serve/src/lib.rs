//! batnet-serve: the fault-tolerant long-running analysis service.
//!
//! Batfish's most consequential architectural lesson was becoming a
//! *service*: parse and simulate once, keep the analyzed snapshot warm,
//! and answer many questions against it. This crate is that shape for
//! batnet — an HTTP/1.1 server over `std::net` (zero dependencies, like
//! everything here) whose design center is the failure model rather
//! than the happy path:
//!
//! * [`http`] — a hand-rolled parser with strict size/header limits;
//!   every limit violation is a typed rejection with an accounting
//!   class.
//! * [`queue`] — bounded admission; full means `503` + `Retry-After`
//!   *now*, not unbounded queueing.
//! * [`store`] — the warm snapshot store, itself bounded (eviction).
//! * [`api`] — handlers where a tripped [`batnet::ResourceGovernor`]
//!   budget returns `206` with `Outcome::Partial` accounting, the same
//!   mechanism the batch CLIs use for `--deadline-ms`.
//! * [`server`] — accept loop, worker pool, slow-loris watchdog,
//!   per-request panic isolation, graceful drain.
//! * [`client`] — the blocking client the load driver, smoke mode, and
//!   tests share, with deterministic [`batnet_net::Backoff`] retries
//!   for idempotent GETs.
//! * [`tracing`] — per-request trace ids (`X-Batnet-Trace-Id` on every
//!   response), the bounded recent-trace ring behind `GET /tracez`,
//!   and the opt-in structured access log.
//!
//! Every rejection, partial answer, contained panic, and eviction is
//! accounted in [`batnet_obs`] metrics, exposed at `GET /metricsz` —
//! the chaos harness's invariant 8 audits exactly those books.

pub mod api;
pub mod client;
pub mod http;
pub mod queue;
pub mod server;
pub mod store;
pub mod tracing;

pub use client::{get, get_with_retry, post, ClientResponse};
pub use http::{Limits, Method, ParseError, Request, Response};
pub use queue::{BoundedQueue, PushError};
pub use server::{spawn, Handle, ServeConfig, ServiceState};
pub use store::{SnapshotInfo, SnapshotStore, StoreError, StoredSnapshot};
pub use tracing::{AccessLog, TraceEntry, TraceIds, TraceRing};
