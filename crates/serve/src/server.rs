//! The service core: listener, shared-pool dispatch, watchdog, graceful
//! drain.
//!
//! The threading model is deliberately boring — one nonblocking accept
//! loop feeding a [`BoundedQueue`] of connections, one dispatch task on
//! the shared [`batnet_exec`] pool per admitted connection, socket read
//! timeouts as the slow-loris watchdog — because every piece of it is a
//! named element of the failure model (DESIGN.md §5f):
//!
//! * **Admission control.** The accept loop never blocks on a full
//!   queue: it sheds the connection with `503` + `Retry-After`
//!   immediately, so overload degrades to fast rejections instead of
//!   latency collapse.
//! * **Watchdog.** Every accepted socket gets a read timeout before it
//!   reaches a dispatch task; a peer that feeds bytes too slowly costs
//!   one bounded pool slice (`408`), never a wedged worker.
//! * **Panic isolation.** Each request runs under `catch_unwind`; a
//!   handler bug is one `500` and a `serve.panics.contained` tick, not
//!   a dead thread silently shrinking the pool.
//! * **Graceful drain.** Shutdown (signalled by `POST /admin/shutdown`
//!   or [`Handle::shutdown`]) flips `readyz` to 503, stops accepting,
//!   closes the queue, and waits for every in-flight dispatch task to
//!   finish its queued request.
//!
//! Request handlers run *on* the shared execution pool (the same pool
//! that parallelizes parse, routing sweeps, and reachability — sized
//! once per process, `--threads` on the binaries). A handler that fans
//! out its own `parallel_map` nests safely: the pool's help-first join
//! lets the joining task make progress on its own items even when every
//! worker is busy, so serve traffic can never deadlock the analysis it
//! triggers. Admission stays with the bounded queue — the pool sees one
//! task per *admitted* connection, and a drain waits on the dispatch
//! tracker, not on thread joins. `/metricsz` lifts the pool's gauges
//! (`exec.workers` / `exec.steals` / `exec.queue_depth`) into its
//! response meta the same way it lifts sampler accounting — never into
//! the metric registry, so analysis reports stay byte-identical at
//! every pool width.
//!
//! Every response — including sheds, parse rejections, and the
//! post-panic 500 — carries an `X-Batnet-Trace-Id`. For real requests
//! the id keys a [`TraceEntry`] (queue wait, handler time, the request's
//! span tree extracted via [`batnet_obs::take_tree`]) pushed into the
//! bounded ring behind `GET /tracez`, and one access-log line. Handler
//! latency is also recorded per endpoint
//! (`serve.latency.us.<endpoint>` histograms), so one endpoint's p99
//! regression cannot hide behind a fast-path-dominated aggregate.

use crate::api;
use crate::http::{read_request, Limits, Response};
use crate::queue::{BoundedQueue, PushError};
use crate::store::SnapshotStore;
use crate::tracing::{AccessLog, TraceEntry, TraceIds, TraceRing};
use batnet_obs::{Sampler, SamplerThread, Span};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service tuning knobs. The defaults are the committed failure-model
/// numbers: small queue, short watchdog, bounded body.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` = loopback, ephemeral port).
    pub addr: String,
    /// Legacy worker-count knob, retained for config compatibility.
    /// Request handlers now run on the shared `batnet_exec` pool —
    /// size it once per process with `batnet_exec::configure_threads`
    /// (`--threads` on the binaries); this field spawns nothing.
    pub workers: usize,
    /// Accepted-connection queue depth; beyond it, 503 + `Retry-After`.
    pub queue_depth: usize,
    /// Socket read/write timeout — the slow-loris watchdog.
    pub io_timeout_ms: u64,
    /// Governor deadline applied when a request names none.
    pub default_deadline_ms: u64,
    /// Ceiling on any requested `deadline_ms`.
    pub max_deadline_ms: u64,
    /// Largest accepted upload body.
    pub max_body_bytes: usize,
    /// Warm snapshots held before eviction.
    pub store_capacity: usize,
    /// Suite network ids analyzed into the store before ready.
    pub prewarm: Vec<String>,
    /// Recent request traces retained for `GET /tracez`.
    pub trace_ring_capacity: usize,
    /// Seed for the deterministic trace-id stream.
    pub trace_seed: u64,
    /// Where per-request access-log lines go (off by default).
    pub access_log: AccessLog,
    /// Continuous-profiling cadence in Hz (0 = profiler off). When on,
    /// a sampler thread snapshots every live span stack and
    /// `GET /profilez` serves the accumulated window.
    pub profile_hz: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 32,
            io_timeout_ms: 2_000,
            default_deadline_ms: 10_000,
            max_deadline_ms: 60_000,
            max_body_bytes: 4 << 20,
            store_capacity: 8,
            prewarm: Vec::new(),
            trace_ring_capacity: 256,
            trace_seed: 0,
            access_log: AccessLog::Off,
            profile_hz: 0,
        }
    }
}

/// Shared liveness flags, visible to handlers (for `readyz` and
/// `/admin/shutdown`) and to the accept loop.
pub struct ServiceState {
    pub(crate) ready: AtomicBool,
    pub(crate) shutdown: AtomicBool,
}

impl ServiceState {
    fn new() -> ServiceState {
        ServiceState {
            ready: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Ready = warmed up and not draining.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Relaxed) && !self.shutdown.load(Ordering::Relaxed)
    }

    /// Flags the server to drain (idempotent).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Has a drain been requested?
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`Handle::shutdown`] (or POST `/admin/shutdown` and
/// [`Handle::join`]).
pub struct Handle {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    store: SnapshotStore,
    ring: Arc<TraceRing>,
    accept: JoinHandle<()>,
    dispatches: Arc<Dispatches>,
    /// The continuous profiler, when `profile_hz > 0`. Held here so the
    /// sampling thread stops (via drop) only after the dispatches drain.
    profiler: Option<SamplerThread>,
}

impl Handle {
    /// The bound address (real port, even when configured as `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The warm store (for in-process seeding in tests and benches).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// The shared liveness flags.
    pub fn state(&self) -> &ServiceState {
        &self.state
    }

    /// The recent-trace ring, shared — it outlives [`Handle::shutdown`],
    /// so post-drain accounting audits can read the final stats.
    pub fn trace_ring(&self) -> Arc<TraceRing> {
        Arc::clone(&self.ring)
    }

    /// The continuous profiler's sampler, when profiling is on — shared,
    /// so post-drain audits can check the accounting balance.
    pub fn sampler(&self) -> Option<Arc<Sampler>> {
        self.profiler.as_ref().map(SamplerThread::sampler)
    }

    /// Requests a drain and waits for the listener and every worker to
    /// finish queued work.
    pub fn shutdown(self) {
        self.state.request_shutdown();
        self.join();
    }

    /// Waits for the server to stop (a drain must have been requested,
    /// e.g. via `POST /admin/shutdown`). The accept loop closes the
    /// queue on exit; every admitted connection has exactly one
    /// dispatch task on the shared pool, so waiting the tracker down to
    /// zero is the whole drain — there are no owned threads to join.
    pub fn join(self) {
        let _ = self.accept.join();
        self.dispatches.wait_idle();
        // Dropping the profiler stops and joins the sampling thread.
        drop(self.profiler);
        batnet_obs::event("serve", "drain", "complete");
    }
}

/// In-flight dispatch accounting: one `begin` per admitted connection
/// (before the task is handed to the pool), one `end` when its dispatch
/// task finishes. A drain waits for zero — the service's requests run
/// on pool threads it does not own, so the tracker *is* the drain
/// barrier.
struct Dispatches {
    pending: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Dispatches {
    fn new() -> Dispatches {
        Dispatches {
            pending: AtomicU64::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn begin(&self) {
        self.pending.fetch_add(1, Ordering::SeqCst);
    }

    fn end(&self) {
        // Decrement under the lock so a waiter can't check the count
        // between the decrement and the notify and then sleep forever.
        let _g = self.lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.cv.notify_all();
        }
    }

    fn wait_idle(&self) {
        let mut g = self.lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while self.pending.load(Ordering::SeqCst) > 0 {
            let (guard, _) = self
                .cv
                .wait_timeout(g, Duration::from_millis(50))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            g = guard;
        }
    }
}

/// Ends the dispatch accounting even if the task unwinds: the pool
/// contains handler panics below this frame, but the drain barrier must
/// hold regardless.
struct DispatchGuard(Arc<Dispatches>);

impl Drop for DispatchGuard {
    fn drop(&mut self) {
        self.0.end();
    }
}

/// Everything a dispatch task needs to serve one connection. Shared
/// (`Arc`) between the accept loop and every task it spawns.
struct DispatchCtx {
    queue: Arc<BoundedQueue<(TcpStream, Instant)>>,
    store: SnapshotStore,
    cfg: ServeConfig,
    state: Arc<ServiceState>,
    inflight: Arc<AtomicU64>,
    limits: Limits,
    ids: Arc<TraceIds>,
    ring: Arc<TraceRing>,
    sampler: Option<Arc<Sampler>>,
    /// The shared execution pool requests run on — also the source of
    /// the `exec.*` gauges `/metricsz` lifts into its meta.
    pool: batnet_exec::Pool,
}

/// Binds, prewarms, and starts the accept loop; request handlers run as
/// dispatch tasks on the shared `batnet_exec` pool (captured here via
/// [`batnet_exec::current`], so a test override is honored).
/// Returns once the service is ready.
pub fn spawn(cfg: ServeConfig) -> std::io::Result<Handle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    // Start the profiler before prewarm, so prewarm's pipeline spans
    // (parse, dpgen, graph…) are already in the first window.
    let profiler = (cfg.profile_hz > 0).then(|| SamplerThread::spawn(cfg.profile_hz));
    let sampler = profiler.as_ref().map(SamplerThread::sampler);

    let store = SnapshotStore::new(cfg.store_capacity);
    for id in &cfg.prewarm {
        if store.prewarm(id).is_none() {
            batnet_obs::event("serve", "prewarm-miss", id);
        }
    }

    let state = Arc::new(ServiceState::new());
    let queue = Arc::new(BoundedQueue::<(TcpStream, Instant)>::new(cfg.queue_depth));
    let inflight = Arc::new(AtomicU64::new(0));
    let limits = Limits::default().with_max_body(cfg.max_body_bytes);
    let ids = Arc::new(TraceIds::new(cfg.trace_seed));
    let ring = Arc::new(TraceRing::new(cfg.trace_ring_capacity));

    let ctx = Arc::new(DispatchCtx {
        queue: Arc::clone(&queue),
        store: store.clone(),
        cfg: cfg.clone(),
        state: Arc::clone(&state),
        inflight: Arc::clone(&inflight),
        limits: limits.clone(),
        ids: Arc::clone(&ids),
        ring: Arc::clone(&ring),
        sampler: sampler.clone(),
        pool: batnet_exec::current(),
    });
    let dispatches = Arc::new(Dispatches::new());

    let accept_ctx = Arc::clone(&ctx);
    let accept_dispatches = Arc::clone(&dispatches);
    let io_timeout = Duration::from_millis(cfg.io_timeout_ms.max(1));
    let accept = std::thread::Builder::new()
        .name("serve-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_ctx, &accept_dispatches, io_timeout))?;

    state.ready.store(true, Ordering::Relaxed);
    batnet_obs::event("serve", "ready", &addr.to_string());
    Ok(Handle {
        addr,
        state,
        store,
        ring,
        accept,
        dispatches,
        profiler,
    })
}

/// The nonblocking accept loop: admit into the bounded queue (stamped
/// with the enqueue instant, so dispatch tasks can account queue wait)
/// or shed with 503 immediately. Each admitted connection gets exactly
/// one dispatch task on the shared pool — the task pops *a* queued
/// connection (not necessarily the one whose admission spawned it; the
/// counts are 1:1, so every connection is served and no task blocks).
/// Polls the shutdown flag between accepts.
fn accept_loop(
    listener: &TcpListener,
    ctx: &Arc<DispatchCtx>,
    dispatches: &Arc<Dispatches>,
    io_timeout: Duration,
) {
    let queue = &ctx.queue;
    let state = &ctx.state;
    let ids = &ctx.ids;
    while !state.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => {
                // Arm the watchdog before the socket can reach a
                // dispatch task.
                let _ = stream.set_read_timeout(Some(io_timeout));
                let _ = stream.set_write_timeout(Some(io_timeout));
                batnet_obs::counter_add("serve.accepted", 1);
                match queue.try_push((stream, batnet_obs::now())) {
                    Ok(()) => {
                        dispatches.begin();
                        let guard = DispatchGuard(Arc::clone(dispatches));
                        let task_ctx = Arc::clone(ctx);
                        ctx.pool.spawn(move || {
                            let _guard = guard;
                            dispatch_one(&task_ctx);
                        });
                    }
                    Err((why, (mut stream, _))) => {
                        let detail = match why {
                            PushError::Full => "server busy",
                            PushError::Closed => "draining",
                        };
                        batnet_obs::counter_add("serve.rejected.backpressure", 1);
                        let resp = Response::error(503, detail)
                            .with_header("Retry-After", 1)
                            .with_header("X-Batnet-Trace-Id", ids.next_id());
                        // Best-effort, nonblocking shed: the 503 fits
                        // the socket send buffer when the peer is sane;
                        // a peer that never reads must cost the accept
                        // thread nothing — overload is exactly when
                        // shedding speed matters most. If the write
                        // would block, just close.
                        let _ = stream.set_nonblocking(true);
                        let _ = resp.write_to(&mut stream);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                batnet_obs::counter_add("serve.accept.errors", 1);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    // Drain: no new work; queued connections still get served.
    queue.close();
    batnet_obs::event("serve", "drain", "accept loop stopped");
}

/// One dispatch task: pop one queued connection and serve it. Runs on a
/// shared-pool worker thread; the `catch_unwind` below the pop keeps a
/// handler panic to one `500`, so the pool's own backstop never fires
/// for serve traffic.
fn dispatch_one(ctx: &DispatchCtx) {
    let Some((stream, enqueued_at)) = ctx.queue.pop() else {
        return;
    };
    let queue_wait_us = enqueued_at.elapsed().as_micros().min(u64::MAX as u128) as u64;
    let trace_id = ctx.ids.next_id();
    let n = ctx.inflight.fetch_add(1, Ordering::Relaxed) + 1;
    batnet_obs::gauge_set("serve.inflight", n as f64);
    let started = batnet_obs::now();
    // The handler closure consumes the stream, so clone the socket
    // handle first: after a contained panic the dispatch still owes
    // the client a 500 (and the books a `responses.5xx` tick —
    // `requests.total` was already counted inside the closure).
    let fallback = stream.try_clone().ok();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        serve_connection(ctx, stream, &trace_id, queue_wait_us)
    }));
    if let Err(_panic) = outcome {
        batnet_obs::counter_add("serve.panics.contained", 1);
        batnet_obs::counter_add("serve.responses.5xx", 1);
        if let Some(mut s) = fallback {
            let resp = Response::error(500, "internal error: handler panicked")
                .with_header("X-Batnet-Trace-Id", &trace_id);
            if resp.write_to(&mut s).is_err() {
                batnet_obs::counter_add("serve.write.errors", 1);
            }
        }
    }
    batnet_obs::observe(
        "serve.latency.us",
        started.elapsed().as_micros().min(u64::MAX as u128) as u64,
    );
    let n = ctx.inflight.fetch_sub(1, Ordering::Relaxed) - 1;
    batnet_obs::gauge_set("serve.inflight", n as f64);
}

/// One request per connection (`Connection: close`): parse under the
/// limits, dispatch under a traced `serve.request` span, respond with
/// the trace id stamped on. Parse rejections are accounted per class;
/// real requests additionally feed the per-endpoint latency histogram,
/// the trace ring, and the access log — the ring push happens before
/// the response write, so accounting holds even when the client is
/// already gone.
fn serve_connection(ctx: &DispatchCtx, mut stream: TcpStream, trace_id: &str, queue_wait_us: u64) {
    let response = match read_request(&mut stream, &ctx.limits) {
        Ok(None) => {
            // Clean close before a request — a probe or a mid-dial
            // disconnect. Nothing to answer.
            batnet_obs::counter_add("serve.closed.idle", 1);
            return;
        }
        Ok(Some(req)) => {
            batnet_obs::counter_add("serve.requests.total", 1);
            let label = api::endpoint_label(req.method, &req.path);
            let root = Span::enter("serve.request");
            let span_ctx = root.context();
            let response = api::handle(
                &req,
                &ctx.store,
                &ctx.cfg,
                &ctx.state,
                &ctx.ring,
                ctx.sampler.as_deref(),
                &ctx.ids,
                &ctx.pool,
            );
            let handler_us = root.close().as_micros().min(u64::MAX as u128) as u64;
            batnet_obs::observe(&format!("serve.latency.us.{label}"), handler_us);
            batnet_obs::observe("serve.queue.wait.us", queue_wait_us);
            let entry = TraceEntry {
                trace_id: trace_id.to_string(),
                method: req.method.to_string(),
                path: req.path.clone(),
                status: response.status,
                queue_wait_us,
                handler_us,
                deadline_ms: req
                    .param("deadline_ms")
                    .and_then(|v| v.parse::<u64>().ok())
                    .map(|d| d.min(ctx.cfg.max_deadline_ms)),
                partial: response.status == 206,
                spans: batnet_obs::take_tree(span_ctx),
            };
            ctx.cfg.access_log.emit(&entry);
            ctx.ring.push(entry);
            response
        }
        Err(e) => {
            batnet_obs::counter_add(&format!("serve.rejected.{}", e.metric_class()), 1);
            let resp = Response::error(e.status(), &e.detail());
            if e.status() == 503 {
                resp.with_header("Retry-After", 1)
            } else {
                resp
            }
        }
    };
    let response = response.with_header("X-Batnet-Trace-Id", trace_id);
    batnet_obs::counter_add(
        &format!("serve.responses.{}xx", response.status / 100),
        1,
    );
    if response.write_to(&mut stream).is_err() {
        batnet_obs::counter_add("serve.write.errors", 1);
    }
}
