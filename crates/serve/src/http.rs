//! Hand-rolled HTTP/1.1: a strict, size-limited request parser and a
//! response writer, over any `Read`/`Write` pair.
//!
//! Like the in-tree JSON layer, this implements exactly the subset the
//! service needs — `GET`/`POST`, `Content-Length` bodies, no chunked
//! encoding, no keep-alive (every response carries `Connection: close`).
//! The parser is the outermost trust boundary of `batnet-serve`, so
//! every limit is explicit and every failure is a typed
//! [`ParseError`] the server maps to a 4xx and a metric — malformed
//! input must never panic, hang, or allocate without bound (the same
//! Lesson-3 contract the config parser upholds, one layer down).

use std::collections::BTreeMap;
use std::io::{Read, Write};

/// Parser limits. Defaults are deliberately tight; uploads that need a
/// bigger body get it from [`Limits::with_max_body`].
#[derive(Clone, Debug)]
pub struct Limits {
    /// Longest accepted request line (method + target + version).
    pub max_request_line: usize,
    /// Longest accepted single header line.
    pub max_header_line: usize,
    /// Most accepted headers.
    pub max_headers: usize,
    /// Largest accepted `Content-Length`.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_request_line: 4096,
            max_header_line: 4096,
            max_headers: 64,
            max_body: 4 << 20,
        }
    }
}

impl Limits {
    /// Same limits with a different body cap.
    pub fn with_max_body(mut self, max_body: usize) -> Limits {
        self.max_body = max_body;
        self
    }
}

/// Why a request was rejected at the parse layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The request line is not `METHOD target HTTP/1.x`.
    BadRequestLine(String),
    /// A method we do not serve.
    UnsupportedMethod(String),
    /// The request line exceeded its limit.
    RequestLineTooLong,
    /// One header line exceeded its limit.
    HeaderTooLong,
    /// More headers than the limit.
    TooManyHeaders,
    /// A header line without a colon.
    BadHeader(String),
    /// `Content-Length` missing on POST, unparsable, or inconsistent.
    BadContentLength(String),
    /// Declared body larger than the limit.
    BodyTooLarge { declared: usize, limit: usize },
    /// The peer closed (or stopped sending) mid-request.
    Truncated,
    /// A socket read timed out — the watchdog's signal that the peer is
    /// feeding us bytes too slowly (slow-loris) or not at all.
    TimedOut,
    /// Any other I/O error while reading.
    Io(String),
}

impl ParseError {
    /// The HTTP status this rejection maps to.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::RequestLineTooLong | ParseError::HeaderTooLong | ParseError::TooManyHeaders => 431,
            ParseError::BodyTooLarge { .. } => 413,
            ParseError::UnsupportedMethod(_) => 405,
            ParseError::TimedOut => 408,
            ParseError::Truncated | ParseError::Io(_) => 400,
            _ => 400,
        }
    }

    /// The rejection-accounting metric class (`serve.rejected.<class>`).
    pub fn metric_class(&self) -> &'static str {
        match self {
            ParseError::RequestLineTooLong
            | ParseError::HeaderTooLong
            | ParseError::TooManyHeaders
            | ParseError::BodyTooLarge { .. } => "too-large",
            ParseError::TimedOut => "watchdog",
            ParseError::Truncated => "truncated",
            _ => "malformed",
        }
    }

    /// Human-readable detail for the error response body.
    pub fn detail(&self) -> String {
        match self {
            ParseError::BadRequestLine(l) => format!("bad request line: {l:?}"),
            ParseError::UnsupportedMethod(m) => format!("unsupported method {m:?}"),
            ParseError::RequestLineTooLong => "request line too long".to_string(),
            ParseError::HeaderTooLong => "header line too long".to_string(),
            ParseError::TooManyHeaders => "too many headers".to_string(),
            ParseError::BadHeader(h) => format!("bad header: {h:?}"),
            ParseError::BadContentLength(v) => format!("bad content-length: {v}"),
            ParseError::BodyTooLarge { declared, limit } => {
                format!("body of {declared} bytes exceeds limit {limit}")
            }
            ParseError::Truncated => "request truncated".to_string(),
            ParseError::TimedOut => "request timed out".to_string(),
            ParseError::Io(e) => format!("read error: {e}"),
        }
    }
}

/// HTTP method (the served subset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Read-only.
    Get,
    /// State-changing (uploads, shutdown).
    Post,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Decoded path (no query string).
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers, lowercased keys, last value wins.
    pub headers: BTreeMap<String, String>,
    /// The body (empty for GET).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter with this name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one byte, distinguishing timeout / close / error.
fn read_byte(r: &mut impl Read) -> Result<Option<u8>, ParseError> {
    let mut b = [0u8; 1];
    loop {
        match r.read(&mut b) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(b[0])),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(ParseError::TimedOut)
            }
            Err(e) => return Err(ParseError::Io(e.to_string())),
        }
    }
}

/// Reads a CRLF- (or bare-LF-) terminated line of at most `limit`
/// bytes, excluding the terminator. `None` = clean EOF before any byte.
fn read_line(
    r: &mut impl Read,
    limit: usize,
    over: ParseError,
) -> Result<Option<String>, ParseError> {
    let mut line: Vec<u8> = Vec::with_capacity(80);
    loop {
        match read_byte(r)? {
            None => {
                return if line.is_empty() {
                    Ok(None)
                } else {
                    Err(ParseError::Truncated)
                }
            }
            Some(b'\n') => {
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            Some(b) => {
                if line.len() >= limit {
                    return Err(over);
                }
                line.push(b);
            }
        }
    }
}

/// Percent-decodes a URL component (`%XX` and `+` → space). Invalid
/// escapes pass through literally — rejecting them buys nothing here.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(&String::from_utf8_lossy(h), 16).ok()) {
                    Some(v) => {
                        out.push(v);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encodes a URL component (unreserved characters pass through).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' | b'/' => {
                out.push(b as char)
            }
            _ => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
        }
    }
    out
}

/// Splits a request target into decoded path and query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    (percent_decode(path), params)
}

/// Reads and validates one request. `Ok(None)` means the peer closed
/// before sending anything (an idle probe, not an error).
pub fn read_request(r: &mut impl Read, limits: &Limits) -> Result<Option<Request>, ParseError> {
    let line = match read_line(r, limits.max_request_line, ParseError::RequestLineTooLong)? {
        None => return Ok(None),
        Some(l) => l,
    };
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(ParseError::BadRequestLine(clip(&line))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequestLine(clip(&line)));
    }
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other => return Err(ParseError::UnsupportedMethod(clip(other))),
    };
    let mut headers = BTreeMap::new();
    // Count header *lines*, not map entries: duplicate names overwrite
    // the same key, so a peer streaming one header line forever would
    // never grow the map — and never trip the limit or the watchdog.
    let mut header_lines = 0usize;
    loop {
        let hline = read_line(r, limits.max_header_line, ParseError::HeaderTooLong)?
            .ok_or(ParseError::Truncated)?;
        if hline.is_empty() {
            break;
        }
        header_lines += 1;
        if header_lines > limits.max_headers {
            return Err(ParseError::TooManyHeaders);
        }
        let (k, v) = hline
            .split_once(':')
            .ok_or_else(|| ParseError::BadHeader(clip(&hline)))?;
        headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
    }
    let body = match headers.get("content-length") {
        None => Vec::new(),
        Some(v) => {
            let declared: usize = v
                .parse()
                .map_err(|_| ParseError::BadContentLength(clip(v)))?;
            if declared > limits.max_body {
                return Err(ParseError::BodyTooLarge {
                    declared,
                    limit: limits.max_body,
                });
            }
            let mut body = vec![0u8; declared];
            let mut got = 0;
            while got < declared {
                match r.read(&mut body[got..]) {
                    Ok(0) => return Err(ParseError::Truncated),
                    Ok(n) => got += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        return Err(ParseError::TimedOut)
                    }
                    Err(e) => return Err(ParseError::Io(e.to_string())),
                }
            }
            body
        }
    };
    let (path, query) = parse_target(target);
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// Clips a string for inclusion in error messages.
fn clip(s: &str) -> String {
    const MAX: usize = 80;
    if s.len() <= MAX {
        s.to_string()
    } else {
        let mut end = MAX;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

/// A response to serialize.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Type`, `Retry-After`, …).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".to_string(), "application/json".to_string())],
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".to_string(), "text/plain".to_string())],
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error envelope: `{"error": ..., "status": ...}`.
    pub fn error(status: u16, detail: &str) -> Response {
        let mut body = String::from("{\"status\": ");
        body.push_str(&status.to_string());
        body.push_str(", \"error\": ");
        batnet_obs::json::write_str(&mut body, detail);
        body.push_str("}\n");
        Response::json(status, body)
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, k: &str, v: impl ToString) -> Response {
        self.headers.push((k.to_string(), v.to_string()));
        self
    }

    /// The standard reason phrase for the served status codes.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            206 => "Partial Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes and writes the response. Write failures are returned
    /// (callers count them; the peer may have gone away, which is fine).
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nConnection: close\r\nContent-Length: {}\r\n",
            self.status,
            Response::reason(self.status),
            self.body.len()
        );
        for (k, v) in &self.headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Option<Request>, ParseError> {
        read_request(&mut &raw[..], &Limits::default())
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse(b"GET /query/reach?snapshot=N2&prefix=10.2.0.0%2F24&port=80 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/query/reach");
        assert_eq!(req.param("snapshot"), Some("N2"));
        assert_eq!(req.param("prefix"), Some("10.2.0.0/24"));
        assert_eq!(req.param("port"), Some("80"));
        assert_eq!(req.headers.get("host").map(String::as_str), Some("x"));
    }

    #[test]
    fn parses_post_body_exactly() {
        let req = parse(b"POST /snapshots/a HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_garbage_request_line() {
        assert!(matches!(
            parse(b"\x01\x02 garbage\r\n\r\n"),
            Err(ParseError::BadRequestLine(_))
        ));
        assert!(matches!(
            parse(b"GET /\r\n\r\n"),
            Err(ParseError::BadRequestLine(_))
        ));
        assert!(matches!(
            parse(b"GET / SPDY/99\r\n\r\n"),
            Err(ParseError::BadRequestLine(_))
        ));
    }

    #[test]
    fn rejects_unsupported_method() {
        let e = parse(b"DELETE /x HTTP/1.1\r\n\r\n").unwrap_err();
        assert!(matches!(e, ParseError::UnsupportedMethod(_)));
        assert_eq!(e.status(), 405);
    }

    #[test]
    fn enforces_request_line_limit() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat(b'a').take(5000));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let e = read_request(&mut &raw[..], &Limits::default()).unwrap_err();
        assert_eq!(e, ParseError::RequestLineTooLong);
        assert_eq!(e.status(), 431);
        assert_eq!(e.metric_class(), "too-large");
    }

    #[test]
    fn enforces_header_limits() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..100 {
            raw.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert_eq!(
            read_request(&mut &raw[..], &Limits::default()).unwrap_err(),
            ParseError::TooManyHeaders
        );

        // Duplicate header names collapse into one map entry, so the
        // limit must count lines received, not distinct names — else a
        // repeated-header stream pins a worker forever (slow-loris by
        // another name).
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for _ in 0..100 {
            raw.extend_from_slice(b"X-Same: v\r\n");
        }
        raw.extend_from_slice(b"\r\n");
        assert_eq!(
            read_request(&mut &raw[..], &Limits::default()).unwrap_err(),
            ParseError::TooManyHeaders
        );

        let mut raw = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
        raw.extend(std::iter::repeat(b'v').take(8192));
        raw.extend_from_slice(b"\r\n\r\n");
        assert_eq!(
            read_request(&mut &raw[..], &Limits::default()).unwrap_err(),
            ParseError::HeaderTooLong
        );
    }

    #[test]
    fn enforces_body_limit_without_reading_it() {
        let raw = b"POST /s HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        let e = parse(raw).unwrap_err();
        assert!(matches!(e, ParseError::BodyTooLarge { .. }));
        assert_eq!(e.status(), 413);
    }

    #[test]
    fn truncated_body_is_typed() {
        let raw = b"POST /s HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert_eq!(parse(raw).unwrap_err(), ParseError::Truncated);
    }

    #[test]
    fn clean_eof_is_none_not_error() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn mid_line_eof_is_truncated() {
        assert_eq!(parse(b"GET /he").unwrap_err(), ParseError::Truncated);
    }

    #[test]
    fn percent_roundtrip() {
        let s = "10.0.0.0/8 and spaces+plus";
        assert_eq!(percent_decode(&percent_encode(s)), s);
        assert_eq!(percent_decode("a%2Fb+c"), "a/b c");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
    }

    #[test]
    fn response_serializes_with_content_length() {
        let mut out = Vec::new();
        Response::json(206, "{}")
            .with_header("Retry-After", 1)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 206 Partial Content\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
