//! A bounded MPMC work queue with explicit backpressure.
//!
//! The admission-control half of the service's failure model: the accept
//! loop calls [`BoundedQueue::try_push`], and a `Full` result is the
//! signal to shed load *now* (503 + `Retry-After`) instead of queueing
//! unboundedly and turning overload into latency collapse (Plankton's
//! lesson: bound per-query resources or the service does not scale).
//! Workers block in [`BoundedQueue::pop`]; closing the queue wakes and
//! drains them — pops return queued items until empty, then `None` —
//! which is exactly the graceful-drain sequence.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — shed load.
    Full,
    /// The queue is closed — draining, no new work.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue. All methods are `&self`; share it via `Arc`.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    cond: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Non-blocking admission: `Err((Full, item))` is the backpressure
    /// signal, and the refused item comes back so the caller can shed
    /// it properly (write the 503, close the socket).
    pub fn try_push(&self, item: T) -> Result<(), (PushError, T)> {
        let mut inner = self.lock();
        if inner.closed {
            return Err((PushError::Closed, item));
        }
        if inner.items.len() >= self.capacity {
            return Err((PushError::Full, item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.cond.notify_one();
        Ok(())
    }

    /// Blocking pop. Returns `None` only when the queue is closed *and*
    /// empty — a closed queue still drains.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .cond
                .wait_timeout(inner, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Closes the queue: pushes fail, blocked pops drain then end.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cond.notify_all();
    }

    /// Items currently waiting.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn backpressure_at_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err((PushError::Full, 3)));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err((PushError::Closed, 3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_items() {
        let q = Arc::new(BoundedQueue::<u64>::new(8));
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let v = p * 1000 + i;
                    let mut pending = v;
                    loop {
                        match q.try_push(pending) {
                            Ok(()) => break,
                            Err((PushError::Full, back)) => {
                                pending = back;
                                std::thread::yield_now();
                            }
                            Err((PushError::Closed, _)) => panic!("closed early"),
                        }
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), 400, "every pushed item pops exactly once");
        all.dedup();
        assert_eq!(all.len(), 400);
    }
}
