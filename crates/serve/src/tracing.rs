//! Per-request tracing: trace ids, the recent-trace ring, and the
//! structured access log.
//!
//! Every accepted request gets a trace id — 16 hex digits from a seeded
//! splitmix64 sequence, so `--smoke` runs see a deterministic id stream
//! — returned to the client as `X-Batnet-Trace-Id` and attached to the
//! request's span tree. Finished trees land in a bounded ring
//! ([`TraceRing`]) served at `GET /tracez`: the operator's answer to
//! "why was *this* request slow", holding the most recent N requests
//! with queue-wait/handler timing, deadline/partial accounting, and the
//! full span forest in the same schema the run report uses (validated
//! by `obs-validate --tracez`). Evictions are counted, never silent —
//! chaos invariant 9 checks `requests == ring + evicted` exactly.
//!
//! The access log ([`AccessLog`]) is one JSON line per request, off by
//! default (`--access-log` writes to stderr; tests capture via a sink).

use batnet_obs::json;
use batnet_obs::span::SpanRecord;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// splitmix64: tiny, seedable, full-period — the same generator family
/// the chaos harness uses. Good enough to make ids unique per run and
/// deterministic per seed; these are correlation ids, not secrets.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Multiplicative inverse of an odd u64 (mod 2⁶⁴) by Newton iteration:
/// each step doubles the number of correct low bits, so five steps from
/// the trivial `a⁻¹ ≡ a (mod 2³)` cover all 64.
fn mul_inverse(a: u64) -> u64 {
    let mut x = a; // correct to 3 bits for odd a
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    x
}

/// Undoes `z ^= z >> shift` (shift ≥ 32 needs one step; smaller shifts
/// recover the bits block by block from the top).
fn unxorshift(z: u64, shift: u32) -> u64 {
    let mut x = z;
    let mut recovered = shift;
    while recovered < 64 {
        x = z ^ (x >> shift);
        recovered += shift;
    }
    x
}

/// Inverse of [`splitmix64`]: recovers the input counter from an id.
/// splitmix64 is a bijection on u64 — every step (constant add, odd
/// multiply mod 2⁶⁴, xorshift) is invertible — which is what lets
/// `/tracez?id=` decide in O(1) whether an unknown id was *ever* issued
/// by this server (evicted) or never existed.
fn splitmix64_inverse(z: u64) -> u64 {
    let mut x = unxorshift(z, 31);
    x = x.wrapping_mul(mul_inverse(0x94d0_49bb_1331_11eb));
    x = unxorshift(x, 27);
    x = x.wrapping_mul(mul_inverse(0xbf58_476d_1ce4_e5b9));
    x = unxorshift(x, 30);
    x.wrapping_sub(0x9e37_79b9_7f4a_7c15)
}

/// Seeded trace-id generator: id *n* is `splitmix64(seed + n)`.
pub struct TraceIds {
    seed: u64,
    next: AtomicU64,
}

impl TraceIds {
    pub fn new(seed: u64) -> TraceIds {
        TraceIds {
            seed,
            next: AtomicU64::new(0),
        }
    }

    /// The next id in this generator's sequence.
    pub fn next_id(&self) -> String {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        Self::nth(self.seed, n)
    }

    /// The id a generator with `seed` hands to its `n`-th request.
    /// Smoke assertions use this to predict the deterministic stream.
    pub fn nth(seed: u64, n: u64) -> String {
        format!("{:016x}", splitmix64(seed.wrapping_add(n)))
    }

    /// Ids handed out so far.
    pub fn issued(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Whether this generator has ever issued `id`. splitmix64 is a
    /// bijection, so inverting it recovers the sequence position of any
    /// well-formed id in O(1) — `/tracez?id=` uses this to tell an
    /// *evicted* trace (issued, no longer retained) from an id this
    /// server never produced.
    pub fn was_issued(&self, id: &str) -> bool {
        if id.len() != 16 {
            return false;
        }
        let Ok(v) = u64::from_str_radix(id, 16) else {
            return false;
        };
        let n = splitmix64_inverse(v).wrapping_sub(self.seed);
        n < self.issued()
    }
}

/// One finished request as traced.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    pub trace_id: String,
    pub method: String,
    pub path: String,
    pub status: u16,
    /// Accept-to-worker-pickup wait, microseconds.
    pub queue_wait_us: u64,
    /// Handler wall time, microseconds.
    pub handler_us: u64,
    /// The request's effective deadline, when it asked for one.
    pub deadline_ms: Option<u64>,
    /// Whether the response was a 206 partial (blown budget).
    pub partial: bool,
    /// The request's span forest (flat records, parent indices).
    pub spans: Vec<SpanRecord>,
}

fn ms(us: u64) -> f64 {
    us as f64 / 1000.0
}

impl TraceEntry {
    fn write_common(&self, out: &mut String) {
        out.push_str("{\"trace_id\": ");
        json::write_str(out, &self.trace_id);
        out.push_str(", \"method\": ");
        json::write_str(out, &self.method);
        out.push_str(", \"path\": ");
        json::write_str(out, &self.path);
        let _ = write!(out, ", \"status\": {}, \"queue_wait_ms\": ", self.status);
        json::write_f64(out, ms(self.queue_wait_us));
        out.push_str(", \"handler_ms\": ");
        json::write_f64(out, ms(self.handler_us));
        out.push_str(", \"deadline_ms\": ");
        match self.deadline_ms {
            Some(d) => {
                let _ = write!(out, "{d}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ", \"partial\": {}", self.partial);
    }

    /// The entry as a `/tracez` trace object (with the span forest).
    fn write_trace(&self, out: &mut String) {
        self.write_common(out);
        out.push_str(", \"spans\": ");
        batnet_obs::report::write_span_forest(&self.spans, out);
        out.push('}');
    }

    /// The entry as one access-log line (no spans — those live in the
    /// ring; the log is for grep and line counting).
    pub fn access_line(&self) -> String {
        let mut out = String::with_capacity(160);
        self.write_common(&mut out);
        out.push('}');
        out
    }
}

struct RingState {
    entries: VecDeque<TraceEntry>,
    evicted: u64,
}

/// Bounded ring of the most recent finished request traces.
pub struct TraceRing {
    capacity: usize,
    state: Mutex<RingState>,
}

impl TraceRing {
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            capacity: capacity.max(1),
            state: Mutex::new(RingState {
                entries: VecDeque::new(),
                evicted: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RingState> {
        // Poison recovery for the same reason as the recorder: a
        // panicking worker must not take `/tracez` down with it.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds a finished request, evicting (and counting) the oldest when
    /// full.
    pub fn push(&self, entry: TraceEntry) {
        let mut st = self.lock();
        if st.entries.len() >= self.capacity {
            st.entries.pop_front();
            st.evicted += 1;
        }
        st.entries.push_back(entry);
    }

    /// `(retained, evicted)` — the ring's side of the accounting
    /// identity `requests.total == retained + evicted`.
    pub fn stats(&self) -> (usize, u64) {
        let st = self.lock();
        (st.entries.len(), st.evicted)
    }

    /// Whether a trace id is currently retained.
    pub fn contains(&self, trace_id: &str) -> bool {
        self.lock().entries.iter().any(|e| e.trace_id == trace_id)
    }

    /// A single retained trace as a standalone `/tracez`-schema document
    /// (one-element `traces`, same ring accounting), or `None` if the id
    /// is not currently in the ring.
    pub fn render_one(&self, trace_id: &str) -> Option<String> {
        let st = self.lock();
        let e = st.entries.iter().find(|e| e.trace_id == trace_id)?;
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"schema\": 1, \"capacity\": {}, \"evicted\": {}, \"traces\": [",
            self.capacity, st.evicted
        );
        e.write_trace(&mut out);
        out.push_str("]}");
        Some(out)
    }

    /// The `/tracez` document: schema 1, ring accounting, traces
    /// newest-first (the recent ones are what an operator is after).
    pub fn render_json(&self) -> String {
        let st = self.lock();
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"schema\": 1, \"capacity\": {}, \"evicted\": {}, \"traces\": [",
            self.capacity, st.evicted
        );
        for (i, e) in st.entries.iter().rev().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            e.write_trace(&mut out);
        }
        out.push_str("]}");
        out
    }
}

/// Where per-request access-log lines go.
#[derive(Clone, Default)]
pub enum AccessLog {
    /// No logging (the default; tracing still fills the ring).
    #[default]
    Off,
    /// One JSON line per request to stderr (`--access-log`).
    Stderr,
    /// Captured in memory — the chaos harness counts lines here.
    Sink(Arc<Mutex<Vec<String>>>),
}

impl AccessLog {
    /// A sink log plus the shared buffer it writes to.
    pub fn sink() -> (AccessLog, Arc<Mutex<Vec<String>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (AccessLog::Sink(Arc::clone(&buf)), buf)
    }

    pub fn emit(&self, entry: &TraceEntry) {
        match self {
            AccessLog::Off => {}
            AccessLog::Stderr => eprintln!("{}", entry.access_line()),
            AccessLog::Sink(buf) => buf
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(entry.access_line()),
        }
    }
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccessLog::Off => "Off",
            AccessLog::Stderr => "Stderr",
            AccessLog::Sink(_) => "Sink",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_obs::json::Value;
    use batnet_obs::report::validate_tracez;

    fn entry(id: &str) -> TraceEntry {
        TraceEntry {
            trace_id: id.to_string(),
            method: "GET".to_string(),
            path: "/healthz".to_string(),
            status: 200,
            queue_wait_us: 250,
            handler_us: 1500,
            deadline_ms: None,
            partial: false,
            spans: vec![SpanRecord {
                name: "serve.request".to_string(),
                parent: None,
                start_ns: 0,
                dur_ns: Some(1_500_000),
                tid: 0,
            }],
        }
    }

    #[test]
    fn ids_are_deterministic_per_seed() {
        let a = TraceIds::new(42);
        let b = TraceIds::new(42);
        let ids: Vec<String> = (0..4).map(|_| a.next_id()).collect();
        assert_eq!(ids, (0..4).map(|_| b.next_id()).collect::<Vec<_>>());
        assert_eq!(ids[2], TraceIds::nth(42, 2));
        assert_eq!(ids.iter().collect::<std::collections::BTreeSet<_>>().len(), 4);
        assert!(ids.iter().all(|i| i.len() == 16));
        assert_ne!(ids[0], TraceIds::new(43).next_id(), "seed changes the stream");
    }

    #[test]
    fn splitmix64_inversion_roundtrips() {
        for x in [0u64, 1, 42, u64::MAX, 0xdead_beef_cafe_f00d, 1 << 63] {
            assert_eq!(splitmix64_inverse(splitmix64(x)), x);
        }
        let ids = TraceIds::new(907);
        assert!(!ids.was_issued(&TraceIds::nth(907, 0)), "nothing issued yet");
        let first = ids.next_id();
        assert_eq!(ids.issued(), 1);
        assert!(ids.was_issued(&first));
        assert!(!ids.was_issued(&TraceIds::nth(907, 1)), "not issued yet");
        assert!(!ids.was_issued(&TraceIds::nth(1, 0)), "other seed's stream");
        assert!(!ids.was_issued("zz"), "malformed ids are never issued");
        assert!(!ids.was_issued("00112233445566778899"), "wrong length");
    }

    #[test]
    fn ring_renders_single_retained_trace() {
        let ring = TraceRing::new(2);
        for i in 0..3 {
            ring.push(entry(&format!("id-{i}")));
        }
        let one = ring.render_one("id-2").expect("retained");
        let v = json::parse(&one).expect("parses");
        validate_tracez(&v).expect("single-trace doc validates");
        let traces = v.get("traces").and_then(Value::as_arr).expect("traces");
        assert_eq!(traces.len(), 1);
        assert_eq!(
            traces[0].get("trace_id").and_then(Value::as_str),
            Some("id-2")
        );
        assert_eq!(v.get("evicted").and_then(Value::as_f64), Some(1.0));
        assert!(ring.render_one("id-0").is_none(), "evicted ids miss");
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let ring = TraceRing::new(2);
        for i in 0..5 {
            ring.push(entry(&format!("id-{i}")));
        }
        assert_eq!(ring.stats(), (2, 3));
        assert!(ring.contains("id-4") && ring.contains("id-3"));
        assert!(!ring.contains("id-0"));
        let v = json::parse(&ring.render_json()).expect("tracez parses");
        validate_tracez(&v).expect("tracez validates");
        // Newest first.
        let traces = v.get("traces").and_then(Value::as_arr).expect("traces");
        assert_eq!(
            traces[0].get("trace_id").and_then(Value::as_str),
            Some("id-4")
        );
    }

    #[test]
    fn access_line_is_one_json_object() {
        let (log, buf) = AccessLog::sink();
        log.emit(&entry("abc"));
        let lines = buf.lock().expect("sink");
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].contains('\n'));
        let v = json::parse(&lines[0]).expect("line parses");
        assert_eq!(v.get("trace_id").and_then(Value::as_str), Some("abc"));
        assert_eq!(v.get("status").and_then(Value::as_f64), Some(200.0));
        assert_eq!(v.get("queue_wait_ms").and_then(Value::as_f64), Some(0.25));
        assert!(v.get("spans").is_none(), "log lines carry no span forest");
    }
}
