//! batnet-serve: run the analysis service, or drive its smoke sequence.
//!
//! ```text
//! batnet-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!              [--io-timeout-ms N] [--deadline-ms N] [--store-capacity N]
//!              [--prewarm N2,NET1] [--smoke]
//! ```
//!
//! Without `--smoke`, binds, prewarms, prints the address, and serves
//! until a client POSTs `/admin/shutdown`. With `--smoke`, runs the CI
//! end-to-end sequence in one process — ephemeral port, `/readyz` poll,
//! a real reachability query, a deliberately over-deadline query that
//! must come back `206` partial (not hang), a bad route, metrics audit,
//! graceful drain — and exits nonzero on the first deviation.

use batnet_net::Backoff;
use batnet_serve::{client, ServeConfig};
use std::time::Duration;

fn main() {
    let mut cfg = ServeConfig::default();
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    let fail = |msg: String| -> ! {
        eprintln!("batnet-serve: {msg}");
        std::process::exit(2);
    };
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> String {
            args.next()
                .unwrap_or_else(|| fail(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = take("--addr"),
            "--workers" => cfg.workers = parse(&take("--workers"), "--workers"),
            "--queue-depth" => cfg.queue_depth = parse(&take("--queue-depth"), "--queue-depth"),
            "--io-timeout-ms" => {
                cfg.io_timeout_ms = parse(&take("--io-timeout-ms"), "--io-timeout-ms")
            }
            "--deadline-ms" => {
                cfg.default_deadline_ms = parse(&take("--deadline-ms"), "--deadline-ms")
            }
            "--store-capacity" => {
                cfg.store_capacity = parse(&take("--store-capacity"), "--store-capacity")
            }
            "--prewarm" => {
                cfg.prewarm = take("--prewarm")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            }
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                println!(
                    "usage: batnet-serve [--addr HOST:PORT] [--workers N] [--queue-depth N] \
                     [--io-timeout-ms N] [--deadline-ms N] [--store-capacity N] \
                     [--prewarm IDS] [--smoke]"
                );
                return;
            }
            other => fail(format!("unknown argument {other:?}")),
        }
    }

    if smoke {
        cfg.addr = "127.0.0.1:0".to_string();
        if cfg.prewarm.is_empty() {
            cfg.prewarm = vec!["N2".to_string()];
        }
        match run_smoke(cfg) {
            Ok(()) => println!("serve-smoke: ok"),
            Err(e) => {
                eprintln!("serve-smoke: FAIL: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    match batnet_serve::spawn(cfg) {
        Ok(handle) => {
            println!("batnet-serve listening on {}", handle.addr());
            handle.join();
            println!("batnet-serve drained");
        }
        Err(e) => {
            eprintln!("batnet-serve: bind failed: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(v: &str, name: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("batnet-serve: bad value for {name}: {v:?}");
        std::process::exit(2);
    })
}

/// The CI smoke sequence. Every step names itself in its error.
fn run_smoke(cfg: ServeConfig) -> Result<(), String> {
    let net = cfg.prewarm[0].clone();
    let handle = batnet_serve::spawn(cfg).map_err(|e| format!("spawn: {e}"))?;
    let addr = handle.addr();
    let t = Duration::from_secs(10);
    let step = |name: &str, r: std::io::Result<client::ClientResponse>| {
        r.map_err(|e| format!("{name}: transport: {e}"))
    };

    // Liveness, then readiness under retry (the poll the Makefile used
    // to shell-script, in-process).
    let h = step("healthz", client::get(addr, "/healthz", t))?;
    expect(&h, 200, "healthz")?;
    let r = step(
        "readyz",
        client::get_with_retry(
            addr,
            "/readyz",
            t,
            Backoff::new(Duration::from_millis(10), Duration::from_millis(200), 20, 7),
        ),
    )?;
    expect(&r, 200, "readyz")?;

    // The warm store must hold the prewarmed network.
    let list = step("snapshots", client::get(addr, "/snapshots", t))?;
    expect(&list, 200, "snapshots")?;
    if !list.body_str().contains(&format!("\"name\": \"{net}\"")) {
        return Err(format!("snapshots: {net} not listed: {}", list.body_str()));
    }

    // A real reachability query answers 200 complete.
    let reach = step(
        "reach",
        client::get(
            addr,
            &format!("/query/reach?snapshot={net}&port=80"),
            t,
        ),
    )?;
    expect(&reach, 200, "reach")?;
    if !reach.body_str().contains("\"partial\": null") {
        return Err(format!("reach: expected complete answer: {}", reach.body_str()));
    }

    // A deliberately over-deadline query must come back 206 partial —
    // promptly, with accounting — never hang.
    let partial = step(
        "reach-deadline",
        client::get(
            addr,
            &format!("/query/reach?snapshot={net}&port=80&deadline_ms=0"),
            t,
        ),
    )?;
    expect(&partial, 206, "reach-deadline")?;
    if !partial.body_str().contains("\"stage\":") {
        return Err(format!(
            "reach-deadline: partial accounting missing: {}",
            partial.body_str()
        ));
    }

    // Lint and the run report serve from the same warm snapshot.
    let lint = step("lint", client::get(addr, &format!("/lint?snapshot={net}"), t))?;
    expect(&lint, 200, "lint")?;
    let report = step(
        "report",
        client::get(addr, &format!("/report?snapshot={net}"), t),
    )?;
    expect(&report, 200, "report")?;

    // A bad route 404s without disturbing anything.
    let missing = step("404", client::get(addr, "/no/such/route", t))?;
    expect(&missing, 404, "404")?;

    // The books must balance: requests counted, zero contained panics.
    let metrics = step("metricsz", client::get(addr, "/metricsz", t))?;
    expect(&metrics, 200, "metricsz")?;
    let body = metrics.body_str();
    if !body.contains("serve.requests.total") {
        return Err("metricsz: serve.requests.total missing".to_string());
    }
    if body.contains("serve.panics.contained") {
        return Err("metricsz: a panic was contained during smoke".to_string());
    }

    // Graceful drain: accepted, readiness drops, the process unwinds.
    let bye = step(
        "shutdown",
        client::post(addr, "/admin/shutdown", b"", t),
    )?;
    expect(&bye, 202, "shutdown")?;
    handle.join();
    Ok(())
}

fn expect(r: &client::ClientResponse, status: u16, step: &str) -> Result<(), String> {
    if r.status == status {
        Ok(())
    } else {
        Err(format!(
            "{step}: expected {status}, got {}: {}",
            r.status,
            r.body_str()
        ))
    }
}
