//! batnet-serve: run the analysis service, or drive its smoke sequence.
//!
//! ```text
//! batnet-serve [--addr HOST:PORT] [--threads N] [--queue-depth N]
//!              [--io-timeout-ms N] [--deadline-ms N] [--store-capacity N]
//!              [--prewarm N2,NET1] [--trace-ring N] [--trace-seed N]
//!              [--profile-hz N] [--access-log] [--smoke]
//! ```
//!
//! `--threads N` sizes the shared execution pool request handlers (and
//! the analysis they trigger) run on; 0 or omitted = all cores.
//! `--workers N` is accepted as a deprecated alias.
//!
//! Without `--smoke`, binds, prewarms, prints the address, and serves
//! until a client POSTs `/admin/shutdown`. `--profile-hz N` turns on the
//! continuous profiler: a sampler thread snapshots every live span stack
//! N times a second and `GET /profilez` serves (and resets) the
//! accumulated `batnet-prof/v1` window. With `--smoke`, runs the CI
//! end-to-end sequence in one process — ephemeral port, `/readyz` poll,
//! a real reachability query, a deliberately over-deadline query that
//! must come back `206` partial (not hang), a bad route, a `/tracez`
//! fetch validated against the deterministic seeded trace-id stream
//! (the dump is also written to `target/tracez-smoke.json` for the CI
//! validator), single-trace `/tracez?id=` lookups (retained and
//! never-issued; the evicted case is pinned by the chaos serve sweep),
//! a validator-clean `/profilez` profile when profiling is on (written
//! to `target/profilez-smoke.json`), metrics audit with per-endpoint
//! SLO meta, graceful drain — and exits nonzero on the first deviation.

use batnet_net::Backoff;
use batnet_serve::{client, AccessLog, ServeConfig, TraceIds};
use std::time::Duration;

fn main() {
    let mut cfg = ServeConfig::default();
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    let fail = |msg: String| -> ! {
        eprintln!("batnet-serve: {msg}");
        std::process::exit(2);
    };
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> String {
            args.next()
                .unwrap_or_else(|| fail(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = take("--addr"),
            "--threads" => {
                let n: usize = parse(&take("--threads"), "--threads");
                if !batnet_exec::configure_threads(n) {
                    fail("--threads: the execution pool is already sized differently".to_string());
                }
            }
            "--workers" => cfg.workers = parse(&take("--workers"), "--workers"),
            "--queue-depth" => cfg.queue_depth = parse(&take("--queue-depth"), "--queue-depth"),
            "--io-timeout-ms" => {
                cfg.io_timeout_ms = parse(&take("--io-timeout-ms"), "--io-timeout-ms")
            }
            "--deadline-ms" => {
                cfg.default_deadline_ms = parse(&take("--deadline-ms"), "--deadline-ms")
            }
            "--store-capacity" => {
                cfg.store_capacity = parse(&take("--store-capacity"), "--store-capacity")
            }
            "--prewarm" => {
                cfg.prewarm = take("--prewarm")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            }
            "--trace-ring" => {
                cfg.trace_ring_capacity = parse(&take("--trace-ring"), "--trace-ring")
            }
            "--trace-seed" => cfg.trace_seed = parse(&take("--trace-seed"), "--trace-seed"),
            "--profile-hz" => cfg.profile_hz = parse(&take("--profile-hz"), "--profile-hz"),
            "--access-log" => cfg.access_log = AccessLog::Stderr,
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                println!(
                    "usage: batnet-serve [--addr HOST:PORT] [--threads N] [--queue-depth N] \
                     [--io-timeout-ms N] [--deadline-ms N] [--store-capacity N] \
                     [--prewarm IDS] [--trace-ring N] [--trace-seed N] [--profile-hz N] \
                     [--access-log] [--smoke]"
                );
                return;
            }
            other => fail(format!("unknown argument {other:?}")),
        }
    }

    if smoke {
        cfg.addr = "127.0.0.1:0".to_string();
        if cfg.prewarm.is_empty() {
            cfg.prewarm = vec!["N2".to_string()];
        }
        match run_smoke(cfg) {
            Ok(()) => println!("serve-smoke: ok"),
            Err(e) => {
                eprintln!("serve-smoke: FAIL: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    match batnet_serve::spawn(cfg) {
        Ok(handle) => {
            println!("batnet-serve listening on {}", handle.addr());
            handle.join();
            println!("batnet-serve drained");
        }
        Err(e) => {
            eprintln!("batnet-serve: bind failed: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(v: &str, name: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("batnet-serve: bad value for {name}: {v:?}");
        std::process::exit(2);
    })
}

/// The CI smoke sequence. Every step names itself in its error.
fn run_smoke(cfg: ServeConfig) -> Result<(), String> {
    let net = cfg.prewarm[0].clone();
    let seed = cfg.trace_seed;
    let profiling = cfg.profile_hz > 0;
    let handle = batnet_serve::spawn(cfg).map_err(|e| format!("spawn: {e}"))?;
    let addr = handle.addr();
    let t = Duration::from_secs(10);
    let step = |name: &str, r: std::io::Result<client::ClientResponse>| {
        r.map_err(|e| format!("{name}: transport: {e}"))
    };
    // Smoke requests are strictly sequential (one connection at a
    // time), so the trace-id stream is fully deterministic: request n
    // carries exactly `TraceIds::nth(seed, n)`.
    let mut issued: u64 = 0;
    let mut check_trace = |r: &client::ClientResponse, name: &str| -> Result<(), String> {
        let got = r
            .header("X-Batnet-Trace-Id")
            .ok_or_else(|| format!("{name}: X-Batnet-Trace-Id header missing"))?;
        let want = TraceIds::nth(seed, issued);
        issued += 1;
        if got != want {
            return Err(format!(
                "{name}: trace id {got:?} is not the expected seeded id {want:?}"
            ));
        }
        Ok(())
    };

    // Liveness, then readiness under retry (the poll the Makefile used
    // to shell-script, in-process).
    let h = step("healthz", client::get(addr, "/healthz", t))?;
    expect(&h, 200, "healthz")?;
    check_trace(&h, "healthz")?;
    let r = step(
        "readyz",
        client::get_with_retry(
            addr,
            "/readyz",
            t,
            Backoff::new(Duration::from_millis(10), Duration::from_millis(200), 20, 7),
        ),
    )?;
    expect(&r, 200, "readyz")?;
    check_trace(&r, "readyz")?;

    // The warm store must hold the prewarmed network.
    let list = step("snapshots", client::get(addr, "/snapshots", t))?;
    expect(&list, 200, "snapshots")?;
    check_trace(&list, "snapshots")?;
    if !list.body_str().contains(&format!("\"name\": \"{net}\"")) {
        return Err(format!("snapshots: {net} not listed: {}", list.body_str()));
    }

    // A real reachability query answers 200 complete.
    let reach = step(
        "reach",
        client::get(
            addr,
            &format!("/query/reach?snapshot={net}&port=80"),
            t,
        ),
    )?;
    expect(&reach, 200, "reach")?;
    check_trace(&reach, "reach")?;
    let reach_id = reach
        .header("X-Batnet-Trace-Id")
        .map(str::to_string)
        .unwrap_or_default();
    if !reach.body_str().contains("\"partial\": null") {
        return Err(format!("reach: expected complete answer: {}", reach.body_str()));
    }

    // A deliberately over-deadline query must come back 206 partial —
    // promptly, with accounting — never hang.
    let partial = step(
        "reach-deadline",
        client::get(
            addr,
            &format!("/query/reach?snapshot={net}&port=80&deadline_ms=0"),
            t,
        ),
    )?;
    expect(&partial, 206, "reach-deadline")?;
    check_trace(&partial, "reach-deadline")?;
    if !partial.body_str().contains("\"stage\":") {
        return Err(format!(
            "reach-deadline: partial accounting missing: {}",
            partial.body_str()
        ));
    }

    // Lint and the run report serve from the same warm snapshot.
    let lint = step("lint", client::get(addr, &format!("/lint?snapshot={net}"), t))?;
    expect(&lint, 200, "lint")?;
    check_trace(&lint, "lint")?;
    let report = step(
        "report",
        client::get(addr, &format!("/report?snapshot={net}"), t),
    )?;
    expect(&report, 200, "report")?;
    check_trace(&report, "report")?;

    // A bad route 404s without disturbing anything — and still traces.
    let missing = step("404", client::get(addr, "/no/such/route", t))?;
    expect(&missing, 404, "404")?;
    check_trace(&missing, "404")?;

    // The recent-trace ring holds every request so far, validator-clean.
    let tracez = step("tracez", client::get(addr, "/tracez", t))?;
    expect(&tracez, 200, "tracez")?;
    check_trace(&tracez, "tracez")?;
    let body = tracez.body_str().to_string();
    let doc = batnet_obs::json::parse(&body).map_err(|e| format!("tracez: bad JSON: {e}"))?;
    batnet_obs::report::validate_tracez(&doc).map_err(|e| format!("tracez: INVALID: {e}"))?;
    if !body.contains(&reach_id) {
        return Err(format!("tracez: reach trace {reach_id} not retained"));
    }
    if !body.contains("\"partial\": true") {
        return Err("tracez: the 206 reach-deadline trace is not marked partial".to_string());
    }
    // Leave the dump where `make serve-smoke` runs the standalone
    // validator over it.
    let _ = std::fs::create_dir_all("target");
    std::fs::write("target/tracez-smoke.json", &body)
        .map_err(|e| format!("tracez: write dump: {e}"))?;

    // Single-trace lookup: a retained id comes back alone,
    // validator-clean; an id outside the issued stream 404s saying
    // "unknown" (the evicted flavor needs ring pressure — the chaos
    // serve sweep pins it).
    let one = step(
        "tracez-id",
        client::get(addr, &format!("/tracez?id={reach_id}"), t),
    )?;
    expect(&one, 200, "tracez-id")?;
    check_trace(&one, "tracez-id")?;
    let doc = batnet_obs::json::parse(one.body_str())
        .map_err(|e| format!("tracez-id: bad JSON: {e}"))?;
    batnet_obs::report::validate_tracez(&doc).map_err(|e| format!("tracez-id: INVALID: {e}"))?;
    match doc.get("traces").and_then(batnet_obs::json::Value::as_arr) {
        Some(traces) if traces.len() == 1 => {}
        _ => return Err("tracez-id: expected exactly one trace".to_string()),
    }
    if !one.body_str().contains(&reach_id) {
        return Err(format!("tracez-id: {reach_id} not in its own lookup"));
    }
    let unknown = step(
        "tracez-unknown",
        client::get(addr, "/tracez?id=ffffffffffffffff", t),
    )?;
    expect(&unknown, 404, "tracez-unknown")?;
    check_trace(&unknown, "tracez-unknown")?;
    if !unknown.body_str().contains("\"reason\": \"unknown\"") {
        return Err(format!(
            "tracez-unknown: 404 body must say the id was never issued: {}",
            unknown.body_str()
        ));
    }

    // Continuous profiling: with --profile-hz the window accumulated
    // since startup (prewarm included) must come back validator-clean
    // and its folded stacks must name real pipeline spans; without it,
    // /profilez is an honest 404.
    let prof = step("profilez", client::get(addr, "/profilez", t))?;
    check_trace(&prof, "profilez")?;
    if profiling {
        expect(&prof, 200, "profilez")?;
        let body = prof.body_str().to_string();
        let doc = batnet_obs::json::parse(&body)
            .map_err(|e| format!("profilez: bad JSON: {e}"))?;
        batnet_obs::report::validate_profile(&doc)
            .map_err(|e| format!("profilez: INVALID: {e}"))?;
        let named_real_span = ["snapshot.parse", "route.simulate", "graph.build", "serve.request"]
            .iter()
            .any(|s| body.contains(s));
        if !named_real_span {
            return Err(format!(
                "profilez: folded stacks name no real pipeline span: {body}"
            ));
        }
        std::fs::write("target/profilez-smoke.json", &body)
            .map_err(|e| format!("profilez: write dump: {e}"))?;
    } else {
        expect(&prof, 404, "profilez")?;
    }

    // The books must balance: requests counted, per-endpoint SLO meta
    // present, zero contained panics.
    let metrics = step("metricsz", client::get(addr, "/metricsz", t))?;
    expect(&metrics, 200, "metricsz")?;
    check_trace(&metrics, "metricsz")?;
    let body = metrics.body_str();
    if !body.contains("serve.requests.total") {
        return Err("metricsz: serve.requests.total missing".to_string());
    }
    for key in ["slo.query.reach.p50_us", "slo.query.reach.p99_us"] {
        if !body.contains(key) {
            return Err(format!("metricsz: per-endpoint SLO meta {key} missing"));
        }
    }
    if body.contains("serve.panics.contained") {
        return Err("metricsz: a panic was contained during smoke".to_string());
    }
    for key in ["exec.workers", "exec.steals", "exec.queue_depth"] {
        if !body.contains(key) {
            return Err(format!("metricsz: execution-pool meta {key} missing"));
        }
    }
    if profiling {
        for key in ["obs.sampler.samples", "obs.sampler.overhead_us"] {
            if !body.contains(key) {
                return Err(format!("metricsz: sampler meta {key} missing"));
            }
        }
    } else if body.contains("obs.sampler.") {
        return Err("metricsz: sampler meta present with profiling off".to_string());
    }

    // Graceful drain: accepted, readiness drops, the process unwinds.
    let bye = step(
        "shutdown",
        client::post(addr, "/admin/shutdown", b"", t),
    )?;
    expect(&bye, 202, "shutdown")?;
    check_trace(&bye, "shutdown")?;
    handle.join();
    Ok(())
}

fn expect(r: &client::ClientResponse, status: u16, step: &str) -> Result<(), String> {
    if r.status == status {
        Ok(())
    } else {
        Err(format!(
            "{step}: expected {status}, got {}: {}",
            r.status,
            r.body_str()
        ))
    }
}
