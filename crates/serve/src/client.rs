//! A minimal blocking HTTP/1.1 client for the served API.
//!
//! Exists so the load driver (`harness serve`), the smoke mode, the
//! chaos harness's *well-behaved* clients, and the integration tests
//! all speak to the server the same way — one connection per request,
//! `Connection: close`, socket timeouts armed. Idempotent GETs can be
//! retried under a deterministic [`Backoff`] schedule: a `503` with
//! `Retry-After` or a timeout is the server asking for exactly that.

use batnet_net::Backoff;
use batnet_obs::json::{self, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers, lowercased keys.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// GET retries consumed before this response (0 = first try).
    pub retries: u32,
}

impl ClientResponse {
    /// The body as UTF-8 (empty string if it is not).
    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap_or("")
    }

    /// The body parsed as JSON.
    pub fn json(&self) -> Result<Value, String> {
        json::parse(self.body_str())
    }

    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;
    let mut head = format!("{method} {target} HTTP/1.1\r\nHost: batnet\r\n");
    if let Some(b) = body {
        head.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            b.len()
        ));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some(b) = body {
        stream.write_all(b)?;
    }
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let bad = |d: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, d.to_string());
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    Ok(ClientResponse {
        status,
        headers,
        body: raw[split + 4..].to_vec(),
        retries: 0,
    })
}

/// One GET, no retries.
pub fn get(addr: SocketAddr, target: &str, timeout: Duration) -> std::io::Result<ClientResponse> {
    request(addr, "GET", target, None, timeout)
}

/// One POST. POSTs are *not* retried here: uploads and shutdown are not
/// idempotent, so the retry decision belongs to the caller.
pub fn post(
    addr: SocketAddr,
    target: &str,
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    request(addr, "POST", target, Some(body), timeout)
}

/// A GET retried under a deterministic [`Backoff`] schedule on `503`
/// (backpressure), `408` (watchdog), and transport errors — the
/// failures a loaded-but-healthy server emits on purpose. Other
/// statuses (including 4xx and 206-partial) return immediately: they
/// are answers, not congestion.
pub fn get_with_retry(
    addr: SocketAddr,
    target: &str,
    timeout: Duration,
    mut backoff: Backoff,
) -> std::io::Result<ClientResponse> {
    let mut retries = 0u32;
    loop {
        let outcome = get(addr, target, timeout);
        let retryable = match &outcome {
            Ok(r) => r.status == 503 || r.status == 408,
            Err(_) => true,
        };
        if !retryable {
            let mut r = outcome?;
            r.retries = retries;
            return Ok(r);
        }
        match backoff.next() {
            Some(delay) => {
                retries += 1;
                std::thread::sleep(delay);
            }
            None => {
                // Schedule exhausted: surface the last outcome as-is.
                return outcome.map(|mut r| {
                    r.retries = retries;
                    r
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_with_headers_and_body() {
        let raw = b"HTTP/1.1 206 Partial Content\r\nContent-Type: application/json\r\nRetry-After: 1\r\n\r\n{\"ok\": true}";
        let r = parse_response(raw).expect("parse");
        assert_eq!(r.status, 206);
        assert_eq!(r.header("retry-after"), Some("1"));
        assert_eq!(r.header("Content-Type"), Some("application/json"));
        assert_eq!(r.body_str(), "{\"ok\": true}");
        assert!(r.json().is_ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 banana\r\n\r\n").is_err());
    }
}
