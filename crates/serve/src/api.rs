//! Endpoint handlers: the service's API surface.
//!
//! Every handler is a pure function from a parsed [`Request`] plus the
//! shared state to a [`Response`] — no I/O, no panics on malformed
//! input (bad parameters are 4xx responses), and every governed
//! operation that trips its budget returns **206 Partial Content**
//! whose JSON body carries the same `{stage, limit, abandoned}`
//! accounting as [`batnet_obs`] run reports. Partiality is a first-class
//! response shape, not an error: what was computed is returned, what
//! was abandoned is named.

use crate::http::{Method, Request, Response};
use crate::server::{ServeConfig, ServiceState};
use crate::store::{SnapshotStore, StoreError, StoredSnapshot};
use crate::tracing::{TraceIds, TraceRing};
use batnet::{Exhaustion, Outcome, ResourceGovernor};
use batnet_dataplane::vars::Field;
use batnet_dataplane::{NodeKind, ReachAnalysis};
use batnet_net::{Flow, Prefix};
use batnet_obs::json;
use batnet_queries::{host_facing_interfaces, scoped_sources};
use std::sync::MutexGuard;
use std::time::Duration;

/// Routes a request. The caller (the dispatch task) wraps this in
/// `catch_unwind`, so a handler bug becomes one 500, never a dead
/// worker.
#[allow(clippy::too_many_arguments)]
pub fn handle(
    req: &Request,
    store: &SnapshotStore,
    cfg: &ServeConfig,
    state: &ServiceState,
    ring: &TraceRing,
    sampler: Option<&batnet_obs::Sampler>,
    ids: &TraceIds,
    pool: &batnet_exec::Pool,
) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method, segments.as_slice()) {
        (Method::Get, ["healthz"]) => Response::text(200, "ok\n"),
        (Method::Get, ["readyz"]) => {
            if state.is_ready() {
                Response::text(200, "ready\n")
            } else {
                Response::error(503, "draining").with_header("Retry-After", 1)
            }
        }
        (Method::Get, ["metricsz"]) => metricsz(sampler, pool),
        (Method::Get, ["tracez"]) => tracez(req, ring, ids),
        (Method::Get, ["profilez"]) => profilez(sampler),
        (Method::Get, ["snapshots"]) => list_snapshots(store),
        (Method::Post, ["snapshots", name]) => upload(req, store, cfg, name),
        (Method::Get, ["snapshots", name]) => snapshot_summary(store, name),
        (Method::Get, ["query", "reach"]) => with_snapshot(req, store, |req, s| {
            query_reach(req, s, cfg)
        }),
        (Method::Get, ["query", "trace"]) => with_snapshot(req, store, |req, s| {
            query_trace(req, s)
        }),
        (Method::Get, ["lint"]) => with_snapshot(req, store, |req, s| lint(req, s, cfg)),
        (Method::Get, ["diff"]) => diff(req, store, cfg),
        (Method::Get, ["report"]) => with_snapshot(req, store, |_, s| {
            Response::json(200, s.analysis.report.to_json())
        }),
        (Method::Post, ["admin", "shutdown"]) => {
            state.request_shutdown();
            batnet_obs::event("serve", "shutdown", "requested");
            Response::json(202, "{\"draining\": true}\n")
        }
        _ => Response::error(404, &format!("no route for {}", req.path)),
    }
}

/// The stable endpoint label used in per-endpoint SLO metric names
/// (`serve.latency.us.<label>`) — a closed set, so unknown paths cannot
/// mint unbounded metric names.
pub fn endpoint_label(method: Method, path: &str) -> &'static str {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segments.as_slice()) {
        (Method::Get, ["healthz"]) => "healthz",
        (Method::Get, ["readyz"]) => "readyz",
        (Method::Get, ["metricsz"]) => "metricsz",
        (Method::Get, ["tracez"]) => "tracez",
        (Method::Get, ["profilez"]) => "profilez",
        (Method::Get, ["snapshots"]) => "snapshots.list",
        (Method::Post, ["snapshots", _]) => "snapshots.upload",
        (Method::Get, ["snapshots", _]) => "snapshots.summary",
        (Method::Get, ["query", "reach"]) => "query.reach",
        (Method::Get, ["query", "trace"]) => "query.trace",
        (Method::Get, ["lint"]) => "lint",
        (Method::Get, ["diff"]) => "diff",
        (Method::Get, ["report"]) => "report",
        (Method::Post, ["admin", "shutdown"]) => "admin.shutdown",
        _ => "other",
    }
}

/// `GET /metricsz`: the full captured report, with per-endpoint SLO
/// summaries (`slo.<endpoint>.p50_us` / `.p99_us`, upper bucket edges
/// of the per-endpoint latency histograms) lifted into `meta` so an
/// operator — or the bench harness — reads p50/p99 without re-deriving
/// them from raw buckets. When the profiler is on, its cumulative
/// accounting (`obs.sampler.samples` / `.dropped` / `.ticks` /
/// `.overhead_us`) is lifted the same way — *into this response's meta,
/// never into the metric registry*, so captured analysis reports stay
/// byte-identical with the sampler off. The shared execution pool's
/// gauges (`exec.workers` / `exec.steals` / `exec.queue_depth`) follow
/// the same rule: meta only, so reports stay identical at every pool
/// width.
fn metricsz(sampler: Option<&batnet_obs::Sampler>, pool: &batnet_exec::Pool) -> Response {
    let mut report = batnet_obs::capture();
    let mut slo = Vec::new();
    for (name, value) in &report.metrics {
        let Some(endpoint) = name.strip_prefix("serve.latency.us.") else {
            continue;
        };
        if let batnet_obs::metrics::MetricValue::Histogram(h) = value {
            slo.push((
                endpoint.to_string(),
                h.percentile_upper(0.5),
                h.percentile_upper(0.99),
            ));
        }
    }
    for (endpoint, p50, p99) in slo {
        report.meta.insert(format!("slo.{endpoint}.p50_us"), p50.to_string());
        report.meta.insert(format!("slo.{endpoint}.p99_us"), p99.to_string());
    }
    if let Some(s) = sampler {
        let st = s.stats();
        report
            .meta
            .insert("obs.sampler.samples".to_string(), st.samples.to_string());
        report
            .meta
            .insert("obs.sampler.dropped".to_string(), st.dropped.to_string());
        report
            .meta
            .insert("obs.sampler.ticks".to_string(), st.ticks.to_string());
        report.meta.insert(
            "obs.sampler.overhead_us".to_string(),
            st.overhead_us.to_string(),
        );
    }
    let exec = pool.stats();
    report
        .meta
        .insert("exec.workers".to_string(), pool.threads().to_string());
    report
        .meta
        .insert("exec.steals".to_string(), exec.steals.to_string());
    report.meta.insert(
        "exec.queue_depth".to_string(),
        exec.queue_depth.to_string(),
    );
    Response::json(200, report.to_json())
}

/// `GET /tracez[?id=<trace-id>]`: the full ring dump, or one retained
/// trace. A miss is a 404 that says *which kind* of miss: an id the
/// server issued but the ring has since evicted, or an id this server
/// never produced — distinguishable in O(1) because trace ids come from
/// an invertible generator ([`TraceIds::was_issued`]).
fn tracez(req: &Request, ring: &TraceRing, ids: &TraceIds) -> Response {
    let Some(id) = req.param("id") else {
        return Response::json(200, ring.render_json());
    };
    if let Some(doc) = ring.render_one(id) {
        return Response::json(200, doc);
    }
    let mut body = String::from("{\"error\": \"trace not retained\", \"trace_id\": ");
    json::write_str(&mut body, id);
    if ids.was_issued(id) {
        body.push_str(", \"reason\": \"evicted\", \"detail\": \
            \"this server issued the id, but the trace ring has since evicted it; \
             raise --trace-ring to retain more\"}\n");
    } else {
        body.push_str(", \"reason\": \"unknown\", \"detail\": \
            \"this server never issued the id (not in this seed's stream)\"}\n");
    }
    Response::json(404, body)
}

/// `GET /profilez`: snapshot-and-reset the continuous profiler's
/// current window as a `batnet-prof/v1` document — each fetch reports
/// the interval since the previous fetch. 404 when the server runs
/// without `--profile-hz`.
fn profilez(sampler: Option<&batnet_obs::Sampler>) -> Response {
    match sampler {
        Some(s) => Response::json(200, s.take_profile()),
        None => Response::error(404, "profiling is off; start with --profile-hz N"),
    }
}

/// Builds the per-request governor: `deadline_ms` (default from config,
/// capped), plus opt-in `max_iterations` / `max_bdd_nodes` budgets —
/// the same [`ResourceGovernor`] the batch CLIs use, so serve and batch
/// share one enforcement mechanism.
fn request_governor(req: &Request, cfg: &ServeConfig) -> Result<ResourceGovernor, Response> {
    let deadline_ms = match req.param("deadline_ms") {
        None => cfg.default_deadline_ms,
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| Response::error(400, &format!("bad deadline_ms: {v:?}")))?
            .min(cfg.max_deadline_ms),
    };
    let mut gov = ResourceGovernor::with_deadline(Duration::from_millis(deadline_ms));
    if let Some(v) = req.param("max_iterations") {
        let n = v
            .parse::<u64>()
            .map_err(|_| Response::error(400, &format!("bad max_iterations: {v:?}")))?;
        gov = gov.and_iteration_budget(n);
    }
    if let Some(v) = req.param("max_bdd_nodes") {
        let n = v
            .parse::<usize>()
            .map_err(|_| Response::error(400, &format!("bad max_bdd_nodes: {v:?}")))?;
        gov = gov.and_node_ceiling(n);
    }
    Ok(gov)
}

/// Appends `"partial": {...}` (or `"partial": null`) to a JSON object
/// under construction — the `Outcome::Partial` accounting in the shape
/// run reports use.
fn write_partial(out: &mut String, partial: Option<(&[String], &Exhaustion)>) {
    out.push_str("\"partial\": ");
    match partial {
        None => out.push_str("null"),
        Some((abandoned, why)) => {
            out.push_str("{\"stage\": ");
            json::write_str(out, &why.stage);
            out.push_str(", \"limit\": ");
            json::write_str(out, &why.limit.to_string());
            out.push_str(", \"abandoned\": [");
            for (i, a) in abandoned.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                json::write_str(out, a);
            }
            out.push_str("]}");
        }
    }
}

/// Marks a response partial: bumps the metric and returns 206.
fn partial_status(partial: bool) -> u16 {
    if partial {
        batnet_obs::counter_add("serve.partial.total", 1);
        206
    } else {
        200
    }
}

/// Resolves the `snapshot` parameter and locks the entry for the
/// handler. Lock poisoning cannot happen (workers catch panics before
/// unwinding through a guard), but recover anyway.
fn with_snapshot(
    req: &Request,
    store: &SnapshotStore,
    f: impl FnOnce(&Request, &mut StoredSnapshot) -> Response,
) -> Response {
    let Some(name) = req.param("snapshot") else {
        return Response::error(400, "missing snapshot parameter");
    };
    let Some(entry) = store.get(name) else {
        return Response::error(404, &format!("unknown snapshot {name:?}"));
    };
    let mut guard = entry.lock().unwrap_or_else(|e| e.into_inner());
    f(req, &mut guard)
}

fn list_snapshots(store: &SnapshotStore) -> Response {
    let mut out = String::from("{\"snapshots\": [");
    for (i, info) in store.list().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"name\": ");
        json::write_str(&mut out, &info.name);
        out.push_str(&format!(
            ", \"devices\": {}, \"quarantined\": {}, \"partial\": {}, \"seq\": {}}}",
            info.devices, info.quarantined, info.partial, info.seq
        ));
    }
    out.push_str("]}\n");
    Response::json(200, out)
}

/// `POST /snapshots/<name>`: body is `{"configs": [{"name", "text"}…]}`.
fn upload(req: &Request, store: &SnapshotStore, cfg: &ServeConfig, name: &str) -> Response {
    let gov = match request_governor(req, cfg) {
        Ok(g) => g,
        Err(r) => return r,
    };
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let parsed = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("body is not JSON: {e}")),
    };
    let Some(list) = parsed.get("configs").and_then(|c| c.as_arr()) else {
        return Response::error(400, "body must be {\"configs\": [{\"name\", \"text\"}…]}");
    };
    let mut configs = Vec::with_capacity(list.len());
    for item in list {
        match (
            item.get("name").and_then(|v| v.as_str()),
            item.get("text").and_then(|v| v.as_str()),
        ) {
            (Some(n), Some(t)) => configs.push((n.to_string(), t.to_string())),
            _ => return Response::error(400, "each config needs string name and text"),
        }
    }
    let stored = match store.insert(name, configs, &gov) {
        Ok(s) => s,
        Err(StoreError::Analysis(e)) => return Response::error(422, &e.to_string()),
        Err(StoreError::Full) => {
            return Response::error(503, "store full").with_header("Retry-After", 5)
        }
    };
    let guard = stored.lock().unwrap_or_else(|e| e.into_inner());
    let status = if guard.partial.is_some() { 206 } else { 201 };
    if status == 206 {
        batnet_obs::counter_add("serve.partial.total", 1);
    }
    Response::json(status, summary_json(&guard))
}

fn snapshot_summary(store: &SnapshotStore, name: &str) -> Response {
    let Some(entry) = store.get(name) else {
        return Response::error(404, &format!("unknown snapshot {name:?}"));
    };
    let guard = entry.lock().unwrap_or_else(|e| e.into_inner());
    Response::json(200, summary_json(&guard))
}

/// The shared upload/summary body: device counts, per-device quarantine
/// accounting with machine-readable reason codes (partial-result
/// semantics: quarantined devices are *reported*, not silently gone),
/// and the partial accounting.
fn summary_json(s: &StoredSnapshot) -> String {
    let mut out = String::from("{\"snapshot\": ");
    json::write_str(&mut out, &s.name);
    out.push_str(&format!(
        ", \"devices\": {}, \"diagnostics\": {}, \"quarantined\": [",
        s.analysis.devices.len(),
        s.snapshot.diagnostic_count()
    ));
    for (i, q) in s.snapshot.quarantined.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"device\": ");
        json::write_str(&mut out, &q.device);
        out.push_str(", \"stage\": ");
        json::write_str(&mut out, &q.stage.to_string());
        out.push_str(", \"code\": ");
        json::write_str(&mut out, q.reason.code());
        out.push('}');
    }
    out.push_str("], ");
    write_partial(
        &mut out,
        s.partial.as_ref().map(|(a, w)| (a.as_slice(), w)),
    );
    out.push_str("}\n");
    out
}

/// `GET /query/reach?snapshot=S&prefix=P&port=N`: symbolic service
/// reachability from every host-facing interface, under the request's
/// governor. A tripped budget returns 206 with the fixed point computed
/// so far — the honest under-approximation, never a hang.
fn query_reach(req: &Request, s: &mut StoredSnapshot, cfg: &ServeConfig) -> Response {
    let gov = match request_governor(req, cfg) {
        Ok(g) => g,
        Err(r) => return r,
    };
    let prefix: Prefix = match req.param("prefix").unwrap_or("0.0.0.0/0").parse() {
        Ok(p) => p,
        Err(e) => return Response::error(400, &format!("bad prefix: {e}")),
    };
    let port: u16 = match req.param("port").unwrap_or("80").parse() {
        Ok(p) => p,
        Err(e) => return Response::error(400, &format!("bad port: {e}")),
    };
    let a = &mut s.analysis;
    let (bdd, vars, graph) = (&mut a.bdd, &a.vars, &a.graph);

    // The symbolic service traffic: dst in prefix, dst port, TCP.
    let dst = vars.ip_prefix(bdd, Field::DstIp, prefix);
    let port_set = vars.field_value(bdd, Field::DstPort, port as u64);
    let proto = vars.field_value(bdd, Field::Protocol, 6);
    let init = vars.initial_bits(bdd);
    let traffic = {
        let x = bdd.and(dst, port_set);
        let y = bdd.and(x, proto);
        bdd.and(y, init)
    };

    // Seed every internal host-facing interface with its scoped sources.
    let starts = host_facing_interfaces(&a.devices, &a.topo);
    let mut seeds = Vec::new();
    for h in starts.iter().filter(|h| !h.external) {
        let Some(node) = graph.node(&NodeKind::IfaceSrc(h.device.clone(), h.interface.clone()))
        else {
            continue;
        };
        let src = vars.ip_prefix(bdd, Field::SrcIp, scoped_sources(h));
        let seed = bdd.and(traffic, src);
        if seed != batnet::bdd::NodeId::FALSE {
            seeds.push((node, seed));
        }
    }

    // Delivery sinks inside the service prefix.
    let sinks: Vec<usize> = graph.nodes_where(|k| match k {
        NodeKind::DeliveredToSubnet(d, i) => a
            .devices
            .iter()
            .find(|dev| dev.name == *d)
            .and_then(|dev| dev.interfaces.get(i))
            .and_then(|iface| iface.connected_prefix())
            .is_some_and(|p| p.overlaps(&prefix)),
        _ => false,
    });

    let analysis = ReachAnalysis::new(graph);
    let outcome = analysis.forward_governed(bdd, &seeds, &gov);
    let (result, partial) = match &outcome {
        Outcome::Complete(r) => (r, None),
        Outcome::Partial {
            completed,
            abandoned,
            why,
        } => (completed, Some((abandoned.as_slice(), why))),
    };
    let mut delivered = batnet::bdd::NodeId::FALSE;
    for &sk in &sinks {
        delivered = bdd.or(delivered, result.at(sk));
    }
    let nodes_reached = result
        .reach
        .iter()
        .filter(|&&n| n != batnet::bdd::NodeId::FALSE)
        .count();

    let mut out = String::from("{\"query\": \"reach\", \"snapshot\": ");
    json::write_str(&mut out, &s.name);
    out.push_str(", \"prefix\": ");
    json::write_str(&mut out, &prefix.to_string());
    out.push_str(&format!(
        ", \"port\": {port}, \"starts\": {}, \"sinks\": {}, \"delivered\": {}, \
         \"nodes_reached\": {nodes_reached}, \"relaxations\": {}, ",
        seeds.len(),
        sinks.len(),
        delivered != batnet::bdd::NodeId::FALSE,
        result.relaxations,
    ));
    write_partial(&mut out, partial);
    out.push_str("}\n");
    Response::json(partial_status(partial.is_some()), out)
}

/// `GET /query/trace?snapshot=S&device=D&iface=I&src=IP&dst=IP&port=N
/// [&proto=tcp|udp]`: one concrete annotated traceroute.
fn query_trace(req: &Request, s: &mut StoredSnapshot) -> Response {
    let need = |name: &str| -> Result<&str, Response> {
        req.param(name)
            .ok_or_else(|| Response::error(400, &format!("missing {name} parameter")))
    };
    let (device, iface) = match (need("device"), need("iface")) {
        (Ok(d), Ok(i)) => (d, i),
        (Err(r), _) | (_, Err(r)) => return r,
    };
    let parse_ip = |name: &str| -> Result<batnet_net::Ip, Response> {
        need(name)?
            .parse()
            .map_err(|e| Response::error(400, &format!("bad {name}: {e}")))
    };
    let (src, dst) = match (parse_ip("src"), parse_ip("dst")) {
        (Ok(s), Ok(d)) => (s, d),
        (Err(r), _) | (_, Err(r)) => return r,
    };
    let port: u16 = match req.param("port").unwrap_or("80").parse() {
        Ok(p) => p,
        Err(e) => return Response::error(400, &format!("bad port: {e}")),
    };
    let flow = match req.param("proto").unwrap_or("tcp") {
        "udp" => Flow::udp(src, 40000, dst, port),
        _ => Flow::tcp(src, 40000, dst, port),
    };
    let known = s
        .analysis
        .devices
        .iter()
        .any(|d| d.name == device && d.interfaces.contains_key(iface));
    if !known {
        return Response::error(404, &format!("no interface {iface:?} on device {device:?}"));
    }
    let trace = s.analysis.trace(device, iface, &flow);
    let mut out = String::from("{\"query\": \"trace\", \"snapshot\": ");
    json::write_str(&mut out, &s.name);
    out.push_str(", \"flow\": ");
    json::write_str(&mut out, &flow.to_string());
    out.push_str(&format!(", \"delivered\": {}, \"trace\": ", trace.any_succeeds()));
    json::write_str(&mut out, &trace.to_string());
    out.push_str("}\n");
    Response::json(200, out)
}

/// `GET /lint?snapshot=S`: the static-analysis passes over the stored
/// (healthy) devices, governed — a tripped budget abandons the
/// remaining passes and says which.
fn lint(req: &Request, s: &mut StoredSnapshot, cfg: &ServeConfig) -> Response {
    let gov = match request_governor(req, cfg) {
        Ok(g) => g,
        Err(r) => return r,
    };
    let outcome = batnet_lint::run_all_governed(&s.analysis.devices, &gov);
    let (findings, partial) = match &outcome {
        Outcome::Complete(f) => (f, None),
        Outcome::Partial {
            completed,
            abandoned,
            why,
        } => (completed, Some((abandoned.as_slice(), why))),
    };
    let mut out = String::from("{\"query\": \"lint\", \"snapshot\": ");
    json::write_str(&mut out, &s.name);
    out.push_str(&format!(", \"findings\": {}, ", findings.len()));
    write_partial(&mut out, partial);
    out.push_str(", \"report\": ");
    out.push_str(&batnet_lint::output::render_json(&s.name, findings));
    out.push_str("}\n");
    Response::json(partial_status(partial.is_some()), out)
}

/// `GET /diff?snapshot=A&against=B`: three-layer differential analysis
/// between two stored snapshots, governed at the layer boundaries.
fn diff(req: &Request, store: &SnapshotStore, cfg: &ServeConfig) -> Response {
    let gov = match request_governor(req, cfg) {
        Ok(g) => g,
        Err(r) => return r,
    };
    let (Some(a_name), Some(b_name)) = (req.param("snapshot"), req.param("against")) else {
        return Response::error(400, "diff needs snapshot and against parameters");
    };
    let (Some(a_entry), Some(b_entry)) = (store.get(a_name), store.get(b_name)) else {
        return Response::error(404, "unknown snapshot in snapshot/against");
    };
    // Lock in name order so concurrent diff(A,B) and diff(B,A) cannot
    // deadlock; a self-diff takes the lock once.
    let _ordered: Vec<&str> = {
        let mut v = vec![a_name, b_name];
        v.sort_unstable();
        v
    };
    let (guard_a, guard_b): (MutexGuard<'_, StoredSnapshot>, Option<MutexGuard<'_, StoredSnapshot>>) =
        if a_name == b_name {
            (a_entry.lock().unwrap_or_else(|e| e.into_inner()), None)
        } else if a_name < b_name {
            let ga = a_entry.lock().unwrap_or_else(|e| e.into_inner());
            let gb = b_entry.lock().unwrap_or_else(|e| e.into_inner());
            (ga, Some(gb))
        } else {
            let gb = b_entry.lock().unwrap_or_else(|e| e.into_inner());
            let ga = a_entry.lock().unwrap_or_else(|e| e.into_inner());
            (ga, Some(gb))
        };
    let before_side = guard_a.snapshot.diff_side();
    let after_side = match &guard_b {
        Some(g) => g.snapshot.diff_side(),
        None => guard_a.snapshot.diff_side(),
    };
    let opts = batnet::DiffOptions::default();
    let outcome = batnet_diff::diff_governed(&before_side, &after_side, &opts, &gov);
    let (d, partial) = match &outcome {
        Outcome::Complete(d) => (d, None),
        Outcome::Partial {
            completed,
            abandoned,
            why,
        } => (completed, Some((abandoned.as_slice(), why))),
    };
    let mut out = String::from("{\"query\": \"diff\", \"snapshot\": ");
    json::write_str(&mut out, a_name);
    out.push_str(", \"against\": ");
    json::write_str(&mut out, b_name);
    out.push_str(&format!(
        ", \"empty\": {}, \"changes\": {}, ",
        d.is_empty(),
        d.change_count()
    ));
    write_partial(&mut out, partial);
    out.push_str(", \"report\": ");
    out.push_str(&batnet_diff::render_json(d));
    out.push_str("}\n");
    Response::json(partial_status(partial.is_some()), out)
}
