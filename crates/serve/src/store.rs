//! The warm in-memory snapshot store.
//!
//! A long-running service cannot re-parse and re-simulate a network for
//! every query: uploads run the fault-tolerant pipeline *once* (under
//! the request's [`ResourceGovernor`]) and the resulting [`Analysis`] —
//! parsed devices, simulated RIBs/FIBs, and the BDD forwarding graph —
//! stays warm in memory. Queries lock one snapshot at a time (the BDD
//! manager needs `&mut`), so a per-request deadline also bounds how
//! long a query can hold a snapshot's lock.
//!
//! The store itself is bounded: at capacity, the oldest snapshot is
//! evicted (uploads must not grow memory without limit any more than a
//! single request may run without a deadline).

use batnet::{Analysis, Error, Exhaustion, Outcome, ResourceGovernor, Snapshot};
use batnet_routing::SimOptions;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A snapshot held warm: the parsed snapshot, its analysis, and the
/// partial-outcome accounting if the upload's budget tripped.
pub struct StoredSnapshot {
    /// Store key.
    pub name: String,
    /// The parsed snapshot (devices, env, quarantine, diagnostics).
    pub snapshot: Snapshot,
    /// The analyzed world: data plane + BDD forwarding graph.
    pub analysis: Analysis,
    /// Abandoned work and the limit that tripped, when the upload's
    /// governor cut the analysis short.
    pub partial: Option<(Vec<String>, Exhaustion)>,
    /// Monotone upload sequence number (eviction order).
    pub seq: u64,
}

/// Why an upload was refused.
#[derive(Debug)]
pub enum StoreError {
    /// The pipeline returned a typed error (empty snapshot, internal).
    Analysis(Error),
    /// The store is at capacity and eviction is disabled.
    Full,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Analysis(e) => write!(f, "analysis failed: {e}"),
            StoreError::Full => write!(f, "snapshot store full"),
        }
    }
}

/// The shared store. Cheap to clone (internally `Arc`).
#[derive(Clone)]
pub struct SnapshotStore {
    inner: Arc<Inner>,
}

/// A map entry: the locked snapshot plus the metadata the store needs
/// for eviction and listing. That metadata is immutable after insert
/// and lives *outside* the per-snapshot mutex on purpose: a governed
/// query can hold a snapshot's lock for its whole deadline, and neither
/// eviction nor `list()` may block on that while holding the map lock
/// (doing so would stall every `get()` — i.e. all request routing).
struct Entry {
    seq: u64,
    devices: usize,
    quarantined: usize,
    partial: bool,
    snap: Arc<Mutex<StoredSnapshot>>,
}

struct Inner {
    snapshots: Mutex<BTreeMap<String, Entry>>,
    seq: AtomicU64,
    capacity: usize,
}

/// One row of `GET /snapshots`.
pub struct SnapshotInfo {
    /// Store key.
    pub name: String,
    /// Healthy device count.
    pub devices: usize,
    /// Quarantined-device count.
    pub quarantined: usize,
    /// Did the upload's budget trip?
    pub partial: bool,
    /// Upload sequence number.
    pub seq: u64,
}

impl SnapshotStore {
    /// A store holding at most `capacity` snapshots (minimum 1); the
    /// oldest is evicted to admit a new one.
    pub fn new(capacity: usize) -> SnapshotStore {
        SnapshotStore {
            inner: Arc::new(Inner {
                snapshots: Mutex::new(BTreeMap::new()),
                seq: AtomicU64::new(0),
                capacity: capacity.max(1),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Entry>> {
        self.inner
            .snapshots
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Parses, analyzes (under `gov`), and stores a snapshot. Replaces
    /// any snapshot of the same name; evicts the oldest at capacity.
    /// Returns the stored entry (for summarizing in the response).
    pub fn insert(
        &self,
        name: &str,
        configs: Vec<(String, String)>,
        gov: &ResourceGovernor,
    ) -> Result<Arc<Mutex<StoredSnapshot>>, StoreError> {
        let snapshot = Snapshot::from_configs(configs);
        let outcome = snapshot
            .analyze_resilient(&SimOptions::default(), 1, gov)
            .map_err(StoreError::Analysis)?;
        let (analysis, partial) = match outcome {
            Outcome::Complete(a) => (a, None),
            Outcome::Partial {
                completed,
                abandoned,
                why,
            } => (completed, Some((abandoned, why))),
        };
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = Entry {
            seq,
            devices: analysis.devices.len(),
            quarantined: snapshot.quarantined.len(),
            partial: partial.is_some(),
            snap: Arc::new(Mutex::new(StoredSnapshot {
                name: name.to_string(),
                snapshot,
                analysis,
                partial,
                seq,
            })),
        };
        let stored = Arc::clone(&entry.snap);
        let mut map = self.lock();
        if !map.contains_key(name) && map.len() >= self.inner.capacity {
            // Eviction order comes from Entry.seq alone — never from
            // inside a snapshot's mutex, which a query may hold for its
            // whole deadline.
            let oldest = map
                .iter()
                .min_by_key(|(_, e)| e.seq)
                .map(|(k, _)| k.clone());
            if let Some(k) = oldest {
                map.remove(&k);
                batnet_obs::counter_add("serve.store.evicted", 1);
                batnet_obs::event("store-evict", &k, "capacity");
            }
        }
        map.insert(name.to_string(), entry);
        batnet_obs::gauge_set("serve.store.snapshots", map.len() as f64);
        Ok(stored)
    }

    /// Looks a snapshot up by name.
    pub fn get(&self, name: &str) -> Option<Arc<Mutex<StoredSnapshot>>> {
        self.lock().get(name).map(|e| Arc::clone(&e.snap))
    }

    /// Summaries of everything stored, in name order. Reads only the
    /// map-level metadata — a long-held snapshot lock cannot stall it.
    pub fn list(&self) -> Vec<SnapshotInfo> {
        self.lock()
            .iter()
            .map(|(name, e)| SnapshotInfo {
                name: name.clone(),
                devices: e.devices,
                quarantined: e.quarantined,
                partial: e.partial,
                seq: e.seq,
            })
            .collect()
    }

    /// Stored snapshot count.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Builds and inserts a suite network (server warm-up, benches,
    /// smoke tests). Unknown ids return `None`.
    pub fn prewarm(&self, net_id: &str) -> Option<Arc<Mutex<StoredSnapshot>>> {
        let entry = batnet_topogen::suite::suite()
            .into_iter()
            .find(|e| e.id.eq_ignore_ascii_case(net_id))?;
        let net = (entry.build)();
        self.insert(entry.id, net.configs, &ResourceGovernor::unlimited())
            .ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_router_configs() -> Vec<(String, String)> {
        vec![
            (
                "r1".into(),
                "hostname r1\ninterface hosts\n ip address 10.1.0.1/24\ninterface core\n ip address 172.16.0.1/31\nip route 10.2.0.0/24 172.16.0.0\n".into(),
            ),
            (
                "r2".into(),
                "hostname r2\ninterface core\n ip address 172.16.0.0/31\ninterface servers\n ip address 10.2.0.1/24\nip route 10.1.0.0/24 172.16.0.1\n".into(),
            ),
        ]
    }

    #[test]
    fn insert_get_list_roundtrip() {
        let store = SnapshotStore::new(4);
        store
            .insert("a", two_router_configs(), &ResourceGovernor::unlimited())
            .expect("insert");
        assert_eq!(store.len(), 1);
        let got = store.get("a").expect("stored");
        let g = got.lock().unwrap();
        assert_eq!(g.analysis.devices.len(), 2);
        assert!(g.partial.is_none());
        drop(g);
        let list = store.list();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].name, "a");
        assert_eq!(list[0].devices, 2);
        assert!(store.get("missing").is_none());
    }

    #[test]
    fn empty_upload_is_typed_error() {
        let store = SnapshotStore::new(4);
        let err = store
            .insert("empty", vec![], &ResourceGovernor::unlimited())
            .err()
            .expect("no devices");
        assert!(matches!(err, StoreError::Analysis(Error::EmptySnapshot)));
        assert!(store.is_empty());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let store = SnapshotStore::new(2);
        for name in ["a", "b", "c"] {
            store
                .insert(name, two_router_configs(), &ResourceGovernor::unlimited())
                .expect("insert");
        }
        assert_eq!(store.len(), 2);
        assert!(store.get("a").is_none(), "oldest evicted");
        assert!(store.get("b").is_some());
        assert!(store.get("c").is_some());
    }

    #[test]
    fn eviction_and_list_never_need_a_held_snapshot_lock() {
        let store = SnapshotStore::new(2);
        store
            .insert("a", two_router_configs(), &ResourceGovernor::unlimited())
            .unwrap();
        store
            .insert("b", two_router_configs(), &ResourceGovernor::unlimited())
            .unwrap();
        // A governed query holds "a"'s lock for its whole deadline;
        // eviction and listing must proceed regardless (with eviction
        // order read under the snapshot lock, this test deadlocks).
        let a = store.get("a").expect("stored");
        let _query = a.lock().unwrap();
        store
            .insert("c", two_router_configs(), &ResourceGovernor::unlimited())
            .expect("insert must not block on the held snapshot");
        assert!(store.get("a").is_none(), "oldest evicted even while locked");
        let list = store.list();
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn reupload_replaces_without_eviction() {
        let store = SnapshotStore::new(2);
        store
            .insert("a", two_router_configs(), &ResourceGovernor::unlimited())
            .unwrap();
        store
            .insert("b", two_router_configs(), &ResourceGovernor::unlimited())
            .unwrap();
        store
            .insert("a", two_router_configs(), &ResourceGovernor::unlimited())
            .unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.get("b").is_some(), "replacement must not evict");
    }
}
