//! FIB construction: main RIB → forwarding table.
//!
//! The FIB is what both analysis engines consume: for every prefix, the
//! resolved action — deliver onto a connected interface (with the concrete
//! ARP next hop), forward out an interface towards a gateway, or drop.
//! Resolution is recursive: a BGP route's next hop may itself resolve
//! through an IGP route, which resolves to a connected interface.

use crate::error::RoutingError;
use crate::rib::MainRib;
use crate::routes::{MainNextHop, MainRoute};
use batnet_net::{Ip, Prefix};
use std::collections::BTreeSet;

/// Maximum recursive-resolution depth; beyond this the route is considered
/// unresolvable (defensive: rib-internal next-hop cycles).
const MAX_RESOLUTION_DEPTH: usize = 8;

/// A fully resolved next hop.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FibNextHop {
    /// Egress interface.
    pub iface: String,
    /// The IP the packet is handed to: the gateway for forwarded traffic,
    /// or `None` when the destination itself is on the connected subnet.
    pub gateway: Option<Ip>,
}

/// What happens to packets matching a FIB entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FibAction {
    /// Forward out one of these next hops (ECMP set, deterministic order).
    Forward(Vec<FibNextHop>),
    /// Drop: explicit discard route.
    Discard,
    /// Drop: the route's next hop could not be resolved.
    Unresolved,
}

/// One FIB entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FibEntry {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Resolved action.
    pub action: FibAction,
    /// The protocol of the winning RIB route (annotation for traceroute
    /// output and violation explanations, §4.4.3).
    pub protocol: batnet_config::vi::RouteProtocol,
}

impl FibEntry {
    /// The ECMP next-hop set, or a typed error when the entry does not
    /// forward. Callers that previously pattern-matched and panicked on
    /// "unexpected action" states use this instead.
    pub fn forward_hops(&self) -> Result<&[FibNextHop], RoutingError> {
        match &self.action {
            FibAction::Forward(hops) => Ok(hops),
            FibAction::Discard => Err(RoutingError::NotForwarding {
                prefix: self.prefix,
                action: "discard",
            }),
            FibAction::Unresolved => Err(RoutingError::NotForwarding {
                prefix: self.prefix,
                action: "unresolved",
            }),
        }
    }
}

/// A device's forwarding table.
#[derive(Clone, Debug, Default)]
pub struct Fib {
    entries: Vec<FibEntry>,
}

impl Fib {
    /// Builds the FIB from a main RIB by resolving every best route.
    pub fn build(rib: &MainRib) -> Fib {
        let mut entries = Vec::new();
        for (prefix, routes) in rib.iter_best() {
            let Some(first) = routes.first() else { continue };
            let mut hops: BTreeSet<FibNextHop> = BTreeSet::new();
            let mut discard = false;
            for r in routes {
                match resolve(rib, r, 0) {
                    Resolution::Hops(h) => hops.extend(h),
                    Resolution::Discard => discard = true,
                    Resolution::Unresolved => {}
                }
            }
            let action = if !hops.is_empty() {
                FibAction::Forward(hops.into_iter().collect())
            } else if discard {
                FibAction::Discard
            } else {
                FibAction::Unresolved
            };
            entries.push(FibEntry {
                prefix: *prefix,
                action,
                protocol: first.protocol,
            });
        }
        Fib { entries }
    }

    /// Longest-prefix-match lookup with a typed miss: like
    /// [`Fib::lookup`] but a missing entry is a [`RoutingError::NoRoute`]
    /// rather than `None`, for callers that treat a miss as a failure.
    pub fn resolve(&self, ip: Ip) -> Result<&FibEntry, RoutingError> {
        self.lookup(ip).ok_or(RoutingError::NoRoute { dst: ip })
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, ip: Ip) -> Option<&FibEntry> {
        // Entries are in prefix order; LPM via linear scan would be O(n).
        // Instead exploit that entries are sorted by (network, len): find
        // the candidates by probing each length, like the RIB does.
        for len in (0..=32u8).rev() {
            let p = Prefix::new(ip, len);
            if let Ok(i) = self.entries.binary_search_by(|e| e.prefix.cmp(&p)) {
                return Some(&self.entries[i]);
            }
        }
        None
    }

    /// All entries in prefix order.
    pub fn entries(&self) -> &[FibEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

enum Resolution {
    Hops(Vec<FibNextHop>),
    Discard,
    Unresolved,
}

fn resolve(rib: &MainRib, route: &MainRoute, depth: usize) -> Resolution {
    if depth > MAX_RESOLUTION_DEPTH {
        return Resolution::Unresolved;
    }
    match &route.next_hop {
        MainNextHop::Discard => Resolution::Discard,
        MainNextHop::Connected { iface } => Resolution::Hops(vec![FibNextHop {
            iface: iface.clone(),
            gateway: None,
        }]),
        MainNextHop::Via(gw) => {
            let Some((p, routes)) = rib.lookup(*gw) else {
                return Resolution::Unresolved;
            };
            // Guard against self-referential resolution (a route resolving
            // through itself).
            if p == route.prefix && routes.iter().any(|r| r == route) && depth > 0 {
                return Resolution::Unresolved;
            }
            let mut hops = Vec::new();
            let mut discard = false;
            for r in routes {
                match resolve(rib, r, depth + 1) {
                    Resolution::Hops(h) => {
                        for mut hop in h {
                            // The ARP target is the innermost gateway that
                            // sits on a connected subnet: only the deepest
                            // Via before a Connected route sets it.
                            if hop.gateway.is_none() {
                                hop.gateway = Some(*gw);
                            }
                            hops.push(hop);
                        }
                    }
                    Resolution::Discard => discard = true,
                    Resolution::Unresolved => {}
                }
            }
            if !hops.is_empty() {
                Resolution::Hops(hops)
            } else if discard {
                Resolution::Discard
            } else {
                Resolution::Unresolved
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::vi::RouteProtocol;

    fn connected(p: &str, iface: &str) -> MainRoute {
        MainRoute {
            prefix: p.parse().unwrap(),
            admin_distance: 0,
            metric: 0,
            protocol: RouteProtocol::Connected,
            next_hop: MainNextHop::Connected { iface: iface.into() },
        }
    }

    fn via(p: &str, ad: u8, proto: RouteProtocol, gw: &str) -> MainRoute {
        MainRoute {
            prefix: p.parse().unwrap(),
            admin_distance: ad,
            metric: 0,
            protocol: proto,
            next_hop: MainNextHop::Via(gw.parse().unwrap()),
        }
    }

    #[test]
    fn connected_entry_has_no_gateway() -> Result<(), RoutingError> {
        let mut rib = MainRib::new();
        rib.offer(connected("10.0.0.0/24", "e1"));
        let fib = Fib::build(&rib);
        let hops = fib.resolve("10.0.0.7".parse().unwrap())?.forward_hops()?;
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].iface, "e1");
        assert_eq!(hops[0].gateway, None);
        Ok(())
    }

    #[test]
    fn recursive_resolution_keeps_first_gateway() {
        let mut rib = MainRib::new();
        rib.offer(connected("10.0.0.0/24", "e1"));
        // Static to 10.9/16 via 10.0.0.2 (on the connected subnet).
        rib.offer(via("10.9.0.0/16", 1, RouteProtocol::Static, "10.0.0.2"));
        // BGP route whose next hop resolves through the static route.
        rib.offer(via("172.16.0.0/12", 20, RouteProtocol::Ebgp, "10.9.1.1"));
        let fib = Fib::build(&rib);
        let e = fib.resolve("172.16.5.5".parse().unwrap()).expect("entry");
        let hops = e.forward_hops().expect("forwarding entry");
        assert_eq!(hops[0].iface, "e1");
        // Gateway = the hop on the connected subnet (the ARP target):
        // 10.0.0.2, not the BGP next hop 10.9.1.1.
        assert_eq!(hops[0].gateway, Some("10.0.0.2".parse().unwrap()));
        assert_eq!(e.protocol, RouteProtocol::Ebgp);
    }

    #[test]
    fn discard_route() {
        let mut rib = MainRib::new();
        rib.offer(MainRoute {
            prefix: "0.0.0.0/0".parse().unwrap(),
            admin_distance: 250,
            metric: 0,
            protocol: RouteProtocol::Static,
            next_hop: MainNextHop::Discard,
        });
        let fib = Fib::build(&rib);
        let e = fib.lookup("8.8.8.8".parse().unwrap()).unwrap();
        assert_eq!(e.action, FibAction::Discard);
    }

    #[test]
    fn unresolvable_next_hop() {
        let mut rib = MainRib::new();
        rib.offer(via("10.9.0.0/16", 1, RouteProtocol::Static, "192.168.1.1"));
        let fib = Fib::build(&rib);
        let e = fib.lookup("10.9.0.1".parse().unwrap()).unwrap();
        assert_eq!(e.action, FibAction::Unresolved);
    }

    #[test]
    fn ecmp_hops_merged() {
        let mut rib = MainRib::new();
        rib.offer(connected("10.0.0.0/31", "e1"));
        rib.offer(connected("10.0.1.0/31", "e2"));
        rib.offer(via("10.9.0.0/16", 110, RouteProtocol::Ospf, "10.0.0.1"));
        rib.offer(via("10.9.0.0/16", 110, RouteProtocol::Ospf, "10.0.1.1"));
        let fib = Fib::build(&rib);
        let hops = fib
            .resolve("10.9.0.1".parse().unwrap())
            .and_then(|e| e.forward_hops())
            .expect("ECMP entry");
        assert_eq!(hops.len(), 2);
        let ifaces: Vec<_> = hops.iter().map(|h| h.iface.as_str()).collect();
        assert_eq!(ifaces, vec!["e1", "e2"]);
    }

    #[test]
    fn lpm_on_fib() {
        let mut rib = MainRib::new();
        rib.offer(connected("10.0.0.0/24", "e1"));
        rib.offer(connected("10.0.0.128/25", "e2"));
        let fib = Fib::build(&rib);
        let iface_of = |ip: &str| -> Result<String, RoutingError> {
            let hops = fib.resolve(ip.parse().expect("ip"))?.forward_hops()?;
            Ok(hops[0].iface.clone())
        };
        assert_eq!(iface_of("10.0.0.200").expect("routed"), "e2");
        assert_eq!(iface_of("10.0.0.5").expect("routed"), "e1");
        assert!(matches!(
            iface_of("9.9.9.9"),
            Err(RoutingError::NoRoute { .. })
        ));
    }

    #[test]
    fn resolution_cycle_detected() {
        let mut rib = MainRib::new();
        // Two routes resolving through each other (config pathology).
        rib.offer(via("10.1.0.0/16", 1, RouteProtocol::Static, "10.2.0.1"));
        rib.offer(via("10.2.0.0/16", 1, RouteProtocol::Static, "10.1.0.1"));
        let fib = Fib::build(&rib);
        for e in fib.entries() {
            assert_eq!(e.action, FibAction::Unresolved, "{e:?}");
        }
    }
}
