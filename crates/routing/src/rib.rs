//! The main RIB and RIB deltas.
//!
//! The main RIB holds *all* candidate routes per prefix and answers
//! queries with the best set — best by administrative distance, then
//! metric, with ECMP when both tie. Keeping the losing candidates matters:
//! when BGP withdraws a route mid-fixed-point, the displaced OSPF or
//! static route must take over without recomputation.
//!
//! [`RibDelta`] is the unit of exchange in the pull-based BGP fixed point
//! (§4.1.3): receivers pull a neighbor's delta instead of the neighbor
//! pushing copies onto per-session queues.

use crate::routes::{MainNextHop, MainRoute};
use batnet_config::vi::RouteProtocol;
use batnet_net::{Ip, Prefix};
use std::collections::BTreeMap;

/// A device's main RIB.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MainRib {
    /// All candidate routes per prefix, kept sorted by
    /// `(admin_distance, metric, next_hop)` so the best set is the leading
    /// run and iteration order is deterministic.
    routes: BTreeMap<Prefix, Vec<MainRoute>>,
}

fn sort_key(r: &MainRoute) -> (u8, u32, MainNextHop) {
    (r.admin_distance, r.metric, r.next_hop.clone())
}

impl MainRib {
    /// An empty RIB.
    pub fn new() -> MainRib {
        MainRib::default()
    }

    /// Adds a candidate route (duplicates ignored). Returns true when the
    /// *best set* for the prefix changed.
    pub fn offer(&mut self, route: MainRoute) -> bool {
        let slot = self.routes.entry(route.prefix).or_default();
        if slot.contains(&route) {
            return false;
        }
        let old_best = best_key(slot);
        let new_key = (route.admin_distance, route.metric);
        let pos = slot
            .binary_search_by_key(&sort_key(&route), sort_key)
            .unwrap_or_else(|p| p);
        slot.insert(pos, route);
        // The best set changed iff the new route entered it: its key is at
        // least as good as the previous best (or there was none).
        match old_best {
            None => true,
            Some(k) => new_key <= k,
        }
    }

    /// Removes all routes for `prefix` from `protocol`. Returns true when
    /// any route was removed.
    pub fn withdraw(&mut self, prefix: Prefix, protocol: RouteProtocol) -> bool {
        let Some(slot) = self.routes.get_mut(&prefix) else {
            return false;
        };
        let before = slot.len();
        slot.retain(|r| r.protocol != protocol);
        let changed = slot.len() != before;
        if slot.is_empty() {
            self.routes.remove(&prefix);
        }
        changed
    }

    /// The ECMP best set for an exact prefix (all candidates sharing the
    /// lowest `(admin_distance, metric)`).
    pub fn best(&self, prefix: &Prefix) -> &[MainRoute] {
        let Some(slot) = self.routes.get(prefix) else {
            return &[];
        };
        best_run(slot)
    }

    /// All candidate routes for an exact prefix (best first).
    pub fn candidates(&self, prefix: &Prefix) -> &[MainRoute] {
        self.routes.get(prefix).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Longest-prefix-match lookup: the ECMP best set for the most
    /// specific prefix covering `ip`.
    pub fn lookup(&self, ip: Ip) -> Option<(Prefix, &[MainRoute])> {
        // Walk candidate prefixes from /32 down to /0: O(33 log n).
        for len in (0..=32u8).rev() {
            let p = Prefix::new(ip, len);
            if let Some(slot) = self.routes.get(&p) {
                if !slot.is_empty() {
                    return Some((p, best_run(slot)));
                }
            }
        }
        None
    }

    /// Iterates `(prefix, best set)` in prefix order.
    pub fn iter_best(&self) -> impl Iterator<Item = (&Prefix, &[MainRoute])> {
        self.routes.iter().map(|(p, v)| (p, best_run(v)))
    }

    /// Number of prefixes with at least one route.
    pub fn prefix_count(&self) -> usize {
        self.routes.len()
    }

    /// Number of best-set entries across prefixes (the paper's Table 1
    /// "routes" figure counts these across devices).
    pub fn route_count(&self) -> usize {
        self.routes.values().map(|v| best_run(v).len()).sum()
    }
}

fn best_key(slot: &[MainRoute]) -> Option<(u8, u32)> {
    slot.first().map(|r| (r.admin_distance, r.metric))
}

fn best_run(slot: &[MainRoute]) -> &[MainRoute] {
    let Some(k) = best_key(slot) else {
        return &[];
    };
    let end = slot
        .iter()
        .position(|r| (r.admin_distance, r.metric) != k)
        .unwrap_or(slot.len());
    &slot[..end]
}

/// Changes to a set of best routes during one sweep: the exchange unit of
/// the pull model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RibDelta<R> {
    /// Routes that became best this sweep.
    pub added: Vec<R>,
    /// Prefixes whose previous best stopped being best this sweep.
    pub removed: Vec<Prefix>,
}

impl<R> Default for RibDelta<R> {
    fn default() -> Self {
        RibDelta {
            added: Vec::new(),
            removed: Vec::new(),
        }
    }
}

impl<R> RibDelta<R> {
    /// No changes?
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Number of changes carried.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Drops all changes.
    pub fn clear(&mut self) {
        self.added.clear();
        self.removed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(p: &str, ad: u8, metric: u32, proto: RouteProtocol, nh: &str) -> MainRoute {
        MainRoute {
            prefix: p.parse().unwrap(),
            admin_distance: ad,
            metric,
            protocol: proto,
            next_hop: MainNextHop::Via(nh.parse().unwrap()),
        }
    }

    #[test]
    fn better_ad_wins_but_loser_retained() {
        let mut rib = MainRib::new();
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        rib.offer(route("10.0.0.0/8", 110, 20, RouteProtocol::Ospf, "1.1.1.1"));
        rib.offer(route("10.0.0.0/8", 20, 0, RouteProtocol::Ebgp, "2.2.2.2"));
        assert_eq!(rib.best(&p).len(), 1);
        assert_eq!(rib.best(&p)[0].protocol, RouteProtocol::Ebgp);
        assert_eq!(rib.candidates(&p).len(), 2);
        // Withdrawing BGP restores the OSPF route as best.
        assert!(rib.withdraw(p, RouteProtocol::Ebgp));
        assert_eq!(rib.best(&p)[0].protocol, RouteProtocol::Ospf);
    }

    #[test]
    fn equal_cost_joins_ecmp() {
        let mut rib = MainRib::new();
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        rib.offer(route("10.0.0.0/8", 110, 20, RouteProtocol::Ospf, "1.1.1.1"));
        rib.offer(route("10.0.0.0/8", 110, 20, RouteProtocol::Ospf, "1.1.1.2"));
        assert_eq!(rib.best(&p).len(), 2);
        // Duplicate offer is a no-op.
        assert!(!rib.offer(route("10.0.0.0/8", 110, 20, RouteProtocol::Ospf, "1.1.1.2")));
        assert_eq!(rib.route_count(), 2);
        assert_eq!(rib.prefix_count(), 1);
        // Worse route joins candidates but not the best set.
        rib.offer(route("10.0.0.0/8", 110, 30, RouteProtocol::Ospf, "1.1.1.3"));
        assert_eq!(rib.best(&p).len(), 2);
        assert_eq!(rib.candidates(&p).len(), 3);
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut rib = MainRib::new();
        rib.offer(route("10.0.0.0/8", 1, 0, RouteProtocol::Static, "1.1.1.1"));
        rib.offer(route("10.1.0.0/16", 1, 0, RouteProtocol::Static, "2.2.2.2"));
        rib.offer(route("0.0.0.0/0", 1, 0, RouteProtocol::Static, "3.3.3.3"));
        let (p, routes) = rib.lookup("10.1.2.3".parse().unwrap()).unwrap();
        assert_eq!(p.to_string(), "10.1.0.0/16");
        assert_eq!(routes[0].next_hop, MainNextHop::Via("2.2.2.2".parse().unwrap()));
        let (p, _) = rib.lookup("10.9.0.1".parse().unwrap()).unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/8");
        let (p, _) = rib.lookup("192.168.1.1".parse().unwrap()).unwrap();
        assert_eq!(p.to_string(), "0.0.0.0/0");
    }

    #[test]
    fn lookup_without_default_can_miss() {
        let mut rib = MainRib::new();
        rib.offer(route("10.0.0.0/8", 1, 0, RouteProtocol::Static, "1.1.1.1"));
        assert!(rib.lookup("192.168.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn withdraw_missing_is_noop() {
        let mut rib = MainRib::new();
        assert!(!rib.withdraw("10.0.0.0/8".parse().unwrap(), RouteProtocol::Ebgp));
    }

    #[test]
    fn delta_basics() {
        let mut d: RibDelta<u32> = RibDelta::default();
        assert!(d.is_empty());
        d.added.push(1);
        d.removed.push("10.0.0.0/8".parse().unwrap());
        assert_eq!(d.len(), 2);
        d.clear();
        assert!(d.is_empty());
    }
}
