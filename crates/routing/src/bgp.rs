//! BGP: session establishment, export/import policy, and the pull-based
//! sweep machinery.
//!
//! ## The pull model (§4.1.3)
//!
//! Every node keeps, besides its adj-RIB-in and best routes, exactly two
//! deltas: the changes to its best set during the *previous* sweep
//! (`delta_prev`) and during the *current* sweep (`delta_cur`). A receiver
//! processing in sweep *k* pulls from each established session's peer:
//!
//! * if the peer has already run this sweep (lower color), the receiver
//!   consumes `delta_prev` **then** `delta_cur` — the peer's most recent
//!   changes, Gauss–Seidel style;
//! * otherwise it consumes `delta_prev` only.
//!
//! Over-delivery (a delta seen twice across sweeps) is harmless because
//! deltas are applied as prefix-level upserts in order, and an identical
//! re-announcement keeps the incumbent's arrival clock (so no churn).
//! At sweep end each node rotates `delta_prev ← delta_cur`.
//!
//! ## Session establishment (§4.1.1)
//!
//! A session comes up only when both ends are configured consistently
//! (matching peer addresses and AS numbers), the peer address is reachable
//! in the partial data plane, and no interface ACL on the path's first hop
//! blocks BGP's TCP port — the paper's example of control-plane state
//! depending on data-plane state. Sessions are re-evaluated after the BGP
//! fixed point; if viability changed, the computation re-runs.

use crate::rib::{MainRib, RibDelta};
use crate::routes::{BgpRoute, MainNextHop, PeerKey};
use batnet_config::vi::{
    Device, PolicyResult, RouteAttrs, RouteProtocol,
};
use batnet_net::{Asn, Flow, Interner, Ip, Prefix};
use std::collections::BTreeMap;

/// One direction of a configured BGP session on a device.
#[derive(Clone, Debug)]
pub struct Session {
    /// Index of the neighbor entry in the device's `BgpProcess`.
    pub neighbor_idx: usize,
    /// The configured peer address (where updates come from).
    pub peer_ip: Ip,
    /// Our address the peer talks to (the session source).
    pub local_ip: Ip,
    /// Peer device index, or `None` for an environment (external) peer.
    pub peer_device: Option<usize>,
    /// Index of the *peer's* neighbor entry pointing back at us (the entry
    /// whose export policy governs what we receive). `None` for external
    /// peers.
    pub peer_neighbor_idx: Option<usize>,
    /// Peer AS.
    pub remote_as: Asn,
    /// Is the session currently considered established?
    pub established: bool,
}

impl Session {
    /// Is this an eBGP session for a device in AS `local_as`?
    pub fn is_ebgp(&self, local_as: Asn) -> bool {
        self.remote_as != local_as
    }
}

/// Per-device BGP state.
#[derive(Clone, Debug, Default)]
pub struct BgpNode {
    /// Local AS (0 when the device does not run BGP).
    pub asn: Asn,
    /// Router id used in advertisements.
    pub router_id: Ip,
    /// Sessions in deterministic (config) order.
    pub sessions: Vec<Session>,
    /// Adj-RIB-in: best route per (prefix, sending peer). `PeerKey::Local`
    /// holds locally originated routes.
    pub rib_in: BTreeMap<Prefix, BTreeMap<PeerKey, BgpRoute>>,
    /// Selected best route per prefix.
    pub best: BTreeMap<Prefix, BgpRoute>,
    /// Best-set changes during the previous sweep (pulled by peers).
    pub delta_prev: RibDelta<BgpRoute>,
    /// Best-set changes during the current sweep.
    pub delta_cur: RibDelta<BgpRoute>,
    /// Lamport-style arrival clock (§4.1.2).
    pub clock: u64,
}

impl BgpNode {
    /// Recomputes the best route for `prefix` from the adj-RIB-in,
    /// updating `best`, the main RIB, and `delta_cur`. `use_clock` selects
    /// the arrival-time tie-break.
    ///
    /// Only the single best route is advertised (standard BGP), but every
    /// route multipath-equivalent to it is installed in the main RIB —
    /// BGP multipath, which DC fabrics rely on for ECMP.
    pub fn reselect(&mut self, prefix: Prefix, main_rib: &mut MainRib, use_clock: bool) {
        let new_best = self
            .rib_in
            .get(&prefix)
            .and_then(|peers| {
                peers
                    .values()
                    .min_by(|a, b| a.decide(b, use_clock))
                    .cloned()
            });
        let old_best = self.best.get(&prefix);
        let best_unchanged = match (&old_best, &new_best) {
            (None, None) => return,
            (Some(o), Some(n)) => o.attrs == n.attrs && o.from == n.from,
            _ => false,
        };
        // The main RIB's ECMP set may change even when the best route is
        // stable (an equivalent path appeared/disappeared), so the RIB
        // contribution is always rebuilt; the advertised delta only moves
        // when the best route itself changes.
        if let Some(old) = old_best {
            main_rib.withdraw(prefix, old.attrs.protocol);
        }
        if let Some(new) = &new_best {
            let multipath: Vec<&BgpRoute> = self
                .rib_in
                .get(&prefix)
                .map(|peers| {
                    peers
                        .values()
                        .filter(|r| r.multipath_equivalent(new))
                        .collect()
                })
                .unwrap_or_default();
            for r in multipath {
                main_rib.offer(main_route_of(r));
            }
        }
        if best_unchanged {
            return;
        }
        if self.best.remove(&prefix).is_some() {
            self.delta_cur.removed.push(prefix);
        }
        if let Some(new) = new_best {
            self.delta_cur.added.push(new.clone());
            self.best.insert(prefix, new);
        }
    }
}

/// The main-RIB view of a BGP best route.
pub fn main_route_of(r: &BgpRoute) -> crate::routes::MainRoute {
    crate::routes::MainRoute {
        prefix: r.attrs.prefix,
        admin_distance: crate::routes::admin_distance(r.attrs.protocol),
        metric: r.attrs.med,
        protocol: r.attrs.protocol,
        next_hop: if r.attrs.next_hop == Ip::ZERO {
            MainNextHop::Discard
        } else {
            MainNextHop::Via(r.attrs.next_hop)
        },
    }
}

/// Discovers the configured sessions of every device: a neighbor statement
/// pairs with the in-snapshot device owning the peer address (when both
/// sides' AS expectations match), or becomes an external session when the
/// environment announces routes on it.
pub fn discover_sessions(
    devices: &[Device],
    external_peers: &BTreeMap<(usize, Ip), Asn>,
) -> Vec<Vec<Session>> {
    // Map interface IP → device index for peer resolution.
    let mut ip_owner: BTreeMap<Ip, usize> = BTreeMap::new();
    for (di, d) in devices.iter().enumerate() {
        for i in d.active_interfaces() {
            if let Some(ip) = i.ip() {
                ip_owner.insert(ip, di);
            }
            for &(ip, _) in &i.secondary_addresses {
                ip_owner.insert(ip, di);
            }
        }
    }
    let mut all = Vec::with_capacity(devices.len());
    for (di, d) in devices.iter().enumerate() {
        let mut sessions = Vec::new();
        if let Some(bgp) = &d.bgp {
            for (ni, nb) in bgp.neighbors.iter().enumerate() {
                match ip_owner.get(&nb.peer_ip) {
                    Some(&pi) if pi != di => {
                        let peer = &devices[pi];
                        let Some(peer_bgp) = &peer.bgp else { continue };
                        // The peer must point back at one of our addresses
                        // with our AS.
                        let reverse = peer_bgp.neighbors.iter().position(|pn| {
                            pn.remote_as == bgp.asn
                                && ip_owner.get(&pn.peer_ip) == Some(&di)
                        });
                        let Some(reverse_idx) = reverse else { continue };
                        // AS expectation must match in our direction too.
                        if nb.remote_as != peer_bgp.asn {
                            continue;
                        }
                        sessions.push(Session {
                            neighbor_idx: ni,
                            peer_ip: nb.peer_ip,
                            local_ip: peer_bgp.neighbors[reverse_idx].peer_ip,
                            peer_device: Some(pi),
                            peer_neighbor_idx: Some(reverse_idx),
                            remote_as: peer_bgp.asn,
                            established: false,
                        });
                    }
                    _ => {
                        // Not owned in-snapshot: external if the
                        // environment speaks on it.
                        if let Some(&peer_as) = external_peers.get(&(di, nb.peer_ip)) {
                            if peer_as == nb.remote_as {
                                // Our session source: the interface on the
                                // peer's subnet.
                                let local_ip = d
                                    .active_interfaces()
                                    .find(|i| {
                                        i.connected_prefix()
                                            .is_some_and(|p| p.contains(nb.peer_ip))
                                    })
                                    .and_then(|i| i.ip())
                                    .unwrap_or(Ip::ZERO);
                                sessions.push(Session {
                                    neighbor_idx: ni,
                                    peer_ip: nb.peer_ip,
                                    local_ip,
                                    peer_device: None,
                                    peer_neighbor_idx: None,
                                    remote_as: peer_as,
                                    established: false,
                                });
                            }
                        }
                    }
                }
            }
        }
        all.push(sessions);
    }
    all
}

/// Can `device` reach `peer_ip` per its current main RIB, and does the
/// first-hop egress ACL permit BGP (TCP/179)? This is the partial-data-
/// plane viability check of §4.1.1. Returns the egress interface when
/// reachable.
pub fn bgp_path_clear(device: &Device, rib: &MainRib, local_ip: Ip, peer_ip: Ip) -> bool {
    // Directly-owned address (loopback peering with self) never happens;
    // find the forwarding interface.
    let Some((_, routes)) = rib.lookup(peer_ip) else {
        return false;
    };
    let Some(first) = routes.first() else { return false };
    let egress_iface = match &first.next_hop {
        MainNextHop::Connected { iface } => Some(iface.clone()),
        MainNextHop::Via(gw) => {
            // One level of resolution is enough for the viability check.
            rib.lookup(*gw).and_then(|(_, rs)| {
                rs.iter().find_map(|r| match &r.next_hop {
                    MainNextHop::Connected { iface } => Some(iface.clone()),
                    _ => None,
                })
            })
        }
        MainNextHop::Discard => None,
    };
    let Some(egress) = egress_iface else { return false };
    // ACL check: the session's TCP SYN towards port 179 must pass the
    // egress interface's outbound ACL. (The peer's inbound ACL is checked
    // from its own side.)
    let flow = Flow::tcp(local_ip, 179, peer_ip, 179);
    if let Some(iface) = device.interfaces.get(&egress) {
        if let Some(acl_name) = &iface.acl_out {
            match device.acls.get(acl_name) {
                Some(acl) => {
                    if !acl.permits(&flow) {
                        return false;
                    }
                }
                // Undefined egress ACL: documented default permit-any (the
                // parser already flagged the reference).
                None => {}
            }
        }
    }
    // Inbound ACL on the interface the peer's traffic arrives on (the same
    // egress interface, since the session is symmetric at this hop).
    let rev = Flow::tcp(peer_ip, 179, local_ip, 179);
    if let Some(iface) = device.interfaces.get(&egress) {
        if let Some(acl_name) = &iface.acl_in {
            if let Some(acl) = device.acls.get(acl_name) {
                if !acl.permits(&rev) {
                    return false;
                }
            }
        }
    }
    true
}

/// The sender-side export transform for one route over one session.
/// Returns `None` when the route must not be advertised.
///
/// Documented defaults (Lesson 3): an export policy referencing an
/// *undefined* route map fails closed (nothing advertised).
pub fn export_route(
    sender: &Device,
    sender_asn: Asn,
    session_is_ebgp: bool,
    session_local_ip: Ip,
    neighbor_idx: usize,
    route: &BgpRoute,
) -> Option<RouteAttrs> {
    // iBGP-learned routes are not re-advertised to iBGP peers (full-mesh
    // rule; route reflection is future work recorded in DESIGN.md).
    if !session_is_ebgp && route.attrs.protocol == RouteProtocol::Ibgp {
        return None;
    }
    let mut attrs: RouteAttrs = (*route.attrs).clone();
    let nb = &sender.bgp.as_ref()?.neighbors[neighbor_idx];
    if let Some(policy) = &nb.export_policy {
        match sender.route_maps.get(policy) {
            Some(rm) => {
                if rm.evaluate(&mut attrs, &sender.prefix_lists, &sender.community_lists)
                    == PolicyResult::Deny
                {
                    return None;
                }
            }
            None => return None, // undefined export policy: fail closed
        }
    }
    if session_is_ebgp {
        attrs.as_path = attrs.as_path.prepend(sender_asn, 1);
        attrs.next_hop = session_local_ip;
        // Local preference is not transitive across AS boundaries.
        attrs.local_pref = 100;
    } else {
        if nb.next_hop_self || attrs.next_hop == Ip::ZERO {
            attrs.next_hop = session_local_ip;
        }
    }
    if !nb.send_community {
        attrs.communities.clear();
    }
    Some(attrs)
}

/// The receiver-side import transform. Returns the interned route ready
/// for the adj-RIB-in, or `None` when rejected.
///
/// Rejections: AS-path loop (own AS present), undefined import route map
/// (fail closed), policy deny, unresolvable next hop.
#[allow(clippy::too_many_arguments)]
pub fn import_route(
    receiver: &Device,
    receiver_asn: Asn,
    session: &Session,
    mut attrs: RouteAttrs,
    sender_router_id: Ip,
    rib: &MainRib,
    pool: &Interner<RouteAttrs>,
    arrival: u64,
) -> Option<BgpRoute> {
    let ebgp = session.is_ebgp(receiver_asn);
    if ebgp && attrs.as_path.contains(receiver_asn) {
        return None; // loop prevention
    }
    attrs.protocol = if ebgp {
        RouteProtocol::Ebgp
    } else {
        RouteProtocol::Ibgp
    };
    let nb = &receiver.bgp.as_ref()?.neighbors[session.neighbor_idx];
    if let Some(policy) = &nb.import_policy {
        match receiver.route_maps.get(policy) {
            Some(rm) => {
                if rm.evaluate(&mut attrs, &receiver.prefix_lists, &receiver.community_lists)
                    == PolicyResult::Deny
                {
                    return None;
                }
            }
            None => return None, // undefined import policy: fail closed
        }
    }
    // Resolve the IGP cost to the next hop against the current partial
    // data plane. Routes with unreachable next hops are unusable.
    let igp_cost = resolve_igp_cost(rib, attrs.next_hop)?;
    Some(BgpRoute {
        attrs: pool.intern(attrs),
        from: PeerKey::Peer(session.peer_ip),
        sender_router_id,
        arrival,
        igp_cost,
    })
}

/// The IGP metric to reach `next_hop`, or `None` when unreachable. A
/// next hop resolved through a BGP route is permitted (recursive
/// resolution) but contributes that route's metric.
pub fn resolve_igp_cost(rib: &MainRib, next_hop: Ip) -> Option<u32> {
    let (_, routes) = rib.lookup(next_hop)?;
    let first = routes.first()?;
    Some(match first.protocol {
        RouteProtocol::Connected => 0,
        _ => first.metric,
    })
}

/// An upsert to a node's adj-RIB-in computed during the parallel phase of
/// a sweep: `None` route means withdraw.
#[derive(Clone, Debug)]
pub struct RibInUpdate {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Sending peer.
    pub peer: PeerKey,
    /// New route, or `None` for withdraw.
    pub route: Option<BgpRoute>,
}

/// Applies an upsert to the adj-RIB-in, preserving the incumbent's arrival
/// clock when an identical route is re-delivered (this is what makes
/// delta over-delivery idempotent). Returns true when the RIB-in changed.
pub fn apply_rib_in(node: &mut BgpNode, update: RibInUpdate) -> bool {
    match update.route {
        None => node
            .rib_in
            .get_mut(&update.prefix)
            .is_some_and(|peers| peers.remove(&update.peer).is_some()),
        Some(route) => {
            let peers = node.rib_in.entry(update.prefix).or_default();
            match peers.get(&update.peer) {
                Some(existing)
                    if existing.attrs == route.attrs
                        && existing.sender_router_id == route.sender_router_id =>
                {
                    false // identical re-delivery: keep incumbent clock
                }
                _ => {
                    peers.insert(update.peer, route);
                    true
                }
            }
        }
    }
}

/// Interning pools shared by a simulation run (§4.1.3). Only the attribute
/// bundle pool is strictly needed for correctness of the idempotency
/// check; the others exist for the memory accounting the A-2 ablation
/// reports.
pub struct BgpPools {
    /// Attribute-bundle pool ("13 properties in one interned object").
    pub attrs: Interner<RouteAttrs>,
}

impl Default for BgpPools {
    fn default() -> Self {
        BgpPools {
            attrs: Interner::new(),
        }
    }
}

/// One interned attribute bundle's approximate heap footprint, used for
/// the bytes-saved estimate. The paper quotes 88 bytes of properties
/// moved into the shared object.
pub const ATTR_BUNDLE_BYTES: usize = 88;

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::vi::{BgpNeighbor, BgpProcess, Interface};

    fn ip(s: &str) -> Ip {
        s.parse().unwrap()
    }

    fn dev_with_bgp(name: &str, asn: u32, addr: &str, peer: &str, peer_as: u32) -> Device {
        let mut d = Device::new(name);
        let mut i = Interface::new("e1");
        i.address = Some((ip(addr), 24));
        d.interfaces.insert("e1".into(), i);
        let mut bgp = BgpProcess::new(Asn(asn));
        bgp.neighbors.push(BgpNeighbor::new(ip(peer), Asn(peer_as)));
        d.bgp = Some(bgp);
        d
    }

    #[test]
    fn sessions_pair_when_consistent() {
        let a = dev_with_bgp("a", 65001, "10.0.0.1", "10.0.0.2", 65002);
        let b = dev_with_bgp("b", 65002, "10.0.0.2", "10.0.0.1", 65001);
        let sessions = discover_sessions(&[a, b], &BTreeMap::new());
        assert_eq!(sessions[0].len(), 1);
        assert_eq!(sessions[1].len(), 1);
        let s = &sessions[0][0];
        assert_eq!(s.peer_device, Some(1));
        assert_eq!(s.local_ip, ip("10.0.0.1"));
        assert_eq!(s.remote_as, Asn(65002));
    }

    #[test]
    fn as_mismatch_blocks_session() {
        let a = dev_with_bgp("a", 65001, "10.0.0.1", "10.0.0.2", 65099); // wrong AS
        let b = dev_with_bgp("b", 65002, "10.0.0.2", "10.0.0.1", 65001);
        let sessions = discover_sessions(&[a, b], &BTreeMap::new());
        assert!(sessions[0].is_empty());
        assert!(sessions[1].is_empty());
    }

    #[test]
    fn external_session_needs_environment() {
        let a = dev_with_bgp("a", 65001, "10.0.0.1", "10.0.0.9", 174);
        // Without an external peer: no session.
        let none = discover_sessions(std::slice::from_ref(&a), &BTreeMap::new());
        assert!(none[0].is_empty());
        // With one: session to the environment.
        let mut ext = BTreeMap::new();
        ext.insert((0usize, ip("10.0.0.9")), Asn(174));
        let some = discover_sessions(&[a], &ext);
        assert_eq!(some[0].len(), 1);
        assert_eq!(some[0][0].peer_device, None);
        assert_eq!(some[0][0].local_ip, ip("10.0.0.1"));
    }

    #[test]
    fn export_prepends_and_rewrites_next_hop_on_ebgp() {
        let sender = dev_with_bgp("a", 65001, "10.0.0.1", "10.0.0.2", 65002);
        let pool = Interner::new();
        let mut attrs = RouteAttrs::new("10.5.0.0/16".parse().unwrap(), RouteProtocol::BgpLocal);
        attrs.local_pref = 300;
        let route = BgpRoute {
            attrs: pool.intern(attrs),
            from: PeerKey::Local,
            sender_router_id: ip("1.1.1.1"),
            arrival: 0,
            igp_cost: 0,
        };
        let out = export_route(&sender, Asn(65001), true, ip("10.0.0.1"), 0, &route).unwrap();
        assert_eq!(out.as_path.0, vec![Asn(65001)]);
        assert_eq!(out.next_hop, ip("10.0.0.1"));
        assert_eq!(out.local_pref, 100, "local-pref not transitive over eBGP");
    }

    #[test]
    fn ibgp_learned_not_reexported_to_ibgp() {
        let sender = dev_with_bgp("a", 65001, "10.0.0.1", "10.0.0.2", 65001);
        let pool = Interner::new();
        let attrs = RouteAttrs::new("10.5.0.0/16".parse().unwrap(), RouteProtocol::Ibgp);
        let route = BgpRoute {
            attrs: pool.intern(attrs),
            from: PeerKey::Peer(ip("9.9.9.9")),
            sender_router_id: ip("1.1.1.1"),
            arrival: 0,
            igp_cost: 0,
        };
        assert!(export_route(&sender, Asn(65001), false, ip("10.0.0.1"), 0, &route).is_none());
        // But eBGP-learned is fine over iBGP.
        let attrs2 = RouteAttrs::new("10.6.0.0/16".parse().unwrap(), RouteProtocol::Ebgp);
        let route2 = BgpRoute {
            attrs: pool.intern(attrs2),
            from: PeerKey::Peer(ip("9.9.9.9")),
            sender_router_id: ip("1.1.1.1"),
            arrival: 0,
            igp_cost: 0,
        };
        assert!(export_route(&sender, Asn(65001), false, ip("10.0.0.1"), 0, &route2).is_some());
    }

    #[test]
    fn undefined_export_policy_fails_closed() {
        let mut sender = dev_with_bgp("a", 65001, "10.0.0.1", "10.0.0.2", 65002);
        sender.bgp.as_mut().unwrap().neighbors[0].export_policy = Some("NOPE".into());
        let pool = Interner::new();
        let attrs = RouteAttrs::new("10.5.0.0/16".parse().unwrap(), RouteProtocol::BgpLocal);
        let route = BgpRoute {
            attrs: pool.intern(attrs),
            from: PeerKey::Local,
            sender_router_id: ip("1.1.1.1"),
            arrival: 0,
            igp_cost: 0,
        };
        assert!(export_route(&sender, Asn(65001), true, ip("10.0.0.1"), 0, &route).is_none());
    }

    #[test]
    fn import_rejects_as_loop_and_unresolved_next_hop() {
        let receiver = dev_with_bgp("b", 65002, "10.0.0.2", "10.0.0.1", 65001);
        let pool = Interner::new();
        let mut rib = MainRib::new();
        rib.offer(crate::routes::MainRoute {
            prefix: "10.0.0.0/24".parse().unwrap(),
            admin_distance: 0,
            metric: 0,
            protocol: RouteProtocol::Connected,
            next_hop: MainNextHop::Connected { iface: "e1".into() },
        });
        let session = Session {
            neighbor_idx: 0,
            peer_ip: ip("10.0.0.1"),
            local_ip: ip("10.0.0.2"),
            peer_device: Some(0),
            peer_neighbor_idx: Some(0),
            remote_as: Asn(65001),
            established: true,
        };
        // Loop: path contains our AS.
        let mut looped = RouteAttrs::new("10.9.0.0/16".parse().unwrap(), RouteProtocol::Ebgp);
        looped.as_path = batnet_net::AsPath(vec![Asn(65001), Asn(65002)]);
        looped.next_hop = ip("10.0.0.1");
        assert!(import_route(&receiver, Asn(65002), &session, looped, ip("1.1.1.1"), &rib, &pool, 1).is_none());
        // Unresolvable next hop.
        let mut unres = RouteAttrs::new("10.9.0.0/16".parse().unwrap(), RouteProtocol::Ebgp);
        unres.as_path = batnet_net::AsPath(vec![Asn(65001)]);
        unres.next_hop = ip("192.168.77.1");
        assert!(import_route(&receiver, Asn(65002), &session, unres, ip("1.1.1.1"), &rib, &pool, 1).is_none());
        // Good route accepted with eBGP defaults applied.
        let mut good = RouteAttrs::new("10.9.0.0/16".parse().unwrap(), RouteProtocol::Ebgp);
        good.as_path = batnet_net::AsPath(vec![Asn(65001)]);
        good.next_hop = ip("10.0.0.1");
        let r = import_route(&receiver, Asn(65002), &session, good, ip("1.1.1.1"), &rib, &pool, 7).unwrap();
        assert_eq!(r.igp_cost, 0, "connected next hop");
        assert_eq!(r.arrival, 7);
        assert_eq!(r.attrs.protocol, RouteProtocol::Ebgp);
    }

    #[test]
    fn rib_in_keeps_incumbent_clock_on_identical_redelivery() {
        let pool: Interner<RouteAttrs> = Interner::new();
        let mut node = BgpNode::default();
        let attrs = pool.intern(RouteAttrs::new("10.0.0.0/8".parse().unwrap(), RouteProtocol::Ebgp));
        let peer = PeerKey::Peer(ip("10.0.0.1"));
        let r1 = BgpRoute {
            attrs: attrs.clone(),
            from: peer,
            sender_router_id: ip("1.1.1.1"),
            arrival: 1,
            igp_cost: 0,
        };
        assert!(apply_rib_in(
            &mut node,
            RibInUpdate { prefix: r1.attrs.prefix, peer, route: Some(r1.clone()) }
        ));
        // Re-delivery with a later clock must NOT replace the incumbent.
        let r2 = BgpRoute { arrival: 99, ..r1.clone() };
        assert!(!apply_rib_in(
            &mut node,
            RibInUpdate { prefix: r1.attrs.prefix, peer, route: Some(r2) }
        ));
        assert_eq!(node.rib_in[&r1.attrs.prefix][&peer].arrival, 1);
        // Withdraw works.
        assert!(apply_rib_in(
            &mut node,
            RibInUpdate { prefix: r1.attrs.prefix, peer, route: None }
        ));
        assert!(!apply_rib_in(
            &mut node,
            RibInUpdate { prefix: r1.attrs.prefix, peer, route: None }
        ));
    }

    #[test]
    fn path_clear_respects_acls() {
        use batnet_config::vi::{Acl, AclAction, AclLine};
        use batnet_net::HeaderSpace;
        let mut d = dev_with_bgp("a", 65001, "10.0.0.1", "10.0.0.2", 65002);
        let mut rib = MainRib::new();
        rib.offer(crate::routes::MainRoute {
            prefix: "10.0.0.0/24".parse().unwrap(),
            admin_distance: 0,
            metric: 0,
            protocol: RouteProtocol::Connected,
            next_hop: MainNextHop::Connected { iface: "e1".into() },
        });
        assert!(bgp_path_clear(&d, &rib, ip("10.0.0.1"), ip("10.0.0.2")));
        // Block TCP/179 outbound: session must fail.
        d.acls.insert(
            "NOBGP".into(),
            Acl {
                name: "NOBGP".into(),
                lines: vec![AclLine {
                    seq: 10,
                    action: AclAction::Deny,
                    space: HeaderSpace::any().protocol(batnet_net::IpProtocol::Tcp).dst_port(179),
                    text: "deny tcp any any eq 179".into(),
                }],
                ..Acl::default()
            },
        );
        d.interfaces.get_mut("e1").unwrap().acl_out = Some("NOBGP".into());
        assert!(!bgp_path_clear(&d, &rib, ip("10.0.0.1"), ip("10.0.0.2")));
        // Unreachable peer also fails.
        assert!(!bgp_path_clear(&d, &rib, ip("10.0.0.1"), ip("192.168.9.9")));
    }
}
