//! The simulation environment: inputs beyond the configurations.
//!
//! The paper (§2, Stage 2): *"the environment … included link states
//! (up/down) and routing messages from external neighbors."* Both survive
//! into the evolved engine: an [`Environment`] can fail links and inject
//! eBGP announcements from peers outside the snapshot (transit providers,
//! route servers), which is how the generated WAN/enterprise networks get
//! their default and Internet routes.

use batnet_net::{AsPath, Asn, Community, Ip, Prefix};

/// A BGP announcement arriving from a peer that is not part of the
/// snapshot (e.g. a transit provider).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExternalAnnouncement {
    /// Device in the snapshot that receives the announcement.
    pub device: String,
    /// The configured neighbor the announcement arrives on. The device
    /// must have a `BgpNeighbor` with this peer address; the announcement
    /// is processed through that neighbor's import policy.
    pub peer_ip: Ip,
    /// Announced prefix.
    pub prefix: Prefix,
    /// AS path as sent by the peer (its own AS first).
    pub as_path: AsPath,
    /// MED.
    pub med: u32,
    /// Communities attached by the peer.
    pub communities: Vec<Community>,
}

impl ExternalAnnouncement {
    /// A plain announcement of `prefix` from `peer_as` at `peer_ip`.
    pub fn simple(device: impl Into<String>, peer_ip: Ip, peer_as: Asn, prefix: Prefix) -> Self {
        ExternalAnnouncement {
            device: device.into(),
            peer_ip,
            prefix,
            as_path: AsPath(vec![peer_as]),
            med: 0,
            communities: Vec::new(),
        }
    }
}

/// Everything the simulation takes besides the configurations.
#[derive(Clone, Debug, Default)]
pub struct Environment {
    /// Links forced down, as `(device, interface)` pairs. Both ends of a
    /// link die when either side is listed (the physical layer is shared).
    pub failed_interfaces: Vec<(String, String)>,
    /// Announcements from outside the snapshot.
    pub announcements: Vec<ExternalAnnouncement>,
}

impl Environment {
    /// The empty environment: all links up, no external routes.
    pub fn none() -> Environment {
        Environment::default()
    }

    /// Is this interface forced down?
    pub fn interface_failed(&self, device: &str, interface: &str) -> bool {
        self.failed_interfaces
            .iter()
            .any(|(d, i)| d == device && i == interface)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failed_interface_lookup() {
        let mut env = Environment::none();
        env.failed_interfaces.push(("r1".into(), "e1".into()));
        assert!(env.interface_failed("r1", "e1"));
        assert!(!env.interface_failed("r1", "e2"));
        assert!(!env.interface_failed("r2", "e1"));
    }

    #[test]
    fn simple_announcement() {
        let a = ExternalAnnouncement::simple(
            "border1",
            "203.0.113.1".parse().unwrap(),
            Asn(174),
            "0.0.0.0/0".parse().unwrap(),
        );
        assert_eq!(a.as_path.length(), 1);
        assert_eq!(a.device, "border1");
    }
}
