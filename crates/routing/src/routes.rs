//! Route types and the BGP decision process.

use batnet_config::vi::{RouteAttrs, RouteProtocol};
use batnet_net::{Interned, Ip, Prefix};
use std::cmp::Ordering;
use std::fmt;

/// Administrative distance per protocol — the cross-protocol preference
/// used by the main RIB (lower wins). Values follow IOS conventions; the
/// dialect frontends may override static-route distance per route.
pub fn admin_distance(protocol: RouteProtocol) -> u8 {
    match protocol {
        RouteProtocol::Connected => 0,
        RouteProtocol::Static => 1,
        RouteProtocol::Ebgp => 20,
        RouteProtocol::Ospf => 110,
        RouteProtocol::Ibgp => 200,
        RouteProtocol::BgpLocal => 200,
    }
}

/// Where a main-RIB route sends packets.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MainNextHop {
    /// Deliver onto this directly connected interface (ARP for the dest).
    Connected {
        /// Egress interface name.
        iface: String,
    },
    /// Forward towards this gateway address (resolved recursively against
    /// the RIB when building the FIB).
    Via(Ip),
    /// Drop (null route / discard aggregate).
    Discard,
}

/// One route in a device's main RIB. "Routes" in Table 1 of the paper
/// counts entries of this type across all devices.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MainRoute {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Administrative distance (protocol preference; lower wins).
    pub admin_distance: u8,
    /// Protocol-internal metric (compared when distances tie).
    pub metric: u32,
    /// Source protocol.
    pub protocol: RouteProtocol,
    /// Next hop.
    pub next_hop: MainNextHop,
}

impl fmt::Display for MainRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nh = match &self.next_hop {
            MainNextHop::Connected { iface } => format!("directly connected, {iface}"),
            MainNextHop::Via(ip) => format!("via {ip}"),
            MainNextHop::Discard => "discard".to_string(),
        };
        write!(
            f,
            "{} [{}/{}] {} ({})",
            self.prefix, self.admin_distance, self.metric, nh, self.protocol
        )
    }
}

/// Identifies who a BGP route was learned from.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PeerKey {
    /// Locally originated (network statement or redistribution).
    Local,
    /// Learned from the session with this configured peer address.
    Peer(Ip),
}

impl fmt::Display for PeerKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerKey::Local => write!(f, "local"),
            PeerKey::Peer(ip) => write!(f, "{ip}"),
        }
    }
}

/// A BGP route as held in a device's BGP RIB.
///
/// The attribute bundle is interned (§4.1.3): the thirteen-odd properties
/// that routes following similar paths share live in one allocation, and
/// equality during the decision process is a pointer comparison.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BgpRoute {
    /// Shared attribute bundle (prefix, local-pref, AS path, MED,
    /// communities, origin, next hop, …).
    pub attrs: Interned<RouteAttrs>,
    /// Which peer sent it.
    pub from: PeerKey,
    /// Router id of the sender (decision step 8).
    pub sender_router_id: Ip,
    /// Lamport-style arrival stamp assigned by the *receiver* (§4.1.2:
    /// logical clocks tie-break by arrival time, like routers do). Lower =
    /// arrived earlier = preferred.
    pub arrival: u64,
    /// IGP metric to the route's next hop, resolved against the main RIB
    /// at import time (decision step 6). `u32::MAX` when unresolved.
    pub igp_cost: u32,
}

impl BgpRoute {
    /// Is this an eBGP-learned route?
    pub fn is_ebgp(&self) -> bool {
        self.attrs.protocol == RouteProtocol::Ebgp
    }

    /// The BGP decision process. Returns `Ordering::Less` when `self` is
    /// **better** than `other` (so `min_by` picks the best route).
    ///
    /// Steps, in order:
    /// 1. higher local preference
    /// 2. locally originated first (the weight analogue)
    /// 3. shorter AS path
    /// 4. lower origin (IGP < EGP < incomplete)
    /// 5. lower MED (compared unconditionally — the "always-compare-med"
    ///    setting; per-neighbor-AS MED scoping is noted future work in
    ///    DESIGN.md)
    /// 6. eBGP over iBGP
    /// 7. lower IGP cost to the next hop
    /// 8. earlier arrival (logical clock — the paper's addition)
    /// 9. lower sender router id
    /// 10. lower peer address (final deterministic tie-break)
    ///
    /// `use_clock` disables step 8 for the convergence ablation (A-1).
    pub fn decide(&self, other: &BgpRoute, use_clock: bool) -> Ordering {
        let local_rank = |p: RouteProtocol| u8::from(p != RouteProtocol::BgpLocal);
        other
            .attrs
            .local_pref
            .cmp(&self.attrs.local_pref)
            .then_with(|| local_rank(self.attrs.protocol).cmp(&local_rank(other.attrs.protocol)))
            .then_with(|| self.attrs.as_path.length().cmp(&other.attrs.as_path.length()))
            .then_with(|| self.attrs.origin.cmp(&other.attrs.origin))
            .then_with(|| self.attrs.med.cmp(&other.attrs.med))
            .then_with(|| protocol_rank(self.attrs.protocol).cmp(&protocol_rank(other.attrs.protocol)))
            .then_with(|| self.igp_cost.cmp(&other.igp_cost))
            .then_with(|| {
                if use_clock {
                    self.arrival.cmp(&other.arrival)
                } else {
                    Ordering::Equal
                }
            })
            .then_with(|| self.sender_router_id.cmp(&other.sender_router_id))
            .then_with(|| self.from.cmp(&other.from))
    }
}

impl BgpRoute {
    /// Multipath equivalence: equal through decision steps 1–7 (all the
    /// attribute comparisons and IGP cost, but not the arrival/router-id
    /// tie-breaks). Routes equivalent to the best are installed together
    /// in the main RIB as an ECMP set — the paper's "multipath routing
    /// across data center network tiers".
    pub fn multipath_equivalent(&self, other: &BgpRoute) -> bool {
        self.attrs.local_pref == other.attrs.local_pref
            && self.attrs.as_path.length() == other.attrs.as_path.length()
            && self.attrs.origin == other.attrs.origin
            && self.attrs.med == other.attrs.med
            && protocol_rank(self.attrs.protocol) == protocol_rank(other.attrs.protocol)
            && self.igp_cost == other.igp_cost
    }
}

fn protocol_rank(p: RouteProtocol) -> u8 {
    match p {
        // Locally originated preferred over learned (weight analogue).
        RouteProtocol::BgpLocal => 0,
        RouteProtocol::Ebgp => 1,
        RouteProtocol::Ibgp => 2,
        // Non-BGP protocols never enter the BGP RIB.
        _ => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_net::{AsPath, Asn, Interner};
    use batnet_config::vi::RouteOrigin;

    fn mk(
        pool: &Interner<RouteAttrs>,
        lp: u32,
        path_len: usize,
        med: u32,
        proto: RouteProtocol,
        igp: u32,
        arrival: u64,
        rid: u32,
    ) -> BgpRoute {
        let mut attrs = RouteAttrs::new("10.0.0.0/8".parse().unwrap(), proto);
        attrs.local_pref = lp;
        attrs.as_path = AsPath(vec![Asn(65000); path_len]);
        attrs.med = med;
        attrs.origin = RouteOrigin::Igp;
        BgpRoute {
            attrs: pool.intern(attrs),
            from: PeerKey::Peer(Ip(rid)),
            sender_router_id: Ip(rid),
            arrival,
            igp_cost: igp,
        }
    }

    #[test]
    fn local_pref_dominates() {
        let pool = Interner::new();
        let hi = mk(&pool, 200, 5, 100, RouteProtocol::Ibgp, 99, 9, 2);
        let lo = mk(&pool, 100, 0, 0, RouteProtocol::Ebgp, 0, 0, 1);
        assert_eq!(hi.decide(&lo, true), Ordering::Less, "higher local-pref wins");
    }

    #[test]
    fn as_path_then_med() {
        let pool = Interner::new();
        let short = mk(&pool, 100, 1, 50, RouteProtocol::Ebgp, 10, 5, 2);
        let long = mk(&pool, 100, 3, 0, RouteProtocol::Ebgp, 0, 0, 1);
        assert_eq!(short.decide(&long, true), Ordering::Less);
        let med_lo = mk(&pool, 100, 1, 10, RouteProtocol::Ebgp, 10, 5, 2);
        let med_hi = mk(&pool, 100, 1, 20, RouteProtocol::Ebgp, 0, 0, 1);
        assert_eq!(med_lo.decide(&med_hi, true), Ordering::Less);
    }

    #[test]
    fn ebgp_over_ibgp_then_igp_cost() {
        let pool = Interner::new();
        let e = mk(&pool, 100, 1, 0, RouteProtocol::Ebgp, 100, 9, 9);
        let i = mk(&pool, 100, 1, 0, RouteProtocol::Ibgp, 1, 0, 1);
        assert_eq!(e.decide(&i, true), Ordering::Less);
        let near = mk(&pool, 100, 1, 0, RouteProtocol::Ibgp, 5, 9, 9);
        let far = mk(&pool, 100, 1, 0, RouteProtocol::Ibgp, 50, 0, 1);
        assert_eq!(near.decide(&far, true), Ordering::Less);
    }

    #[test]
    fn clock_breaks_ties_when_enabled() {
        let pool = Interner::new();
        let old = mk(&pool, 100, 1, 0, RouteProtocol::Ebgp, 10, 3, 9);
        let new = mk(&pool, 100, 1, 0, RouteProtocol::Ebgp, 10, 7, 1);
        assert_eq!(old.decide(&new, true), Ordering::Less, "older preferred");
        // With clocks disabled, router id decides instead.
        assert_eq!(old.decide(&new, false), Ordering::Greater);
    }

    #[test]
    fn decision_is_total_and_antisymmetric() {
        let pool = Interner::new();
        let a = mk(&pool, 100, 1, 0, RouteProtocol::Ebgp, 10, 3, 4);
        let b = mk(&pool, 100, 1, 0, RouteProtocol::Ebgp, 10, 3, 5);
        assert_eq!(a.decide(&b, true), Ordering::Less);
        assert_eq!(b.decide(&a, true), Ordering::Greater);
        assert_eq!(a.decide(&a, true), Ordering::Equal);
    }

    #[test]
    fn local_routes_preferred_over_learned() {
        let pool = Interner::new();
        let mut attrs = RouteAttrs::new("10.0.0.0/8".parse().unwrap(), RouteProtocol::BgpLocal);
        attrs.local_pref = 100;
        let local = BgpRoute {
            attrs: pool.intern(attrs),
            from: PeerKey::Local,
            sender_router_id: Ip(0),
            arrival: 100,
            igp_cost: 0,
        };
        let learned = mk(&pool, 100, 0, 0, RouteProtocol::Ebgp, 0, 0, 1);
        assert_eq!(local.decide(&learned, true), Ordering::Less);
    }

    #[test]
    fn admin_distances() {
        assert!(admin_distance(RouteProtocol::Connected) < admin_distance(RouteProtocol::Static));
        assert!(admin_distance(RouteProtocol::Static) < admin_distance(RouteProtocol::Ebgp));
        assert!(admin_distance(RouteProtocol::Ebgp) < admin_distance(RouteProtocol::Ospf));
        assert!(admin_distance(RouteProtocol::Ospf) < admin_distance(RouteProtocol::Ibgp));
    }
}
