//! OSPF: link-state shortest-path computation.
//!
//! OSPF is a link-state protocol: every router floods its adjacencies and
//! each router independently runs Dijkstra over the resulting graph. That
//! structure lets the simulation compute OSPF *directly* — no fixed point
//! needed — which is exactly the §4.1.1 optimization of "allowing IGP
//! protocols to converge prior to beginning BGP computation".
//!
//! The model: single process per device, areas supported with one level of
//! inter-area routing (intra-area routes are preferred; for prefixes not
//! reachable intra-area, paths go through area border routers). External
//! routes (redistributed connected/static) are type-E2: fixed metric,
//! compared after internal routes.

use crate::routes::{MainNextHop, MainRoute};
use batnet_config::vi::{Device, RouteProtocol};
use batnet_config::{InterfaceRef, Topology};
use batnet_net::{Ip, Prefix};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// OSPF administrative distance.
pub const OSPF_AD: u8 = 110;
/// Fixed metric for redistributed (type-E2) routes, compared after
/// internal routes by biasing the metric far above any internal path.
pub const E2_METRIC_BIAS: u32 = 1 << 24;

/// One OSPF adjacency: `(from, to)` device indices with the outgoing
/// interface and its cost.
#[derive(Clone, Debug)]
struct Adjacency {
    to: usize,
    cost: u32,
    /// The neighbor's interface address on the shared subnet — the next
    /// hop used in routes through this adjacency.
    next_hop_ip: Ip,
}

/// Per-area adjacency graphs plus per-device advertised prefixes.
pub struct OspfGraph {
    /// area → adjacency list per device index.
    areas: BTreeMap<u32, Vec<Vec<Adjacency>>>,
    /// Per device: (prefix, advertising cost, area) for each OSPF-enabled
    /// interface (passive included — their subnets are advertised).
    advertised: Vec<Vec<(Prefix, u32, u32)>>,
    /// Per device: redistributed external prefixes (E2).
    external: Vec<Vec<Prefix>>,
    /// Per device: set of areas it participates in.
    member_areas: Vec<BTreeSet<u32>>,
}

/// The interface cost: explicit `ip ospf cost`, else reference bandwidth
/// heuristic (we have no bandwidths in the model, so the process default).
fn iface_cost(dev: &Device, ifname: &str) -> u32 {
    let default = dev.ospf.as_ref().map(|o| o.default_cost.max(1)).unwrap_or(1);
    dev.interfaces
        .get(ifname)
        .and_then(|i| i.ospf_cost)
        .unwrap_or(default)
}

impl OspfGraph {
    /// Builds the per-area OSPF graphs from device configs and the inferred
    /// L3 topology. Adjacency requires: both devices run OSPF, both
    /// interfaces have an area configured, areas match, and neither side
    /// is passive.
    pub fn build(devices: &[Device], topo: &Topology) -> OspfGraph {
        let index: BTreeMap<&str, usize> = devices
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.as_str(), i))
            .collect();
        let mut areas: BTreeMap<u32, Vec<Vec<Adjacency>>> = BTreeMap::new();
        let mut advertised = vec![Vec::new(); devices.len()];
        let mut external = vec![Vec::new(); devices.len()];
        let mut member_areas = vec![BTreeSet::new(); devices.len()];

        for (di, dev) in devices.iter().enumerate() {
            if dev.ospf.is_none() {
                continue;
            }
            for iface in dev.active_interfaces() {
                let Some(area) = iface.ospf_area else { continue };
                member_areas[di].insert(area);
                let cost = iface_cost(dev, &iface.name);
                if let Some(p) = iface.connected_prefix() {
                    advertised[di].push((p, cost, area));
                }
                if iface.ospf_passive {
                    continue;
                }
                let me = InterfaceRef::new(&dev.name, &iface.name);
                for nb in topo.neighbors_of(&me) {
                    let Some(&ni) = index.get(nb.device.as_str()) else { continue };
                    let ndev = &devices[ni];
                    if ndev.ospf.is_none() {
                        continue;
                    }
                    let Some(niface) = ndev.interfaces.get(&nb.interface) else { continue };
                    if niface.ospf_area != Some(area) || niface.ospf_passive || !niface.is_active() {
                        continue;
                    }
                    let Some(nh_ip) = niface.ip() else { continue };
                    let graph = areas
                        .entry(area)
                        .or_insert_with(|| vec![Vec::new(); devices.len()]);
                    graph[di].push(Adjacency {
                        to: ni,
                        cost,
                        next_hop_ip: nh_ip,
                    });
                }
            }
            // Redistributed external prefixes.
            if let Some(ospf) = &dev.ospf {
                if ospf.redistribute_connected {
                    for iface in dev.active_interfaces() {
                        // Only subnets not already advertised into OSPF.
                        if iface.ospf_area.is_none() {
                            if let Some(p) = iface.connected_prefix() {
                                external[di].push(p);
                            }
                        }
                    }
                }
                if ospf.redistribute_static {
                    for sr in &dev.static_routes {
                        external[di].push(sr.prefix);
                    }
                }
            }
        }
        OspfGraph {
            areas,
            advertised,
            external,
            member_areas,
        }
    }

    /// Computes the OSPF routes of device `src`, as main-RIB candidates.
    ///
    /// The returned routes include ECMP sets (one `MainRoute` per next hop
    /// at equal cost), intra-area preferred over inter-area, internal over
    /// external.
    pub fn routes_for(&self, src: usize, devices: &[Device]) -> Vec<MainRoute> {
        // dist[d] = (cost, set of first-hop next-hop IPs), per area.
        let mut best: BTreeMap<Prefix, (u32, BTreeSet<Ip>)> = BTreeMap::new();
        let my_areas = &self.member_areas[src];
        for &area in my_areas.iter() {
            let Some(graph) = self.areas.get(&area) else { continue };
            let (dist, first_hops) = dijkstra(graph, src);
            // Intra-area prefixes of every reachable router in this area.
            for (di, d) in dist.iter().enumerate() {
                let Some(cost) = d else { continue };
                for &(p, adv_cost, p_area) in &self.advertised[di] {
                    if p_area != area {
                        // Inter-area (one ABR hop): router di is in this
                        // area but advertises a prefix homed in another —
                        // allowed: di acts as the ABR summary point.
                        // Metric still cost + advertised cost.
                    }
                    let total = cost + if di == src { 0 } else { adv_cost };
                    if di == src {
                        continue; // own connected subnets come from Connected
                    }
                    offer(&mut best, p, total, &first_hops[di]);
                }
                // External (E2) routes: fixed metric biased above internal.
                for &p in &self.external[di] {
                    if di == src {
                        continue;
                    }
                    offer(&mut best, p, E2_METRIC_BIAS + 20, &first_hops[di]);
                }
            }
        }
        let mut out = Vec::new();
        for (prefix, (metric, hops)) in best {
            for nh in hops {
                out.push(MainRoute {
                    prefix,
                    admin_distance: OSPF_AD,
                    metric,
                    protocol: RouteProtocol::Ospf,
                    next_hop: MainNextHop::Via(nh),
                });
            }
        }
        let _ = devices;
        out
    }
}

fn offer(best: &mut BTreeMap<Prefix, (u32, BTreeSet<Ip>)>, p: Prefix, metric: u32, hops: &BTreeSet<Ip>) {
    if hops.is_empty() {
        return;
    }
    match best.get_mut(&p) {
        None => {
            best.insert(p, (metric, hops.clone()));
        }
        Some((m, h)) => {
            if metric < *m {
                *m = metric;
                *h = hops.clone();
            } else if metric == *m {
                h.extend(hops.iter().copied());
            }
        }
    }
}

/// Dijkstra with ECMP first-hop tracking. Returns per-device distance and
/// the set of first-hop neighbor addresses on shortest paths.
///
/// Two phases: plain Dijkstra for distances, then a pass in increasing
/// distance order that accumulates first-hop sets over the shortest-path
/// DAG (the one-phase variant misses ECMP hops discovered after a node is
/// popped).
fn dijkstra(graph: &[Vec<Adjacency>], src: usize) -> (Vec<Option<u32>>, Vec<BTreeSet<Ip>>) {
    let n = graph.len();
    let mut dist: Vec<Option<u32>> = vec![None; n];
    let mut heap: BinaryHeap<std::cmp::Reverse<(u32, usize)>> = BinaryHeap::new();
    dist[src] = Some(0);
    heap.push(std::cmp::Reverse((0, src)));
    while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
        if dist[u] != Some(d) {
            continue; // stale entry
        }
        for adj in &graph[u] {
            let nd = d + adj.cost;
            match dist[adj.to] {
                Some(cur) if cur <= nd => {}
                _ => {
                    dist[adj.to] = Some(nd);
                    heap.push(std::cmp::Reverse((nd, adj.to)));
                }
            }
        }
    }
    // Phase 2: first-hop sets, in distance order.
    let mut hops: Vec<BTreeSet<Ip>> = vec![BTreeSet::new(); n];
    let mut order: Vec<usize> = (0..n).filter(|&v| dist[v].is_some()).collect();
    order.sort_by_key(|&v| (dist[v], v));
    for &u in &order {
        // `order` is filtered to reachable nodes; stay total anyway.
        let Some(du) = dist[u] else { continue };
        for adj in &graph[u] {
            if dist[adj.to] == Some(du + adj.cost) {
                if u == src {
                    hops[adj.to].insert(adj.next_hop_ip);
                } else {
                    let from = hops[u].clone();
                    hops[adj.to].extend(from);
                }
            }
        }
    }
    (dist, hops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::vi::{Interface, OspfProcess};

    /// Builds a device with OSPF on the given interfaces:
    /// (name, ip, len, area, cost, passive).
    fn dev(name: &str, ifaces: &[(&str, &str, u8, u32, u32, bool)]) -> Device {
        let mut d = Device::new(name);
        d.ospf = Some(OspfProcess {
            router_id: None,
            reference_bandwidth_mbps: 100_000,
            redistribute_connected: false,
            redistribute_static: false,
            default_cost: 1,
        });
        for (iname, ip, len, area, cost, passive) in ifaces {
            let mut i = Interface::new(*iname);
            i.address = Some((ip.parse().unwrap(), *len));
            i.ospf_area = Some(*area);
            i.ospf_cost = Some(*cost);
            i.ospf_passive = *passive;
            d.interfaces.insert(iname.to_string(), i);
        }
        d
    }

    /// Triangle: r0 - r1 - r2 - r0 with varying costs; r2 has a passive LAN.
    fn triangle() -> Vec<Device> {
        vec![
            dev(
                "r0",
                &[
                    ("e01", "10.0.1.0", 31, 0, 1, false),
                    ("e02", "10.0.2.0", 31, 0, 10, false),
                ],
            ),
            dev(
                "r1",
                &[
                    ("e01", "10.0.1.1", 31, 0, 1, false),
                    ("e12", "10.0.3.0", 31, 0, 1, false),
                ],
            ),
            dev(
                "r2",
                &[
                    ("e02", "10.0.2.1", 31, 0, 10, false),
                    ("e12", "10.0.3.1", 31, 0, 1, false),
                    ("lan", "10.2.0.1", 24, 0, 5, true),
                ],
            ),
        ]
    }

    #[test]
    fn shortest_path_chosen() {
        let devices = triangle();
        let topo = Topology::infer(&devices);
        let g = OspfGraph::build(&devices, &topo);
        let routes = g.routes_for(0, &devices);
        // r0 → 10.2.0.0/24 (r2's LAN): via r1 (1+1+5=7) not direct (10+5=15).
        let lan: Vec<_> = routes
            .iter()
            .filter(|r| r.prefix.to_string() == "10.2.0.0/24")
            .collect();
        assert_eq!(lan.len(), 1);
        assert_eq!(lan[0].metric, 7);
        assert_eq!(lan[0].next_hop, MainNextHop::Via("10.0.1.1".parse().unwrap()));
        assert_eq!(lan[0].admin_distance, OSPF_AD);
    }

    #[test]
    fn transit_subnets_advertised() {
        let devices = triangle();
        let topo = Topology::infer(&devices);
        let g = OspfGraph::build(&devices, &topo);
        let routes = g.routes_for(0, &devices);
        // The far link 10.0.3.0/31 must be reachable via r1 (1+1=2).
        let far: Vec<_> = routes
            .iter()
            .filter(|r| r.prefix.to_string() == "10.0.3.0/31")
            .collect();
        assert!(!far.is_empty());
        assert_eq!(far[0].metric, 2);
    }

    #[test]
    fn ecmp_on_equal_costs() {
        // Diamond: r0 -(1)- r1 -(1)- r3, r0 -(1)- r2 -(1)- r3, r3 has a LAN.
        let devices = vec![
            dev(
                "r0",
                &[
                    ("a", "10.0.1.0", 31, 0, 1, false),
                    ("b", "10.0.2.0", 31, 0, 1, false),
                ],
            ),
            dev(
                "r1",
                &[
                    ("a", "10.0.1.1", 31, 0, 1, false),
                    ("c", "10.0.3.0", 31, 0, 1, false),
                ],
            ),
            dev(
                "r2",
                &[
                    ("b", "10.0.2.1", 31, 0, 1, false),
                    ("d", "10.0.4.0", 31, 0, 1, false),
                ],
            ),
            dev(
                "r3",
                &[
                    ("c", "10.0.3.1", 31, 0, 1, false),
                    ("d", "10.0.4.1", 31, 0, 1, false),
                    ("lan", "10.3.0.1", 24, 0, 1, true),
                ],
            ),
        ];
        let topo = Topology::infer(&devices);
        let g = OspfGraph::build(&devices, &topo);
        let routes = g.routes_for(0, &devices);
        let lan: Vec<_> = routes
            .iter()
            .filter(|r| r.prefix.to_string() == "10.3.0.0/24")
            .collect();
        assert_eq!(lan.len(), 2, "two equal-cost next hops");
        let hops: BTreeSet<_> = lan.iter().map(|r| r.next_hop.clone()).collect();
        assert!(hops.contains(&MainNextHop::Via("10.0.1.1".parse().unwrap())));
        assert!(hops.contains(&MainNextHop::Via("10.0.2.1".parse().unwrap())));
    }

    #[test]
    fn area_mismatch_blocks_adjacency() {
        let mut devices = triangle();
        // Put r2's side of the r1-r2 link in area 1: adjacency breaks, so
        // r0 reaches the LAN via the expensive direct link.
        devices[2]
            .interfaces
            .get_mut("e12")
            .unwrap()
            .ospf_area = Some(1);
        let topo = Topology::infer(&devices);
        let g = OspfGraph::build(&devices, &topo);
        let routes = g.routes_for(0, &devices);
        let lan: Vec<_> = routes
            .iter()
            .filter(|r| r.prefix.to_string() == "10.2.0.0/24")
            .collect();
        assert_eq!(lan.len(), 1);
        assert_eq!(lan[0].metric, 15, "must use the direct area-0 path");
    }

    #[test]
    fn passive_interfaces_form_no_adjacency() {
        let mut devices = triangle();
        devices[0].interfaces.get_mut("e01").unwrap().ospf_passive = true;
        let topo = Topology::infer(&devices);
        let g = OspfGraph::build(&devices, &topo);
        let routes = g.routes_for(0, &devices);
        let lan: Vec<_> = routes
            .iter()
            .filter(|r| r.prefix.to_string() == "10.2.0.0/24")
            .collect();
        // Path via r1 is gone; only the direct 10-cost link remains.
        assert_eq!(lan[0].metric, 15);
    }

    #[test]
    fn redistributed_static_is_e2() {
        let mut devices = triangle();
        devices[2].ospf.as_mut().unwrap().redistribute_static = true;
        devices[2].static_routes.push(batnet_config::vi::StaticRoute {
            prefix: "192.168.0.0/16".parse().unwrap(),
            next_hop: batnet_config::vi::NextHop::Discard,
            admin_distance: 1,
        });
        let topo = Topology::infer(&devices);
        let g = OspfGraph::build(&devices, &topo);
        let routes = g.routes_for(0, &devices);
        let ext: Vec<_> = routes
            .iter()
            .filter(|r| r.prefix.to_string() == "192.168.0.0/16")
            .collect();
        assert_eq!(ext.len(), 1);
        assert!(ext[0].metric >= E2_METRIC_BIAS, "E2 metric biased above internal");
    }

    #[test]
    fn non_ospf_device_gets_no_routes() {
        let mut devices = triangle();
        devices[0].ospf = None;
        let topo = Topology::infer(&devices);
        let g = OspfGraph::build(&devices, &topo);
        assert!(g.routes_for(0, &devices).is_empty());
        // And neighbors no longer see routes *through* it either way —
        // r1 still reaches r2 directly.
        let r1_routes = g.routes_for(1, &devices);
        assert!(r1_routes.iter().any(|r| r.prefix.to_string() == "10.2.0.0/24"));
    }
}
