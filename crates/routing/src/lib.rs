//! # batnet-routing — Stage 2: imperative data plane generation
//!
//! The paper's Lesson 1: Datalog was removed and the control-plane model
//! re-written as imperative code running a fixed-point computation (§4.1).
//! This crate is that engine:
//!
//! * **Imperative evaluation** (§4.1.1) — connected and static routes, an
//!   OSPF link-state computation (Dijkstra per node, areas), and a full BGP
//!   decision process with import/export route maps, redistribution, and
//!   session establishment gated on reachability of the peer address
//!   through partial state and interface ACLs.
//! * **Optimized, deterministic convergence** (§4.1.2) — a protocol-
//!   specific graph coloring schedules route exchange so adjacent nodes
//!   never exchange simultaneously (Gauss–Seidel sweeps; same-color nodes
//!   run in parallel), and logical clocks on BGP adverts tie-break by
//!   arrival time like real routers. Networks that genuinely do not
//!   converge (Figure 1a) are detected and reported, not looped forever.
//! * **Optimized memory footprint** (§4.1.3) — receivers *pull* RIB deltas
//!   from neighbors (only the current and previous sweep's deltas are
//!   retained; no per-session queues), and BGP attribute bundles, AS
//!   paths, and community sets are interned.
//!
//! The output is a [`DataPlane`]: per-device main RIBs and FIBs, plus
//! convergence and memory statistics. `batnet-dataplane` (the BDD engine)
//! and `batnet-traceroute` (the concrete engine) both consume it.

pub mod bgp;
pub mod engine;
pub mod env;
pub mod error;
pub mod fib;
pub mod ospf;
pub mod rib;
pub mod routes;
pub mod scheduler;

pub use engine::{
    simulate, simulate_governed, ConvergenceReport, DataPlane, DeviceDataPlane, SimOptions,
};
pub use error::RoutingError;
pub use env::{Environment, ExternalAnnouncement};
pub use fib::{Fib, FibAction, FibEntry, FibNextHop};
pub use rib::{MainRib, RibDelta};
pub use routes::{admin_distance, BgpRoute, MainNextHop, MainRoute, PeerKey};
pub use scheduler::{color_graph, SchedulerMode};
