//! The data plane generation engine: orchestration of the fixed point.
//!
//! The phases (§4.1.1's "control intricate dependencies … for example,
//! allowing IGP protocols to converge prior to beginning BGP"):
//!
//! 1. connected + static routes;
//! 2. OSPF (direct link-state computation);
//! 3. BGP session discovery, with establishment gated on the partial data
//!    plane (reachability of the peer address, interface ACLs on TCP/179);
//! 4. the BGP fixed point — colored Gauss–Seidel sweeps with pull-based
//!    deltas and logical clocks (see [`crate::bgp`] and
//!    [`crate::scheduler`]);
//! 5. session re-evaluation: if the converged data plane changes any
//!    session's viability, BGP re-runs (bounded rounds);
//! 6. FIB construction.
//!
//! Same-color nodes are processed in parallel on the shared
//! `batnet_exec` work-stealing pool (CPU-bound work on OS threads — no
//! async runtime, per the project's networking guides). The compute
//! phase of each sweep fans out read-only; the apply phase is
//! sequential in ascending node order, so RIBs are byte-identical at
//! every thread count.

use crate::bgp::{
    self, apply_rib_in, BgpNode, BgpPools, RibInUpdate, Session, ATTR_BUNDLE_BYTES,
};
use crate::env::Environment;
use crate::fib::Fib;
use crate::ospf::OspfGraph;
use crate::rib::MainRib;
use crate::routes::{BgpRoute, MainNextHop, MainRoute, PeerKey};
use crate::scheduler::{color_graph, color_groups, SchedulerMode};
use batnet_config::vi::{Device, NextHop, RouteAttrs, RouteOrigin, RouteProtocol};
use batnet_config::Topology;
use batnet_net::governor::{Exhaustion, Outcome, ResourceGovernor};
use batnet_net::{Asn, Prefix};
use std::collections::{BTreeMap, BTreeSet};
use std::panic::AssertUnwindSafe;

/// Engine options. The defaults are the production configuration; the
/// ablation benchmarks flip individual fields.
#[derive(Clone, Debug)]
pub struct SimOptions {
    /// Colored Gauss–Seidel (production) or Jacobi lockstep (ablation).
    pub scheduler: SchedulerMode,
    /// Arrival-time tie-break in the decision process (§4.1.2).
    pub use_logical_clocks: bool,
    /// Sweep budget before declaring non-convergence.
    pub max_sweeps: usize,
    /// Parallelize same-color groups across threads.
    pub parallel: bool,
    /// Maximum session re-evaluation rounds (§4.1.1 "key points").
    pub session_reeval_rounds: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            scheduler: SchedulerMode::Colored,
            use_logical_clocks: true,
            max_sweeps: 100,
            parallel: true,
            session_reeval_rounds: 2,
        }
    }
}

/// Convergence outcome of the BGP fixed point.
#[derive(Clone, Debug, Default)]
pub struct ConvergenceReport {
    /// Did the computation reach a fixed point within the sweep budget?
    pub converged: bool,
    /// Sweeps used (per re-evaluation round, summed).
    pub sweeps: usize,
    /// Number of colors the BGP graph needed.
    pub colors: usize,
    /// Prefixes still churning when the budget ran out (empty when
    /// converged). This is the §4.1.2 "detects and reports
    /// non-convergence" surface.
    pub unstable_prefixes: Vec<Prefix>,
    /// Set when a [`ResourceGovernor`] limit stopped the fixed point
    /// before the sweep budget: the generalized form of the sweep-budget
    /// mechanism (deadline, shared iteration budget).
    pub aborted: Option<Exhaustion>,
    /// Devices whose per-node computation panicked during the fixed
    /// point. The panic is contained (the device contributes nothing from
    /// that point on) and the caller is expected to quarantine these and
    /// re-simulate the healthy subset.
    pub poisoned_devices: Vec<String>,
}

/// Memory accounting for the A-2 ablation (§4.1.3).
#[derive(Clone, Debug, Default)]
pub struct MemReport {
    /// Total BGP routes held across adj-RIBs-in.
    pub total_bgp_routes: u64,
    /// Distinct interned attribute bundles (full bundles, including
    /// prefix and next hop).
    pub unique_attr_bundles: u64,
    /// Distinct *shareable* property combinations — the bundle minus the
    /// per-route prefix and next hop, i.e. the thirteen-odd properties
    /// the paper moves into one interned object ("there are typically
    /// 10x–20x fewer combinations of those properties than routes").
    pub unique_shared_combos: u64,
    /// Interner requests (≥ total routes; includes transient bundles).
    pub intern_requests: u64,
    /// Estimated bytes saved at 88 bytes per shareable combination.
    pub bytes_saved: u64,
}

impl MemReport {
    /// Routes served per shareable combination — the paper reports
    /// 10–20×.
    pub fn sharing_factor(&self) -> f64 {
        if self.unique_shared_combos == 0 {
            0.0
        } else {
            self.total_bgp_routes as f64 / self.unique_shared_combos as f64
        }
    }

    /// Fraction of attribute memory avoided: 1 − combos/routes.
    pub fn memory_reduction(&self) -> f64 {
        if self.total_bgp_routes == 0 {
            0.0
        } else {
            1.0 - (self.unique_shared_combos as f64 / self.total_bgp_routes as f64).min(1.0)
        }
    }
}

/// Everything the simulation produced for one device.
#[derive(Clone, Debug)]
pub struct DeviceDataPlane {
    /// Device name.
    pub name: String,
    /// The main RIB (all candidates; best sets answer queries).
    pub main_rib: MainRib,
    /// BGP state (RIB-in, best routes, sessions).
    pub bgp: BgpNode,
    /// The forwarding table.
    pub fib: Fib,
}

/// The simulated data plane of the whole network.
#[derive(Clone, Debug)]
pub struct DataPlane {
    /// Per-device results, in input order.
    pub devices: Vec<DeviceDataPlane>,
    /// Device name → index.
    pub index: BTreeMap<String, usize>,
    /// Convergence outcome.
    pub convergence: ConvergenceReport,
    /// Memory accounting.
    pub mem: MemReport,
}

impl DataPlane {
    /// The data plane of a device by name.
    pub fn device(&self, name: &str) -> Option<&DeviceDataPlane> {
        self.index.get(name).map(|&i| &self.devices[i])
    }

    /// Total main-RIB routes across devices (Table 1's "routes").
    pub fn total_routes(&self) -> usize {
        self.devices.iter().map(|d| d.main_rib.route_count()).sum()
    }
}

/// Runs the full simulation (ungoverned: no deadline, no shared budget;
/// the sweep budget in `opts` still applies).
pub fn simulate(devices: &[Device], env: &Environment, opts: &SimOptions) -> DataPlane {
    simulate_governed(devices, env, opts, &ResourceGovernor::unlimited()).into_value()
}

/// Runs the full simulation under a [`ResourceGovernor`].
///
/// When a limit trips mid-fixed-point the engine stops where it is and
/// returns [`Outcome::Partial`]: the data plane computed so far (with
/// `convergence.aborted` set), and the still-churning prefixes listed as
/// abandoned work — a partial-but-honest result instead of a hang.
pub fn simulate_governed(
    devices: &[Device],
    env: &Environment,
    opts: &SimOptions,
    gov: &ResourceGovernor,
) -> Outcome<DataPlane> {
    let _span = batnet_obs::Span::enter("route.simulate");
    // Phase 0: apply environment link failures.
    let mut devices: Vec<Device> = devices.to_vec();
    for d in devices.iter_mut() {
        let name = d.name.clone();
        for iface in d.interfaces.values_mut() {
            if env.interface_failed(&name, &iface.name) {
                iface.enabled = false;
            }
        }
    }
    let topo = Topology::infer(&devices);

    // Phases 1+2: connected + static, then OSPF.
    let igp_span = batnet_obs::Span::enter("route.igp");
    let mut ribs: Vec<MainRib> = devices.iter().map(local_routes).collect();
    let ospf = OspfGraph::build(&devices, &topo);
    for (di, rib) in ribs.iter_mut().enumerate() {
        for r in ospf.routes_for(di, &devices) {
            rib.offer(r);
        }
    }
    igp_span.close();

    // Phase 3+4+5: BGP with session re-evaluation.
    let bgp_span = batnet_obs::Span::enter("route.bgp");
    let pools = BgpPools::default();
    let mut report = ConvergenceReport::default();
    let external_peers = external_peer_map(&devices, env);
    let mut sessions = bgp::discover_sessions(&devices, &external_peers);
    let mut established = evaluate_sessions(&devices, &ribs, &mut sessions);
    let mut nodes: Vec<BgpNode> = Vec::new();
    for round in 0..=opts.session_reeval_rounds {
        // (Re)run BGP from scratch against the current session set.
        // Reset any BGP contributions in the main RIBs.
        for rib in ribs.iter_mut() {
            let prefixes: Vec<Prefix> = rib
                .iter_best()
                .map(|(p, _)| *p)
                .collect();
            for p in prefixes {
                rib.withdraw(p, RouteProtocol::Ebgp);
                rib.withdraw(p, RouteProtocol::Ibgp);
                rib.withdraw(p, RouteProtocol::BgpLocal);
            }
        }
        nodes = init_bgp_nodes(&devices, &sessions, &mut ribs, env, &pools, opts);
        let r = run_bgp_fixed_point(&devices, &mut nodes, &mut ribs, &pools, opts, gov);
        report.converged = r.converged;
        report.sweeps += r.sweeps;
        report.colors = r.colors;
        report.unstable_prefixes = r.unstable_prefixes;
        report.aborted = r.aborted;
        for d in r.poisoned_devices {
            if !report.poisoned_devices.contains(&d) {
                report.poisoned_devices.push(d);
            }
        }
        if report.aborted.is_some() {
            // Out of budget: no further re-evaluation rounds.
            break;
        }
        // Re-evaluate viability against the fuller data plane.
        let now = evaluate_sessions(&devices, &ribs, &mut sessions);
        if now == established || round == opts.session_reeval_rounds {
            break;
        }
        established = now;
    }
    bgp_span.close();
    batnet_obs::counter_add("route.sweeps", report.sweeps as u64);
    batnet_obs::gauge_set("route.colors", report.colors as f64);
    batnet_obs::gauge_set(
        "route.sessions.established",
        established.len() as f64,
    );
    if !report.poisoned_devices.is_empty() {
        batnet_obs::counter_add("route.poisoned", report.poisoned_devices.len() as u64);
    }

    // Phase 6: FIBs — independent per device, fanned out over the pool
    // and merged in device order.
    let fib_span = batnet_obs::Span::enter("route.fib");
    let fibs: Vec<Fib> = batnet_exec::current().map_opts(
        &ribs,
        batnet_exec::MapOptions {
            span: Some(("exec.fib", fib_span.context())),
        },
        Fib::build,
    );
    fib_span.close();

    let stats = pools.attrs.stats();
    let total_bgp_routes: u64 = nodes
        .iter()
        .map(|n| n.rib_in.values().map(|p| p.len() as u64).sum::<u64>())
        .sum();
    // The shareable-combination projection: everything except prefix and
    // next hop (the properties the paper moves into one shared object).
    let mut combos: BTreeSet<(u32, u32, &batnet_net::AsPath, Vec<batnet_net::Community>, u8, u32)> =
        BTreeSet::new();
    for node in &nodes {
        for peers in node.rib_in.values() {
            for r in peers.values() {
                combos.insert((
                    r.attrs.local_pref,
                    r.attrs.med,
                    &r.attrs.as_path,
                    r.attrs.communities.iter().copied().collect(),
                    r.attrs.origin as u8,
                    r.attrs.tag,
                ));
            }
        }
    }
    let unique_shared_combos = combos.len() as u64;
    drop(combos);
    let mem = MemReport {
        total_bgp_routes,
        unique_attr_bundles: stats.unique,
        unique_shared_combos,
        intern_requests: stats.requests,
        bytes_saved: total_bgp_routes.saturating_sub(unique_shared_combos)
            * ATTR_BUNDLE_BYTES as u64,
    };

    let index = devices
        .iter()
        .enumerate()
        .map(|(i, d)| (d.name.clone(), i))
        .collect();
    let devices = devices
        .into_iter()
        .zip(ribs)
        .zip(nodes)
        .zip(fibs)
        .map(|(((d, main_rib), bgp), fib)| DeviceDataPlane {
            name: d.name,
            main_rib,
            bgp,
            fib,
        })
        .collect();
    let dp = DataPlane {
        devices,
        index,
        convergence: report,
        mem,
    };
    match dp.convergence.aborted.clone() {
        Some(why) => {
            let abandoned: Vec<String> = dp
                .convergence
                .unstable_prefixes
                .iter()
                .map(|p| p.to_string())
                .collect();
            Outcome::Partial {
                completed: dp,
                abandoned,
                why,
            }
        }
        None => Outcome::Complete(dp),
    }
}

/// Connected and static routes of one device.
fn local_routes(d: &Device) -> MainRib {
    let mut rib = MainRib::new();
    for iface in d.active_interfaces() {
        if let Some(p) = iface.connected_prefix() {
            rib.offer(MainRoute {
                prefix: p,
                admin_distance: 0,
                metric: 0,
                protocol: RouteProtocol::Connected,
                next_hop: MainNextHop::Connected {
                    iface: iface.name.clone(),
                },
            });
        }
        for &(ip, len) in &iface.secondary_addresses {
            rib.offer(MainRoute {
                prefix: Prefix::new(ip, len),
                admin_distance: 0,
                metric: 0,
                protocol: RouteProtocol::Connected,
                next_hop: MainNextHop::Connected {
                    iface: iface.name.clone(),
                },
            });
        }
    }
    for sr in &d.static_routes {
        rib.offer(MainRoute {
            prefix: sr.prefix,
            admin_distance: sr.admin_distance,
            metric: 0,
            protocol: RouteProtocol::Static,
            next_hop: match sr.next_hop {
                NextHop::Ip(ip) => MainNextHop::Via(ip),
                NextHop::Discard => MainNextHop::Discard,
            },
        });
    }
    rib
}

/// (device idx, peer ip) → AS for every environment announcement source.
fn external_peer_map(devices: &[Device], env: &Environment) -> BTreeMap<(usize, batnet_net::Ip), Asn> {
    let index: BTreeMap<&str, usize> = devices
        .iter()
        .enumerate()
        .map(|(i, d)| (d.name.as_str(), i))
        .collect();
    let mut map = BTreeMap::new();
    for a in &env.announcements {
        let Some(&di) = index.get(a.device.as_str()) else { continue };
        let Some(&peer_as) = a.as_path.0.first() else { continue };
        map.insert((di, a.peer_ip), peer_as);
    }
    map
}

/// Marks each session established or not against the current RIBs.
/// Returns the established set for change detection.
fn evaluate_sessions(
    devices: &[Device],
    ribs: &[MainRib],
    sessions: &mut [Vec<Session>],
) -> BTreeSet<(usize, usize)> {
    let mut up = BTreeSet::new();
    // First pass: one-directional viability.
    let mut viable: Vec<Vec<bool>> = Vec::with_capacity(sessions.len());
    for (di, devsessions) in sessions.iter().enumerate() {
        let mut v = Vec::with_capacity(devsessions.len());
        for s in devsessions.iter() {
            v.push(bgp::bgp_path_clear(&devices[di], &ribs[di], s.local_ip, s.peer_ip));
        }
        viable.push(v);
    }
    // Second pass: a session is up when both directions are viable
    // (external sessions only need our side).
    for di in 0..sessions.len() {
        for si in 0..sessions[di].len() {
            let s = &sessions[di][si];
            let ok = viable[di][si]
                && match s.peer_device {
                    None => true,
                    Some(pi) => {
                        // The peer's matching session must also be viable.
                        sessions[pi]
                            .iter()
                            .enumerate()
                            .any(|(pj, ps)| {
                                ps.peer_device == Some(di)
                                    && ps.peer_ip == s.local_ip
                                    && viable[pi][pj]
                            })
                    }
                };
            sessions[di][si].established = ok;
            if ok {
                up.insert((di, si));
            }
        }
    }
    up
}

/// Initializes per-device BGP state: local originations (network
/// statements, redistribution) and environment announcements.
fn init_bgp_nodes(
    devices: &[Device],
    sessions: &[Vec<Session>],
    ribs: &mut [MainRib],
    env: &Environment,
    pools: &BgpPools,
    opts: &SimOptions,
) -> Vec<BgpNode> {
    let mut nodes: Vec<BgpNode> = Vec::with_capacity(devices.len());
    for (di, d) in devices.iter().enumerate() {
        let mut node = BgpNode {
            asn: d.bgp.as_ref().map(|b| b.asn).unwrap_or(Asn(0)),
            router_id: d.router_id(),
            sessions: sessions[di].clone(),
            ..BgpNode::default()
        };
        if let Some(bgp) = &d.bgp {
            let mut originate: Vec<(Prefix, RouteOrigin)> = Vec::new();
            for &p in &bgp.networks {
                // `network` requires the prefix in the RIB already.
                if !ribs[di].candidates(&p).is_empty() {
                    originate.push((p, RouteOrigin::Igp));
                }
            }
            if bgp.redistribute_connected {
                for iface in d.active_interfaces() {
                    if let Some(p) = iface.connected_prefix() {
                        originate.push((p, RouteOrigin::Incomplete));
                    }
                }
            }
            if bgp.redistribute_static {
                for sr in &d.static_routes {
                    originate.push((sr.prefix, RouteOrigin::Incomplete));
                }
            }
            if bgp.redistribute_ospf {
                let prefixes: Vec<Prefix> = ribs[di]
                    .iter_best()
                    .filter(|(_, rs)| rs.iter().any(|r| r.protocol == RouteProtocol::Ospf))
                    .map(|(p, _)| *p)
                    .collect();
                for p in prefixes {
                    originate.push((p, RouteOrigin::Incomplete));
                }
            }
            for (prefix, origin) in originate {
                let mut attrs = RouteAttrs::new(prefix, RouteProtocol::BgpLocal);
                attrs.origin = origin;
                let route = BgpRoute {
                    attrs: pools.attrs.intern(attrs),
                    from: PeerKey::Local,
                    sender_router_id: node.router_id,
                    arrival: node.clock,
                    igp_cost: 0,
                };
                node.clock += 1;
                apply_rib_in(
                    &mut node,
                    RibInUpdate {
                        prefix,
                        peer: PeerKey::Local,
                        route: Some(route),
                    },
                );
                node.reselect(prefix, &mut ribs[di], opts.use_logical_clocks);
            }
            // Environment announcements arrive on external sessions.
            for a in &env.announcements {
                if a.device != d.name {
                    continue;
                }
                let Some(session) = node
                    .sessions
                    .iter()
                    .find(|s| s.peer_ip == a.peer_ip && s.established)
                    .cloned()
                else {
                    continue;
                };
                let mut attrs = RouteAttrs::new(a.prefix, RouteProtocol::Ebgp);
                attrs.as_path = a.as_path.clone();
                attrs.med = a.med;
                attrs.communities = a.communities.iter().copied().collect();
                attrs.next_hop = a.peer_ip;
                attrs.origin = RouteOrigin::Igp;
                let arrival = node.clock;
                if let Some(route) = bgp::import_route(
                    d,
                    node.asn,
                    &session,
                    attrs,
                    a.peer_ip,
                    &ribs[di],
                    &pools.attrs,
                    arrival,
                ) {
                    node.clock += 1;
                    let prefix = a.prefix;
                    apply_rib_in(
                        &mut node,
                        RibInUpdate {
                            prefix,
                            peer: PeerKey::Peer(session.peer_ip),
                            route: Some(route),
                        },
                    );
                    node.reselect(prefix, &mut ribs[di], opts.use_logical_clocks);
                }
            }
        }
        nodes.push(node);
    }
    // Rotate: the initial originations become delta_prev for sweep 1.
    for node in nodes.iter_mut() {
        node.delta_prev = std::mem::take(&mut node.delta_cur);
    }
    nodes
}

/// One receiver's computed changes for a sweep.
struct NodeChanges {
    node: usize,
    updates: Vec<RibInUpdate>,
    new_clock: u64,
    /// The node's computation panicked; the panic was contained and the
    /// node contributes nothing (here and in later sweeps).
    poisoned: bool,
}

/// Runs the colored (or lockstep) fixed point. Returns the report.
fn run_bgp_fixed_point(
    devices: &[Device],
    nodes: &mut Vec<BgpNode>,
    ribs: &mut [MainRib],
    pools: &BgpPools,
    opts: &SimOptions,
    gov: &ResourceGovernor,
) -> ConvergenceReport {
    let n = devices.len();
    // BGP adjacency graph (device level) over established sessions.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (di, node) in nodes.iter().enumerate() {
        for s in &node.sessions {
            if let (true, Some(pi)) = (s.established, s.peer_device) {
                if !adj[di].contains(&pi) {
                    adj[di].push(pi);
                }
            }
        }
    }
    let (groups, colors) = match opts.scheduler {
        SchedulerMode::Colored => {
            let colors = color_graph(&adj);
            let max = colors.iter().copied().max().map(|c| c as usize + 1).unwrap_or(0);
            (color_groups(&colors), max.max(1))
        }
        SchedulerMode::Lockstep => ((vec![(0..n).collect::<Vec<_>>()]), 1),
    };
    // color_of[i] = position of i's group in the sweep order.
    let mut rank_of = vec![0usize; n];
    for (gi, g) in groups.iter().enumerate() {
        for &v in g {
            rank_of[v] = gi;
        }
    }

    let mut report = ConvergenceReport {
        colors,
        ..ConvergenceReport::default()
    };

    let mut poisoned: BTreeSet<usize> = BTreeSet::new();
    'sweeps: for _sweep in 0..opts.max_sweeps {
        // Governor gate: a sweep only starts while within budget.
        if let Err(e) = gov.check("bgp-fixed-point") {
            report.aborted = Some(e);
            break;
        }
        report.sweeps += 1;
        for group in &groups {
            // One iteration of shared budget per node processed.
            if let Err(e) = gov.tick("bgp-fixed-point", group.len() as u64) {
                report.aborted = Some(e);
                break 'sweeps;
            }
            // Compute phase: read-only over all nodes; parallel when the
            // group is large enough to pay for threads. A panicking node
            // is contained here (not propagated): it yields no updates
            // and is flagged for quarantine by the caller.
            let poisoned_now = &poisoned;
            let compute = |&ni: &usize| -> NodeChanges {
                if poisoned_now.contains(&ni) {
                    return NodeChanges {
                        node: ni,
                        updates: Vec::new(),
                        new_clock: nodes[ni].clock,
                        poisoned: false,
                    };
                }
                match std::panic::catch_unwind(AssertUnwindSafe(|| {
                    compute_pulls(ni, devices, nodes, ribs, pools, &rank_of, opts)
                })) {
                    Ok(ch) => ch,
                    Err(_) => NodeChanges {
                        node: ni,
                        updates: Vec::new(),
                        new_clock: nodes[ni].clock,
                        poisoned: true,
                    },
                }
            };
            let changes: Vec<NodeChanges> = if opts.parallel && group.len() >= 8 {
                batnet_exec::current().map(group, compute)
            } else {
                group.iter().map(compute).collect()
            };
            // Apply phase: sequential, ascending node order (deterministic).
            for ch in changes {
                if ch.poisoned {
                    poisoned.insert(ch.node);
                    let name = devices[ch.node].name.clone();
                    if !report.poisoned_devices.contains(&name) {
                        report.poisoned_devices.push(name);
                    }
                    continue;
                }
                let node = &mut nodes[ch.node];
                node.clock = ch.new_clock;
                let mut touched: BTreeSet<Prefix> = BTreeSet::new();
                for up in ch.updates {
                    let prefix = up.prefix;
                    if apply_rib_in(node, up) {
                        touched.insert(prefix);
                    }
                }
                for p in touched {
                    node.reselect(p, &mut ribs[ch.node], opts.use_logical_clocks);
                }
            }
        }
        // Sweep end: rotate deltas; converged when nothing changed.
        let mut delta_total = 0u64;
        for node in nodes.iter_mut() {
            delta_total += (node.delta_cur.added.len() + node.delta_cur.removed.len()) as u64;
            node.delta_prev = std::mem::take(&mut node.delta_cur);
        }
        batnet_obs::observe("route.sweep.rib-delta", delta_total);
        if delta_total == 0 {
            report.converged = true;
            break;
        }
    }
    if !report.converged {
        // Both delta generations matter: an abort mid-sweep leaves work in
        // delta_cur that was never rotated.
        let mut unstable: BTreeSet<Prefix> = BTreeSet::new();
        for node in nodes.iter() {
            unstable.extend(node.delta_prev.added.iter().map(|r| r.attrs.prefix));
            unstable.extend(node.delta_prev.removed.iter().copied());
            unstable.extend(node.delta_cur.added.iter().map(|r| r.attrs.prefix));
            unstable.extend(node.delta_cur.removed.iter().copied());
        }
        report.unstable_prefixes = unstable.into_iter().collect();
    }
    report
}

/// Computes the RIB-in updates node `ni` receives this sweep by pulling
/// each established session's peer deltas through export + import policy.
fn compute_pulls(
    ni: usize,
    devices: &[Device],
    nodes: &[BgpNode],
    ribs: &[MainRib],
    pools: &BgpPools,
    rank_of: &[usize],
    opts: &SimOptions,
) -> NodeChanges {
    let node = &nodes[ni];
    let device = &devices[ni];
    let mut clock = node.clock;
    let mut updates = Vec::new();
    for session in &node.sessions {
        if !session.established {
            continue;
        }
        let Some(pi) = session.peer_device else {
            continue; // external announcements were injected at init
        };
        let peer_node = &nodes[pi];
        let peer_device = &devices[pi];
        let peer_ran_first = matches!(opts.scheduler, SchedulerMode::Colored)
            && rank_of[pi] < rank_of[ni];
        // Pull order: previous sweep's delta, then (Gauss–Seidel) this
        // sweep's if the peer already ran.
        let mut deltas: Vec<&crate::rib::RibDelta<BgpRoute>> = vec![&peer_node.delta_prev];
        if peer_ran_first {
            deltas.push(&peer_node.delta_cur);
        }
        let session_is_ebgp = session.is_ebgp(node.asn);
        let peer_key = PeerKey::Peer(session.peer_ip);
        let Some(peer_nidx) = session.peer_neighbor_idx else { continue };
        for delta in deltas {
            for &prefix in &delta.removed {
                updates.push(RibInUpdate {
                    prefix,
                    peer: peer_key,
                    route: None,
                });
            }
            for route in &delta.added {
                let exported = bgp::export_route(
                    peer_device,
                    peer_node.asn,
                    session_is_ebgp,
                    session.peer_ip, // the peer's address on this session
                    peer_nidx,
                    route,
                );
                let update = match exported {
                    None => RibInUpdate {
                        // An unexportable replacement acts as a withdraw
                        // of whatever we previously held from this peer.
                        prefix: route.attrs.prefix,
                        peer: peer_key,
                        route: None,
                    },
                    Some(attrs) => {
                        let arrival = clock;
                        match bgp::import_route(
                            device,
                            node.asn,
                            session,
                            attrs,
                            peer_node.router_id,
                            &ribs[ni],
                            &pools.attrs,
                            arrival,
                        ) {
                            Some(r) => {
                                clock += 1;
                                RibInUpdate {
                                    prefix: r.attrs.prefix,
                                    peer: peer_key,
                                    route: Some(r),
                                }
                            }
                            None => RibInUpdate {
                                prefix: route.attrs.prefix,
                                peer: peer_key,
                                route: None,
                            },
                        }
                    }
                };
                updates.push(update);
            }
        }
    }
    NodeChanges {
        node: ni,
        updates,
        new_clock: clock,
        poisoned: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::parse_device;

    fn devs(configs: &[(&str, &str)]) -> Vec<Device> {
        configs
            .iter()
            .map(|(n, t)| parse_device(n, t).0)
            .collect()
    }

    /// Two routers, eBGP, each redistributing a LAN.
    fn ebgp_pair() -> Vec<Device> {
        devs(&[
            (
                "r1",
                "hostname r1\ninterface e0\n ip address 10.0.0.1/31\ninterface lan\n ip address 10.1.0.1/24\nrouter bgp 65001\n bgp router-id 1.1.1.1\n redistribute connected\n neighbor 10.0.0.0 remote-as 65002\n",
            ),
            (
                "r2",
                "hostname r2\ninterface e0\n ip address 10.0.0.0/31\ninterface lan\n ip address 10.2.0.1/24\nrouter bgp 65002\n bgp router-id 2.2.2.2\n redistribute connected\n neighbor 10.0.0.1 remote-as 65001\n",
            ),
        ])
    }

    #[test]
    fn ebgp_pair_exchanges_routes() {
        let dp = simulate(&ebgp_pair(), &Environment::none(), &SimOptions::default());
        assert!(dp.convergence.converged);
        let r1 = dp.device("r1").unwrap();
        // r1 must have learned 10.2.0.0/24 via eBGP.
        let (p, routes) = r1.main_rib.lookup("10.2.0.5".parse().unwrap()).unwrap();
        assert_eq!(p.to_string(), "10.2.0.0/24");
        assert_eq!(routes[0].protocol, RouteProtocol::Ebgp);
        assert_eq!(
            routes[0].next_hop,
            MainNextHop::Via("10.0.0.0".parse().unwrap())
        );
        // And the AS path must carry the peer's AS.
        let best = &r1.bgp.best[&"10.2.0.0/24".parse().unwrap()];
        assert_eq!(best.attrs.as_path.0, vec![Asn(65002)]);
        // FIB resolves out e0.
        match &r1.fib.lookup("10.2.0.5".parse().unwrap()).unwrap().action {
            crate::fib::FibAction::Forward(hops) => assert_eq!(hops[0].iface, "e0"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deterministic_across_runs_and_modes() {
        let d = ebgp_pair();
        let dp1 = simulate(&d, &Environment::none(), &SimOptions::default());
        let dp2 = simulate(&d, &Environment::none(), &SimOptions::default());
        for (a, b) in dp1.devices.iter().zip(dp2.devices.iter()) {
            assert_eq!(a.main_rib, b.main_rib);
        }
        // Serial and parallel must agree byte-for-byte.
        let dp3 = simulate(
            &d,
            &Environment::none(),
            &SimOptions {
                parallel: false,
                ..SimOptions::default()
            },
        );
        for (a, b) in dp1.devices.iter().zip(dp3.devices.iter()) {
            assert_eq!(a.main_rib, b.main_rib);
        }
    }

    #[test]
    fn external_announcement_propagates() {
        let mut env = Environment::none();
        // r2 has an external peer 10.9.0.2 announcing a default route.
        env.announcements.push(crate::env::ExternalAnnouncement::simple(
            "r2",
            "10.9.0.2".parse().unwrap(),
            Asn(174),
            "0.0.0.0/0".parse().unwrap(),
        ));
        let mut devices = ebgp_pair();
        // Give r2 the upstream interface + neighbor.
        let (d2, diags) = parse_device(
            "r2",
            "hostname r2\ninterface e0\n ip address 10.0.0.0/31\ninterface lan\n ip address 10.2.0.1/24\ninterface up\n ip address 10.9.0.1/24\nrouter bgp 65002\n bgp router-id 2.2.2.2\n redistribute connected\n neighbor 10.0.0.1 remote-as 65001\n neighbor 10.9.0.2 remote-as 174\n",
        );
        assert!(diags.items().is_empty());
        devices[1] = d2;
        let dp = simulate(&devices, &env, &SimOptions::default());
        assert!(dp.convergence.converged);
        // r1 learns the default route through r2 (AS path 65002 174).
        let r1 = dp.device("r1").unwrap();
        let best = &r1.bgp.best[&Prefix::DEFAULT];
        assert_eq!(best.attrs.as_path.0, vec![Asn(65002), Asn(174)]);
    }

    #[test]
    fn session_blocked_by_acl_means_no_routes() {
        let mut devices = ebgp_pair();
        let (d1, _) = parse_device(
            "r1",
            "hostname r1\ninterface e0\n ip address 10.0.0.1/31\n ip access-group BLOCK out\ninterface lan\n ip address 10.1.0.1/24\nrouter bgp 65001\n redistribute connected\n neighbor 10.0.0.0 remote-as 65002\nip access-list extended BLOCK\n 10 deny tcp any any eq 179\n 20 permit ip any any\n",
        );
        devices[0] = d1;
        let dp = simulate(&devices, &Environment::none(), &SimOptions::default());
        let r1 = dp.device("r1").unwrap();
        assert!(
            r1.main_rib.lookup("10.2.0.5".parse().unwrap()).is_none(),
            "session must not establish through the BGP-blocking ACL"
        );
    }

    #[test]
    fn ibgp_over_ospf_with_next_hop_self() {
        // r1 -(ospf)- r2; iBGP between loopbacks; r1 has an eBGP-learned
        // route (via environment) it re-advertises to r2.
        let devices = devs(&[
            (
                "r1",
                "hostname r1\ninterface e0\n ip address 10.0.0.1/31\n ip ospf area 0\ninterface lo0\n ip address 1.1.1.1/32\n ip ospf area 0\n ip ospf passive\ninterface up\n ip address 10.9.0.1/24\nrouter ospf 1\nrouter bgp 65000\n bgp router-id 1.1.1.1\n neighbor 2.2.2.2 remote-as 65000\n neighbor 2.2.2.2 next-hop-self\n neighbor 10.9.0.2 remote-as 174\n",
            ),
            (
                "r2",
                "hostname r2\ninterface e0\n ip address 10.0.0.0/31\n ip ospf area 0\ninterface lo0\n ip address 2.2.2.2/32\n ip ospf area 0\n ip ospf passive\nrouter ospf 1\nrouter bgp 65000\n bgp router-id 2.2.2.2\n neighbor 1.1.1.1 remote-as 65000\n",
            ),
        ]);
        let mut env = Environment::none();
        env.announcements.push(crate::env::ExternalAnnouncement::simple(
            "r1",
            "10.9.0.2".parse().unwrap(),
            Asn(174),
            "203.0.113.0/24".parse().unwrap(),
        ));
        let dp = simulate(&devices, &env, &SimOptions::default());
        assert!(dp.convergence.converged);
        let r2 = dp.device("r2").unwrap();
        let p: Prefix = "203.0.113.0/24".parse().unwrap();
        let best = r2.bgp.best.get(&p).expect("iBGP route present");
        assert_eq!(best.attrs.protocol, RouteProtocol::Ibgp);
        // next-hop-self: next hop must be r1's loopback (the session
        // source), which r2 resolves via OSPF.
        assert_eq!(best.attrs.next_hop, "1.1.1.1".parse().unwrap());
        assert!(best.igp_cost > 0, "resolved through OSPF");
        // Main RIB AD for iBGP is 200.
        let (_, routes) = r2.main_rib.lookup("203.0.113.7".parse().unwrap()).unwrap();
        assert_eq!(routes[0].admin_distance, 200);
    }

    #[test]
    fn import_policy_sets_local_pref() {
        let mut devices = ebgp_pair();
        let (d1, diags) = parse_device(
            "r1",
            "hostname r1\ninterface e0\n ip address 10.0.0.1/31\ninterface lan\n ip address 10.1.0.1/24\nrouter bgp 65001\n redistribute connected\n neighbor 10.0.0.0 remote-as 65002\n neighbor 10.0.0.0 route-map SETLP in\nroute-map SETLP permit 10\n set local-preference 250\n",
        );
        assert!(diags.items().is_empty(), "{:?}", diags.items());
        devices[0] = d1;
        let dp = simulate(&devices, &Environment::none(), &SimOptions::default());
        let r1 = dp.device("r1").unwrap();
        let best = &r1.bgp.best[&"10.2.0.0/24".parse().unwrap()];
        assert_eq!(best.attrs.local_pref, 250);
    }

    #[test]
    fn undefined_import_policy_fails_closed() {
        let mut devices = ebgp_pair();
        let (d1, diags) = parse_device(
            "r1",
            "hostname r1\ninterface e0\n ip address 10.0.0.1/31\ninterface lan\n ip address 10.1.0.1/24\nrouter bgp 65001\n redistribute connected\n neighbor 10.0.0.0 remote-as 65002\n neighbor 10.0.0.0 route-map NOPE in\n",
        );
        // The reference is undefined but parse succeeds (Lesson 3).
        assert!(diags.items().is_empty());
        devices[0] = d1;
        let dp = simulate(&devices, &Environment::none(), &SimOptions::default());
        let r1 = dp.device("r1").unwrap();
        assert!(
            !r1.bgp.best.contains_key(&"10.2.0.0/24".parse().unwrap()),
            "undefined import policy must reject all routes"
        );
    }

    #[test]
    fn link_failure_environment() {
        let mut env = Environment::none();
        env.failed_interfaces.push(("r1".into(), "e0".into()));
        let dp = simulate(&ebgp_pair(), &env, &SimOptions::default());
        let r1 = dp.device("r1").unwrap();
        assert!(r1.main_rib.lookup("10.2.0.5".parse().unwrap()).is_none());
        // The connected subnet of the failed interface is gone too.
        assert!(r1.main_rib.lookup("10.0.0.0".parse().unwrap()).is_none());
    }

    #[test]
    fn mem_report_populated() {
        let dp = simulate(&ebgp_pair(), &Environment::none(), &SimOptions::default());
        assert!(dp.mem.total_bgp_routes > 0);
        assert!(dp.mem.unique_attr_bundles > 0);
        assert!(dp.mem.sharing_factor() >= 1.0);
    }
}
