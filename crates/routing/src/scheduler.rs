//! Convergence scheduling: protocol-specific graph coloring (§4.1.2).
//!
//! *"For each routing protocol, [Batfish] computes the adjacencies, colors
//! the graph, and allows only nodes of the same color to participate in
//! the message exchange at the same time."*
//!
//! The coloring turns each sweep into a Gauss–Seidel pass: when a node of
//! color *c* runs, every adjacent node has a different color, so it sees
//! either the neighbor's already-updated state from this sweep (lower
//! colors) or the stable state from the previous sweep (higher colors) —
//! never a half-updated peer. Same-color nodes are pairwise non-adjacent
//! and can run in parallel. This eliminates the lockstep re-advertisement
//! loop of the paper's Figure 1b.

/// How the engine schedules route exchange.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerMode {
    /// Colored Gauss–Seidel sweeps (production mode).
    #[default]
    Colored,
    /// All nodes exchange simultaneously against previous-sweep state
    /// (Jacobi). Exhibits the Figure 1b oscillation; kept for the A-1
    /// ablation and the "original engine" comparison.
    Lockstep,
}

/// Greedy graph coloring over an adjacency list. Returns one color per
/// node; adjacent nodes always receive different colors. Deterministic:
/// nodes are colored in index order with the smallest available color
/// (Welsh–Powell ordering is deliberately *not* used — index order keeps
/// colors stable when the snapshot changes slightly, which keeps paths
/// stable across snapshots, a §4.1.2 goal).
pub fn color_graph(adj: &[Vec<usize>]) -> Vec<u32> {
    let n = adj.len();
    let mut colors: Vec<Option<u32>> = vec![None; n];
    let mut used: Vec<bool> = Vec::new();
    for v in 0..n {
        used.clear();
        used.resize(n + 1, false);
        for &u in &adj[v] {
            if u < n {
                if let Some(c) = colors[u] {
                    used[c as usize] = true;
                }
            }
        }
        // With n+1 slots and at most n neighbors a free color always
        // exists; the fallback keeps this total without a panic path.
        let c = (0..=n as u32).find(|&c| !used[c as usize]).unwrap_or(0);
        colors[v] = Some(c);
    }
    colors.into_iter().map(|c| c.unwrap_or(0)).collect()
}

/// Groups node indices by color, colors ascending, node order ascending
/// within a color — the deterministic sweep order.
pub fn color_groups(colors: &[u32]) -> Vec<Vec<usize>> {
    let max = colors.iter().copied().max().map(|m| m as usize + 1).unwrap_or(0);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); max];
    for (i, &c) in colors.iter().enumerate() {
        groups[c as usize].push(i);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_proper(adj: &[Vec<usize>], colors: &[u32]) {
        for (v, ns) in adj.iter().enumerate() {
            for &u in ns {
                assert_ne!(colors[v], colors[u], "edge ({v},{u}) monochrome");
            }
        }
    }

    #[test]
    fn path_graph_two_colors() {
        let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        let colors = color_graph(&adj);
        assert_proper(&adj, &colors);
        assert!(colors.iter().copied().max().unwrap() <= 1);
    }

    #[test]
    fn odd_cycle_three_colors() {
        let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        let colors = color_graph(&adj);
        assert_proper(&adj, &colors);
        assert_eq!(colors.iter().copied().max().unwrap(), 2);
    }

    #[test]
    fn empty_and_isolated() {
        assert!(color_graph(&[]).is_empty());
        let adj = vec![vec![], vec![], vec![]];
        let colors = color_graph(&adj);
        assert_eq!(colors, vec![0, 0, 0], "isolated nodes share color 0");
    }

    #[test]
    fn deterministic() {
        let adj = vec![vec![1, 2], vec![0], vec![0], vec![]];
        assert_eq!(color_graph(&adj), color_graph(&adj));
    }

    #[test]
    fn groups_partition_nodes() {
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        let colors = color_graph(&adj);
        let groups = color_groups(&colors);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
        // Every node appears exactly once.
        let mut seen = vec![false; 3];
        for g in &groups {
            for &v in g {
                assert!(!seen[v]);
                seen[v] = true;
            }
        }
    }

    #[test]
    fn star_graph_center_differs() {
        let adj = vec![vec![1, 2, 3, 4], vec![0], vec![0], vec![0], vec![0]];
        let colors = color_graph(&adj);
        assert_proper(&adj, &colors);
        assert!(colors.iter().copied().max().unwrap() <= 1, "star is bipartite");
    }
}
