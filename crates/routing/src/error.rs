//! Typed errors for the routing stage.
//!
//! Lesson 3 applied to the simulator: unexpected model states are values,
//! not aborts. Every reachable failure on a library path maps to a
//! [`RoutingError`] variant so callers (the facade, the chaos harness, CI)
//! can quarantine the offending device or degrade the query instead of
//! crashing the whole analysis.

use batnet_net::governor::Exhaustion;
use batnet_net::{Ip, Prefix};
use std::fmt;

/// What went wrong inside the routing stage.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RoutingError {
    /// A lookup named a device the data plane does not contain.
    UnknownDevice {
        /// The requested device name.
        device: String,
    },
    /// A FIB lookup found no entry covering the destination.
    NoRoute {
        /// The destination that missed.
        dst: Ip,
    },
    /// A FIB entry was expected to forward but drops instead
    /// (discard route, or a next hop that never resolved).
    NotForwarding {
        /// The entry's prefix.
        prefix: Prefix,
        /// `"discard"` or `"unresolved"`.
        action: &'static str,
    },
    /// The fixed point (or another governed loop) hit a resource budget.
    Exhausted(Exhaustion),
    /// A per-device computation panicked and was contained. The device
    /// should be quarantined by the caller.
    DevicePoisoned {
        /// The device whose computation panicked.
        device: String,
        /// The panic payload, when it was a string.
        detail: String,
    },
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::UnknownDevice { device } => {
                write!(f, "unknown device {device:?}")
            }
            RoutingError::NoRoute { dst } => write!(f, "no route to {dst}"),
            RoutingError::NotForwarding { prefix, action } => {
                write!(f, "entry for {prefix} does not forward ({action})")
            }
            RoutingError::Exhausted(e) => write!(f, "{e}"),
            RoutingError::DevicePoisoned { device, detail } => {
                write!(f, "device {device:?} poisoned the simulation: {detail}")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

impl From<Exhaustion> for RoutingError {
    fn from(e: Exhaustion) -> RoutingError {
        RoutingError::Exhausted(e)
    }
}
