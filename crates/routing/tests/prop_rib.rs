//! Property tests for the main RIB: longest-prefix-match against a
//! brute-force oracle, and offer/withdraw algebra.

use batnet_config::vi::RouteProtocol;
use batnet_net::{Ip, Prefix};
use batnet_routing::{MainNextHop, MainRib, MainRoute};
use proptest::prelude::*;

fn arb_route() -> impl Strategy<Value = MainRoute> {
    (
        any::<u32>(),
        0u8..=32,
        prop::sample::select(vec![
            (RouteProtocol::Connected, 0u8),
            (RouteProtocol::Static, 1),
            (RouteProtocol::Ebgp, 20),
            (RouteProtocol::Ospf, 110),
            (RouteProtocol::Ibgp, 200),
        ]),
        0u32..4,
        any::<u32>(),
    )
        .prop_map(|(net, len, (protocol, ad), metric, nh)| MainRoute {
            prefix: Prefix::new(Ip(net), len),
            admin_distance: ad,
            metric,
            protocol,
            next_hop: if protocol == RouteProtocol::Connected {
                MainNextHop::Connected {
                    iface: format!("e{}", nh % 4),
                }
            } else {
                MainNextHop::Via(Ip(nh))
            },
        })
}

/// Oracle: best routes for `ip` computed by scanning all candidates.
fn oracle<'r>(routes: &'r [MainRoute], ip: Ip) -> Vec<&'r MainRoute> {
    let best_len = routes
        .iter()
        .filter(|r| r.prefix.contains(ip))
        .map(|r| r.prefix.len())
        .max();
    let Some(best_len) = best_len else { return vec![] };
    let candidates: Vec<&MainRoute> = routes
        .iter()
        .filter(|r| r.prefix.contains(ip) && r.prefix.len() == best_len)
        .collect();
    let best_key = candidates
        .iter()
        .map(|r| (r.admin_distance, r.metric))
        .min()
        .expect("non-empty");
    candidates
        .into_iter()
        .filter(|r| (r.admin_distance, r.metric) == best_key)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lpm_matches_oracle(routes in prop::collection::vec(arb_route(), 1..40), probe in any::<u32>()) {
        let mut rib = MainRib::new();
        for r in &routes {
            rib.offer(r.clone());
        }
        let ip = Ip(probe);
        let got: Vec<MainRoute> = rib
            .lookup(ip)
            .map(|(_, rs)| rs.to_vec())
            .unwrap_or_default();
        let want = oracle(&routes, ip);
        // Compare as sets (dedup: identical routes offered twice count once).
        let mut got_set: Vec<String> = got.iter().map(|r| format!("{r}")).collect();
        got_set.sort();
        got_set.dedup();
        let mut want_set: Vec<String> = want.iter().map(|r| format!("{r}")).collect();
        want_set.sort();
        want_set.dedup();
        prop_assert_eq!(got_set, want_set);
    }

    #[test]
    fn withdraw_restores_runner_up(routes in prop::collection::vec(arb_route(), 1..20)) {
        // Offer everything, withdraw all eBGP routes; the RIB must behave
        // as if they were never offered.
        let mut with_all = MainRib::new();
        for r in &routes {
            with_all.offer(r.clone());
        }
        let prefixes: Vec<Prefix> = routes.iter().map(|r| r.prefix).collect();
        for p in &prefixes {
            with_all.withdraw(*p, RouteProtocol::Ebgp);
        }
        let mut without: MainRib = MainRib::new();
        for r in routes.iter().filter(|r| r.protocol != RouteProtocol::Ebgp) {
            without.offer(r.clone());
        }
        for p in &prefixes {
            let a: Vec<_> = with_all.best(p).to_vec();
            let b: Vec<_> = without.best(p).to_vec();
            prop_assert_eq!(a, b, "prefix {}", p);
        }
    }

    #[test]
    fn offer_is_idempotent(routes in prop::collection::vec(arb_route(), 1..20)) {
        let mut once = MainRib::new();
        let mut twice = MainRib::new();
        for r in &routes {
            once.offer(r.clone());
            twice.offer(r.clone());
            twice.offer(r.clone());
        }
        prop_assert_eq!(once, twice);
    }
}
