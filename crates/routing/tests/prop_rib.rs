//! Randomized property tests for the main RIB: longest-prefix-match
//! against a brute-force oracle, and offer/withdraw algebra. Routes are
//! generated from the workspace's seeded PRNG (deterministic across
//! runs; failures name the case index).

use batnet_config::vi::RouteProtocol;
use batnet_net::{Ip, Prefix, Rng};
use batnet_routing::{MainNextHop, MainRib, MainRoute};

const CASES: u64 = 256;

fn case_rng(test: u64, case: u64) -> Rng {
    Rng::new(0x51B_0B0E ^ (test << 32) ^ case)
}

fn gen_route(rng: &mut Rng) -> MainRoute {
    const PROTOS: [(RouteProtocol, u8); 5] = [
        (RouteProtocol::Connected, 0),
        (RouteProtocol::Static, 1),
        (RouteProtocol::Ebgp, 20),
        (RouteProtocol::Ospf, 110),
        (RouteProtocol::Ibgp, 200),
    ];
    let net = rng.next_u32();
    let len = rng.below(33) as u8;
    let (protocol, ad) = PROTOS[rng.index(PROTOS.len())];
    let metric = rng.below(4) as u32;
    let nh = rng.next_u32();
    MainRoute {
        prefix: Prefix::new(Ip(net), len),
        admin_distance: ad,
        metric,
        protocol,
        next_hop: if protocol == RouteProtocol::Connected {
            MainNextHop::Connected {
                iface: format!("e{}", nh % 4),
            }
        } else {
            MainNextHop::Via(Ip(nh))
        },
    }
}

fn gen_routes(rng: &mut Rng, min: usize, max: usize) -> Vec<MainRoute> {
    let n = min + rng.index(max - min);
    (0..n).map(|_| gen_route(rng)).collect()
}

/// Oracle: best routes for `ip` computed by scanning all candidates.
fn oracle<'r>(routes: &'r [MainRoute], ip: Ip) -> Vec<&'r MainRoute> {
    let best_len = routes
        .iter()
        .filter(|r| r.prefix.contains(ip))
        .map(|r| r.prefix.len())
        .max();
    let Some(best_len) = best_len else { return vec![] };
    let candidates: Vec<&MainRoute> = routes
        .iter()
        .filter(|r| r.prefix.contains(ip) && r.prefix.len() == best_len)
        .collect();
    let best_key = candidates
        .iter()
        .map(|r| (r.admin_distance, r.metric))
        .min()
        .expect("non-empty");
    candidates
        .into_iter()
        .filter(|r| (r.admin_distance, r.metric) == best_key)
        .collect()
}

#[test]
fn lpm_matches_oracle() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let routes = gen_routes(&mut rng, 1, 40);
        let probe = rng.next_u32();
        let mut rib = MainRib::new();
        for r in &routes {
            rib.offer(r.clone());
        }
        let ip = Ip(probe);
        let got: Vec<MainRoute> = rib
            .lookup(ip)
            .map(|(_, rs)| rs.to_vec())
            .unwrap_or_default();
        let want = oracle(&routes, ip);
        // Compare as sets (dedup: identical routes offered twice count once).
        let mut got_set: Vec<String> = got.iter().map(|r| format!("{r}")).collect();
        got_set.sort();
        got_set.dedup();
        let mut want_set: Vec<String> = want.iter().map(|r| format!("{r}")).collect();
        want_set.sort();
        want_set.dedup();
        assert_eq!(got_set, want_set, "case {case}: probe {ip}");
    }
}

#[test]
fn withdraw_restores_runner_up() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let routes = gen_routes(&mut rng, 1, 20);
        // Offer everything, withdraw all eBGP routes; the RIB must behave
        // as if they were never offered.
        let mut with_all = MainRib::new();
        for r in &routes {
            with_all.offer(r.clone());
        }
        let prefixes: Vec<Prefix> = routes.iter().map(|r| r.prefix).collect();
        for p in &prefixes {
            with_all.withdraw(*p, RouteProtocol::Ebgp);
        }
        let mut without: MainRib = MainRib::new();
        for r in routes.iter().filter(|r| r.protocol != RouteProtocol::Ebgp) {
            without.offer(r.clone());
        }
        for p in &prefixes {
            let a: Vec<_> = with_all.best(p).to_vec();
            let b: Vec<_> = without.best(p).to_vec();
            assert_eq!(a, b, "case {case}: prefix {p}");
        }
    }
}

#[test]
fn offer_is_idempotent() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let routes = gen_routes(&mut rng, 1, 20);
        let mut once = MainRib::new();
        let mut twice = MainRib::new();
        for r in &routes {
            once.offer(r.clone());
            twice.offer(r.clone());
            twice.offer(r.clone());
        }
        assert_eq!(once, twice, "case {case}");
    }
}
