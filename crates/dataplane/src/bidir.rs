//! Bidirectional reachability with firewall sessions (§4.2.3).
//!
//! *"We first do a forward dataflow analysis, after which the reachable
//! sets at nodes for stateful devices represent all firewall sessions
//! that could be installed. We then instrument the dataflow graph by …
//! inserting new [edges] to represent the session 'fast path' for
//! matching return traffic, and we then run the analysis in the other
//! direction."*
//!
//! Implementation: the forward pass's reach sets at each stateful
//! device's `OutIface` nodes are the installable sessions (post-NAT
//! egress flows). The instrumented graph gains, per stateful-device
//! ingress interface, a fast-path edge `PreIn → PreFwd` labeled with the
//! *mirrored* session set (src/dst swapped via a variable renaming), so
//! return traffic bypasses ACLs and zone policy exactly like the
//! concrete engine's session match.
//!
//! Known approximation (recorded in DESIGN.md): the symbolic fast path
//! does not un-NAT return traffic; stateful devices that also NAT are
//! handled exactly by the concrete engine and approximately here.

use crate::graph::{EdgeLabel, ForwardingGraph, NodeKind};
use crate::reach::{ReachAnalysis, ReachResult};
use crate::vars::PacketVars;
use batnet_bdd::{Bdd, NodeId};
use batnet_config::vi::Device;

/// The outcome of a bidirectional analysis.
pub struct BidirResult {
    /// Forward pass result (on the original graph).
    pub forward: ReachResult,
    /// Return pass result (on the instrumented graph).
    pub reverse: ReachResult,
    /// The instrumented graph the reverse pass ran on.
    pub instrumented: ForwardingGraph,
}

/// Runs forward reachability from `sources`, instruments session fast
/// paths on every stateful device, and runs the reverse analysis from
/// `return_sources` (typically the destination-side interfaces).
pub fn bidirectional(
    bdd: &mut Bdd,
    vars: &PacketVars,
    graph: &ForwardingGraph,
    devices: &[Device],
    sources: &[(usize, NodeId)],
    return_sources: &[(usize, NodeId)],
) -> BidirResult {
    let analysis = ReachAnalysis::new(graph);
    let forward = analysis.forward(bdd, sources);

    // Collect per-stateful-device session sets: union of OutIface reach.
    let swap = vars.register_swap(bdd);
    let mut instrumented = clone_graph(graph);
    for device in devices.iter().filter(|d| d.stateful) {
        let mut sessions = NodeId::FALSE;
        for (i, kind) in graph.nodes.iter().enumerate() {
            if let NodeKind::OutIface(d, _) = kind {
                if d == &device.name {
                    sessions = bdd.or(sessions, forward.reach[i]);
                }
            }
        }
        if sessions == NodeId::FALSE {
            continue;
        }
        // Sessions match on the 5-tuple only: drop flags/ICMP/bookkeeping
        // constraints before mirroring.
        let tuple = vars.project_five_tuple(bdd, sessions);
        let mirrored = bdd.rename(tuple, swap);
        // Fast-path edges: every ingress interface of the device may see
        // the return traffic; it bypasses straight to PreFwd.
        let Some(pre_fwd) = instrumented.node(&NodeKind::PreFwd(device.name.clone())) else {
            continue;
        };
        for iface in device.active_interfaces() {
            if let Some(pre_in) =
                instrumented.node(&NodeKind::PreIn(device.name.clone(), iface.name.clone()))
            {
                instrumented.add_edge(pre_in, pre_fwd, EdgeLabel::Bdd(mirrored));
            }
        }
    }

    let rev_analysis = ReachAnalysis::new(&instrumented);
    let reverse = rev_analysis.forward(bdd, return_sources);
    BidirResult {
        forward,
        reverse,
        instrumented,
    }
}

fn clone_graph(g: &ForwardingGraph) -> ForwardingGraph {
    let mut out = ForwardingGraph::empty();
    for kind in &g.nodes {
        out.add_node_public(kind.clone());
    }
    for e in &g.edges {
        out.add_edge(e.from, e.to, e.label);
    }
    out
}
