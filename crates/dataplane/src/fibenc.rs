//! FIB compilation: longest-prefix-match semantics to BDDs.
//!
//! §4.2.1: *"For real networks, the edge constraints are richer since
//! they also encode the semantics of longest-prefix matching."* A FIB
//! entry's edge set is its destination prefix minus every strictly longer
//! prefix in the table — computed by walking entries from longest to
//! shortest while subtracting what has been claimed.

use crate::vars::{Field, PacketVars};
use batnet_bdd::{Bdd, NodeId};
use batnet_routing::{Fib, FibAction, FibNextHop};
use std::collections::BTreeMap;

/// A compiled FIB.
pub struct FibBdd {
    /// Per resolved next hop: the packets forwarded to it.
    pub forwards: BTreeMap<FibNextHop, NodeId>,
    /// Packets matching a discard route.
    pub discarded: NodeId,
    /// Packets matching a route whose next hop did not resolve.
    pub unresolved: NodeId,
    /// Packets matching nothing (no route).
    pub no_route: NodeId,
}

/// Compiles a FIB against the variable layout.
pub fn compile_fib(bdd: &mut Bdd, vars: &PacketVars, fib: &Fib) -> FibBdd {
    // Longest-prefix first: each entry claims what remains of its prefix.
    let mut order: Vec<usize> = (0..fib.entries().len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(fib.entries()[i].prefix.len()));
    let mut claimed = NodeId::FALSE;
    let mut forwards: BTreeMap<FibNextHop, NodeId> = BTreeMap::new();
    let mut discarded = NodeId::FALSE;
    let mut unresolved = NodeId::FALSE;
    for &i in &order {
        let entry = &fib.entries()[i];
        let prefix_set = vars.ip_prefix(bdd, Field::DstIp, entry.prefix);
        let mine = bdd.diff(prefix_set, claimed);
        claimed = bdd.or(claimed, prefix_set);
        if mine == NodeId::FALSE {
            continue;
        }
        match &entry.action {
            FibAction::Forward(hops) => {
                for hop in hops {
                    let slot = forwards.entry(hop.clone()).or_insert(NodeId::FALSE);
                    *slot = bdd.or(*slot, mine);
                }
            }
            FibAction::Discard => discarded = bdd.or(discarded, mine),
            FibAction::Unresolved => unresolved = bdd.or(unresolved, mine),
        }
    }
    let no_route = bdd.not(claimed);
    FibBdd {
        forwards,
        discarded,
        unresolved,
        no_route,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::vi::RouteProtocol;
    use batnet_net::{Flow, Ip, Rng};
    use batnet_routing::{MainNextHop, MainRib, MainRoute};

    fn rib_fixture() -> MainRib {
        let mut rib = MainRib::new();
        let mk = |p: &str, nh: MainNextHop, ad: u8| MainRoute {
            prefix: p.parse().unwrap(),
            admin_distance: ad,
            metric: 0,
            protocol: RouteProtocol::Static,
            next_hop: nh,
        };
        rib.offer(mk("10.0.0.0/24", MainNextHop::Connected { iface: "e1".into() }, 0));
        rib.offer(mk("10.0.1.0/24", MainNextHop::Connected { iface: "e2".into() }, 0));
        rib.offer(mk("10.0.0.128/25", MainNextHop::Via("10.0.1.9".parse().unwrap()), 1));
        rib.offer(mk("0.0.0.0/0", MainNextHop::Discard, 250));
        rib
    }

    fn contains(bdd: &mut Bdd, vars: &PacketVars, set: NodeId, dst: &str) -> bool {
        let f = Flow::icmp_echo(Ip::new(1, 1, 1, 1), dst.parse().unwrap());
        let fb = vars.flow(bdd, &f);
        bdd.and(set, fb) != NodeId::FALSE
    }

    #[test]
    fn lpm_carves_out_longer_prefixes() {
        let rib = rib_fixture();
        let fib = Fib::build(&rib);
        let (mut bdd, vars) = PacketVars::new(0);
        let compiled = compile_fib(&mut bdd, &vars, &fib);
        // 10.0.0.5 → e1 directly; 10.0.0.200 → the /25 via e2.
        let e1_direct = compiled
            .forwards
            .iter()
            .find(|(h, _)| h.iface == "e1")
            .map(|(_, &s)| s)
            .unwrap();
        assert!(contains(&mut bdd, &vars, e1_direct, "10.0.0.5"));
        assert!(
            !contains(&mut bdd, &vars, e1_direct, "10.0.0.200"),
            "the /25 must carve out the top half of the /24"
        );
        let via_25 = compiled
            .forwards
            .iter()
            .find(|(h, _)| h.gateway == Some("10.0.1.9".parse().unwrap()))
            .map(|(_, &s)| s)
            .unwrap();
        assert!(contains(&mut bdd, &vars, via_25, "10.0.0.200"));
        // Everything else falls to the discard default.
        assert!(contains(&mut bdd, &vars, compiled.discarded, "8.8.8.8"));
        assert!(!contains(&mut bdd, &vars, compiled.discarded, "10.0.0.5"));
        // The table has a default: no packet is route-less.
        assert_eq!(compiled.no_route, NodeId::FALSE);
    }

    #[test]
    fn no_route_set_without_default() {
        let mut rib = MainRib::new();
        rib.offer(MainRoute {
            prefix: "10.0.0.0/24".parse().unwrap(),
            admin_distance: 0,
            metric: 0,
            protocol: RouteProtocol::Connected,
            next_hop: MainNextHop::Connected { iface: "e1".into() },
        });
        let fib = Fib::build(&rib);
        let (mut bdd, vars) = PacketVars::new(0);
        let compiled = compile_fib(&mut bdd, &vars, &fib);
        assert!(contains(&mut bdd, &vars, compiled.no_route, "9.9.9.9"));
        assert!(!contains(&mut bdd, &vars, compiled.no_route, "10.0.0.9"));
    }

    /// Differential property: for seeded random destinations, the BDD
    /// partition agrees with the concrete `Fib::lookup`.
    #[test]
    fn bdd_partition_matches_concrete_lookup() {
        let rib = rib_fixture();
        let fib = Fib::build(&rib);
        let (mut bdd, vars) = PacketVars::new(0);
        let compiled = compile_fib(&mut bdd, &vars, &fib);
        for case in 0..256u64 {
            let mut rng = Rng::new(0xF1B_E2C ^ case);
            // Half the probes land inside the fixture's 10.0.x space so
            // the interesting buckets actually get exercised.
            let dst = if rng.flip() {
                0x0a000000 | (rng.next_u32() & 0x0003ffff)
            } else {
                rng.next_u32()
            };
            let ip = Ip(dst);
            let f = Flow::icmp_echo(Ip::new(1, 1, 1, 1), ip);
            let fb = vars.flow(&mut bdd, &f);
            // Which symbolic bucket holds the packet?
            let mut buckets: Vec<(String, NodeId)> = compiled
                .forwards
                .iter()
                .map(|(h, &s)| (format!("{}:{:?}", h.iface, h.gateway), s))
                .collect();
            buckets.push(("discard".into(), compiled.discarded));
            buckets.push(("unresolved".into(), compiled.unresolved));
            buckets.push(("noroute".into(), compiled.no_route));
            let hits: Vec<String> = buckets
                .iter()
                .filter(|(_, s)| bdd.and(*s, fb) != NodeId::FALSE)
                .map(|(n, _)| n.clone())
                .collect();
            // Concrete expectation.
            let expect: Vec<String> = match fib.lookup(ip) {
                None => vec!["noroute".into()],
                Some(e) => match &e.action {
                    FibAction::Discard => vec!["discard".into()],
                    FibAction::Unresolved => vec!["unresolved".into()],
                    FibAction::Forward(hops) => hops
                        .iter()
                        .map(|h| format!("{}:{:?}", h.iface, h.gateway))
                        .collect(),
                },
            };
            let mut hits_sorted = hits.clone();
            hits_sorted.sort();
            let mut expect_sorted = expect.clone();
            expect_sorted.sort();
            assert_eq!(hits_sorted, expect_sorted, "case {case}: dst {ip}");
        }
    }
}
