//! ACL compilation: first-match semantics to BDDs.
//!
//! An ACL line matches only packets that no earlier line matched, so the
//! compilation threads a "remaining" set through the lines. The per-line
//! hit sets are kept: they power violation annotation (§4.4.3, "the …
//! ACL entries that they hit along their path") and the ACL-shadowing
//! lint.

use crate::vars::PacketVars;
use batnet_bdd::{Bdd, NodeId};
use batnet_config::vi::{Acl, AclAction};

/// A compiled ACL.
pub struct AclBdd {
    /// Packets the ACL permits.
    pub permits: NodeId,
    /// Packets the ACL denies (complement of `permits` — kept explicit
    /// for edge labelling of typed drop sinks).
    pub denies: NodeId,
    /// Per-line *hit* sets (packets that reach the line and match it).
    pub line_hits: Vec<NodeId>,
}

/// Compiles `acl` against the variable layout.
pub fn compile_acl(bdd: &mut Bdd, vars: &PacketVars, acl: &Acl) -> AclBdd {
    let mut remaining = NodeId::TRUE;
    let mut permits = NodeId::FALSE;
    let mut line_hits = Vec::with_capacity(acl.lines.len());
    for line in &acl.lines {
        let space = vars.headerspace(bdd, &line.space);
        let hit = bdd.and(remaining, space);
        line_hits.push(hit);
        if line.action == AclAction::Permit {
            permits = bdd.or(permits, hit);
        }
        remaining = bdd.diff(remaining, space);
    }
    // The implicit trailing deny eats `remaining`.
    let denies = bdd.not(permits);
    AclBdd {
        permits,
        denies,
        line_hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_config::vi::AclLine;
    use batnet_net::{Flow, HeaderSpace, Ip, IpProtocol, Rng};

    fn acl_fixture() -> Acl {
        Acl {
            name: "T".into(),
            lines: vec![
                AclLine {
                    seq: 10,
                    action: AclAction::Deny,
                    space: HeaderSpace::any().protocol(IpProtocol::Tcp).dst_port(22),
                    text: "deny ssh".into(),
                },
                AclLine {
                    seq: 20,
                    action: AclAction::Permit,
                    space: HeaderSpace::any().protocol(IpProtocol::Tcp),
                    text: "permit tcp".into(),
                },
                AclLine {
                    seq: 30,
                    action: AclAction::Permit,
                    space: HeaderSpace::any().protocol(IpProtocol::Icmp),
                    text: "permit icmp".into(),
                },
            ],
            ..Acl::default()
        }
    }

    #[test]
    fn first_match_semantics() {
        let (mut bdd, vars) = PacketVars::new(0);
        let acl = acl_fixture();
        let compiled = compile_acl(&mut bdd, &vars, &acl);
        let ssh = Flow::tcp(Ip::new(1, 1, 1, 1), 999, Ip::new(2, 2, 2, 2), 22);
        let http = Flow::tcp(Ip::new(1, 1, 1, 1), 999, Ip::new(2, 2, 2, 2), 80);
        let ping = Flow::icmp_echo(Ip::new(1, 1, 1, 1), Ip::new(2, 2, 2, 2));
        let udp = Flow::udp(Ip::new(1, 1, 1, 1), 999, Ip::new(2, 2, 2, 2), 53);
        for (flow, expect) in [(ssh, false), (http, true), (ping, true), (udp, false)] {
            let f = vars.flow(&mut bdd, &flow);
            let inter = bdd.and(compiled.permits, f);
            assert_eq!(inter != NodeId::FALSE, expect, "{flow}");
            // permits/denies partition the space.
            let inter_d = bdd.and(compiled.denies, f);
            assert_eq!(inter_d != NodeId::FALSE, !expect, "{flow}");
        }
    }

    #[test]
    fn line_hits_are_disjoint_and_ordered() {
        let (mut bdd, vars) = PacketVars::new(0);
        let compiled = compile_acl(&mut bdd, &vars, &acl_fixture());
        assert_eq!(compiled.line_hits.len(), 3);
        // SSH hits line 0, not line 1 (first match).
        let ssh = Flow::tcp(Ip::new(1, 1, 1, 1), 999, Ip::new(2, 2, 2, 2), 22);
        let f = vars.flow(&mut bdd, &ssh);
        assert_ne!(bdd.and(compiled.line_hits[0], f), NodeId::FALSE);
        assert_eq!(bdd.and(compiled.line_hits[1], f), NodeId::FALSE);
        // All hit sets pairwise disjoint.
        for i in 0..3 {
            for j in i + 1..3 {
                assert_eq!(
                    bdd.and(compiled.line_hits[i], compiled.line_hits[j]),
                    NodeId::FALSE
                );
            }
        }
    }

    #[test]
    fn empty_acl_denies_everything() {
        let (mut bdd, vars) = PacketVars::new(0);
        let compiled = compile_acl(&mut bdd, &vars, &Acl::new("EMPTY"));
        assert_eq!(compiled.permits, NodeId::FALSE);
        assert_eq!(compiled.denies, NodeId::TRUE);
        let pa = compile_acl(&mut bdd, &vars, &Acl::permit_any("ALL"));
        assert_eq!(pa.permits, NodeId::TRUE);
        let _ = vars;
    }

    /// Differential property: the compiled BDD agrees with the concrete
    /// evaluator on seeded random flows — one half of §4.3.2 in
    /// miniature.
    #[test]
    fn bdd_matches_concrete_acl() {
        const PROTOS: [u8; 4] = [1, 6, 17, 47];
        let acl = acl_fixture();
        let (mut bdd, vars) = PacketVars::new(0);
        let compiled = compile_acl(&mut bdd, &vars, &acl);
        for case in 0..128u64 {
            let mut rng = Rng::new(0xAC1_D1FF ^ case);
            let src = rng.next_u32();
            let dst = rng.next_u32();
            let sport = rng.below(1 << 16) as u16;
            let dport = rng.below(1 << 16) as u16;
            let proto = PROTOS[rng.index(PROTOS.len())];
            let flags = rng.below(64) as u8;
            let mut flow = Flow {
                src_ip: Ip(src),
                dst_ip: Ip(dst),
                src_port: if proto == 6 || proto == 17 { sport } else { 0 },
                dst_port: if proto == 6 || proto == 17 { dport } else { 0 },
                protocol: batnet_net::IpProtocol::from_number(proto),
                icmp_type: 0,
                icmp_code: 0,
                tcp_flags: batnet_net::TcpFlags(if proto == 6 { flags } else { 0 }),
            };
            if proto == 1 {
                flow.icmp_type = 8;
            }
            let f = vars.flow(&mut bdd, &flow);
            let symbolic = bdd.and(compiled.permits, f) != NodeId::FALSE;
            assert_eq!(symbolic, acl.permits(&flow), "case {case}: flow {flow}");
        }
    }
}
