//! Reachability: fixed-point propagation over the dataflow graph.
//!
//! Forward analysis (§4.2.1): seed packet sets at source nodes, push
//! along edges (intersecting with labels, applying transforms), union at
//! heads, iterate to a fixed point. Multipath routing is inherent — the
//! analysis traverses all edges.
//!
//! Backward analysis (§4.2.3): for single-destination queries, walk the
//! graph backwards propagating pre-images, *"sav[ing] us from walking the
//! edges that do not lie on the destination's forwarding tree."*

use crate::graph::{DropKind, EdgeLabel, ForwardingGraph, NodeKind};
use crate::vars::PacketVars;
use batnet_bdd::{Bdd, NodeId, Transform};
use batnet_net::governor::{Exhaustion, Outcome, ResourceGovernor};
use std::collections::BTreeSet;

/// Shards per sharded reach call — **fixed**, not tied to the worker
/// count, so per-shard BDD growth (and therefore every stat and result
/// byte) is identical at 1 thread and N threads.
const REACH_SHARDS: usize = 8;

/// Manager-independent summary of one sharded per-start query:
/// `NodeId`s live in a shard-local fork, so shards report semantic
/// counts that combine deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StartSummary {
    /// The start (graph node) this summarizes.
    pub start: usize,
    /// Graph nodes with a non-empty packet set.
    pub reached: usize,
    /// Edge relaxations the fixed point performed.
    pub relaxations: u64,
}

/// Summed manager stats across all shards of one sharded call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Total arena nodes across shard forks (includes the forked base).
    pub nodes: u64,
    /// Apply-cache hits across shards.
    pub cache_hits: u64,
    /// Apply-cache misses across shards.
    pub cache_misses: u64,
}

/// The result of a propagation: one packet set per graph node.
pub struct ReachResult {
    /// reach[node] = packets that can appear at that node.
    pub reach: Vec<NodeId>,
    /// Fixed-point iterations (edge relaxations performed).
    pub relaxations: u64,
}

impl ReachResult {
    /// The set at one node.
    pub fn at(&self, node: usize) -> NodeId {
        self.reach[node]
    }
}

/// Reachability analyses over one graph.
pub struct ReachAnalysis<'g> {
    /// The graph.
    pub graph: &'g ForwardingGraph,
}

impl<'g> ReachAnalysis<'g> {
    /// Creates an analysis over `graph`.
    pub fn new(graph: &'g ForwardingGraph) -> ReachAnalysis<'g> {
        ReachAnalysis { graph }
    }

    /// Applies an edge label in the forward direction.
    fn apply(bdd: &mut Bdd, label: EdgeLabel, set: NodeId) -> NodeId {
        match label {
            EdgeLabel::Bdd(l) => bdd.and(l, set),
            EdgeLabel::Transform(rule, t) => bdd.transform(set, rule, t),
        }
    }

    /// Applies an edge label in the backward direction (pre-image). An
    /// unknown transform handle (a caller wiring bug) propagates nothing
    /// rather than panicking: the analysis under-approximates and the
    /// query degrades instead of crashing.
    fn apply_rev(
        bdd: &mut Bdd,
        vars: &PacketVars,
        label: EdgeLabel,
        set: NodeId,
    ) -> NodeId {
        match label {
            EdgeLabel::Bdd(l) => bdd.and(l, set),
            EdgeLabel::Transform(rule, t) => match rev_of(vars, t) {
                Some(rev) => PacketVars::transform_pre(bdd, rev, rule, set),
                None => NodeId::FALSE,
            },
        }
    }

    /// Forward fixed point from `sources` (node, packet set) seeds.
    pub fn forward(&self, bdd: &mut Bdd, sources: &[(usize, NodeId)]) -> ReachResult {
        self.forward_governed(bdd, sources, &ResourceGovernor::unlimited())
            .into_value()
    }

    /// Forward fixed point under a [`ResourceGovernor`]. When a limit
    /// trips (including the BDD manager's own node ceiling) the sets
    /// computed so far are returned as [`Outcome::Partial`], with the
    /// devices still on the worklist listed as abandoned.
    pub fn forward_governed(
        &self,
        bdd: &mut Bdd,
        sources: &[(usize, NodeId)],
        gov: &ResourceGovernor,
    ) -> Outcome<ReachResult> {
        let span = batnet_obs::Span::enter("reach.forward");
        let n = self.graph.nodes.len();
        let mut reach = vec![NodeId::FALSE; n];
        let mut worklist: BTreeSet<usize> = BTreeSet::new();
        for &(node, set) in sources {
            reach[node] = bdd.or(reach[node], set);
            if reach[node] != NodeId::FALSE {
                worklist.insert(node);
            }
        }
        let mut relaxations = 0u64;
        let mut why: Option<Exhaustion> = None;
        while let Some(node) = worklist.pop_first() {
            if let Some(e) = self.out_of_budget(bdd, gov, "reach-forward", relaxations) {
                worklist.insert(node);
                why = Some(e);
                break;
            }
            let current = reach[node];
            for &eid in &self.graph.out_edges[node] {
                relaxations += 1;
                let edge = &self.graph.edges[eid];
                let pushed = Self::apply(bdd, edge.label, current);
                if pushed == NodeId::FALSE {
                    continue;
                }
                let merged = bdd.or(reach[edge.to], pushed);
                if merged != reach[edge.to] {
                    reach[edge.to] = merged;
                    worklist.insert(edge.to);
                }
            }
        }
        span.close();
        batnet_obs::counter_add("reach.queries", 1);
        batnet_obs::observe("reach.relaxations", relaxations);
        self.finish(reach, relaxations, worklist, why)
    }

    /// Backward fixed point: the packets that, placed at each node, can
    /// go on to reach `target` carrying a packet in `target_set`.
    pub fn backward(
        &self,
        bdd: &mut Bdd,
        vars: &PacketVars,
        target: usize,
        target_set: NodeId,
    ) -> ReachResult {
        self.backward_governed(bdd, vars, target, target_set, &ResourceGovernor::unlimited())
            .into_value()
    }

    /// Backward fixed point under a [`ResourceGovernor`]; see
    /// [`ReachAnalysis::forward_governed`] for the partial-result
    /// contract.
    pub fn backward_governed(
        &self,
        bdd: &mut Bdd,
        vars: &PacketVars,
        target: usize,
        target_set: NodeId,
        gov: &ResourceGovernor,
    ) -> Outcome<ReachResult> {
        let span = batnet_obs::Span::enter("reach.backward");
        let n = self.graph.nodes.len();
        let mut reach = vec![NodeId::FALSE; n];
        reach[target] = target_set;
        let mut worklist: BTreeSet<usize> = BTreeSet::new();
        worklist.insert(target);
        let mut relaxations = 0u64;
        let mut why: Option<Exhaustion> = None;
        while let Some(node) = worklist.pop_first() {
            if let Some(e) = self.out_of_budget(bdd, gov, "reach-backward", relaxations) {
                worklist.insert(node);
                why = Some(e);
                break;
            }
            let current = reach[node];
            for &eid in &self.graph.in_edges[node] {
                relaxations += 1;
                let edge = &self.graph.edges[eid];
                let pulled = Self::apply_rev(bdd, vars, edge.label, current);
                if pulled == NodeId::FALSE {
                    continue;
                }
                let merged = bdd.or(reach[edge.from], pulled);
                if merged != reach[edge.from] {
                    reach[edge.from] = merged;
                    worklist.insert(edge.from);
                }
            }
        }
        span.close();
        batnet_obs::counter_add("reach.queries", 1);
        batnet_obs::observe("reach.relaxations", relaxations);
        self.finish(reach, relaxations, worklist, why)
    }

    /// Budget poll shared by the governed fixed points: the governor's
    /// own limits plus the BDD manager's sticky exhaustion (node
    /// ceiling), amortized over relaxations.
    fn out_of_budget(
        &self,
        bdd: &mut Bdd,
        gov: &ResourceGovernor,
        stage: &str,
        relaxations: u64,
    ) -> Option<Exhaustion> {
        if let Some(e) = bdd.exhausted() {
            return Some(e.clone());
        }
        if let Err(e) = gov.tick(stage, 1) {
            return Some(e);
        }
        // Poll the node ceiling against the shared arena directly, so a
        // governor handed in per-query (e.g. by batnet-serve) bounds BDD
        // growth without being installed into — and thereby poisoning —
        // the long-lived manager.
        if let Err(e) = gov.check_nodes(stage, bdd.node_count()) {
            return Some(e);
        }
        if relaxations & 0x3F == 0 {
            if let Err(e) = gov.check(stage) {
                return Some(e);
            }
        }
        None
    }

    /// Packages a (possibly aborted) fixed point into an [`Outcome`].
    fn finish(
        &self,
        reach: Vec<NodeId>,
        relaxations: u64,
        pending: BTreeSet<usize>,
        why: Option<Exhaustion>,
    ) -> Outcome<ReachResult> {
        let result = ReachResult { reach, relaxations };
        match why {
            None => Outcome::Complete(result),
            Some(why) => {
                let mut abandoned: BTreeSet<String> = BTreeSet::new();
                for node in pending {
                    abandoned.insert(self.graph.nodes[node].device().to_string());
                }
                Outcome::Partial {
                    completed: result,
                    abandoned: abandoned.into_iter().collect(),
                    why,
                }
            }
        }
    }

    /// Convenience: seeds every `IfaceSrc` node with `set` and runs
    /// forward.
    pub fn forward_from_all_sources(&self, bdd: &mut Bdd, set: NodeId) -> ReachResult {
        let sources: Vec<(usize, NodeId)> = self
            .graph
            .nodes_where(|k| matches!(k, NodeKind::IfaceSrc(_, _)))
            .into_iter()
            .map(|n| (n, set))
            .collect();
        self.forward(bdd, &sources)
    }

    /// The union of reach sets over success sinks.
    pub fn success_set(&self, bdd: &mut Bdd, r: &ReachResult) -> NodeId {
        let mut acc = NodeId::FALSE;
        for n in self.graph.nodes_where(NodeKind::is_success_sink) {
            acc = bdd.or(acc, r.reach[n]);
        }
        acc
    }

    /// The union of reach sets over drop sinks, optionally filtered by
    /// kind.
    pub fn drop_set(&self, bdd: &mut Bdd, r: &ReachResult, kind: Option<&DropKind>) -> NodeId {
        let mut acc = NodeId::FALSE;
        for (i, k) in self.graph.nodes.iter().enumerate() {
            if let NodeKind::Drop(_, dk) = k {
                if kind.is_none_or(|want| want == dk) {
                    acc = bdd.or(acc, r.reach[i]);
                }
            }
        }
        acc
    }

    /// Multipath consistency (§6.1's benchmark query): from one start
    /// node, the packets that are **both** delivered on some path and
    /// dropped on another. An empty result everywhere means the network
    /// forwards consistently.
    pub fn multipath_inconsistency(&self, bdd: &mut Bdd, source: usize) -> NodeId {
        let r = self.forward(bdd, &[(source, NodeId::TRUE)]);
        let ok = self.success_set(bdd, &r);
        let bad = self.drop_set(bdd, &r, None);
        bdd.and(ok, bad)
    }

    /// Backward reachability from each of `targets`, sharded over the
    /// execution pool: starts are partitioned into a **fixed** number of
    /// shards (independent of thread count, so results and stats never
    /// depend on parallelism level), each shard runs on its own
    /// [`Bdd::fork`] of `base`, and per-start summaries are combined in
    /// input order. Summaries are manager-independent (`NodeId`s from
    /// different forks are not comparable, semantic counts are), which
    /// is the cross-shard combine.
    pub fn backward_sharded(
        &self,
        base: &Bdd,
        vars: &PacketVars,
        targets: &[usize],
    ) -> (Vec<StartSummary>, ShardStats) {
        self.run_sharded(base, targets, |local, &t| {
            let r = self.backward(local, vars, t, NodeId::TRUE);
            StartSummary {
                start: t,
                reached: r.reach.iter().filter(|&&s| s != NodeId::FALSE).count(),
                relaxations: r.relaxations,
            }
        })
    }

    /// Multipath consistency over many starts, sharded like
    /// [`ReachAnalysis::backward_sharded`]. Returns `(start, violated)`
    /// pairs in input order.
    pub fn multipath_sharded(
        &self,
        base: &Bdd,
        starts: &[usize],
    ) -> (Vec<(usize, bool)>, ShardStats) {
        self.run_sharded(base, starts, |local, &s| {
            (s, self.multipath_inconsistency(local, s) != NodeId::FALSE)
        })
    }

    /// The shared shard driver: fixed partition, one fork per shard,
    /// input-order merge, summed manager stats.
    fn run_sharded<R: Send>(
        &self,
        base: &Bdd,
        starts: &[usize],
        per_start: impl Fn(&mut Bdd, &usize) -> R + Sync,
    ) -> (Vec<R>, ShardStats) {
        if starts.is_empty() {
            return (Vec::new(), ShardStats::default());
        }
        let span = batnet_obs::Span::enter("reach.shard");
        let chunk = starts.len().div_ceil(REACH_SHARDS.min(starts.len()));
        let chunks: Vec<&[usize]> = starts.chunks(chunk).collect();
        let pool = batnet_exec::current();
        let per_chunk = pool.map_opts(
            &chunks,
            batnet_exec::MapOptions {
                span: Some(("exec.reach", span.context())),
            },
            |chunk: &&[usize]| {
                let mut local = base.fork();
                let out: Vec<R> = chunk.iter().map(|t| per_start(&mut local, t)).collect();
                let stats = local.stats();
                (
                    out,
                    ShardStats {
                        nodes: stats.nodes as u64,
                        cache_hits: stats.cache_hits,
                        cache_misses: stats.cache_misses,
                    },
                )
            },
        );
        span.close();
        let mut merged = Vec::with_capacity(starts.len());
        let mut stats = ShardStats::default();
        for (rs, s) in per_chunk {
            merged.extend(rs);
            stats.nodes += s.nodes;
            stats.cache_hits += s.cache_hits;
            stats.cache_misses += s.cache_misses;
        }
        (merged, stats)
    }

    /// Forwarding-loop detection: packets that can revisit a `Fwd` node.
    ///
    /// For each `Fwd` node on a graph cycle, propagate its forward-
    /// reachable set around the cycle and intersect with the starting
    /// set; survivors loop. (The visited-set argument mirrors the
    /// concrete engine's loop rule: same node, same packet.)
    pub fn detect_loops(&self, bdd: &mut Bdd, base: &ReachResult) -> Vec<(usize, NodeId)> {
        let mut loops = Vec::new();
        for fwd in self
            .graph
            .nodes_where(|k| matches!(k, NodeKind::Fwd(_)))
        {
            let start = base.reach[fwd];
            if start == NodeId::FALSE {
                continue;
            }
            // Propagate from fwd and see if anything returns to fwd. We
            // run a bounded propagation that ignores the seed's own
            // presence by tracking only what flows back in.
            let r = self.forward(bdd, &[(fwd, start)]);
            let mut back = NodeId::FALSE;
            for &eid in &self.graph.in_edges[fwd] {
                let e = &self.graph.edges[eid];
                let contrib = Self::apply(bdd, e.label, r.reach[e.from]);
                back = bdd.or(back, contrib);
            }
            let looped = bdd.and(back, start);
            if looped != NodeId::FALSE {
                loops.push((fwd, looped));
            }
        }
        loops
    }
}

/// The reverse data for a registered transform handle, or `None` for a
/// handle this variable layout never registered.
fn rev_of(vars: &PacketVars, t: Transform) -> Option<crate::vars::TransformRev> {
    if t == vars.nat_transform {
        Some(vars.nat_rev)
    } else if t == vars.zone_transform {
        Some(vars.zone_rev)
    } else {
        vars.waypoint_transforms
            .iter()
            .position(|&w| w == t)
            .and_then(|idx| vars.waypoint_revs.get(idx).copied())
    }
}
