//! # batnet-dataplane — Stage 3: BDD-based data plane verification
//!
//! The paper's Lesson 2 engine (§4.2): data plane analysis as a dataflow
//! analysis over a graph whose nodes are pipeline stages (interface
//! sources/sinks, FIB lookups, ACLs, NATs, zone checks) and whose edges
//! carry *sets of packets* encoded as BDDs.
//!
//! * [`vars`] — the packet variable layout: the §4.2.2 frequency-ordered
//!   fields (destination IP first, TCP flags last), MSB-first bits,
//!   interleaved primed copies of the transformable fields for NAT
//!   relations, reusable zone bits, and on-demand waypoint bits.
//! * [`acl`] / [`fibenc`] — compilation of ACLs (first-match) and FIBs
//!   (longest-prefix-match) into edge BDDs.
//! * [`graph`] — the dataflow graph (Figure 2 of the paper), with typed
//!   drop sinks mirroring the concrete engine's dispositions.
//! * [`compress`] — graph compression (§4.2.3): splicing out simple
//!   nodes, composing their edge labels.
//! * [`reach`] — forward fixed-point propagation, backward propagation
//!   for single-destination queries, loop detection, and multipath
//!   consistency.
//! * [`bidir`] — bidirectional reachability with firewall sessions
//!   (§4.2.3): a forward pass collects installable sessions, the graph is
//!   instrumented with return fast-path edges, and a second pass runs in
//!   the reverse direction.

pub mod acl;
pub mod bidir;
pub mod compress;
pub mod fibenc;
pub mod graph;
pub mod reach;
pub mod vars;

pub use graph::{DropKind, EdgeLabel, ForwardingGraph, NodeKind};
pub use reach::{ReachAnalysis, ReachResult, ShardStats, StartSummary};
pub use vars::PacketVars;
