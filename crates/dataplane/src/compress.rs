//! Graph compression (§4.2.3).
//!
//! *"Many nodes in the dataflow graph are simple, i.e., they have only
//! one incoming or outgoing edge … We implemented an optimization that
//! identifies and deletes these"* — a chain node whose single incoming
//! and single outgoing edges are both plain BDD labels is spliced out,
//! the two labels composing by intersection. Transform edges are left in
//! place (composing relations would change their variable story), and
//! sources/sinks are never removed.

use crate::graph::{EdgeLabel, ForwardingGraph, NodeKind};
use batnet_bdd::Bdd;

/// Statistics from one compression run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompressStats {
    /// Nodes before.
    pub nodes_before: usize,
    /// Edges before.
    pub edges_before: usize,
    /// Nodes after.
    pub nodes_after: usize,
    /// Edges after.
    pub edges_after: usize,
}

/// Splices out simple pass-through nodes. Returns the compressed graph
/// (node ids are re-assigned) and statistics.
pub fn compress(bdd: &mut Bdd, g: &ForwardingGraph) -> (ForwardingGraph, CompressStats) {
    let (nodes_before, edges_before) = g.size();
    // Work on mutable copies of the edge list; node removal marks.
    let mut edges: Vec<Option<crate::graph::Edge>> = g.edges.iter().cloned().map(Some).collect();
    let mut in_of: Vec<Vec<usize>> = g.in_edges.clone();
    let mut out_of: Vec<Vec<usize>> = g.out_edges.clone();
    let mut removed = vec![false; g.nodes.len()];

    // Iterate until no more splices; each splice can enable another.
    let mut changed = true;
    while changed {
        changed = false;
        for n in 0..g.nodes.len() {
            if removed[n] || g.nodes[n].is_sink() || matches!(g.nodes[n], NodeKind::IfaceSrc(_, _))
            {
                continue;
            }
            let live_in: Vec<usize> = in_of[n].iter().copied().filter(|&e| edges[e].is_some()).collect();
            let live_out: Vec<usize> =
                out_of[n].iter().copied().filter(|&e| edges[e].is_some()).collect();
            if live_in.len() != 1 || live_out.len() != 1 {
                continue;
            }
            let (ein, eout) = (live_in[0], live_out[0]);
            // Both indices were filtered to live edges just above.
            let (Some(e_in), Some(e_out)) = (edges[ein].as_ref(), edges[eout].as_ref()) else {
                continue;
            };
            let (from, lin) = (e_in.from, e_in.label);
            let (to, lout) = (e_out.to, e_out.label);
            // Self-loops and transform edges stay.
            if from == n || to == n {
                continue;
            }
            let composed = match (lin, lout) {
                (EdgeLabel::Bdd(a), EdgeLabel::Bdd(b)) => EdgeLabel::Bdd(bdd.and(a, b)),
                // One plain side can fold into a transform by gating the
                // relation on the unprimed (input) side...
                (EdgeLabel::Bdd(a), EdgeLabel::Transform(rule, t)) => {
                    let gated = bdd.and(rule, a);
                    EdgeLabel::Transform(gated, t)
                }
                // ... but a BDD *after* a transform constrains outputs,
                // which needs a rename we don't attempt here.
                _ => continue,
            };
            // Splice: replace the pair with one edge from→to.
            edges[ein] = None;
            edges[eout] = None;
            removed[n] = true;
            let new_id = edges.len();
            edges.push(Some(crate::graph::Edge {
                from,
                to,
                label: composed,
            }));
            out_of[from].push(new_id);
            in_of[to].push(new_id);
            changed = true;
        }
    }

    // Rebuild a dense graph.
    let mut out = ForwardingGraph::empty();
    let mut remap: Vec<Option<usize>> = vec![None; g.nodes.len()];
    for (i, kind) in g.nodes.iter().enumerate() {
        if !removed[i] {
            remap[i] = Some(out.add_node_public(kind.clone()));
        }
    }
    for e in edges.into_iter().flatten() {
        let (Some(from), Some(to)) = (remap[e.from], remap[e.to]) else {
            continue;
        };
        out.add_edge(from, to, e.label);
    }
    let (nodes_after, edges_after) = out.size();
    (
        out,
        CompressStats {
            nodes_before,
            edges_before,
            nodes_after,
            edges_after,
        },
    )
}

impl ForwardingGraph {
    /// Node insertion for graph-rewriting passes.
    pub fn add_node_public(&mut self, kind: NodeKind) -> usize {
        // Delegates to the private path via a fresh lookup/insert.
        if let Some(i) = self.node(&kind) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(kind.clone());
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        self.index_insert(kind, i);
        i
    }
}
