//! Packet variable layout (§4.2.2).
//!
//! *"We order header fields based on how frequently they are constrained,
//! which leads to this order: Destination IP, Source IP, Destination
//! Port, Source Port, ICMP Code, ICMP Type, IP Protocol, and finally less
//! used fields, such as TCP Flags … Within a field, Batfish orders the
//! bits with the most significant bit first."*
//!
//! The four transformable fields (the 96 bits NAT can rewrite: both IPs
//! and both ports) carry an interleaved primed copy (§4.2.3: *"We
//! interleave the variables for input-output packet pairs since a
//! variable in the output packet tends to closely depend on the
//! corresponding variable of the input packet"*). Zone bits (4, reused
//! across firewalls — *"we have never needed more than four bits"*) and
//! waypoint bits are appended, each with a primed partner because they
//! are set by transform edges.

use batnet_bdd::{Bdd, Cube, NodeId, Transform, VarMap};
use batnet_net::{Flow, HeaderSpace, Ip, IpProtocol, IpRange, PortRange, Prefix, TcpFlags};

/// Reverse-application data for a transform: lets backward propagation
/// compute pre-images. For a relation `R(x, x')`, the pre-image of a set
/// `T` is `∃x'. R(x,x') ∧ T[x→x']`; `up` performs the `x→x'` renaming and
/// `primed_cube` is the quantifier.
#[derive(Clone, Copy, Debug)]
pub struct TransformRev {
    /// Renames each original variable onto its primed partner.
    pub up: VarMap,
    /// Cube of the primed variables.
    pub primed_cube: NodeId,
}

/// Number of transformable bits: dstIP(32) + srcIP(32) + dstPort(16) +
/// srcPort(16).
pub const TRANSFORM_BITS: u32 = 96;
/// Fixed (non-transformable) header bits: ICMP code, ICMP type,
/// protocol, TCP flags.
pub const FIXED_BITS: u32 = 32;
/// Zone bits (orig+primed pairs counted once).
pub const ZONE_BITS: u32 = 4;

/// A header field, for encoder dispatch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Field {
    /// Destination IPv4 address (32 bits, transformable).
    DstIp,
    /// Source IPv4 address (32 bits, transformable).
    SrcIp,
    /// Destination port (16 bits, transformable).
    DstPort,
    /// Source port (16 bits, transformable).
    SrcPort,
    /// ICMP code (8 bits).
    IcmpCode,
    /// ICMP type (8 bits).
    IcmpType,
    /// IP protocol (8 bits).
    Protocol,
    /// TCP flags (8 bits).
    TcpFlags,
}

impl Field {
    /// Field width in bits.
    pub fn bits(self) -> u32 {
        match self {
            Field::DstIp | Field::SrcIp => 32,
            Field::DstPort | Field::SrcPort => 16,
            Field::IcmpCode | Field::IcmpType | Field::Protocol | Field::TcpFlags => 8,
        }
    }

    /// Offset within the transformable block, or `None` for fixed fields.
    fn transform_offset(self) -> Option<u32> {
        match self {
            Field::DstIp => Some(0),
            Field::SrcIp => Some(32),
            Field::DstPort => Some(64),
            Field::SrcPort => Some(80),
            _ => None,
        }
    }

    /// Offset within the fixed block, for fixed fields.
    fn fixed_offset(self) -> Option<u32> {
        match self {
            Field::IcmpCode => Some(0),
            Field::IcmpType => Some(8),
            Field::Protocol => Some(16),
            Field::TcpFlags => Some(24),
            _ => None,
        }
    }
}

/// The packet variable layout plus the registered transform handles.
pub struct PacketVars {
    /// Number of waypoint bit pairs.
    pub waypoint_count: u32,
    /// Total variables in the manager.
    pub num_vars: u32,
    /// Transform: apply a NAT relation over the 96 transformable bits.
    pub nat_transform: Transform,
    /// Transform: rewrite the 4 zone bits.
    pub zone_transform: Transform,
    /// Per-waypoint transforms: set that waypoint bit.
    pub waypoint_transforms: Vec<Transform>,
    /// Reverse data for [`PacketVars::nat_transform`].
    pub nat_rev: TransformRev,
    /// Reverse data for [`PacketVars::zone_transform`].
    pub zone_rev: TransformRev,
    /// Reverse data per waypoint transform.
    pub waypoint_revs: Vec<TransformRev>,
}

const FIXED_BASE: u32 = 2 * TRANSFORM_BITS; // 192
const ZONE_BASE: u32 = FIXED_BASE + FIXED_BITS; // 224
const WAYPOINT_BASE: u32 = ZONE_BASE + 2 * ZONE_BITS; // 232

impl PacketVars {
    /// Creates the layout and a BDD manager sized for it.
    pub fn new(waypoint_count: u32) -> (Bdd, PacketVars) {
        let num_vars = WAYPOINT_BASE + 2 * waypoint_count;
        let mut bdd = Bdd::new(num_vars);
        // NAT transform: quantify all original transformable bits, rename
        // each primed bit onto its original slot.
        let nat_inputs: Vec<u32> = (0..TRANSFORM_BITS).map(|k| 2 * k).collect();
        let nat_pairs: Vec<(u32, u32)> = (0..TRANSFORM_BITS).map(|k| (2 * k + 1, 2 * k)).collect();
        let nat_transform = bdd.register_transform(&nat_inputs, &nat_pairs);
        // Zone transform: same shape over the 4 zone pairs.
        let zone_inputs: Vec<u32> = (0..ZONE_BITS).map(|z| ZONE_BASE + 2 * z).collect();
        let zone_pairs: Vec<(u32, u32)> = (0..ZONE_BITS)
            .map(|z| (ZONE_BASE + 2 * z + 1, ZONE_BASE + 2 * z))
            .collect();
        let zone_transform = bdd.register_transform(&zone_inputs, &zone_pairs);
        // One transform per waypoint bit.
        let mut waypoint_transforms = Vec::new();
        for w in 0..waypoint_count {
            let orig = WAYPOINT_BASE + 2 * w;
            let t = bdd.register_transform(&[orig], &[(orig + 1, orig)]);
            waypoint_transforms.push(t);
        }
        // Reverse data (for backward propagation, §4.2.3's single-device
        // backward walk).
        let nat_up: Vec<(u32, u32)> = (0..TRANSFORM_BITS).map(|k| (2 * k, 2 * k + 1)).collect();
        let nat_primed: Vec<u32> = (0..TRANSFORM_BITS).map(|k| 2 * k + 1).collect();
        let nat_rev = TransformRev {
            up: bdd.register_map(&nat_up),
            primed_cube: bdd.cube_of_vars(&nat_primed),
        };
        let zone_up: Vec<(u32, u32)> = (0..ZONE_BITS)
            .map(|z| (ZONE_BASE + 2 * z, ZONE_BASE + 2 * z + 1))
            .collect();
        let zone_primed: Vec<u32> = (0..ZONE_BITS).map(|z| ZONE_BASE + 2 * z + 1).collect();
        let zone_rev = TransformRev {
            up: bdd.register_map(&zone_up),
            primed_cube: bdd.cube_of_vars(&zone_primed),
        };
        let mut waypoint_revs = Vec::new();
        for w in 0..waypoint_count {
            let orig = WAYPOINT_BASE + 2 * w;
            waypoint_revs.push(TransformRev {
                up: bdd.register_map(&[(orig, orig + 1)]),
                primed_cube: bdd.cube_of_vars(&[orig + 1]),
            });
        }
        (
            bdd,
            PacketVars {
                waypoint_count,
                num_vars,
                nat_transform,
                zone_transform,
                waypoint_transforms,
                nat_rev,
                zone_rev,
                waypoint_revs,
            },
        )
    }

    /// The pre-image of `set` under a transform's relation `rule`:
    /// the packets whose image under the relation intersects `set`.
    pub fn transform_pre(bdd: &mut Bdd, rev: TransformRev, rule: NodeId, set: NodeId) -> NodeId {
        let shifted = bdd.rename(set, rev.up);
        let conj = bdd.and(rule, shifted);
        bdd.exists(conj, rev.primed_cube)
    }

    /// The variable index of bit `i` (MSB-first) of `field`; primed
    /// selects the output copy for transformable fields.
    pub fn var_of(&self, field: Field, i: u32, primed: bool) -> u32 {
        debug_assert!(i < field.bits());
        if let Some(off) = field.transform_offset() {
            2 * (off + i) + u32::from(primed)
        } else {
            debug_assert!(!primed, "fixed fields have no primed copy");
            // Every non-transformable field has a fixed offset; stay
            // total regardless.
            FIXED_BASE + field.fixed_offset().unwrap_or(0) + i
        }
    }

    /// BDD for `field == value` (unprimed).
    pub fn field_value(&self, bdd: &mut Bdd, field: Field, value: u64) -> NodeId {
        self.field_value_inner(bdd, field, value, false)
    }

    /// BDD for `field' == value` (primed copy of a transformable field).
    pub fn field_value_primed(&self, bdd: &mut Bdd, field: Field, value: u64) -> NodeId {
        self.field_value_inner(bdd, field, value, true)
    }

    fn field_value_inner(&self, bdd: &mut Bdd, field: Field, value: u64, primed: bool) -> NodeId {
        let bits = field.bits();
        let mut acc = NodeId::TRUE;
        for i in (0..bits).rev() {
            let bit = (value >> (bits - 1 - i)) & 1 == 1;
            let v = self.var_of(field, i, primed);
            let lit = bdd.literal(v, bit);
            acc = bdd.and(lit, acc);
        }
        acc
    }

    /// BDD for "the top `fixed` bits of `field` equal those of `value`".
    pub fn field_prefix(&self, bdd: &mut Bdd, field: Field, value: u64, fixed: u32) -> NodeId {
        let bits = field.bits();
        let mut acc = NodeId::TRUE;
        for i in (0..fixed).rev() {
            let bit = (value >> (bits - 1 - i)) & 1 == 1;
            let v = self.var_of(field, i, false);
            let lit = bdd.literal(v, bit);
            acc = bdd.and(lit, acc);
        }
        acc
    }

    /// BDD for an IP prefix constraint on `DstIp`/`SrcIp`.
    pub fn ip_prefix(&self, bdd: &mut Bdd, field: Field, p: Prefix) -> NodeId {
        self.field_prefix(bdd, field, p.network().0 as u64, p.len() as u32)
    }

    /// BDD for an inclusive IP range (decomposed into covering prefixes).
    pub fn ip_range(&self, bdd: &mut Bdd, field: Field, r: IpRange) -> NodeId {
        let mut acc = NodeId::FALSE;
        for p in r.to_prefixes() {
            let f = self.ip_prefix(bdd, field, p);
            acc = bdd.or(acc, f);
        }
        acc
    }

    /// BDD for an inclusive port range (decomposed into masked blocks).
    pub fn port_range(&self, bdd: &mut Bdd, field: Field, r: PortRange) -> NodeId {
        let mut acc = NodeId::FALSE;
        for (value, len) in r.to_masked_blocks() {
            let f = self.field_prefix(bdd, field, value as u64, len as u32);
            acc = bdd.or(acc, f);
        }
        acc
    }

    /// BDD for "this TCP flag bit is set". `flag_index` follows wire
    /// order (0 = FIN … 5 = URG); the flags byte is stored MSB-first so
    /// bit index 7−flag.
    pub fn tcp_flag(&self, bdd: &mut Bdd, flag_index: u32) -> NodeId {
        let v = self.var_of(Field::TcpFlags, 7 - flag_index, false);
        bdd.var(v)
    }

    /// Compiles a [`HeaderSpace`] to a BDD — the symbolic counterpart of
    /// `HeaderSpace::matches`, kept deliberately separate from it
    /// (differential testing depends on the two being independent).
    pub fn headerspace(&self, bdd: &mut Bdd, hs: &HeaderSpace) -> NodeId {
        let mut acc = NodeId::TRUE;
        let or_ranges = |bdd: &mut Bdd, this: &Self, field: Field, ranges: &[IpRange]| {
            let mut set = NodeId::FALSE;
            for r in ranges {
                let f = this.ip_range(bdd, field, *r);
                set = bdd.or(set, f);
            }
            set
        };
        if !hs.src_ips.is_empty() {
            let s = or_ranges(bdd, self, Field::SrcIp, &hs.src_ips);
            acc = bdd.and(acc, s);
        }
        if !hs.dst_ips.is_empty() {
            let s = or_ranges(bdd, self, Field::DstIp, &hs.dst_ips);
            acc = bdd.and(acc, s);
        }
        if !hs.protocols.is_empty() {
            let mut set = NodeId::FALSE;
            for p in &hs.protocols {
                let f = self.field_value(bdd, Field::Protocol, p.number() as u64);
                set = bdd.or(set, f);
            }
            acc = bdd.and(acc, set);
        }
        let port_ranges = |bdd: &mut Bdd, this: &Self, field: Field, ranges: &[PortRange]| {
            let mut set = NodeId::FALSE;
            for r in ranges {
                let f = this.port_range(bdd, field, *r);
                set = bdd.or(set, f);
            }
            set
        };
        // Port constraints imply a port-carrying protocol (mirrors the
        // concrete semantics in HeaderSpace::matches).
        if !hs.src_ports.is_empty() || !hs.dst_ports.is_empty() {
            let with_ports = self.ports_protocols(bdd);
            acc = bdd.and(acc, with_ports);
        }
        if !hs.src_ports.is_empty() {
            let s = port_ranges(bdd, self, Field::SrcPort, &hs.src_ports);
            acc = bdd.and(acc, s);
        }
        if !hs.dst_ports.is_empty() {
            let s = port_ranges(bdd, self, Field::DstPort, &hs.dst_ports);
            acc = bdd.and(acc, s);
        }
        // ICMP constraints imply ICMP.
        if !hs.icmp_types.is_empty() || !hs.icmp_codes.is_empty() {
            let icmp = self.field_value(bdd, Field::Protocol, 1);
            acc = bdd.and(acc, icmp);
        }
        if !hs.icmp_types.is_empty() {
            let mut set = NodeId::FALSE;
            for &t in &hs.icmp_types {
                let f = self.field_value(bdd, Field::IcmpType, t as u64);
                set = bdd.or(set, f);
            }
            acc = bdd.and(acc, set);
        }
        if !hs.icmp_codes.is_empty() {
            let mut set = NodeId::FALSE;
            for &c in &hs.icmp_codes {
                let f = self.field_value(bdd, Field::IcmpCode, c as u64);
                set = bdd.or(set, f);
            }
            acc = bdd.and(acc, set);
        }
        // TCP flag constraints imply TCP.
        if hs.tcp_flags_set.is_some() || hs.tcp_flags_unset.is_some() || hs.established {
            let tcp = self.field_value(bdd, Field::Protocol, 6);
            acc = bdd.and(acc, tcp);
        }
        if let Some(set) = hs.tcp_flags_set {
            for i in 0..8 {
                if set.bit(i) {
                    let f = self.tcp_flag(bdd, i as u32);
                    acc = bdd.and(acc, f);
                }
            }
        }
        if let Some(unset) = hs.tcp_flags_unset {
            for i in 0..8 {
                if unset.bit(i) {
                    let f = self.tcp_flag(bdd, i as u32);
                    let nf = bdd.not(f);
                    acc = bdd.and(acc, nf);
                }
            }
        }
        if hs.established {
            // ACK or RST.
            let ack = self.tcp_flag(bdd, 4);
            let rst = self.tcp_flag(bdd, 2);
            let est = bdd.or(ack, rst);
            acc = bdd.and(acc, est);
        }
        acc
    }

    /// The set of packets whose protocol carries ports (TCP ∪ UDP).
    pub fn ports_protocols(&self, bdd: &mut Bdd) -> NodeId {
        let tcp = self.field_value(bdd, Field::Protocol, 6);
        let udp = self.field_value(bdd, Field::Protocol, 17);
        bdd.or(tcp, udp)
    }

    /// The singleton set for a concrete flow (zone/waypoint bits free).
    pub fn flow(&self, bdd: &mut Bdd, f: &Flow) -> NodeId {
        let mut acc = self.field_value(bdd, Field::DstIp, f.dst_ip.0 as u64);
        let s = self.field_value(bdd, Field::SrcIp, f.src_ip.0 as u64);
        acc = bdd.and(acc, s);
        let p = self.field_value(bdd, Field::Protocol, f.protocol.number() as u64);
        acc = bdd.and(acc, p);
        let dp = self.field_value(bdd, Field::DstPort, f.dst_port as u64);
        acc = bdd.and(acc, dp);
        let sp = self.field_value(bdd, Field::SrcPort, f.src_port as u64);
        acc = bdd.and(acc, sp);
        let it = self.field_value(bdd, Field::IcmpType, f.icmp_type as u64);
        acc = bdd.and(acc, it);
        let ic = self.field_value(bdd, Field::IcmpCode, f.icmp_code as u64);
        acc = bdd.and(acc, ic);
        let fl = self.field_value(bdd, Field::TcpFlags, f.tcp_flags.0 as u64);
        bdd.and(acc, fl)
    }

    /// Reads a concrete flow out of a satisfying cube; don't-care bits
    /// resolve to 0, and the §4.4.3 preference for common protocols is
    /// applied by the caller via preference BDDs before picking.
    pub fn cube_to_flow(&self, cube: &Cube) -> Flow {
        let read = |field: Field| -> u64 {
            let bits = field.bits();
            let mut v = 0u64;
            for i in 0..bits {
                v <<= 1;
                if cube.get(self.var_of(field, i, false)) == Some(true) {
                    v |= 1;
                }
            }
            v
        };
        Flow {
            dst_ip: Ip(read(Field::DstIp) as u32),
            src_ip: Ip(read(Field::SrcIp) as u32),
            dst_port: read(Field::DstPort) as u16,
            src_port: read(Field::SrcPort) as u16,
            icmp_type: read(Field::IcmpType) as u8,
            icmp_code: read(Field::IcmpCode) as u8,
            protocol: IpProtocol::from_number(read(Field::Protocol) as u8),
            tcp_flags: TcpFlags(read(Field::TcpFlags) as u8),
        }
    }

    /// Equality relation `field' == field` for one transformable field —
    /// the identity building block of NAT rules.
    pub fn field_identity(&self, bdd: &mut Bdd, field: Field) -> NodeId {
        let mut acc = NodeId::TRUE;
        for i in (0..field.bits()).rev() {
            let o = bdd.var(self.var_of(field, i, false));
            let p = bdd.var(self.var_of(field, i, true));
            let x = bdd.xor(o, p);
            let eq = bdd.not(x);
            acc = bdd.and(acc, eq);
        }
        acc
    }

    /// The zone-bits value test `zone == z` (unprimed).
    pub fn zone_value(&self, bdd: &mut Bdd, z: u32) -> NodeId {
        debug_assert!(z < (1 << ZONE_BITS));
        let mut acc = NodeId::TRUE;
        for b in (0..ZONE_BITS).rev() {
            let bit = (z >> (ZONE_BITS - 1 - b)) & 1 == 1;
            let lit = bdd.literal(ZONE_BASE + 2 * b, bit);
            acc = bdd.and(lit, acc);
        }
        acc
    }

    /// The zone-rewrite rule `zone' == z` (combine with
    /// [`PacketVars::zone_transform`]).
    pub fn zone_set_rule(&self, bdd: &mut Bdd, z: u32) -> NodeId {
        let mut acc = NodeId::TRUE;
        for b in (0..ZONE_BITS).rev() {
            let bit = (z >> (ZONE_BITS - 1 - b)) & 1 == 1;
            let lit = bdd.literal(ZONE_BASE + 2 * b + 1, bit);
            acc = bdd.and(lit, acc);
        }
        acc
    }

    /// The unprimed variable of waypoint bit `w`.
    pub fn waypoint_var(&self, w: u32) -> u32 {
        debug_assert!(w < self.waypoint_count);
        WAYPOINT_BASE + 2 * w
    }

    /// The waypoint-set rule `w' == 1 ∧ (other waypoints identity)` —
    /// with the per-waypoint transform only bit `w` is quantified, so the
    /// rule is just `w' == 1`.
    pub fn waypoint_set_rule(&self, bdd: &mut Bdd, w: u32) -> NodeId {
        bdd.var(self.waypoint_var(w) + 1)
    }

    /// Projects a packet set onto the 5-tuple (both IPs, both ports,
    /// protocol) by existentially quantifying TCP flags, ICMP fields, and
    /// the zone/waypoint bookkeeping bits. Session matching is 5-tuple
    /// based (§4.2.3), so installable-session sets are projected before
    /// mirroring.
    pub fn project_five_tuple(&self, bdd: &mut Bdd, set: NodeId) -> NodeId {
        let mut vars_to_drop: Vec<u32> = Vec::new();
        for field in [Field::IcmpCode, Field::IcmpType, Field::TcpFlags] {
            for i in 0..field.bits() {
                vars_to_drop.push(self.var_of(field, i, false));
            }
        }
        for z in 0..ZONE_BITS {
            vars_to_drop.push(ZONE_BASE + 2 * z);
        }
        for w in 0..self.waypoint_count {
            vars_to_drop.push(self.waypoint_var(w));
        }
        let cube = bdd.cube_of_vars(&vars_to_drop);
        bdd.exists(set, cube)
    }

    /// The canonical state of the bookkeeping bits at a packet source:
    /// zone 0, all waypoint bits clear. Applied on source-injection edges
    /// so reach sets stay canonical.
    pub fn initial_bits(&self, bdd: &mut Bdd) -> NodeId {
        let mut acc = self.zone_value(bdd, 0);
        for w in 0..self.waypoint_count {
            let v = bdd.nvar(self.waypoint_var(w));
            acc = bdd.and(acc, v);
        }
        acc
    }

    /// A renaming that swaps source and destination (IPs and ports) —
    /// used to mirror firewall session sets for return traffic (§4.2.3).
    pub fn register_swap(&self, bdd: &mut Bdd) -> batnet_bdd::VarMap {
        let mut pairs = Vec::new();
        for i in 0..32 {
            let d = self.var_of(Field::DstIp, i, false);
            let s = self.var_of(Field::SrcIp, i, false);
            pairs.push((d, s));
            pairs.push((s, d));
        }
        for i in 0..16 {
            let d = self.var_of(Field::DstPort, i, false);
            let s = self.var_of(Field::SrcPort, i, false);
            pairs.push((d, s));
            pairs.push((s, d));
        }
        bdd.register_map(&pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Bdd, PacketVars) {
        PacketVars::new(2)
    }

    fn eval_flow(bdd: &Bdd, vars: &PacketVars, set: NodeId, f: &Flow) -> bool {
        // Build the full assignment from the flow (zone/waypoints 0).
        let mut a = vec![false; vars.num_vars as usize];
        let write = |a: &mut Vec<bool>, field: Field, value: u64| {
            let bits = field.bits();
            for i in 0..bits {
                a[vars.var_of(field, i, false) as usize] = (value >> (bits - 1 - i)) & 1 == 1;
            }
        };
        write(&mut a, Field::DstIp, f.dst_ip.0 as u64);
        write(&mut a, Field::SrcIp, f.src_ip.0 as u64);
        write(&mut a, Field::DstPort, f.dst_port as u64);
        write(&mut a, Field::SrcPort, f.src_port as u64);
        write(&mut a, Field::IcmpCode, f.icmp_code as u64);
        write(&mut a, Field::IcmpType, f.icmp_type as u64);
        write(&mut a, Field::Protocol, f.protocol.number() as u64);
        write(&mut a, Field::TcpFlags, f.tcp_flags.0 as u64);
        bdd.eval(set, &a)
    }

    #[test]
    fn layout_is_disjoint_and_in_range() {
        let (_, vars) = setup();
        let mut seen = std::collections::BTreeSet::new();
        for field in [
            Field::DstIp,
            Field::SrcIp,
            Field::DstPort,
            Field::SrcPort,
            Field::IcmpCode,
            Field::IcmpType,
            Field::Protocol,
            Field::TcpFlags,
        ] {
            for i in 0..field.bits() {
                let v = vars.var_of(field, i, false);
                assert!(seen.insert(v), "collision at {field:?}[{i}]");
                assert!(v < vars.num_vars);
                if field.transform_offset().is_some() {
                    let p = vars.var_of(field, i, true);
                    assert!(seen.insert(p), "primed collision at {field:?}[{i}]");
                }
            }
        }
        // Paper's frequency order: dst IP vars come first.
        assert_eq!(vars.var_of(Field::DstIp, 0, false), 0);
        assert!(vars.var_of(Field::SrcIp, 0, false) > vars.var_of(Field::DstIp, 31, false));
        assert!(vars.var_of(Field::TcpFlags, 0, false) > vars.var_of(Field::Protocol, 0, false));
        // Interleaving: primed partner is adjacent.
        assert_eq!(
            vars.var_of(Field::DstIp, 7, true),
            vars.var_of(Field::DstIp, 7, false) + 1
        );
    }

    #[test]
    fn prefix_constraint_matches_flows() {
        let (mut bdd, vars) = setup();
        let p: Prefix = "10.0.3.0/24".parse().unwrap();
        let set = vars.ip_prefix(&mut bdd, Field::DstIp, p);
        let inside = Flow::tcp("1.1.1.1".parse().unwrap(), 1, "10.0.3.77".parse().unwrap(), 80);
        let outside = Flow::tcp("1.1.1.1".parse().unwrap(), 1, "10.0.4.1".parse().unwrap(), 80);
        assert!(eval_flow(&bdd, &vars, set, &inside));
        assert!(!eval_flow(&bdd, &vars, set, &outside));
    }

    #[test]
    fn headerspace_bdd_agrees_with_concrete_matcher() {
        let (mut bdd, vars) = setup();
        // A representative multi-field space.
        let hs = HeaderSpace {
            src_ips: vec![IpRange::from_prefix("10.1.0.0/16".parse().unwrap())],
            dst_ips: vec![IpRange::from_prefix("10.2.0.0/24".parse().unwrap())],
            protocols: vec![IpProtocol::Tcp],
            dst_ports: vec![PortRange::new(80, 90)],
            established: true,
            ..HeaderSpace::default()
        };
        let set = vars.headerspace(&mut bdd, &hs);
        let mk = |src: &str, dst: &str, dport: u16, flags: TcpFlags| {
            let mut f = Flow::tcp(src.parse().unwrap(), 40000, dst.parse().unwrap(), dport);
            f.tcp_flags = flags;
            f
        };
        let cases = vec![
            mk("10.1.5.5", "10.2.0.9", 85, TcpFlags::ACK),
            mk("10.1.5.5", "10.2.0.9", 85, TcpFlags::SYN), // not established
            mk("10.1.5.5", "10.2.0.9", 91, TcpFlags::ACK), // port out of range
            mk("10.9.5.5", "10.2.0.9", 85, TcpFlags::ACK), // src outside
            mk("10.1.5.5", "10.3.0.9", 85, TcpFlags::ACK), // dst outside
        ];
        for f in cases {
            assert_eq!(
                eval_flow(&bdd, &vars, set, &f),
                hs.matches(&f),
                "disagreement on {f}"
            );
        }
        // Port constraints exclude ICMP entirely.
        let icmp = Flow::icmp_echo("10.1.5.5".parse().unwrap(), "10.2.0.9".parse().unwrap());
        assert_eq!(eval_flow(&bdd, &vars, set, &icmp), hs.matches(&icmp));
    }

    #[test]
    fn flow_roundtrip_through_cube() {
        let (mut bdd, vars) = setup();
        let f = Flow::tcp("10.1.2.3".parse().unwrap(), 49152, "10.9.8.7".parse().unwrap(), 443);
        let set = vars.flow(&mut bdd, &f);
        let cube = bdd.pick_cube(set).expect("singleton non-empty");
        let back = vars.cube_to_flow(&cube);
        assert_eq!(back, f);
    }

    #[test]
    fn nat_transform_rewrites_dst_ip() {
        let (mut bdd, vars) = setup();
        // Rule: dst' = 10.0.5.5, everything else identity.
        let mut rule = vars.field_value_primed(&mut bdd, Field::DstIp, u32::from_be_bytes([10, 0, 5, 5]) as u64);
        for f in [Field::SrcIp, Field::DstPort, Field::SrcPort] {
            let id = vars.field_identity(&mut bdd, f);
            rule = bdd.and(rule, id);
        }
        let input = Flow::tcp("1.2.3.4".parse().unwrap(), 1000, "203.0.113.10".parse().unwrap(), 80);
        let set = vars.flow(&mut bdd, &input);
        let out = bdd.transform(set, rule, vars.nat_transform);
        let mut expect = input;
        expect.dst_ip = "10.0.5.5".parse().unwrap();
        assert!(eval_flow(&bdd, &vars, out, &expect));
        assert!(!eval_flow(&bdd, &vars, out, &input), "original dst gone");
        // Fixed fields (protocol) survive untouched.
        let mut wrong_proto = expect;
        wrong_proto.protocol = IpProtocol::Udp;
        assert!(!eval_flow(&bdd, &vars, out, &wrong_proto));
    }

    #[test]
    fn zone_bits_set_and_test() {
        let (mut bdd, vars) = setup();
        let any = NodeId::TRUE;
        let rule = vars.zone_set_rule(&mut bdd, 3);
        let tagged = bdd.transform(any, rule, vars.zone_transform);
        let z3 = vars.zone_value(&mut bdd, 3);
        let z1 = vars.zone_value(&mut bdd, 1);
        assert_eq!(bdd.and(tagged, z3), tagged, "all tagged packets in zone 3");
        assert_eq!(bdd.and(tagged, z1), NodeId::FALSE);
    }

    #[test]
    fn waypoint_bit_set() {
        let (mut bdd, vars) = setup();
        let start = {
            // Start with waypoint bit 0 clear.
            let w = bdd.var(vars.waypoint_var(0));
            bdd.not(w)
        };
        let rule = vars.waypoint_set_rule(&mut bdd, 0);
        let after = bdd.transform(start, rule, vars.waypoint_transforms[0]);
        let w = bdd.var(vars.waypoint_var(0));
        assert_eq!(bdd.and(after, w), after, "bit set after traversal");
    }

    #[test]
    fn swap_mirrors_session_sets() {
        let (mut bdd, vars) = setup();
        let fwd = Flow::tcp("10.0.0.9".parse().unwrap(), 50000, "203.0.113.99".parse().unwrap(), 443);
        let set = vars.flow(&mut bdd, &fwd);
        let swap = vars.register_swap(&mut bdd);
        let mirrored = bdd.rename(set, swap);
        let ret = fwd.reverse();
        // The mirrored set contains the return flow's 5-tuple (flags and
        // other fixed fields are untouched by the swap, so compare with
        // the forward flags).
        let mut ret_like = ret;
        ret_like.tcp_flags = fwd.tcp_flags;
        assert!(eval_flow(&bdd, &vars, mirrored, &ret_like));
        assert!(!eval_flow(&bdd, &vars, mirrored, &fwd));
    }

    #[test]
    fn transform_pre_inverts_forward_transform() {
        let (mut bdd, vars) = setup();
        // Rule: dst' = constant, rest identity.
        let target: Ip = "10.0.5.5".parse().unwrap();
        let mut rule = vars.field_value_primed(&mut bdd, Field::DstIp, target.0 as u64);
        for f in [Field::SrcIp, Field::DstPort, Field::SrcPort] {
            let id = vars.field_identity(&mut bdd, f);
            rule = bdd.and(rule, id);
        }
        // Backward: which packets end up at dst == 10.0.5.5, port 80?
        let port80 = vars.field_value(&mut bdd, Field::DstPort, 80);
        let dst = vars.field_value(&mut bdd, Field::DstIp, target.0 as u64);
        let t = bdd.and(port80, dst);
        let pre = PacketVars::transform_pre(&mut bdd, vars.nat_rev, rule, t);
        // Any original destination qualifies (it gets rewritten), but the
        // port (identity) must be 80 pre-image too.
        let f_ok = Flow::tcp("1.1.1.1".parse().unwrap(), 9, "9.9.9.9".parse().unwrap(), 80);
        let f_bad = Flow::tcp("1.1.1.1".parse().unwrap(), 9, "9.9.9.9".parse().unwrap(), 81);
        let b_ok = vars.flow(&mut bdd, &f_ok);
        let b_bad = vars.flow(&mut bdd, &f_bad);
        assert_ne!(bdd.and(pre, b_ok), NodeId::FALSE);
        assert_eq!(bdd.and(pre, b_bad), NodeId::FALSE);
        // Consistency with the forward direction: forward(pre) ⊆ t.
        let fwd = bdd.transform(pre, rule, vars.nat_transform);
        assert!(bdd.implies_true(fwd, t));
    }

    #[test]
    fn initial_bits_pin_bookkeeping_vars() {
        let (mut bdd, vars) = setup();
        let init = vars.initial_bits(&mut bdd);
        let z0 = vars.zone_value(&mut bdd, 0);
        assert!(bdd.implies_true(init, z0));
        let w0 = bdd.var(vars.waypoint_var(0));
        assert_eq!(bdd.and(init, w0), NodeId::FALSE);
    }

    #[test]
    fn additional_vars_budget_matches_paper() {
        // The paper: real networks needed only 0–6 variables beyond the
        // header encoding. Our fixed overhead: 4 zone bits (+primed) and
        // per-waypoint pairs.
        let (_, v0) = PacketVars::new(0);
        let (_, v2) = PacketVars::new(2);
        assert_eq!(v2.num_vars - v0.num_vars, 4, "2 waypoints cost 4 vars");
    }
}
