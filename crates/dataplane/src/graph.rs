//! The dataflow graph (Figure 2 of the paper).
//!
//! Nodes are pipeline stages; edges carry either a packet-set BDD
//! (intersection) or a transform (NAT relation, zone tagging, waypoint
//! marking). Terminal sinks are *typed* so symbolic dispositions align
//! one-to-one with the concrete engine's [`batnet_traceroute::Disposition`]
//! values — the alignment differential testing depends on.
//!
//! Per-device shape, mirroring the general pipeline (§7.2):
//!
//! ```text
//! IfaceSrc(d,i) ──init──▶ PreIn(d,i) ──aclIn──▶ PostIn(d,i)
//!                            │                      │ (dNAT rules / passthrough)
//!                            └──deny──▶ Drop        ▼
//!                                              PreFwd(d) ──owned──▶ Accept(d)
//!                                                   │ ¬owned
//!                                                   ▼
//!                                                Fwd(d) ──fib(o)──▶ ZoneOut(d,o) ──policy──▶ PostZone(d,o)
//!                                                   │ (no route /                 │ (sNAT / passthrough)
//!                                                   ▼  discard)                   ▼
//!                                                 Drop                      OutAcl(d,o) ──permit──▶ OutIface(d,o)
//!                                                                                                  │ per-gateway
//!                                                                                                  ▼
//!                                                             PreIn(neighbor) / DeliveredToSubnet / ExitsNetwork / Drop
//! ```
//!
//! Graph compression (§4.2.3) later splices out the chain nodes that turn
//! out trivial.

use crate::acl::compile_acl;
use crate::fibenc::compile_fib;
use crate::vars::{Field, PacketVars};
use batnet_bdd::{Bdd, NodeId, Transform};
use batnet_config::vi::{Device, NatKind};
use batnet_config::{InterfaceRef, Topology};
use batnet_net::{Ip, IpRange};
use batnet_routing::DataPlane;
use std::collections::BTreeMap;

/// Why a packet was dropped — mirrors the concrete engine's dispositions.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DropKind {
    /// Ingress ACL deny.
    AclIn(String),
    /// Egress ACL deny.
    AclOut(String),
    /// Inter-zone policy deny.
    Zone,
    /// No FIB entry (or unresolved next hop).
    NoRoute,
    /// Discard route.
    NullRouted,
    /// Gateway unowned on the egress subnet.
    NeighborUnreachable(String),
}

/// Node kinds of the dataflow graph.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NodeKind {
    /// Packets injected at this interface (from hosts / outside).
    IfaceSrc(String, String),
    /// Ingress pipeline entry (injection + hand-offs from neighbors).
    PreIn(String, String),
    /// After the ingress ACL.
    PostIn(String, String),
    /// After destination NAT and zone tagging, before the local check.
    PreFwd(String),
    /// The FIB lookup.
    Fwd(String),
    /// After the egress zone check for one egress interface.
    ZoneOut(String, String),
    /// After source NAT.
    PostZone(String, String),
    /// After the egress ACL — packets definitely leaving via this
    /// interface.
    OutIface(String, String),
    /// Delivered to an address owned by the device.
    Accept(String),
    /// Forwarded onto the connected subnet (host delivery).
    DeliveredToSubnet(String, String),
    /// Left the modeled network.
    ExitsNetwork(String, String),
    /// Dropped.
    Drop(String, DropKind),
}

impl NodeKind {
    /// The device this node belongs to.
    pub fn device(&self) -> &str {
        match self {
            NodeKind::IfaceSrc(d, _)
            | NodeKind::PreIn(d, _)
            | NodeKind::PostIn(d, _)
            | NodeKind::PreFwd(d)
            | NodeKind::Fwd(d)
            | NodeKind::ZoneOut(d, _)
            | NodeKind::PostZone(d, _)
            | NodeKind::OutIface(d, _)
            | NodeKind::Accept(d)
            | NodeKind::DeliveredToSubnet(d, _)
            | NodeKind::ExitsNetwork(d, _)
            | NodeKind::Drop(d, _) => d,
        }
    }

    /// Is this a terminal (success or drop) node?
    pub fn is_sink(&self) -> bool {
        matches!(
            self,
            NodeKind::Accept(_)
                | NodeKind::DeliveredToSubnet(_, _)
                | NodeKind::ExitsNetwork(_, _)
                | NodeKind::Drop(_, _)
        )
    }

    /// Is this a success terminal?
    pub fn is_success_sink(&self) -> bool {
        matches!(
            self,
            NodeKind::Accept(_) | NodeKind::DeliveredToSubnet(_, _) | NodeKind::ExitsNetwork(_, _)
        )
    }
}

/// What an edge does to the packet set flowing over it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeLabel {
    /// Intersect with this set (packet unchanged).
    Bdd(NodeId),
    /// Apply this relation with this transform handle (NAT, zone tag,
    /// waypoint mark).
    Transform(NodeId, Transform),
}

/// One edge.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Tail node index.
    pub from: usize,
    /// Head node index.
    pub to: usize,
    /// Label.
    pub label: EdgeLabel,
}

/// The dataflow graph.
pub struct ForwardingGraph {
    /// Nodes; index = node id.
    pub nodes: Vec<NodeKind>,
    /// Edges.
    pub edges: Vec<Edge>,
    /// Node → outgoing edge indices.
    pub out_edges: Vec<Vec<usize>>,
    /// Node → incoming edge indices.
    pub in_edges: Vec<Vec<usize>>,
    index: BTreeMap<NodeKind, usize>,
}

impl ForwardingGraph {
    /// An empty graph (used by rewriting passes).
    pub fn empty() -> ForwardingGraph {
        ForwardingGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out_edges: Vec::new(),
            in_edges: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    pub(crate) fn index_insert(&mut self, kind: NodeKind, i: usize) {
        self.index.insert(kind, i);
    }

    /// Node id for a kind, if present.
    pub fn node(&self, kind: &NodeKind) -> Option<usize> {
        self.index.get(kind).copied()
    }

    /// All node ids matching a predicate.
    pub fn nodes_where(&self, pred: impl Fn(&NodeKind) -> bool) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, k)| pred(k))
            .map(|(i, _)| i)
            .collect()
    }

    fn add_node(&mut self, kind: NodeKind) -> usize {
        if let Some(&i) = self.index.get(&kind) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(kind.clone());
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        self.index.insert(kind, i);
        i
    }

    /// Adds an edge (used by the builder and by instrumentation passes).
    pub fn add_edge(&mut self, from: usize, to: usize, label: EdgeLabel) {
        let id = self.edges.len();
        self.edges.push(Edge { from, to, label });
        self.out_edges[from].push(id);
        self.in_edges[to].push(id);
    }

    /// Builds the graph for a simulated snapshot.
    pub fn build(
        bdd: &mut Bdd,
        vars: &PacketVars,
        devices: &[Device],
        dp: &DataPlane,
        topo: &Topology,
    ) -> ForwardingGraph {
        let _span = batnet_obs::Span::enter("graph.build");
        let mut g = ForwardingGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out_edges: Vec::new(),
            in_edges: Vec::new(),
            index: BTreeMap::new(),
        };
        let init = vars.initial_bits(bdd);

        // Pass 1: per-device internals.
        for (di, device) in devices.iter().enumerate() {
            let ddp = &dp.devices[di];
            let dev = device.name.clone();
            let fwd = g.add_node(NodeKind::Fwd(dev.clone()));
            let pre_fwd = g.add_node(NodeKind::PreFwd(dev.clone()));
            let accept = g.add_node(NodeKind::Accept(dev.clone()));

            // Local delivery split: PreFwd → Accept on owned addresses,
            // PreFwd → Fwd on the rest.
            let mut owned = NodeId::FALSE;
            for iface in device.active_interfaces() {
                if let Some(ip) = iface.ip() {
                    let f = vars.field_value(bdd, Field::DstIp, ip.0 as u64);
                    owned = bdd.or(owned, f);
                }
                for &(ip, _) in &iface.secondary_addresses {
                    let f = vars.field_value(bdd, Field::DstIp, ip.0 as u64);
                    owned = bdd.or(owned, f);
                }
            }
            let not_owned = bdd.not(owned);
            g.add_edge(pre_fwd, accept, EdgeLabel::Bdd(owned));
            g.add_edge(pre_fwd, fwd, EdgeLabel::Bdd(not_owned));

            // Ingress chains.
            let zone_index = zone_indices(device);
            for iface in device.active_interfaces() {
                let src = g.add_node(NodeKind::IfaceSrc(dev.clone(), iface.name.clone()));
                let pre_in = g.add_node(NodeKind::PreIn(dev.clone(), iface.name.clone()));
                let post_in = g.add_node(NodeKind::PostIn(dev.clone(), iface.name.clone()));
                g.add_edge(src, pre_in, EdgeLabel::Bdd(init));
                // Ingress ACL.
                match iface.acl_in.as_ref().and_then(|n| device.acls.get(n)) {
                    Some(acl) => {
                        let compiled = compile_acl(bdd, vars, acl);
                        g.add_edge(pre_in, post_in, EdgeLabel::Bdd(compiled.permits));
                        let drop = g.add_node(NodeKind::Drop(
                            dev.clone(),
                            DropKind::AclIn(iface.name.clone()),
                        ));
                        g.add_edge(pre_in, drop, EdgeLabel::Bdd(compiled.denies));
                    }
                    // No ACL, or undefined reference (documented default
                    // permit): pass-through.
                    None => g.add_edge(pre_in, post_in, EdgeLabel::Bdd(NodeId::TRUE)),
                }
                // Destination NAT (first match; fall-through passes
                // untouched) then zone tagging into PreFwd.
                let tag = device.stateful.then(|| {
                    let z = iface
                        .zone
                        .as_deref()
                        .or_else(|| device.zone_of_interface(&iface.name))
                        .and_then(|z| zone_index.get(z).copied())
                        .unwrap_or(0);
                    let rule = vars.zone_set_rule(bdd, z);
                    (rule, vars.zone_transform)
                });
                // The node NAT/zone edges feed: with zone tagging, an
                // intermediate per-interface point is needed so the tag
                // applies to every ingress packet.
                let after_nat = if tag.is_some() {
                    g.add_node(NodeKind::PostZone(dev.clone(), format!("__in__{}", iface.name)))
                } else {
                    pre_fwd
                };
                build_nat_edges(
                    &mut g,
                    bdd,
                    vars,
                    device,
                    NatKind::Destination,
                    Some(&iface.name),
                    post_in,
                    after_nat,
                );
                if let Some((rule, t)) = tag {
                    g.add_edge(after_nat, pre_fwd, EdgeLabel::Transform(rule, t));
                }
            }

            // FIB split.
            let compiled_fib = compile_fib(bdd, vars, &ddp.fib);
            let no_route_set = bdd.or(compiled_fib.no_route, compiled_fib.unresolved);
            if no_route_set != NodeId::FALSE {
                let drop = g.add_node(NodeKind::Drop(dev.clone(), DropKind::NoRoute));
                g.add_edge(fwd, drop, EdgeLabel::Bdd(no_route_set));
            }
            if compiled_fib.discarded != NodeId::FALSE {
                let drop = g.add_node(NodeKind::Drop(dev.clone(), DropKind::NullRouted));
                g.add_edge(fwd, drop, EdgeLabel::Bdd(compiled_fib.discarded));
            }

            // Egress chains: group FIB buckets by egress interface.
            let mut by_iface: BTreeMap<String, Vec<(Option<Ip>, NodeId)>> = BTreeMap::new();
            for (hop, &set) in &compiled_fib.forwards {
                by_iface
                    .entry(hop.iface.clone())
                    .or_default()
                    .push((hop.gateway, set));
            }
            for (oiface, buckets) in by_iface {
                let mut iface_set = NodeId::FALSE;
                for &(_, s) in &buckets {
                    iface_set = bdd.or(iface_set, s);
                }
                let zone_out = g.add_node(NodeKind::ZoneOut(dev.clone(), oiface.clone()));
                g.add_edge(fwd, zone_out, EdgeLabel::Bdd(iface_set));
                // Zone policy.
                let post_zone = g.add_node(NodeKind::PostZone(dev.clone(), oiface.clone()));
                if device.stateful {
                    let (permit, deny) =
                        zone_policy_sets(bdd, vars, device, &zone_index, &oiface);
                    g.add_edge(zone_out, post_zone, EdgeLabel::Bdd(permit));
                    if deny != NodeId::FALSE {
                        let drop = g.add_node(NodeKind::Drop(dev.clone(), DropKind::Zone));
                        g.add_edge(zone_out, drop, EdgeLabel::Bdd(deny));
                    }
                } else {
                    g.add_edge(zone_out, post_zone, EdgeLabel::Bdd(NodeId::TRUE));
                }
                // Source NAT, then the egress ACL.
                let pre_acl =
                    g.add_node(NodeKind::PostZone(dev.clone(), format!("__snat__{oiface}")));
                build_nat_edges(
                    &mut g,
                    bdd,
                    vars,
                    device,
                    NatKind::Source,
                    Some(&oiface),
                    post_zone,
                    pre_acl,
                );
                let out = g.add_node(NodeKind::OutIface(dev.clone(), oiface.clone()));
                match device
                    .interfaces
                    .get(&oiface)
                    .and_then(|i| i.acl_out.as_ref())
                    .and_then(|n| device.acls.get(n))
                {
                    Some(acl) => {
                        let compiled = compile_acl(bdd, vars, acl);
                        g.add_edge(pre_acl, out, EdgeLabel::Bdd(compiled.permits));
                        let drop = g.add_node(NodeKind::Drop(
                            dev.clone(),
                            DropKind::AclOut(oiface.clone()),
                        ));
                        g.add_edge(pre_acl, drop, EdgeLabel::Bdd(compiled.denies));
                    }
                    None => g.add_edge(pre_acl, out, EdgeLabel::Bdd(NodeId::TRUE)),
                }

                // Hand-off per gateway bucket.
                let me = InterfaceRef::new(&dev, &oiface);
                let neighbors = topo.neighbors_of(&me);
                // Map gateway IP → (neighbor device, neighbor iface).
                let mut gw_owner: BTreeMap<Ip, InterfaceRef> = BTreeMap::new();
                for nb in neighbors {
                    if let Some(nd) = devices.iter().find(|d| d.name == nb.device) {
                        if let Some(ni) = nd.interfaces.get(&nb.interface) {
                            if let Some(ip) = ni.ip() {
                                gw_owner.insert(ip, nb.clone());
                            }
                            for &(ip, _) in &ni.secondary_addresses {
                                gw_owner.insert(ip, nb.clone());
                            }
                        }
                    }
                }
                for (gateway, set) in buckets {
                    match gateway {
                        Some(gw) => match gw_owner.get(&gw) {
                            Some(nb) => {
                                let next = g.add_node(NodeKind::PreIn(
                                    nb.device.clone(),
                                    nb.interface.clone(),
                                ));
                                g.add_edge(out, next, EdgeLabel::Bdd(set));
                            }
                            None => {
                                if neighbors.is_empty() {
                                    // Edge interface towards the outside.
                                    let exits = g.add_node(NodeKind::ExitsNetwork(
                                        dev.clone(),
                                        oiface.clone(),
                                    ));
                                    g.add_edge(out, exits, EdgeLabel::Bdd(set));
                                } else {
                                    let drop = g.add_node(NodeKind::Drop(
                                        dev.clone(),
                                        DropKind::NeighborUnreachable(oiface.clone()),
                                    ));
                                    g.add_edge(out, drop, EdgeLabel::Bdd(set));
                                }
                            }
                        },
                        None => {
                            // Connected delivery: per neighbor-owned dst a
                            // hand-off; the remainder goes to hosts on the
                            // subnet.
                            let mut remainder = set;
                            for (ip, nb) in &gw_owner {
                                let dst = vars.field_value(bdd, Field::DstIp, ip.0 as u64);
                                let to_nb = bdd.and(set, dst);
                                if to_nb != NodeId::FALSE {
                                    let next = g.add_node(NodeKind::PreIn(
                                        nb.device.clone(),
                                        nb.interface.clone(),
                                    ));
                                    g.add_edge(out, next, EdgeLabel::Bdd(to_nb));
                                    remainder = bdd.diff(remainder, dst);
                                }
                            }
                            if remainder != NodeId::FALSE {
                                // On-subnet host delivery vs off-subnet
                                // (edge interface → exits network).
                                let subnet = device
                                    .interfaces
                                    .get(&oiface)
                                    .and_then(|i| i.connected_prefix());
                                let on_subnet = match subnet {
                                    Some(p) => vars.ip_range(bdd, Field::DstIp, IpRange::from_prefix(p)),
                                    None => NodeId::FALSE,
                                };
                                let host_part = bdd.and(remainder, on_subnet);
                                if host_part != NodeId::FALSE {
                                    let sink = g.add_node(NodeKind::DeliveredToSubnet(
                                        dev.clone(),
                                        oiface.clone(),
                                    ));
                                    g.add_edge(out, sink, EdgeLabel::Bdd(host_part));
                                }
                                let off = bdd.diff(remainder, on_subnet);
                                if off != NodeId::FALSE {
                                    let sink = g.add_node(NodeKind::ExitsNetwork(
                                        dev.clone(),
                                        oiface.clone(),
                                    ));
                                    g.add_edge(out, sink, EdgeLabel::Bdd(off));
                                }
                            }
                        }
                    }
                }
            }
        }
        batnet_obs::gauge_set("graph.nodes", g.nodes.len() as f64);
        batnet_obs::gauge_set("graph.edges", g.edges.len() as f64);
        g
    }

    /// Instruments the graph for a waypoint query: every edge into the
    /// device's `Fwd` node is rerouted through a transform that sets
    /// waypoint bit `w` (§4.2.3).
    pub fn instrument_waypoint(&mut self, bdd: &mut Bdd, vars: &PacketVars, device: &str, w: u32) {
        let Some(fwd) = self.node(&NodeKind::Fwd(device.to_string())) else {
            return;
        };
        let rule = vars.waypoint_set_rule(bdd, w);
        let t = vars.waypoint_transforms[w as usize];
        let mark = self.add_node(NodeKind::PostZone(
            device.to_string(),
            format!("__wp{w}__"),
        ));
        // Retarget incoming edges to the marker node.
        let incoming: Vec<usize> = self.in_edges[fwd].clone();
        for eid in incoming {
            self.edges[eid].to = mark;
            self.in_edges[mark].push(eid);
        }
        self.in_edges[fwd].clear();
        self.add_edge(mark, fwd, EdgeLabel::Transform(rule, t));
    }

    /// Total node and edge counts (reported by Table 2's graph-build
    /// column and the compression ablation).
    pub fn size(&self) -> (usize, usize) {
        (self.nodes.len(), self.edges.len())
    }
}

/// Stable zone → small-integer mapping for a device. Zone index 0 is
/// reserved for "no zone".
fn zone_indices(device: &Device) -> BTreeMap<String, u32> {
    let mut map = BTreeMap::new();
    let mut next = 1u32;
    for z in device.zones.keys() {
        map.insert(z.clone(), next);
        next += 1;
    }
    // Zones referenced only via interface membership.
    for iface in device.interfaces.values() {
        if let Some(z) = &iface.zone {
            map.entry(z.clone()).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            });
        }
    }
    map
}

/// The permit/deny packet sets for traffic leaving via `oiface` of a
/// stateful device, as a function of the recorded ingress zone bits.
fn zone_policy_sets(
    bdd: &mut Bdd,
    vars: &PacketVars,
    device: &Device,
    zone_index: &BTreeMap<String, u32>,
    oiface: &str,
) -> (NodeId, NodeId) {
    let out_zone = device
        .zone_of_interface(oiface)
        .and_then(|z| zone_index.get(z).copied())
        .unwrap_or(0);
    let mut permit = NodeId::FALSE;
    // Unzoned ingress (index 0) bypasses zone policy, as does an unzoned
    // egress.
    let z0 = vars.zone_value(bdd, 0);
    permit = bdd.or(permit, z0);
    if out_zone == 0 {
        return (NodeId::TRUE, NodeId::FALSE);
    }
    let name_of = |idx: u32| {
        zone_index
            .iter()
            .find(|(_, &v)| v == idx)
            .map(|(n, _)| n.as_str())
    };
    // An unnamed egress zone index cannot occur (out_zone came from the
    // index), but degrade to the unzoned-egress behavior if it does.
    let Some(out_name) = name_of(out_zone) else {
        return (NodeId::TRUE, NodeId::FALSE);
    };
    for (in_name, &in_idx) in zone_index {
        let zin = vars.zone_value(bdd, in_idx);
        if in_idx == out_zone {
            // Intra-zone: permitted by default.
            permit = bdd.or(permit, zin);
            continue;
        }
        let policy = device
            .zone_policies
            .iter()
            .find(|zp| zp.from_zone == *in_name && zp.to_zone == out_name);
        let allowed_headers = match policy {
            Some(zp) => compile_acl(bdd, vars, &zp.acl).permits,
            None => {
                if device.zone_default_permit {
                    NodeId::TRUE
                } else {
                    NodeId::FALSE
                }
            }
        };
        let contribution = bdd.and(zin, allowed_headers);
        permit = bdd.or(permit, contribution);
    }
    let deny = bdd.not(permit);
    (permit, deny)
}

/// Builds the NAT edges of one pipeline step: one transform edge per
/// applicable rule (first-match carved) plus a pass-through edge for
/// packets no rule matches.
#[allow(clippy::too_many_arguments)]
fn build_nat_edges(
    g: &mut ForwardingGraph,
    bdd: &mut Bdd,
    vars: &PacketVars,
    device: &Device,
    kind: NatKind,
    iface: Option<&str>,
    from: usize,
    to: usize,
) {
    let mut unmatched = NodeId::TRUE;
    for rule in &device.nat_rules {
        if rule.kind != kind {
            continue;
        }
        if let Some(scope) = &rule.interface {
            if Some(scope.as_str()) != iface {
                continue;
            }
        }
        let match_set = vars.headerspace(bdd, &rule.match_space);
        let mine = bdd.and(unmatched, match_set);
        if mine == NodeId::FALSE {
            continue;
        }
        unmatched = bdd.diff(unmatched, match_set);
        // The relation: inputs restricted to this rule's slice, outputs
        // rewritten per the rule, untouched fields identity.
        let relation = nat_rule_relation(bdd, vars, rule);
        let gated = bdd.and(relation, mine);
        g.add_edge(from, to, EdgeLabel::Transform(gated, vars.nat_transform));
    }
    if unmatched != NodeId::FALSE {
        g.add_edge(from, to, EdgeLabel::Bdd(unmatched));
    }
}

/// The input/output relation of one NAT rule over the 96 transformable
/// bits.
///
/// Pool mapping: aligned power-of-two pools translate exactly (high bits
/// from the pool base, low bits preserved — matching the concrete
/// engine's `addr mod size` rule). Other pools use the sound
/// over-approximation "translated address lies in the pool", recorded in
/// DESIGN.md as a known approximation.
fn nat_rule_relation(bdd: &mut Bdd, vars: &PacketVars, rule: &batnet_config::vi::NatRule) -> NodeId {
    let (rewritten_ip, rewritten_port, identity_fields): (Field, Field, [Field; 3]) =
        match rule.kind {
            NatKind::Source => (
                Field::SrcIp,
                Field::SrcPort,
                [Field::DstIp, Field::DstPort, Field::SrcPort],
            ),
            NatKind::Destination => (
                Field::DstIp,
                Field::DstPort,
                [Field::SrcIp, Field::SrcPort, Field::DstPort],
            ),
        };
    let pool = rule.pool;
    let size = pool.size();
    let aligned_pow2 = size.is_power_of_two() && (pool.start.0 as u64) % size == 0;
    let mut rel = if size == 1 {
        vars.field_value_primed(bdd, rewritten_ip, pool.start.0 as u64)
    } else if aligned_pow2 {
        // High bits = pool base, low k bits copied from the original.
        let k = size.trailing_zeros();
        let mut acc = NodeId::TRUE;
        for i in 0..32 {
            let primed = bdd.var(vars.var_of(rewritten_ip, i, true));
            if i < 32 - k {
                let bit = (pool.start.0 >> (31 - i)) & 1 == 1;
                let lit = if bit { primed } else { bdd.not(primed) };
                acc = bdd.and(acc, lit);
            } else {
                let orig = bdd.var(vars.var_of(rewritten_ip, i, false));
                let x = bdd.xor(orig, primed);
                let eq = bdd.not(x);
                acc = bdd.and(acc, eq);
            }
        }
        acc
    } else {
        // Over-approximation: output in the pool.
        let mut acc = NodeId::FALSE;
        for p in pool.to_prefixes() {
            let mut cube = NodeId::TRUE;
            for i in 0..(p.len() as u32) {
                let bit = (p.network().0 >> (31 - i)) & 1 == 1;
                let primed = vars.var_of(rewritten_ip, i, true);
                let lit = bdd.literal(primed, bit);
                cube = bdd.and(cube, lit);
            }
            acc = bdd.or(acc, cube);
        }
        acc
    };
    // Port: rewritten to a constant or identity.
    match rule.port {
        Some(p) => {
            let pv = vars.field_value_primed(bdd, rewritten_port, p as u64);
            rel = bdd.and(rel, pv);
        }
        None => {
            let id = vars.field_identity(bdd, rewritten_port);
            rel = bdd.and(rel, id);
        }
    }
    // Identity on the untouched transformable fields.
    for f in identity_fields {
        if f == rewritten_port {
            continue; // already handled above
        }
        let id = vars.field_identity(bdd, f);
        rel = bdd.and(rel, id);
    }
    rel
}
