//! Integration tests for the BDD dataflow engine, including the §4.3.2
//! differential tests against the independent concrete engine.

use batnet_bdd::{Bdd, NodeId};
use batnet_config::vi::Device;
use batnet_config::{parse_device, Topology};
use batnet_dataplane::bidir::bidirectional;
use batnet_dataplane::compress::compress;
use batnet_dataplane::{ForwardingGraph, NodeKind, PacketVars, ReachAnalysis};
use batnet_net::{Flow, Ip};
use batnet_routing::{simulate, DataPlane, Environment, SimOptions};
use batnet_traceroute::{Disposition, StartLocation, Tracer};

struct World {
    devices: Vec<Device>,
    dp: DataPlane,
    topo: Topology,
    bdd: Bdd,
    vars: PacketVars,
    graph: ForwardingGraph,
}

fn build(configs: &[(&str, &str)]) -> World {
    let devices: Vec<Device> = configs.iter().map(|(n, t)| parse_device(n, t).0).collect();
    let topo = Topology::infer(&devices);
    let dp = simulate(&devices, &Environment::none(), &SimOptions::default());
    assert!(dp.convergence.converged, "fixture must converge");
    let (mut bdd, vars) = PacketVars::new(1);
    let graph = ForwardingGraph::build(&mut bdd, &vars, &devices, &dp, &topo);
    World {
        devices,
        dp,
        topo,
        bdd,
        vars,
        graph,
    }
}

/// The paper's Figure 2 network: R1 with three interfaces, R2 and R3
/// behind it; prefixes P1/P2/P3; an outbound ACL on R1.i3 allowing only
/// ssh.
fn figure2() -> World {
    build(&[
        (
            "r1",
            "hostname r1\n\
             interface i0\n ip address 10.0.9.1/24\n\
             interface i1\n ip address 10.0.12.1/31\n\
             interface i2\n ip address 10.0.13.1/31\n\
             interface i3\n ip address 10.0.3.1/24\n ip access-group SSHONLY out\n\
             ip route 10.0.1.0/24 10.0.12.0\n\
             ip route 10.0.2.0/24 10.0.13.0\n\
             ip access-list extended SSHONLY\n \
             10 permit tcp any any eq 22\n",
        ),
        (
            "r2",
            "hostname r2\n\
             interface i1\n ip address 10.0.12.0/31\n\
             interface lan\n ip address 10.0.1.1/24\n\
             ip route 10.0.9.0/24 10.0.12.1\n",
        ),
        (
            "r3",
            "hostname r3\n\
             interface i2\n ip address 10.0.13.0/31\n\
             interface lan\n ip address 10.0.2.1/24\n\
             ip route 10.0.9.0/24 10.0.13.1\n",
        ),
    ])
}

fn src_node(w: &World, dev: &str, iface: &str) -> usize {
    w.graph
        .node(&NodeKind::IfaceSrc(dev.into(), iface.into()))
        .unwrap_or_else(|| panic!("missing src node {dev}[{iface}]"))
}

fn flow_in(w: &mut World, set: NodeId, f: &Flow) -> bool {
    let fb = w.vars.flow(&mut w.bdd, f);
    w.bdd.and(set, fb) != NodeId::FALSE
}

#[test]
fn figure2_reachability_example() {
    let mut w = figure2();
    // The paper's walk-through: TCP packets entering at R1.i0; which can
    // leave via R3's LAN (prefix P2 = 10.0.2.0/24)?
    let tcp = w
        .vars
        .headerspace(&mut w.bdd, &batnet_net::HeaderSpace::any().protocol(batnet_net::IpProtocol::Tcp));
    let src = src_node(&w, "r1", "i0");
    let analysis = ReachAnalysis::new(&w.graph);
    let r = analysis.forward(&mut w.bdd, &[(src, tcp)]);
    let r3_out = w
        .graph
        .node(&NodeKind::DeliveredToSubnet("r3".into(), "lan".into()))
        .expect("r3 lan delivery sink");
    let reached = r.at(r3_out);
    assert_ne!(reached, NodeId::FALSE);
    // Packets to P2 get there; packets to P1 do not appear at this sink.
    let to_p2 = Flow::tcp(Ip::new(10, 0, 9, 5), 1000, Ip::new(10, 0, 2, 9), 80);
    let to_p1 = Flow::tcp(Ip::new(10, 0, 9, 5), 1000, Ip::new(10, 0, 1, 9), 80);
    assert!(flow_in(&mut w, reached, &to_p2));
    assert!(!flow_in(&mut w, reached, &to_p1));
    // The ACL on R1.i3: only ssh reaches hosts behind i3.
    let r1_i3 = w
        .graph
        .node(&NodeKind::DeliveredToSubnet("r1".into(), "i3".into()))
        .expect("r1 i3 delivery sink");
    let via_i3 = r.at(r1_i3);
    let ssh = Flow::tcp(Ip::new(10, 0, 9, 5), 1000, Ip::new(10, 0, 3, 9), 22);
    let http = Flow::tcp(Ip::new(10, 0, 9, 5), 1000, Ip::new(10, 0, 3, 9), 80);
    assert!(flow_in(&mut w, via_i3, &ssh));
    assert!(!flow_in(&mut w, via_i3, &http));
}

#[test]
fn compression_preserves_reachability() {
    let mut w = figure2();
    let src = src_node(&w, "r1", "i0");
    let analysis = ReachAnalysis::new(&w.graph);
    let r_full = analysis.forward(&mut w.bdd, &[(src, NodeId::TRUE)]);
    let full_succ = analysis.success_set(&mut w.bdd, &r_full);
    let full_drop = analysis.drop_set(&mut w.bdd, &r_full, None);

    let (cg, stats) = compress(&mut w.bdd, &w.graph);
    assert!(stats.nodes_after < stats.nodes_before, "{stats:?}");
    let csrc = cg
        .node(&NodeKind::IfaceSrc("r1".into(), "i0".into()))
        .expect("source survives compression");
    let canalysis = ReachAnalysis::new(&cg);
    let r_c = canalysis.forward(&mut w.bdd, &[(csrc, NodeId::TRUE)]);
    let c_succ = canalysis.success_set(&mut w.bdd, &r_c);
    let c_drop = canalysis.drop_set(&mut w.bdd, &r_c, None);
    assert_eq!(full_succ, c_succ, "success sets must be identical");
    assert_eq!(full_drop, c_drop, "drop sets must be identical");
}

#[test]
fn backward_agrees_with_forward() {
    let mut w = figure2();
    let src = src_node(&w, "r1", "i0");
    let sink = w
        .graph
        .node(&NodeKind::DeliveredToSubnet("r3".into(), "lan".into()))
        .unwrap();
    // Forward: what reaches the sink from this source.
    let analysis = ReachAnalysis::new(&w.graph);
    let f = analysis.forward(&mut w.bdd, &[(src, NodeId::TRUE)]);
    let fwd_at_sink = f.at(sink);
    // Backward: what at the source can reach the sink.
    let b = analysis.backward(&mut w.bdd, &w.vars, sink, NodeId::TRUE);
    let back_at_src = b.at(src);
    // The two agree on the source's injectable packets: a packet is in
    // the forward sink set iff it is in the backward source set (modulo
    // the init-bits constraint applied on the injection edge).
    let init = w.vars.initial_bits(&mut w.bdd);
    let back_injectable = w.bdd.and(back_at_src, init);
    let fwd_from_back = analysis.forward(&mut w.bdd, &[(src, back_injectable)]);
    assert_eq!(fwd_from_back.at(sink), fwd_at_sink);
    // And packets NOT in the backward set never arrive.
    let not_back = w.bdd.not(back_at_src);
    let blocked = analysis.forward(&mut w.bdd, &[(src, not_back)]);
    assert_eq!(blocked.at(sink), NodeId::FALSE);
}

#[test]
fn waypoint_instrumentation() {
    let mut w = figure2();
    // Waypoint: does traffic from r1.i0 to r3's LAN traverse r3's Fwd?
    w.graph
        .instrument_waypoint(&mut w.bdd, &w.vars, "r3", 0);
    let src = src_node(&w, "r1", "i0");
    let analysis = ReachAnalysis::new(&w.graph);
    let r = analysis.forward(&mut w.bdd, &[(src, NodeId::TRUE)]);
    let sink = w
        .graph
        .node(&NodeKind::DeliveredToSubnet("r3".into(), "lan".into()))
        .unwrap();
    let at_sink = r.at(sink);
    let wp = w.bdd.var(w.vars.waypoint_var(0));
    // Everything delivered to r3's LAN went through r3.
    assert!(w.bdd.implies_true(at_sink, wp));
    // But traffic to r2's LAN did not.
    let sink2 = w
        .graph
        .node(&NodeKind::DeliveredToSubnet("r2".into(), "lan".into()))
        .unwrap();
    let at_sink2 = r.at(sink2);
    let no_wp = w.bdd.not(wp);
    assert!(w.bdd.implies_true(at_sink2, no_wp));
}

/// §4.3.2, direction 1: for each success sink, pick a representative
/// packet from the symbolic headerspace and confirm the concrete engine
/// delivers it to the same location with the same disposition type.
#[test]
fn differential_reachability_to_traceroute() {
    let mut w = figure2();
    let tracer = Tracer::new(&w.devices, &w.dp, &w.topo);
    for (dev, iface) in [("r1", "i0"), ("r2", "lan"), ("r3", "lan")] {
        let src = src_node(&w, dev, iface);
        let analysis = ReachAnalysis::new(&w.graph);
        let r = analysis.forward(&mut w.bdd, &[(src, NodeId::TRUE)]);
        for (ni, kind) in w.graph.nodes.iter().enumerate() {
            let set = r.at(ni);
            if set == NodeId::FALSE {
                continue;
            }
            let expect: Option<Disposition> = match kind {
                NodeKind::Accept(d) => Some(Disposition::Accepted { device: d.clone() }),
                NodeKind::DeliveredToSubnet(d, i) => Some(Disposition::DeliveredToSubnet {
                    device: d.clone(),
                    iface: i.clone(),
                }),
                NodeKind::ExitsNetwork(d, i) => Some(Disposition::ExitsNetwork {
                    device: d.clone(),
                    iface: i.clone(),
                }),
                _ => None,
            };
            let Some(expect) = expect else { continue };
            let cube = w.bdd.pick_cube(set).expect("non-empty");
            let flow = w.vars.cube_to_flow(&cube);
            let trace = tracer.trace(&StartLocation::ingress(dev, iface), &flow);
            assert!(
                trace
                    .paths
                    .iter()
                    .any(|p| p.disposition == expect),
                "flow {flow} from {dev}[{iface}] expected {expect:?}, got {trace}"
            );
        }
    }
}

/// §4.3.2, direction 2: for each FIB entry, build a covered packet, run
/// the concrete engine, and confirm the symbolic engine reports the same
/// terminal disposition from the same start.
#[test]
fn differential_traceroute_to_reachability() {
    let mut w = figure2();
    let tracer = Tracer::new(&w.devices, &w.dp, &w.topo);
    let starts = [("r1", "i0"), ("r2", "lan"), ("r3", "lan")];
    for (dev, iface) in starts {
        let ddp = w.dp.device(dev).unwrap();
        let dsts: Vec<Ip> = ddp
            .fib
            .entries()
            .iter()
            .map(|e| e.prefix.network())
            .collect();
        for dst in dsts {
            let flow = Flow::tcp(Ip::new(10, 0, 9, 5), 40000, dst, 22);
            let trace = tracer.trace(&StartLocation::ingress(dev, iface), &flow);
            let src = src_node(&w, dev, iface);
            let fb = w.vars.flow(&mut w.bdd, &flow);
            let analysis = ReachAnalysis::new(&w.graph);
            let r = analysis.forward(&mut w.bdd, &[(src, fb)]);
            for p in &trace.paths {
                let node = match &p.disposition {
                    Disposition::Accepted { device } => {
                        w.graph.node(&NodeKind::Accept(device.clone()))
                    }
                    Disposition::DeliveredToSubnet { device, iface } => w
                        .graph
                        .node(&NodeKind::DeliveredToSubnet(device.clone(), iface.clone())),
                    Disposition::ExitsNetwork { device, iface } => w
                        .graph
                        .node(&NodeKind::ExitsNetwork(device.clone(), iface.clone())),
                    Disposition::NoRoute { device } => w.graph.node(&NodeKind::Drop(
                        device.clone(),
                        batnet_dataplane::DropKind::NoRoute,
                    )),
                    Disposition::NullRouted { device } => w.graph.node(&NodeKind::Drop(
                        device.clone(),
                        batnet_dataplane::DropKind::NullRouted,
                    )),
                    Disposition::DeniedOut { device, acl: _ } => {
                        // Any AclOut drop node of the device qualifies.
                        w.graph
                            .nodes_where(|k| {
                                matches!(k, NodeKind::Drop(d, batnet_dataplane::DropKind::AclOut(_)) if d == device)
                            })
                            .first()
                            .copied()
                    }
                    other => panic!("unexpected concrete disposition {other:?}"),
                };
                let node = node.unwrap_or_else(|| {
                    panic!("no symbolic node for {:?} ({flow})", p.disposition)
                });
                assert_ne!(
                    r.at(node),
                    NodeId::FALSE,
                    "symbolic engine missed {:?} for {flow} from {dev}[{iface}]",
                    p.disposition
                );
            }
        }
    }
}

#[test]
fn bidirectional_session_fast_path() {
    // Stateful firewall between a trust LAN and an untrust uplink.
    let mut w = build(&[(
        "fw",
        "hostname fw\n\
         interface trust0\n ip address 10.0.0.1/24\n zone-member security trust\n\
         interface untrust0\n ip address 203.0.113.1/24\n zone-member security untrust\n\
         zone security trust\nzone security untrust\n\
         ip access-list extended OUTBOUND\n 10 permit tcp any any eq 443\n\
         zone-pair security trust untrust acl OUTBOUND\n",
    )]);
    let fwd_flow = Flow::tcp(
        Ip::new(10, 0, 0, 9),
        50000,
        Ip::new(203, 0, 113, 99),
        443,
    );
    let fwd_set = w.vars.flow(&mut w.bdd, &fwd_flow);
    let init = w.vars.initial_bits(&mut w.bdd);
    let seeded = w.bdd.and(fwd_set, init);
    let src = src_node(&w, "fw", "trust0");
    let ret_src = src_node(&w, "fw", "untrust0");
    let ret_flow = fwd_flow.reverse();
    let ret_set = w.vars.flow(&mut w.bdd, &ret_flow);
    let ret_seeded = w.bdd.and(ret_set, init);
    let result = bidirectional(
        &mut w.bdd,
        &w.vars,
        &w.graph,
        &w.devices,
        &[(src, seeded)],
        &[(ret_src, ret_seeded)],
    );
    // Forward traffic leaves via untrust0.
    let out_fwd = w
        .graph
        .node(&NodeKind::DeliveredToSubnet("fw".into(), "untrust0".into()))
        .unwrap();
    assert_ne!(result.forward.reach[out_fwd], NodeId::FALSE);
    // Return traffic reaches the trust side *only because of the session*.
    let out_ret = result
        .instrumented
        .node(&NodeKind::DeliveredToSubnet("fw".into(), "trust0".into()))
        .unwrap();
    assert_ne!(result.reverse.reach[out_ret], NodeId::FALSE, "session fast path");
    // Without sessions the same return flow is zone-dropped.
    let plain = ReachAnalysis::new(&w.graph);
    let r = plain.forward(&mut w.bdd, &[(ret_src, ret_seeded)]);
    let out_ret_plain = w
        .graph
        .node(&NodeKind::DeliveredToSubnet("fw".into(), "trust0".into()))
        .unwrap();
    assert_eq!(r.at(out_ret_plain), NodeId::FALSE);
    let zone_drop = plain.drop_set(&mut w.bdd, &r, Some(&batnet_dataplane::DropKind::Zone));
    assert_ne!(zone_drop, NodeId::FALSE);
}

#[test]
fn multipath_consistency_clean_network() {
    let mut w = figure2();
    for (dev, iface) in [("r1", "i0"), ("r2", "lan"), ("r3", "lan")] {
        let src = src_node(&w, dev, iface);
        let analysis = ReachAnalysis::new(&w.graph);
        let bad = analysis.multipath_inconsistency(&mut w.bdd, src);
        // Fig-2 is single-path everywhere: a packet either succeeds or
        // drops, never both.
        assert_eq!(bad, NodeId::FALSE, "from {dev}[{iface}]");
    }
}

#[test]
fn loop_detection_on_looping_statics() {
    let mut w = build(&[
        (
            "r1",
            "hostname r1\ninterface e0\n ip address 10.0.0.1/31\nip route 10.9.0.0/16 10.0.0.0\n",
        ),
        (
            "r2",
            "hostname r2\ninterface e0\n ip address 10.0.0.0/31\nip route 10.9.0.0/16 10.0.0.1\n",
        ),
    ]);
    let analysis = ReachAnalysis::new(&w.graph);
    let r = analysis.forward_from_all_sources(&mut w.bdd, NodeId::TRUE);
    let loops = analysis.detect_loops(&mut w.bdd, &r);
    assert!(!loops.is_empty(), "static route loop must be found");
    // The looping set is exactly traffic to 10.9/16.
    let (_, set) = loops[0];
    let inside = Flow::icmp_echo(Ip::new(1, 1, 1, 1), Ip::new(10, 9, 1, 1));
    let outside = Flow::icmp_echo(Ip::new(1, 1, 1, 1), Ip::new(10, 8, 1, 1));
    assert!(flow_in(&mut w, set, &inside));
    assert!(!flow_in(&mut w, set, &outside));

    // And the clean fixture has no loops.
    let mut clean = figure2();
    let analysis = ReachAnalysis::new(&clean.graph);
    let r = analysis.forward_from_all_sources(&mut clean.bdd, NodeId::TRUE);
    assert!(analysis.detect_loops(&mut clean.bdd, &r).is_empty());
}
