//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§6) plus the DESIGN.md ablations.
//!
//! ```text
//! harness fig1                 # Figure 1: convergence gadgets
//! harness fig3 [--json]        # Figure 3: current vs original engines (NET1)
//! harness table1               # Table 1: the 11-network suite
//! harness table2 [--full] [--json]  # Table 2: pipeline performance
//! harness smoke                # smallest network, always writes JSON
//! harness lint [--full]        # lint engine throughput, writes BENCH_lint.json
//! harness diff                 # differential analysis on N2, writes BENCH_diff.json
//! harness cov [--full]         # coverage engine throughput, writes BENCH_cov.json
//! harness serve                # service load on loopback, writes BENCH_serve.json
//! harness apt                  # §6.2: APT comparison (92 nodes)
//! harness ablate-convergence   # A-1: coloring / logical clocks
//! harness ablate-memory        # A-2: attribute interning
//! harness ablate-varorder     # A-3: BDD variable order
//! harness ablate-dataflow      # A-4: graph compression & backward walk
//! harness ablate-transform     # A-5: fused vs 3-step NAT transform
//! harness all [--full] [--json]  # everything above
//! harness bench-all [--full]   # every BENCH_*.json + results/TRAJECTORY.jsonl
//! ```
//!
//! Cross-cutting flags:
//!
//! * `--repeat N` — run a row-producing bench (`fig3`, `table2`,
//!   `smoke`, `lint`) N times and emit one row per `(network, stage)`
//!   with the **median** time plus `mad_ms` / `repeat` meta, so
//!   `obs-diff` can tell regressions from noise.
//! * `--net ID` — restrict `table2` / `lint` to one suite network
//!   (the CI `perf-smoke` gate runs `table2 --net N2`).
//! * `--out PATH` — write the JSON somewhere other than the committed
//!   repo-root baseline (CI writes under `target/`).
//! * `--threads N` — size the shared `batnet_exec` pool (0 or omitted =
//!   all cores). Recorded in every emitted bench file's provenance meta
//!   and in `results/TRAJECTORY.jsonl` rows, so speedup comparisons
//!   across thread counts are first-class `obs-diff` material.
//! * `--profile` — run the continuous profiler (997 Hz) alongside the
//!   bench and write the `batnet-prof/v1` window as a `.profile.json`
//!   artifact next to each emitted `BENCH_*.json`; the sampler's own
//!   overhead is printed as an absolute and as a % of bench wall time.
//!
//! `bench-all` regenerates every bench JSON in one command (one obs
//! reset + capture per bench, so each embedded report is that bench's
//! own) and appends one commit-stamped summary row per bench to
//! `results/TRAJECTORY.jsonl` — the recorded perf trajectory across
//! PRs, schema-validated on every append (`obs-validate --kind
//! trajectory`).
//!
//! `table2` runs the four smallest networks by default; `--full` runs
//! all eleven (minutes of wall clock on the biggest).
//!
//! `--json` additionally writes machine-readable results —
//! `BENCH_table2.json` / `BENCH_fig3.json` at the repo root — with the
//! stable `{bench, network, stage, ms, meta}` row schema and the full
//! run report (span tree, metrics, events) embedded. Rows carry
//! per-stage peak/delta heap meta (`peak_kb` / `delta_kb`, from the
//! counting allocator) and the file meta stamps commit, command line,
//! rustc version, and build profile — `obs-diff` refuses cross-profile
//! comparisons. `smoke` always writes `target/BENCH_smoke.json` (the CI
//! `obs-smoke` gate validates it). Every text report ends with a
//! provenance stamp: git commit, command line, and total wall time from
//! the root span.

use batnet::baselines::{AptEngine, CubeNetwork};
use batnet::bdd::NodeId;
use batnet::datalog::{datalog_routes, RoutingInputs};
use batnet::dataplane::compress::compress;
use batnet::dataplane::{NodeKind, ReachAnalysis};
use batnet::routing::{simulate, SchedulerMode, SimOptions};
use batnet_bench::*;
use batnet_obs::clock;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let full = args.iter().any(|a| a == "--full");
    let json = args.iter().any(|a| a == "--json");
    let repeat = match flag_value(&args, "--repeat") {
        None => 1,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--repeat wants a positive integer, got {v:?}");
                std::process::exit(2);
            }
        },
    };
    let net_filter = flag_value(&args, "--net");
    let out = flag_value(&args, "--out");
    let profile = args.iter().any(|a| a == "--profile");
    let threads = match flag_value(&args, "--threads") {
        None => 0,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--threads wants a non-negative integer (0 = all cores), got {v:?}");
                std::process::exit(2);
            }
        },
    };
    if !batnet_exec::configure_threads(threads) {
        eprintln!("--threads: the execution pool is already sized differently");
        std::process::exit(2);
    }
    if cmd == "bench-all" {
        bench_all(full, profile);
        return;
    }
    batnet_obs::reset();
    let profiler = start_profiler(profile);
    let root = batnet_obs::Span::enter("harness");
    // Repeats only make sense for the row-producing benches; everything
    // else (ablations, text-only tables) runs once.
    let repeat = if matches!(cmd, "fig3" | "table2" | "smoke" | "lint" | "diff" | "serve" | "cov") {
        repeat
    } else {
        1
    };
    let mut runs: Vec<Vec<Row>> = Vec::new();
    for i in 0..repeat {
        if repeat > 1 {
            println!("\n### repeat {}/{repeat} ###", i + 1);
        }
        let mut rows: Vec<Row> = Vec::new();
        run_cmd(cmd, full, net_filter.as_deref(), &mut rows);
        runs.push(rows);
    }
    let rows = if repeat > 1 {
        aggregate_repeats(&runs)
    } else {
        runs.pop().unwrap_or_default()
    };
    let wall = root.close();
    let profile_doc = finish_profiler(profiler, wall);
    let commit = git_commit();
    let cmdline = format!("harness {}", args.join(" "));
    println!(
        "\n--- provenance: commit {commit} | cmd \"{}\" | wall {:.2}s ---",
        cmdline.trim_end(),
        wall.as_secs_f64()
    );
    if json || cmd == "smoke" || cmd == "lint" || cmd == "diff" || cmd == "serve" || cmd == "cov" {
        emit_json(
            cmd,
            &rows,
            &commit,
            &cmdline,
            repeat,
            out.as_deref(),
            profile_doc.as_deref(),
        );
    }
}

/// The continuous profiler's bench cadence: an odd prime, so sampling
/// does not alias with any periodic work in the measured pipeline.
const PROFILE_HZ: u64 = 997;

fn start_profiler(profile: bool) -> Option<batnet_obs::SamplerThread> {
    profile.then(|| batnet_obs::SamplerThread::spawn(PROFILE_HZ))
}

/// Stops the profiler, reports its strictly-accounted cost against the
/// bench wall time, and returns the window's `batnet-prof/v1` document.
fn finish_profiler(
    profiler: Option<batnet_obs::SamplerThread>,
    wall: Duration,
) -> Option<String> {
    let sampler = profiler?.stop();
    let text = sampler.take_profile();
    let stats = sampler.stats();
    let pct = 100.0 * stats.overhead_us as f64 / (wall.as_micros().max(1) as f64);
    println!(
        "profiler: {} samples ({} dropped) over {} ticks @ {PROFILE_HZ}Hz, \
         overhead {}us = {pct:.3}% of wall",
        stats.samples, stats.dropped, stats.ticks, stats.overhead_us
    );
    Some(text)
}

/// The benches `bench-all` regenerates, in dependency-free order. All
/// but `smoke` write committed repo-root baselines; `smoke` lands in
/// `target/` like always.
const ALL_BENCHES: [&str; 7] = ["table2", "fig3", "lint", "diff", "serve", "cov", "smoke"];

/// `harness bench-all`: every bench JSON in one command, each under its
/// own obs reset/capture, plus one commit-stamped trajectory row per
/// bench appended to `results/TRAJECTORY.jsonl`.
fn bench_all(full: bool, profile: bool) {
    let commit = git_commit();
    let mut summary = Vec::new();
    for bench in ALL_BENCHES {
        batnet_obs::reset();
        let profiler = start_profiler(profile);
        let root = batnet_obs::Span::enter("harness");
        let mut rows: Vec<Row> = Vec::new();
        run_cmd(bench, full, None, &mut rows);
        let wall = root.close();
        let profile_doc = finish_profiler(profiler, wall);
        emit_json(
            bench,
            &rows,
            &commit,
            &format!("harness bench-all ({bench})"),
            1,
            None,
            profile_doc.as_deref(),
        );
        summary.push((bench, rows.len(), wall));
    }
    let path = repo_root().join("results").join("TRAJECTORY.jsonl");
    if let Err(e) = append_trajectory(&path, &commit, &summary) {
        eprintln!("bench-all: trajectory append failed: {e}");
        std::process::exit(1);
    }
    println!(
        "\nbench-all: {} benches, trajectory rows appended to {}",
        summary.len(),
        path.display()
    );
}

/// Appends one schema-validated summary row per bench. Every line is
/// validated *before* it is written — a malformed row must fail the run,
/// not poison the committed trajectory.
fn append_trajectory(
    path: &std::path::Path,
    commit: &str,
    summary: &[(&str, usize, Duration)],
) -> Result<(), String> {
    use std::io::Write as _;
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut lines = String::new();
    let threads = batnet_exec::current().threads();
    for (bench, rows, wall) in summary {
        let line = format!(
            "{{\"schema\": 1, \"bench\": \"{bench}\", \"commit\": \"{commit}\", \
             \"unix\": {unix}, \"rows\": {rows}, \"total_ms\": {:.3}, \"threads\": {threads}}}",
            wall.as_secs_f64() * 1000.0
        );
        let parsed = batnet_obs::json::parse(&line).map_err(|e| format!("{bench}: {e}"))?;
        batnet_obs::report::validate_trajectory_row(&parsed)
            .map_err(|e| format!("{bench}: row invalid: {e}"))?;
        lines.push_str(&line);
        lines.push('\n');
    }
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| e.to_string())?;
    f.write_all(lines.as_bytes()).map_err(|e| e.to_string())
}

/// The value following `flag` on the command line, if any.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Dispatches one run of an experiment command.
fn run_cmd(cmd: &str, full: bool, net: Option<&str>, rows: &mut Vec<Row>) {
    match cmd {
        "fig1" => fig1(),
        "fig3" => fig3(rows),
        "table1" => table1(full),
        "table2" => table2(full, net, rows),
        "smoke" => smoke(rows),
        "lint" => lint_bench(full, net, rows),
        "diff" => diff_bench(rows),
        "serve" => serve_bench(rows),
        "cov" => cov_bench(full, net, rows),
        "apt" => apt(),
        "ablate-convergence" => ablate_convergence(),
        "ablate-memory" => ablate_memory(),
        "ablate-varorder" => ablate_varorder(),
        "ablate-dataflow" => ablate_dataflow(),
        "ablate-transform" => ablate_transform(),
        "all" => {
            fig1();
            fig3(rows);
            table1(full);
            table2(full, net, rows);
            apt();
            ablate_convergence();
            ablate_memory();
            ablate_varorder();
            ablate_dataflow();
            ablate_transform();
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}

/// Writes `BENCH_<bench>.json` for each bench that produced rows. The
/// repo-root baselines (`table2`, `fig3`) are written on `--json`; the
/// `smoke` bench always lands in `target/` so CI never dirties the
/// committed baselines. `--out` redirects the (single) output file —
/// the CI `perf-smoke` gate uses it to write under `target/`. When a
/// profile window was captured (`--profile`), it is written next to each
/// bench file with a `.profile.json` extension.
#[allow(clippy::too_many_arguments)]
fn emit_json(
    cmd: &str,
    rows: &[Row],
    commit: &str,
    cmdline: &str,
    repeat: usize,
    out: Option<&str>,
    profile: Option<&str>,
) {
    let report = batnet_obs::capture();
    let meta = vec![
        ("commit".to_string(), commit.to_string()),
        ("cmd".to_string(), cmdline.trim_end().to_string()),
        ("rustc".to_string(), rustc_version()),
        ("profile".to_string(), build_profile().to_string()),
        ("repeat".to_string(), repeat.to_string()),
        ("threads".to_string(), batnet_exec::current().threads().to_string()),
    ];
    let benches: Vec<&str> = match cmd {
        "all" => vec!["table2", "fig3"],
        b => vec![b],
    };
    if out.is_some() && benches.len() > 1 {
        eprintln!("--out applies to single-bench commands; ignoring it for `all`");
    }
    for bench in &benches {
        let subset: Vec<Row> = rows.iter().filter(|r| r.bench == *bench).cloned().collect();
        if subset.is_empty() {
            continue;
        }
        let path = match out {
            Some(p) if benches.len() == 1 => std::path::PathBuf::from(p),
            _ if *bench == "smoke" => repo_root().join("target").join("BENCH_smoke.json"),
            _ => repo_root().join(format!("BENCH_{bench}.json")),
        };
        let text = bench_json(bench, &meta, &subset, &report);
        match std::fs::write(&path, &text) {
            Ok(()) => println!("wrote {} ({} rows)", path.display(), subset.len()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
        if let Some(doc) = profile {
            let ppath = path.with_extension("profile.json");
            match std::fs::write(&ppath, doc) {
                Ok(()) => println!("wrote {}", ppath.display()),
                Err(e) => eprintln!("failed to write {}: {e}", ppath.display()),
            }
        }
    }
}

/// Attaches the stage's heap accounting — published as
/// `mem.<stage>.peak_bytes` / `mem.<stage>.delta_bytes` gauges by the
/// bench library's memory windows — to a row as `peak_kb` / `delta_kb`
/// meta. Leaves the row untouched when the counting allocator is absent.
fn with_mem(row: Row, stage: &str) -> Row {
    let read = |key: &str| batnet_obs::metrics::gauge(&format!("mem.{stage}.{key}"));
    let row = match read("peak_bytes") {
        Some(v) => row.with("peak_kb", format!("{:.0}", v / 1024.0)),
        None => row,
    };
    match read("delta_bytes") {
        Some(v) => row.with("delta_kb", format!("{:.0}", v / 1024.0)),
        None => row,
    }
}

fn banner(s: &str) {
    println!("\n=== {s} ===");
}

/// One full pipeline measurement over a network: the five Table-2 stage
/// windows under a per-network root span, pushed as rows (the `total`
/// row is the root span, so per-stage times sum to it by construction).
struct PipelineMeasure {
    nodes: usize,
    routes: usize,
    parse: Duration,
    dpgen: Duration,
    graph: Duration,
    dest: Duration,
    dest_n: usize,
    mp: Duration,
    mp_n: usize,
}

fn measure_pipeline(
    bench: &str,
    id: &str,
    net: batnet_topogen::GeneratedNetwork,
    rows: &mut Vec<Row>,
) -> PipelineMeasure {
    let span = batnet_obs::Span::enter(format!("network.{id}"));
    let world = build_world(net);
    let (mut bdd, vars, graph, graph_time) = build_graph(&world, 0);
    let (dest_time, dest_n) = dest_reachability(&mut bdd, &vars, &graph, 3);
    let (mp_time, mp_n, _) = multipath_consistency(&mut bdd, &graph, 8);
    let total = span.close();
    let m = PipelineMeasure {
        nodes: world.net.node_count(),
        routes: world.dp.total_routes(),
        parse: world.parse_time,
        dpgen: world.dpgen_time,
        graph: graph_time,
        dest: dest_time,
        dest_n,
        mp: mp_time,
        mp_n,
    };
    let gauge = |name: &str| batnet_obs::metrics::gauge(name).unwrap_or(0.0);
    rows.push(with_mem(Row::new(bench, id, "parse", m.parse), "parse"));
    rows.push(with_mem(
        Row::new(bench, id, "dpgen", m.dpgen).with("routes", m.routes),
        "dpgen",
    ));
    rows.push(with_mem(
        Row::new(bench, id, "graph", m.graph)
            .with("bdd_nodes", format!("{:.0}", gauge("bdd.graph.nodes"))),
        "graph",
    ));
    rows.push(with_mem(
        Row::new(bench, id, "dest-reach", m.dest).with("queries", m.dest_n),
        "dest-reach",
    ));
    rows.push(with_mem(
        Row::new(bench, id, "multipath", m.mp).with("queries", m.mp_n),
        "multipath",
    ));
    rows.push(
        Row::new(bench, id, "total", total)
            .with("nodes", m.nodes)
            .with("routes", m.routes),
    );
    m
}

/// Figure 1: the convergence gadgets under both schedulers.
fn fig1() {
    banner("E-F1 (Figure 1): deterministic convergence");
    for (label, net) in [
        ("fig1a (no stable solution)", batnet_topogen::gadgets::fig1a()),
        ("fig1b (lockstep oscillation)", batnet_topogen::gadgets::fig1b()),
    ] {
        let devices = net.parse();
        for (mode, name) in [
            (SchedulerMode::Colored, "colored+clocks"),
            (SchedulerMode::Lockstep, "lockstep"),
        ] {
            let opts = SimOptions {
                scheduler: mode,
                max_sweeps: 60,
                ..SimOptions::default()
            };
            let dp = simulate(&devices, &net.env, &opts);
            println!(
                "{label:34} {name:16} converged={} sweeps={} colors={}",
                dp.convergence.converged, dp.convergence.sweeps, dp.convergence.colors
            );
        }
    }
    println!("expected shape: 1a never converges (reported, not hung);");
    println!("1b converges under colored+clocks, oscillates under lockstep.");
}

/// Figure 3: current vs original Batfish on NET1 — parsing, data plane
/// generation (imperative vs Datalog), verification (BDD vs cube engine).
fn fig3(rows: &mut Vec<Row>) {
    banner("E-F3 (Figure 3): current vs original engines on NET1");
    let net = batnet_topogen::suite::net1();
    println!(
        "NET1: {} nodes, {} config lines",
        net.node_count(),
        net.config_lines()
    );
    let world = build_world(net);
    println!("parse (current frontend):        {}", fmt_dur(world.parse_time));
    println!("DP generation (imperative):      {}", fmt_dur(world.dpgen_time));
    rows.push(Row::new("fig3", "NET1", "parse", world.parse_time));
    rows.push(Row::new("fig3", "NET1", "dpgen", world.dpgen_time).with("engine", "imperative"));

    // Original DP generation: the Datalog model.
    let inputs = RoutingInputs::for_network(&world.devices, &world.topo);
    let span = batnet_obs::Span::enter("dpgen-datalog");
    let dl = datalog_routes(&world.devices, &world.topo, &inputs);
    let datalog_time = span.close();
    let total_routes: usize = dl.routes.values().map(Vec::len).sum();
    println!(
        "DP generation (Datalog):         {}  ({} facts retained, {} routes)",
        fmt_dur(datalog_time),
        dl.fact_count,
        total_routes
    );
    println!(
        "  -> DP generation speedup:      {}  (paper: ~1500x)",
        fmt_speedup(datalog_time, world.dpgen_time)
    );
    rows.push(
        Row::new("fig3", "NET1", "dpgen-datalog", datalog_time)
            .with("engine", "datalog")
            .with("facts", dl.fact_count),
    );

    // Verification: multipath consistency, BDD vs cubes.
    let (mut bdd, _vars, graph, graph_time) = build_graph(&world, 0);
    println!("dataflow graph build (BDD):      {}", fmt_dur(graph_time));
    rows.push(Row::new("fig3", "NET1", "graph", graph_time));
    let (bdd_time, starts, bdd_viol) = multipath_consistency(&mut bdd, &graph, 24);
    println!(
        "verification (BDD engine):       {}  ({starts} starts, {bdd_viol} inconsistent)",
        fmt_dur(bdd_time)
    );
    rows.push(
        Row::new("fig3", "NET1", "multipath", bdd_time)
            .with("engine", "bdd")
            .with("queries", starts),
    );
    let outer = batnet_obs::Span::enter("multipath-cubes");
    let span = batnet_obs::Span::enter("cube-build");
    let cube_net = CubeNetwork::build(&world.devices, &world.dp, &world.topo);
    let cube_build = span.close();
    let ingresses = cube_net.ingresses();
    let step = (ingresses.len() / 24).max(1);
    let span = batnet_obs::Span::enter("cube-query");
    let mut cube_viol = 0;
    let mut cube_starts = 0;
    for (d, i) in ingresses.iter().step_by(step).take(24) {
        cube_starts += 1;
        if !cube_net.multipath_inconsistency(d, i).is_empty() {
            cube_viol += 1;
        }
    }
    let cube_time = span.close();
    drop(outer);
    println!(
        "verification (cube engine):      {}  (+{} build; {cube_starts} starts, {cube_viol} inconsistent)",
        fmt_dur(cube_time),
        fmt_dur(cube_build)
    );
    println!(
        "  -> verification speedup:       {}  (paper: ~12x)",
        fmt_speedup(cube_time + cube_build, bdd_time + graph_time)
    );
    rows.push(
        Row::new("fig3", "NET1", "multipath-cubes", cube_time + cube_build)
            .with("engine", "cubes")
            .with("queries", cube_starts),
    );
}

/// Table 1: the suite inventory.
fn table1(full: bool) {
    banner("E-T1 (Table 1): the 11-network suite");
    println!(
        "{:<6} {:<26} {:>6} {:>9} {:>9}",
        "net", "type", "nodes", "LoC", "routes"
    );
    for entry in batnet_topogen::suite::suite() {
        if !full && entry.nominal_nodes > 700 {
            let net = (entry.build)();
            println!(
                "{:<6} {:<26} {:>6} {:>9} {:>9}",
                entry.id,
                net.kind,
                net.node_count(),
                net.config_lines(),
                "(--full)"
            );
            continue;
        }
        let net = (entry.build)();
        let world = build_world(net);
        println!(
            "{:<6} {:<26} {:>6} {:>9} {:>9}",
            entry.id,
            world.net.kind,
            world.net.node_count(),
            world.net.config_lines(),
            world.dp.total_routes()
        );
    }
}

/// Table 2: pipeline performance per network. `net` restricts the run
/// to one suite network (by id, case-insensitive) — the CI `perf-smoke`
/// gate uses it to measure only N2.
fn table2(full: bool, net: Option<&str>, rows: &mut Vec<Row>) {
    banner("E-T2 (Table 2): pipeline performance");
    println!(
        "{:<6} {:>6} {:>9} {:>10} {:>10} {:>11} {:>12} {:>10}",
        "net", "nodes", "routes", "parse", "DP gen", "graph", "dest-reach", "multipath"
    );
    let before = rows.len();
    for entry in batnet_topogen::suite::suite() {
        if let Some(filter) = net {
            if !entry.id.eq_ignore_ascii_case(filter) {
                continue;
            }
        } else if !full && entry.nominal_nodes > 520 {
            continue;
        }
        let net = (entry.build)();
        let m = measure_pipeline("table2", entry.id, net, rows);
        println!(
            "{:<6} {:>6} {:>9} {:>10} {:>10} {:>11} {:>12} {:>10}",
            entry.id,
            m.nodes,
            m.routes,
            fmt_dur(m.parse),
            fmt_dur(m.dpgen),
            fmt_dur(m.graph),
            format!("{}/{}q", fmt_dur(m.dest), m.dest_n),
            format!("{}/{}q", fmt_dur(m.mp), m.mp_n),
        );
    }
    if let Some(filter) = net {
        if rows.len() == before {
            eprintln!("--net {filter} matched no suite network");
        }
    }
    println!("(times are wall clock on this machine; the paper's claim is");
    println!(" minutes even at thousands of nodes — compare shapes, not values)");
}

/// The CI smoke bench: the full pipeline on the smallest suite network,
/// always emitting `target/BENCH_smoke.json` for the validator.
fn smoke(rows: &mut Vec<Row>) {
    banner("obs-smoke: pipeline on N2");
    let net = batnet_topogen::suite::n2();
    let m = measure_pipeline("smoke", "N2", net, rows);
    println!(
        "N2: {} nodes, {} routes — parse {} | dpgen {} | graph {} | dest-reach {} | multipath {}",
        m.nodes,
        m.routes,
        fmt_dur(m.parse),
        fmt_dur(m.dpgen),
        fmt_dur(m.graph),
        fmt_dur(m.dest),
        fmt_dur(m.mp),
    );
}

/// The lint bench: parse + full static-analysis pass per suite network,
/// finding counts in the row metadata. Always writes `BENCH_lint.json`
/// (lint reports are deterministic, so the baseline is reproducible).
fn lint_bench(full: bool, net: Option<&str>, rows: &mut Vec<Row>) {
    banner("E-L: lint engine throughput");
    println!(
        "{:<6} {:>7} {:>10} {:>10} {:>9} {:>9}",
        "net", "devices", "parse", "lint", "findings", "errors"
    );
    for entry in batnet_topogen::suite::suite() {
        if let Some(filter) = net {
            if !entry.id.eq_ignore_ascii_case(filter) {
                continue;
            }
        } else if !full && entry.nominal_nodes > 520 {
            continue;
        }
        let net = (entry.build)();
        let id = entry.id;
        let t = clock::now();
        let mut devices = Vec::with_capacity(net.configs.len());
        let mut diags = Vec::with_capacity(net.configs.len());
        for (name, text) in &net.configs {
            let (device, dg) = batnet::config::parse_device(name, text);
            devices.push(device);
            diags.push((name.clone(), dg));
        }
        let parse = t.elapsed();
        let t = clock::now();
        let findings = batnet::lint::run_network(&devices, &diags);
        let lint = t.elapsed();
        let errors = findings
            .iter()
            .filter(|f| f.severity >= batnet::lint::Severity::Error)
            .count();
        println!(
            "{:<6} {:>7} {:>10} {:>10} {:>9} {:>9}",
            id,
            devices.len(),
            fmt_dur(parse),
            fmt_dur(lint),
            findings.len(),
            errors
        );
        rows.push(Row::new("lint", id, "parse", parse).with("devices", devices.len()));
        rows.push(
            Row::new("lint", id, "lint", lint)
                .with("findings", findings.len())
                .with("errors", errors),
        );
    }
}

/// The coverage bench: parse + coverage classification per suite
/// network, item/gap counts in the row metadata. Always writes
/// `BENCH_cov.json` (the report is deterministic, so the baseline is
/// reproducible and the CI `cov-smoke` gate can structure-diff it).
fn cov_bench(full: bool, net: Option<&str>, rows: &mut Vec<Row>) {
    banner("E-C: coverage engine throughput");
    println!(
        "{:<6} {:>7} {:>10} {:>10} {:>7} {:>9} {:>6}",
        "net", "devices", "parse", "analyze", "items", "exercised", "gaps"
    );
    for entry in batnet_topogen::suite::suite() {
        if let Some(filter) = net {
            if !entry.id.eq_ignore_ascii_case(filter) {
                continue;
            }
        } else if !full && entry.nominal_nodes > 520 {
            continue;
        }
        let net = (entry.build)();
        let id = entry.id;
        let t = clock::now();
        let mut devices = Vec::with_capacity(net.configs.len());
        for (name, text) in &net.configs {
            let (mut device, _) = batnet::config::parse_device(name, text);
            device.stamp_source_file(name);
            devices.push(device);
        }
        let parse = t.elapsed();
        let t = clock::now();
        let report = batnet_coverage::analyze(&devices);
        let analyze = t.elapsed();
        let totals = report.totals();
        let gaps = report.gaps().count();
        println!(
            "{:<6} {:>7} {:>10} {:>10} {:>7} {:>9} {:>6}",
            id,
            devices.len(),
            fmt_dur(parse),
            fmt_dur(analyze),
            totals.items,
            totals.exercised,
            gaps
        );
        rows.push(Row::new("cov", id, "parse", parse).with("devices", devices.len()));
        rows.push(
            Row::new("cov", id, "analyze", analyze)
                .with("items", totals.items)
                .with("exercised", totals.exercised)
                .with("gaps", gaps),
        );
    }
}

/// The diff bench: the three differential-analysis stages on N2 with a
/// seeded `acl-attach-peering` perturbation (one ACL attach that kills a
/// BGP session, so every layer has real work). Mirrors the staging of
/// `batnet_diff::diff` but times each layer separately. Always writes
/// `BENCH_diff.json` for the obs-diff perf gate.
fn diff_bench(rows: &mut Vec<Row>) {
    use batnet::diff::reach::{diff_reach, ReachInputs};
    banner("E-D: differential analysis (acl-attach-peering on N2)");
    let net = batnet_topogen::suite::n2();
    let p = batnet_topogen::perturb::perturb(
        &net,
        batnet_topogen::perturb::Scenario::AclAttachPeering,
        3,
    )
    .expect("a leaf is always eligible");
    println!("perturbation: {} on {}", p.description, p.victim);

    let t = clock::now();
    let before = batnet::Snapshot::from_configs(net.configs.clone()).with_env(net.env.clone());
    let after = batnet::Snapshot::from_configs(p.configs).with_env(net.env.clone());
    let parse = t.elapsed();

    let t = clock::now();
    let structural = batnet::diff::structural::diff_structural(&before.devices, &after.devices);
    let configs_time = t.elapsed();

    let opts = batnet::DiffOptions::default();
    let t = clock::now();
    let dp_b = simulate(&before.devices, &before.env, &opts.sim);
    let dp_a = simulate(&after.devices, &after.env, &opts.sim);
    let routes = batnet::diff::routes::diff_routes(&dp_b, &dp_a, opts.max_route_changes);
    let routes_time = t.elapsed();

    let t = clock::now();
    let mut changed = structural.changed_devices();
    changed.extend(routes.changed_devices.iter().cloned());
    let reach = diff_reach(
        &ReachInputs {
            devices_before: &before.devices,
            dp_before: &dp_b,
            devices_after: &after.devices,
            dp_after: &dp_a,
            changed_devices: &changed,
        },
        &opts,
    );
    let reach_time = t.elapsed();

    println!(
        "N2: parse {} | configs {} ({} changes) | routes {} ({} deltas) | reach {} ({}/{} starts, {} changed)",
        fmt_dur(parse),
        fmt_dur(configs_time),
        structural.change_count(),
        fmt_dur(routes_time),
        routes.change_count(),
        fmt_dur(reach_time),
        reach.starts_compared,
        reach.starts_total,
        reach.changed_starts,
    );
    rows.push(Row::new("diff", "N2", "parse", parse));
    rows.push(
        Row::new("diff", "N2", "configs", configs_time).with("changes", structural.change_count()),
    );
    rows.push(Row::new("diff", "N2", "routes", routes_time).with("changes", routes.change_count()));
    rows.push(
        Row::new("diff", "N2", "reach", reach_time)
            .with("starts", reach.starts_compared)
            .with("changed", reach.changed_starts),
    );
}

/// The serve bench: the full service loop on loopback. Spawns
/// `batnet-serve` in-process, uploads the N2 data center through the
/// public API, then drives reachability / trace / lint / report loads
/// with `Backoff`-retried clients. Every stage row carries request
/// counts plus that endpoint's own p50/p99 (from the server's
/// `serve.latency.us.<endpoint>` histograms — per-endpoint, so one
/// endpoint's tail regression can't hide behind a fast-path-dominated
/// aggregate); the `total` row keeps the global-histogram tail. Always
/// writes `BENCH_serve.json` — the CI `serve-smoke` gate diffs its
/// structure against the committed baseline.
fn serve_bench(rows: &mut Vec<Row>) {
    use batnet_net::Backoff;
    use batnet_serve::{client, ServeConfig};
    banner("E-SV: analysis service under load (loopback)");
    let net = batnet_topogen::suite::n2();
    let devices = net.configs.len();
    // A real device/interface pair for the trace load, straight from
    // the generated config text.
    let (trace_dev, trace_iface) = net
        .configs
        .iter()
        .find_map(|(name, text)| {
            text.lines()
                .find_map(|l| l.strip_prefix("interface "))
                .map(|i| (name.clone(), i.trim().to_string()))
        })
        .expect("suite configs declare interfaces");

    let handle = batnet_serve::spawn(ServeConfig::default()).expect("bind loopback");
    let addr = handle.addr();
    let t = Duration::from_secs(30);
    let retry = || Backoff::new(Duration::from_millis(5), Duration::from_millis(80), 6, 17);
    let get = |target: &str, step: &str| -> batnet_serve::client::ClientResponse {
        let r = client::get_with_retry(addr, target, t, retry())
            .unwrap_or_else(|e| panic!("{step}: transport: {e}"));
        assert_eq!(r.status, 200, "{step}: {}", r.body_str());
        r
    };

    let span = batnet_obs::Span::enter("serve-bench");

    // Upload: the whole network as one governed POST.
    let mut body = String::from("{\"configs\": [");
    for (i, (name, text)) in net.configs.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str("{\"name\": ");
        batnet_obs::json::write_str(&mut body, name);
        body.push_str(", \"text\": ");
        batnet_obs::json::write_str(&mut body, text);
        body.push('}');
    }
    body.push_str("]}");
    let t0 = clock::now();
    let up = client::post(addr, "/snapshots/N2", body.as_bytes(), t).expect("upload transport");
    let upload = t0.elapsed();
    assert_eq!(up.status, 201, "upload: {}", up.body_str());

    // Query loads, each a burst of identical requests.
    let reach_n = 16;
    let t0 = clock::now();
    for _ in 0..reach_n {
        let r = get("/query/reach?snapshot=N2&port=80", "reach");
        assert!(r.body_str().contains("\"partial\": null"), "reach went partial");
    }
    let reach = t0.elapsed();

    let trace_n = 8;
    let target = format!(
        "/query/trace?snapshot=N2&device={trace_dev}&iface={trace_iface}&src=10.0.0.1&dst=10.0.1.1&port=80"
    );
    let t0 = clock::now();
    for _ in 0..trace_n {
        get(&target, "trace");
    }
    let trace = t0.elapsed();

    let lint_n = 4;
    let t0 = clock::now();
    for _ in 0..lint_n {
        get("/lint?snapshot=N2", "lint");
    }
    let lint = t0.elapsed();

    let report_n = 4;
    let t0 = clock::now();
    for _ in 0..report_n {
        get("/report?snapshot=N2", "report");
    }
    let report = t0.elapsed();

    let total = span.close();
    // One capture covers every stage: each row reads its own endpoint's
    // latency histogram, the total row the global one.
    let obs = batnet_obs::capture();
    let pct = |name: &str| serve_latency_percentiles(&obs, name);
    let (up50, up99) = pct("serve.latency.us.snapshots.upload");
    let (re50, re99) = pct("serve.latency.us.query.reach");
    let (tr50, tr99) = pct("serve.latency.us.query.trace");
    let (li50, li99) = pct("serve.latency.us.lint");
    let (rp50, rp99) = pct("serve.latency.us.report");
    let (p50, p99) = pct("serve.latency.us");
    rows.push(
        Row::new("serve", "N2", "upload", upload)
            .with("devices", devices)
            .with("body_kb", body.len() / 1024)
            .with("p50_us", up50)
            .with("p99_us", up99),
    );
    rows.push(
        Row::new("serve", "N2", "reach", reach)
            .with("requests", reach_n)
            .with("p50_us", re50)
            .with("p99_us", re99),
    );
    rows.push(
        Row::new("serve", "N2", "trace", trace)
            .with("requests", trace_n)
            .with("p50_us", tr50)
            .with("p99_us", tr99),
    );
    rows.push(
        Row::new("serve", "N2", "lint", lint)
            .with("requests", lint_n)
            .with("p50_us", li50)
            .with("p99_us", li99),
    );
    rows.push(
        Row::new("serve", "N2", "report", report)
            .with("requests", report_n)
            .with("p50_us", rp50)
            .with("p99_us", rp99),
    );
    rows.push(
        Row::new("serve", "N2", "total", total)
            .with("requests", 1 + reach_n + trace_n + lint_n + report_n)
            .with("p50_us", p50)
            .with("p99_us", p99),
    );
    handle.shutdown();
    println!(
        "N2 over HTTP: upload {} ({} devices) | reach {}/{}q | trace {}/{}q | lint {}/{}q | report {}/{}q",
        fmt_dur(upload),
        devices,
        fmt_dur(reach),
        reach_n,
        fmt_dur(trace),
        trace_n,
        fmt_dur(lint),
        lint_n,
        fmt_dur(report),
        report_n,
    );
    println!(
        "server-side request latency: p50 ~{p50}us, p99 ~{p99}us global \
         (log2-bucket upper bounds; per-endpoint tails on each row)"
    );
    println!(
        "per-endpoint p99: upload ~{up99}us | reach ~{re99}us | trace ~{tr99}us | \
         lint ~{li99}us | report ~{rp99}us"
    );
}

/// Upper-bound p50/p99 estimates from one of the server's log2 latency
/// histograms (each percentile reports its bucket's upper edge).
fn serve_latency_percentiles(report: &batnet_obs::RunReport, name: &str) -> (u64, u64) {
    let Some(batnet_obs::metrics::MetricValue::Histogram(h)) = report.metrics.get(name) else {
        return (0, 0);
    };
    (h.percentile_upper(0.5), h.percentile_upper(0.99))
}

/// §6.2: the APT comparison on the 92-node network.
fn apt() {
    banner("E-APT (§6.2): BDD engine vs Atomic Predicates, 92 nodes");
    let net = batnet_topogen::suite::apt92();
    let world = build_world(net);
    let (mut bdd, vars, graph, graph_time) = build_graph(&world, 0);
    let (dest_time, dest_n) = dest_reachability(&mut bdd, &vars, &graph, 5);
    println!(
        "BDD engine:  graph build {}  + {dest_n} dest-reach queries {}",
        fmt_dur(graph_time),
        fmt_dur(dest_time)
    );
    let t = clock::now();
    let apt = AptEngine::build(&mut bdd, &graph).expect("suite networks carry no transform edges");
    let apt_build = t.elapsed();
    let t = clock::now();
    let sinks = apt.dest_reachability(&graph);
    let apt_query = t.elapsed();
    println!(
        "APT engine:  atoms {} (compute {})  + all-sink reach {} ({} sinks)",
        apt.atoms.len(),
        fmt_dur(apt_build),
        fmt_dur(apt_query),
        sinks.len()
    );
    println!(
        "  -> build+query speedup: {}  (paper: ~2 orders of magnitude)",
        fmt_speedup(apt_build + apt_query, graph_time + dest_time)
    );
}

/// A-1: the convergence machinery ablation.
fn ablate_convergence() {
    banner("A-1: convergence ablation (coloring / logical clocks)");
    let net = batnet_topogen::suite::n2();
    let devices = net.parse();
    for (mode, clocks, label) in [
        (SchedulerMode::Colored, true, "colored + clocks (production)"),
        (SchedulerMode::Colored, false, "colored, no clocks"),
        (SchedulerMode::Lockstep, true, "lockstep + clocks"),
        (SchedulerMode::Lockstep, false, "lockstep, no clocks"),
    ] {
        let opts = SimOptions {
            scheduler: mode,
            use_logical_clocks: clocks,
            max_sweeps: 100,
            ..SimOptions::default()
        };
        let t = clock::now();
        let dp = simulate(&devices, &net.env, &opts);
        println!(
            "{label:32} converged={} sweeps={:>3} time={}",
            dp.convergence.converged,
            dp.convergence.sweeps,
            fmt_dur(t.elapsed())
        );
    }
    // The gadget that separates the modes.
    let net = batnet_topogen::gadgets::fig1b();
    let devices = net.parse();
    for (mode, label) in [
        (SchedulerMode::Colored, "fig1b colored"),
        (SchedulerMode::Lockstep, "fig1b lockstep"),
    ] {
        let opts = SimOptions {
            scheduler: mode,
            max_sweeps: 60,
            ..SimOptions::default()
        };
        let dp = simulate(&devices, &net.env, &opts);
        println!(
            "{label:32} converged={} sweeps={:>3}",
            dp.convergence.converged, dp.convergence.sweeps
        );
    }
}

/// A-2: attribute interning (the §4.1.3 memory claims).
fn ablate_memory() {
    banner("A-2: memory ablation (attribute-bundle interning)");
    for id in ["N2", "N5"] {
        let net = match id {
            "N2" => batnet_topogen::suite::n2(),
            _ => batnet_topogen::suite::n5(),
        };
        let world = build_world(net);
        let mem = &world.dp.mem;
        println!(
            "{id}: {} BGP routes, {} full bundles, {} shareable combos  sharing={:.1}x  reduction={:.0}%  saved~{}KB",
            mem.total_bgp_routes,
            mem.unique_attr_bundles,
            mem.unique_shared_combos,
            mem.sharing_factor(),
            mem.memory_reduction() * 100.0,
            mem.bytes_saved / 1024
        );
    }
    println!("(paper: 10x-20x fewer bundles than routes, ~50% memory reduction)");
}

/// A-3: BDD variable-order ablation — encode the same FIB three ways.
fn ablate_varorder() {
    banner("A-3: BDD variable order (paper order vs alternatives)");
    // Corpus: the FIB prefixes of NET1's largest device plus its ACLs,
    // encoded as one union-of-prefixes BDD under three orders.
    let net = batnet_topogen::suite::net1();
    let world = build_world(net);
    let mut prefixes: Vec<batnet::net::Prefix> = Vec::new();
    for d in &world.dp.devices {
        for (p, _) in d.main_rib.iter_best() {
            // Short prefixes (the default route especially) swallow the
            // union; the order comparison needs a non-trivial set.
            if p.len() >= 16 {
                prefixes.push(*p);
            }
        }
    }
    prefixes.sort();
    prefixes.dedup();
    println!("corpus: {} distinct prefixes", prefixes.len());
    // Order A: MSB-first (the paper's). Order B: LSB-first. Order C:
    // even/odd interleave of dst-IP bits (a deliberately poor order).
    let orders: [(&str, Box<dyn Fn(u32) -> u32>); 3] = [
        ("msb-first (paper)", Box::new(|i| i)),
        ("lsb-first", Box::new(|i| 31 - i)),
        ("interleaved", Box::new(|i| if i % 2 == 0 { i / 2 } else { 16 + i / 2 })),
    ];
    for (label, map) in &orders {
        let mut bdd = batnet::bdd::Bdd::new(32);
        let t = clock::now();
        let mut acc = NodeId::FALSE;
        for p in &prefixes {
            let mut cube = NodeId::TRUE;
            for i in (0..p.len() as u32).rev() {
                let bit = (p.network().0 >> (31 - i)) & 1 == 1;
                let lit = bdd.literal(map(i), bit);
                cube = bdd.and(lit, cube);
            }
            acc = bdd.or(acc, cube);
        }
        println!(
            "{label:20} nodes={:>7} time={}",
            bdd.size(acc),
            fmt_dur(t.elapsed())
        );
    }
}

/// A-4: graph compression and the backward walk.
fn ablate_dataflow() {
    banner("A-4: dataflow ablation (compression, backward walk)");
    let net = batnet_topogen::suite::net1();
    let world = build_world(net);
    let (mut bdd, vars, graph, _) = build_graph(&world, 0);
    let (n0, e0) = graph.size();
    let t = clock::now();
    let (cgraph, stats) = compress(&mut bdd, &graph);
    let ct = t.elapsed();
    println!(
        "graph: {n0} nodes / {e0} edges -> {} / {} after compression ({}; {:.0}% nodes removed)",
        stats.nodes_after,
        stats.edges_after,
        fmt_dur(ct),
        100.0 * (1.0 - stats.nodes_after as f64 / n0 as f64)
    );
    // Same forward query on both graphs.
    for (label, g) in [("uncompressed", &graph), ("compressed", &cgraph)] {
        let analysis = ReachAnalysis::new(g);
        let t = clock::now();
        let r = analysis.forward_from_all_sources(&mut bdd, NodeId::TRUE);
        println!(
            "forward all-sources ({label:12}): {}  ({} relaxations)",
            fmt_dur(t.elapsed()),
            r.relaxations
        );
    }
    // Backward vs forward for a single destination.
    let sink = graph
        .nodes_where(|k| matches!(k, NodeKind::DeliveredToSubnet(_, _)))
        .into_iter()
        .next()
        .expect("a delivery sink");
    let analysis = ReachAnalysis::new(&graph);
    let t = clock::now();
    let b = analysis.backward(&mut bdd, &vars, sink, NodeId::TRUE);
    let bt = t.elapsed();
    let t = clock::now();
    let f = analysis.forward_from_all_sources(&mut bdd, NodeId::TRUE);
    let ft = t.elapsed();
    println!(
        "single-dest: backward {} ({} relax) vs full forward {} ({} relax)",
        fmt_dur(bt),
        b.relaxations,
        fmt_dur(ft),
        f.relaxations
    );
}

/// A-5: the fused transform op vs the three-step sequence.
fn ablate_transform() {
    banner("A-5: fused NAT transform vs and/exists/rename");
    use batnet::dataplane::vars::Field;
    let (mut bdd, vars) = batnet::dataplane::PacketVars::new(0);
    // A realistic NAT relation: rewrite source IP to a /28 pool, keep the
    // low bits; identity elsewhere.
    let mut rel = NodeId::TRUE;
    for i in 0..32u32 {
        let primed = bdd.var(vars.var_of(Field::SrcIp, i, true));
        if i < 28 {
            let bit = (0xcb007100u32 >> (31 - i)) & 1 == 1;
            let lit = if bit { primed } else { bdd.not(primed) };
            rel = bdd.and(rel, lit);
        } else {
            let orig = bdd.var(vars.var_of(Field::SrcIp, i, false));
            let x = bdd.xor(orig, primed);
            let eq = bdd.not(x);
            rel = bdd.and(rel, eq);
        }
    }
    for f in [Field::DstIp, Field::DstPort, Field::SrcPort] {
        let id = vars.field_identity(&mut bdd, f);
        rel = bdd.and(rel, id);
    }
    // Input sets: many distinct prefixes.
    let mut sets = Vec::new();
    for k in 0..200u32 {
        let p = batnet::net::Prefix::new(batnet::net::Ip(k << 20), 12);
        sets.push(vars.ip_prefix(&mut bdd, Field::SrcIp, p));
    }
    let t = clock::now();
    let mut acc1 = NodeId::FALSE;
    for &s in &sets {
        let o = bdd.transform(s, rel, vars.nat_transform);
        acc1 = bdd.or(acc1, o);
    }
    let fused = t.elapsed();
    bdd.clear_caches();
    let t = clock::now();
    let mut acc2 = NodeId::FALSE;
    for &s in &sets {
        let o = bdd.transform_3step(s, rel, vars.nat_transform);
        acc2 = bdd.or(acc2, o);
    }
    let steps = t.elapsed();
    assert_eq!(acc1, acc2, "the two paths must agree");
    println!(
        "200 transforms: fused {}  vs 3-step {}  (speedup {})",
        fmt_dur(fused),
        fmt_dur(steps),
        fmt_speedup(steps, fused)
    );
}
