//! Shared experiment plumbing for the harness binary and the Criterion
//! benches: world construction, timing, and the per-experiment
//! measurement routines that regenerate the paper's tables and figures.

use batnet::bdd::{Bdd, NodeId};
use batnet::config::Topology;
use batnet::dataplane::{ForwardingGraph, NodeKind, PacketVars, ReachAnalysis};
use batnet::routing::{simulate, DataPlane, SimOptions};
use batnet_topogen::GeneratedNetwork;
use std::time::{Duration, Instant};

/// A built world for measurement.
pub struct World {
    /// The generated network.
    pub net: GeneratedNetwork,
    /// Parsed devices.
    pub devices: Vec<batnet::config::vi::Device>,
    /// Topology.
    pub topo: Topology,
    /// Simulated data plane.
    pub dp: DataPlane,
    /// Wall-clock of the parse stage.
    pub parse_time: Duration,
    /// Wall-clock of data plane generation.
    pub dpgen_time: Duration,
}

/// Parses and simulates a generated network, timing both stages.
pub fn build_world(net: GeneratedNetwork) -> World {
    build_world_with(net, &SimOptions::default())
}

/// [`build_world`] with explicit engine options (for the ablations).
pub fn build_world_with(net: GeneratedNetwork, opts: &SimOptions) -> World {
    let t0 = Instant::now();
    let devices = net.parse();
    let parse_time = t0.elapsed();
    let topo = Topology::infer(&devices);
    let t1 = Instant::now();
    let dp = simulate(&devices, &net.env, opts);
    let dpgen_time = t1.elapsed();
    World {
        net,
        devices,
        topo,
        dp,
        parse_time,
        dpgen_time,
    }
}

/// Builds the BDD forwarding graph, timed.
pub fn build_graph(world: &World, waypoints: u32) -> (Bdd, PacketVars, ForwardingGraph, Duration) {
    let (mut bdd, vars) = PacketVars::new(waypoints);
    let t = Instant::now();
    let graph = ForwardingGraph::build(&mut bdd, &vars, &world.devices, &world.dp, &world.topo);
    let dt = t.elapsed();
    (bdd, vars, graph, dt)
}

/// Destination-reachability measurement: backward propagation from
/// `count` sampled delivery sinks (Table 2's "Dest reach" column).
/// Returns total time and the number of queries run.
pub fn dest_reachability(
    bdd: &mut Bdd,
    vars: &PacketVars,
    graph: &ForwardingGraph,
    count: usize,
) -> (Duration, usize) {
    let sinks = graph.nodes_where(|k| matches!(k, NodeKind::DeliveredToSubnet(_, _)));
    let step = (sinks.len() / count.max(1)).max(1);
    let chosen: Vec<usize> = sinks.iter().copied().step_by(step).take(count).collect();
    let analysis = ReachAnalysis::new(graph);
    let t = Instant::now();
    for &s in &chosen {
        let r = analysis.backward(bdd, vars, s, NodeId::TRUE);
        std::hint::black_box(&r.reach);
    }
    (t.elapsed(), chosen.len())
}

/// Multipath-consistency measurement over up to `max_starts` interface
/// sources (the §6.1 verification benchmark query).
pub fn multipath_consistency(
    bdd: &mut Bdd,
    graph: &ForwardingGraph,
    max_starts: usize,
) -> (Duration, usize, usize) {
    let sources = graph.nodes_where(|k| matches!(k, NodeKind::IfaceSrc(_, _)));
    let step = (sources.len() / max_starts.max(1)).max(1);
    let chosen: Vec<usize> = sources.iter().copied().step_by(step).take(max_starts).collect();
    let analysis = ReachAnalysis::new(graph);
    let t = Instant::now();
    let mut violations = 0usize;
    for &s in &chosen {
        if analysis.multipath_inconsistency(bdd, s) != NodeId::FALSE {
            violations += 1;
        }
    }
    (t.elapsed(), chosen.len(), violations)
}

/// Pretty-prints a duration for tables.
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 10 {
        format!("{:.1}s", d.as_secs_f64())
    } else if d.as_millis() >= 10 {
        format!("{}ms", d.as_millis())
    } else {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    }
}

/// Speedup formatting.
pub fn fmt_speedup(slow: Duration, fast: Duration) -> String {
    if fast.as_nanos() == 0 {
        return "∞".into();
    }
    format!("{:.0}x", slow.as_secs_f64() / fast.as_secs_f64())
}

/// A dependency-free micro-benchmark runner for the `harness = false`
/// bench targets: runs `f` for `samples` timed iterations after one
/// warm-up, prints min/median/max. `cargo bench` treats any normal exit
/// as success, so regressions are read off the printed numbers (or
/// compared across commits by CI) rather than asserted.
pub fn bench_fn<R>(group: &str, name: &str, samples: usize, mut f: impl FnMut() -> R) {
    let samples = samples.max(1);
    std::hint::black_box(f()); // warm-up
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = std::time::Instant::now();
        std::hint::black_box(f());
        times.push(t.elapsed());
    }
    times.sort_unstable();
    println!(
        "{group}/{name}: median {} (min {}, max {}, n={samples})",
        fmt_dur(times[times.len() / 2]),
        fmt_dur(times[0]),
        fmt_dur(times[times.len() - 1]),
    );
}
