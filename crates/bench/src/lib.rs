//! Shared experiment plumbing for the harness binary and the Criterion
//! benches: world construction, timing, and the per-experiment
//! measurement routines that regenerate the paper's tables and figures.
//!
//! Timing flows through [`batnet_obs`] spans: every measured window is a
//! span, so the same numbers that print in the text tables appear in the
//! machine-readable run report (`BENCH_<cmd>.json`, see [`bench_json`]).

use batnet::bdd::Bdd;
use batnet::config::Topology;
use batnet::dataplane::{ForwardingGraph, NodeKind, PacketVars, ReachAnalysis, ShardStats};
use batnet::routing::{simulate, DataPlane, SimOptions};
use batnet_obs::Span;
use batnet_topogen::GeneratedNetwork;
use std::fmt::Write as _;
use std::time::Duration;

/// A built world for measurement.
pub struct World {
    /// The generated network.
    pub net: GeneratedNetwork,
    /// Parsed devices.
    pub devices: Vec<batnet::config::vi::Device>,
    /// Topology.
    pub topo: Topology,
    /// Simulated data plane.
    pub dp: DataPlane,
    /// Wall-clock of the parse stage.
    pub parse_time: Duration,
    /// Wall-clock of data plane generation (topology inference included,
    /// so the per-stage times partition the pipeline wall clock).
    pub dpgen_time: Duration,
}

/// Parses and simulates a generated network, timing both stages.
pub fn build_world(net: GeneratedNetwork) -> World {
    build_world_with(net, &SimOptions::default())
}

/// Opens a memory window and, on close, publishes the stage's peak and
/// retained-delta bytes as `mem.<stage>.peak_bytes` /
/// `mem.<stage>.delta_bytes` gauges. Windows reset the global
/// high-water mark, so stages must be sequential (see
/// `batnet_obs::mem`) — which the harness pipeline is.
fn mem_stage<R>(stage: &str, f: impl FnOnce() -> R) -> R {
    let w = batnet_obs::MemWindow::open();
    let r = f();
    let m = w.close();
    batnet_obs::gauge_set(&format!("mem.{stage}.peak_bytes"), m.peak_bytes as f64);
    batnet_obs::gauge_set(&format!("mem.{stage}.delta_bytes"), m.delta_bytes as f64);
    r
}

/// Publishes the BDD manager's per-stage accounting window: node count
/// (a level) and apply-cache hits/misses since the last call (flows,
/// reset via `take_stats`).
fn bdd_stage_stats(stage: &str, bdd: &mut Bdd) {
    let stats = bdd.take_stats();
    batnet_obs::gauge_set(&format!("bdd.{stage}.nodes"), stats.nodes as f64);
    batnet_obs::gauge_set(&format!("bdd.{stage}.cache_hits"), stats.cache_hits as f64);
    batnet_obs::gauge_set(&format!("bdd.{stage}.cache_misses"), stats.cache_misses as f64);
    batnet_obs::gauge_set("bdd.cache.entries", bdd.cache_entries() as f64);
}

/// The sharded-stage analogue of [`bdd_stage_stats`]: per-shard forks
/// summed by the analysis (the shard partition is fixed, so these
/// gauges are identical at every thread count).
fn bdd_shard_gauges(stage: &str, stats: &ShardStats) {
    batnet_obs::gauge_set(&format!("bdd.{stage}.nodes"), stats.nodes as f64);
    batnet_obs::gauge_set(&format!("bdd.{stage}.cache_hits"), stats.cache_hits as f64);
    batnet_obs::gauge_set(&format!("bdd.{stage}.cache_misses"), stats.cache_misses as f64);
}

/// [`build_world`] with explicit engine options (for the ablations).
pub fn build_world_with(net: GeneratedNetwork, opts: &SimOptions) -> World {
    let (devices, parse_time) = mem_stage("parse", || {
        let span = Span::enter("parse");
        let devices = net.parse();
        (devices, span.close())
    });
    let ((topo, dp), dpgen_time) = mem_stage("dpgen", || {
        let span = Span::enter("dpgen");
        let topo = Topology::infer(&devices);
        let dp = simulate(&devices, &net.env, opts);
        ((topo, dp), span.close())
    });
    World {
        net,
        devices,
        topo,
        dp,
        parse_time,
        dpgen_time,
    }
}

/// Builds the BDD forwarding graph, timed.
pub fn build_graph(world: &World, waypoints: u32) -> (Bdd, PacketVars, ForwardingGraph, Duration) {
    let (mut bdd, vars) = PacketVars::new(waypoints);
    let (graph, dt) = mem_stage("graph", || {
        let span = Span::enter("graph");
        let graph = ForwardingGraph::build(&mut bdd, &vars, &world.devices, &world.dp, &world.topo);
        (graph, span.close())
    });
    bdd_stage_stats("graph", &mut bdd);
    (bdd, vars, graph, dt)
}

/// Destination-reachability measurement: backward propagation from
/// `count` sampled delivery sinks (Table 2's "Dest reach" column).
/// Returns total time and the number of queries run.
pub fn dest_reachability(
    bdd: &mut Bdd,
    vars: &PacketVars,
    graph: &ForwardingGraph,
    count: usize,
) -> (Duration, usize) {
    let sinks = graph.nodes_where(|k| matches!(k, NodeKind::DeliveredToSubnet(_, _)));
    let step = (sinks.len() / count.max(1)).max(1);
    let chosen: Vec<usize> = sinks.iter().copied().step_by(step).take(count).collect();
    let analysis = ReachAnalysis::new(graph);
    let mut shard_stats = ShardStats::default();
    let dt = mem_stage("dest-reach", || {
        let span = Span::enter("dest-reach");
        // Sharded over the exec pool: one forked manager per shard, the
        // shared manager stays untouched. Summaries are the combine.
        let (summaries, stats) = analysis.backward_sharded(bdd, vars, &chosen);
        std::hint::black_box(&summaries);
        shard_stats = stats;
        span.close()
    });
    bdd_shard_gauges("dest-reach", &shard_stats);
    (dt, chosen.len())
}

/// Multipath-consistency measurement over up to `max_starts` interface
/// sources (the §6.1 verification benchmark query).
pub fn multipath_consistency(
    bdd: &mut Bdd,
    graph: &ForwardingGraph,
    max_starts: usize,
) -> (Duration, usize, usize) {
    let sources = graph.nodes_where(|k| matches!(k, NodeKind::IfaceSrc(_, _)));
    let step = (sources.len() / max_starts.max(1)).max(1);
    let chosen: Vec<usize> = sources.iter().copied().step_by(step).take(max_starts).collect();
    let analysis = ReachAnalysis::new(graph);
    let mut violations = 0usize;
    let mut shard_stats = ShardStats::default();
    let dt = mem_stage("multipath", || {
        let span = Span::enter("multipath");
        let (verdicts, stats) = analysis.multipath_sharded(bdd, &chosen);
        violations = verdicts.iter().filter(|(_, bad)| *bad).count();
        shard_stats = stats;
        span.close()
    });
    bdd_shard_gauges("multipath", &shard_stats);
    (dt, chosen.len(), violations)
}

/// Pretty-prints a duration for tables.
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 10 {
        format!("{:.1}s", d.as_secs_f64())
    } else if d.as_millis() >= 10 {
        format!("{}ms", d.as_millis())
    } else {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    }
}

/// Speedup formatting.
pub fn fmt_speedup(slow: Duration, fast: Duration) -> String {
    if fast.as_nanos() == 0 {
        return "∞".into();
    }
    format!("{:.0}x", slow.as_secs_f64() / fast.as_secs_f64())
}

/// A dependency-free micro-benchmark runner for the `harness = false`
/// bench targets: runs `f` for `samples` timed iterations after one
/// warm-up, prints min/median/max. `cargo bench` treats any normal exit
/// as success, so regressions are read off the printed numbers (or
/// compared across commits by CI) rather than asserted.
pub fn bench_fn<R>(group: &str, name: &str, samples: usize, mut f: impl FnMut() -> R) {
    let samples = samples.max(1);
    std::hint::black_box(f()); // warm-up
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = batnet_obs::clock::now();
        std::hint::black_box(f());
        times.push(t.elapsed());
    }
    times.sort_unstable();
    println!(
        "{group}/{name}: median {} (min {}, max {}, n={samples})",
        fmt_dur(times[times.len() / 2]),
        fmt_dur(times[0]),
        fmt_dur(times[times.len() - 1]),
    );
}

/// One measurement row of the machine-readable bench output. The schema
/// is stable: `{bench, network, stage, ms, meta}` — CI and external
/// dashboards key on these five fields.
#[derive(Clone, Debug)]
pub struct Row {
    /// The experiment this row belongs to (`table2`, `fig3`, `smoke`).
    pub bench: String,
    /// Network id (`NET1`, `N2`, ...).
    pub network: String,
    /// Pipeline stage (`parse`, `dpgen`, `graph`, `dest-reach`,
    /// `multipath`, or `total` for the per-network root span).
    pub stage: String,
    /// Wall-clock milliseconds.
    pub ms: f64,
    /// Free-form string annotations (node counts, query counts, ...).
    pub meta: Vec<(String, String)>,
}

impl Row {
    /// A row from a timed duration.
    pub fn new(bench: &str, network: &str, stage: &str, d: Duration) -> Row {
        Row {
            bench: bench.to_string(),
            network: network.to_string(),
            stage: stage.to_string(),
            ms: d.as_secs_f64() * 1e3,
            meta: Vec::new(),
        }
    }

    /// Attaches one meta annotation (builder style).
    pub fn with(mut self, key: &str, value: impl ToString) -> Row {
        self.meta.push((key.to_string(), value.to_string()));
        self
    }
}

/// Serializes a bench document: schema version, provenance meta, the
/// measurement rows, and the embedded run report captured from the
/// observability registry. The in-tree validator
/// (`batnet_obs::report::validate_bench`) accepts exactly this shape.
pub fn bench_json(
    bench: &str,
    meta: &[(String, String)],
    rows: &[Row],
    report: &batnet_obs::RunReport,
) -> String {
    use batnet_obs::json;
    let mut out = String::with_capacity(8192);
    let _ = write!(out, "{{\"schema\": {}", batnet_obs::report::SCHEMA_VERSION);
    out.push_str(", \"bench\": ");
    json::write_str(&mut out, bench);
    out.push_str(", \"meta\": {");
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json::write_str(&mut out, k);
        out.push_str(": ");
        json::write_str(&mut out, v);
    }
    out.push_str("}, \"rows\": [");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"bench\": ");
        json::write_str(&mut out, &row.bench);
        out.push_str(", \"network\": ");
        json::write_str(&mut out, &row.network);
        out.push_str(", \"stage\": ");
        json::write_str(&mut out, &row.stage);
        out.push_str(", \"ms\": ");
        json::write_f64(&mut out, row.ms);
        out.push_str(", \"meta\": {");
        for (j, (k, v)) in row.meta.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            json::write_str(&mut out, k);
            out.push_str(": ");
            json::write_str(&mut out, v);
        }
        out.push_str("}}");
    }
    out.push_str("], \"report\": ");
    out.push_str(&report.to_json());
    out.push('}');
    out
}

/// Median of a sample list (mean of the middle two for even counts;
/// 0 for empty input).
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = s.len() / 2;
    if s.len() % 2 == 1 {
        s[mid]
    } else {
        (s[mid - 1] + s[mid]) / 2.0
    }
}

/// Median absolute deviation from the median — the robust noise
/// estimate `obs-diff` scales its thresholds with.
pub fn mad(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let med = median(samples);
    let deviations: Vec<f64> = samples.iter().map(|x| (x - med).abs()).collect();
    median(&deviations)
}

/// Collapses `N` repeated runs of the same bench into one row set:
/// rows are grouped on `(bench, network, stage)` in first-run order,
/// `ms` becomes the median across runs, and each row's meta gains
/// `mad_ms` (the noise estimate) and `repeat` (the sample count).
/// Non-timing meta is taken from the first run.
pub fn aggregate_repeats(runs: &[Vec<Row>]) -> Vec<Row> {
    let Some(first) = runs.first() else {
        return Vec::new();
    };
    first
        .iter()
        .map(|proto| {
            let samples: Vec<f64> = runs
                .iter()
                .filter_map(|run| {
                    run.iter()
                        .find(|r| {
                            r.bench == proto.bench
                                && r.network == proto.network
                                && r.stage == proto.stage
                        })
                        .map(|r| r.ms)
                })
                .collect();
            let mut row = proto.clone();
            row.ms = median(&samples);
            row.meta.push(("repeat".to_string(), samples.len().to_string()));
            row.meta
                .push(("mad_ms".to_string(), format!("{:.6}", mad(&samples))));
            row
        })
        .collect()
}

/// The rustc that built this binary (`rustc --version` of the ambient
/// toolchain — the workspace pins one toolchain, so the runtime query
/// matches the compiler), or `"unknown"`. Stamped into bench
/// provenance so `obs-diff` can flag cross-toolchain comparisons.
pub fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The build profile of this binary. `obs-diff` refuses to compare
/// debug numbers against a release baseline.
pub fn build_profile() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

/// The current git commit (short hash), or `"unknown"` outside a
/// checkout — every emitted report and text table is stamped with it.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(repo_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The workspace root (where `BENCH_<cmd>.json` baselines live),
/// resolved from this crate's manifest directory.
pub fn repo_root() -> std::path::PathBuf {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.canonicalize().unwrap_or(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_are_robust() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[5.0]), 5.0);
        assert_eq!(median(&[1.0, 9.0]), 5.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        // One wild outlier barely moves the median and the MAD.
        let samples = [10.0, 11.0, 10.5, 500.0, 10.2];
        assert_eq!(median(&samples), 10.5);
        assert!(mad(&samples) < 1.0, "mad = {}", mad(&samples));
        assert_eq!(mad(&[7.0]), 0.0);
    }

    #[test]
    fn aggregate_repeats_takes_median_and_stamps_noise() {
        let run = |ms_parse: f64, ms_total: f64| {
            vec![
                Row::new("t", "N2", "parse", Duration::from_secs_f64(ms_parse / 1e3))
                    .with("nodes", 75),
                Row::new("t", "N2", "total", Duration::from_secs_f64(ms_total / 1e3)),
            ]
        };
        let rows = aggregate_repeats(&[run(2.0, 100.0), run(8.0, 130.0), run(3.0, 110.0)]);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].ms - 3.0).abs() < 1e-9, "median parse, got {}", rows[0].ms);
        assert!((rows[1].ms - 110.0).abs() < 1e-9);
        let meta = |row: &Row, key: &str| -> String {
            row.meta
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        assert_eq!(meta(&rows[0], "repeat"), "3");
        assert_eq!(meta(&rows[0], "nodes"), "75");
        // MAD of [2, 8, 3] around 3 is median([1, 5, 0]) = 1.
        let mad_ms: f64 = meta(&rows[0], "mad_ms").parse().expect("numeric mad");
        assert!((mad_ms - 1.0).abs() < 1e-6, "mad = {mad_ms}");
        assert!(aggregate_repeats(&[]).is_empty());
    }

    #[test]
    fn bench_json_validates() {
        let rows = vec![
            Row::new("table2", "N2", "parse", Duration::from_millis(2)).with("nodes", 75),
            Row::new("table2", "N2", "total", Duration::from_millis(120)),
        ];
        let meta = vec![("commit".to_string(), "abc123".to_string())];
        let report = batnet_obs::capture();
        let text = bench_json("table2", &meta, &rows, &report);
        let v = batnet_obs::json::parse(&text).expect("bench JSON parses");
        batnet_obs::report::validate_bench(&v).expect("bench JSON validates");
    }
}
