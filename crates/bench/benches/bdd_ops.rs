//! Microbenchmarks for the BDD substrate: apply-core throughput, the
//! fused transform (A-5), and prefix encoding. Plain timed loops
//! (`harness = false`); numbers are printed, not asserted.

use batnet::bdd::{Bdd, NodeId};
use batnet::dataplane::vars::Field;
use batnet::dataplane::PacketVars;
use batnet_bench::bench_fn;

fn main() {
    bench_fn("bdd", "prefix_union_1k", 20, || {
        let mut bdd = Bdd::new(32);
        let mut acc = NodeId::FALSE;
        for k in 0..1000u64 {
            let cube = bdd.prefix_cube(0, 32, k << 12, 20);
            acc = bdd.or(acc, cube);
        }
        acc
    });
    // Fused vs 3-step transform (the A-5 ablation, tracked continuously).
    let (mut bdd, vars) = PacketVars::new(0);
    let mut rel = vars.field_value_primed(&mut bdd, Field::SrcIp, 0xcb007101);
    for f in [Field::DstIp, Field::DstPort, Field::SrcPort] {
        let id = vars.field_identity(&mut bdd, f);
        rel = bdd.and(rel, id);
    }
    let sets: Vec<NodeId> = (0..64u32)
        .map(|k| {
            let p = batnet::net::Prefix::new(batnet::net::Ip(k << 22), 10);
            vars.ip_prefix(&mut bdd, Field::SrcIp, p)
        })
        .collect();
    bench_fn("bdd", "transform_fused_64", 20, || {
        for &s in &sets {
            std::hint::black_box(bdd.transform(s, rel, vars.nat_transform));
        }
    });
    bench_fn("bdd", "transform_3step_64", 20, || {
        for &s in &sets {
            std::hint::black_box(bdd.transform_3step(s, rel, vars.nat_transform));
        }
    });
}
