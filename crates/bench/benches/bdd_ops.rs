//! Criterion microbenchmarks for the BDD substrate: apply-core
//! throughput, the fused transform (A-5), and prefix encoding.

use batnet::bdd::{Bdd, NodeId};
use batnet::dataplane::vars::Field;
use batnet::dataplane::PacketVars;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_bdd(c: &mut Criterion) {
    let mut g = c.benchmark_group("bdd");
    g.sample_size(20);
    g.bench_function("prefix_union_1k", |b| {
        b.iter(|| {
            let mut bdd = Bdd::new(32);
            let mut acc = NodeId::FALSE;
            for k in 0..1000u64 {
                let cube = bdd.prefix_cube(0, 32, k << 12, 20);
                acc = bdd.or(acc, cube);
            }
            std::hint::black_box(acc)
        })
    });
    // Fused vs 3-step transform (the A-5 ablation, tracked continuously).
    let (mut bdd, vars) = PacketVars::new(0);
    let mut rel = vars.field_value_primed(&mut bdd, Field::SrcIp, 0xcb007101);
    for f in [Field::DstIp, Field::DstPort, Field::SrcPort] {
        let id = vars.field_identity(&mut bdd, f);
        rel = bdd.and(rel, id);
    }
    let sets: Vec<NodeId> = (0..64u32)
        .map(|k| {
            let p = batnet::net::Prefix::new(batnet::net::Ip(k << 22), 10);
            vars.ip_prefix(&mut bdd, Field::SrcIp, p)
        })
        .collect();
    g.bench_function("transform_fused_64", |b| {
        b.iter(|| {
            for &s in &sets {
                std::hint::black_box(bdd.transform(s, rel, vars.nat_transform));
            }
        })
    });
    g.bench_function("transform_3step_64", |b| {
        b.iter(|| {
            for &s in &sets {
                std::hint::black_box(bdd.transform_3step(s, rel, vars.nat_transform));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bdd);
criterion_main!(benches);
