//! Criterion benchmark tracking the Table 2 pipeline on the two smallest
//! suite networks (the harness binary prints the full table).

use batnet::routing::{simulate, SimOptions};
use batnet_bench::{build_graph, build_world, dest_reachability};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    for id in ["N2", "NET1"] {
        let make = move || match id {
            "N2" => batnet_topogen::suite::n2(),
            _ => batnet_topogen::suite::net1(),
        };
        let net = make();
        let devices = net.parse();
        let env = net.env.clone();
        g.bench_function(format!("parse_{id}"), |b| {
            let net = make();
            b.iter(|| net.parse())
        });
        g.bench_function(format!("dpgen_{id}"), |b| {
            b.iter(|| simulate(&devices, &env, &SimOptions::default()))
        });
        let world = build_world(make());
        g.bench_function(format!("graph_build_{id}"), |b| {
            b.iter(|| build_graph(&world, 0))
        });
        let (mut bdd, vars, graph, _) = build_graph(&world, 0);
        g.bench_function(format!("dest_reach_{id}"), |b| {
            b.iter(|| dest_reachability(&mut bdd, &vars, &graph, 2))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
