//! Benchmark tracking the Table 2 pipeline on the two smallest suite
//! networks (the harness binary prints the full table). Plain timed
//! loops (`harness = false`); numbers are printed, not asserted.

use batnet::routing::{simulate, SimOptions};
use batnet_bench::{bench_fn, build_graph, build_world, dest_reachability};

fn main() {
    for id in ["N2", "NET1"] {
        let make = move || match id {
            "N2" => batnet_topogen::suite::n2(),
            _ => batnet_topogen::suite::net1(),
        };
        let net = make();
        let devices = net.parse();
        let env = net.env.clone();
        bench_fn("table2", &format!("parse_{id}"), 10, || net.parse());
        bench_fn("table2", &format!("dpgen_{id}"), 10, || {
            simulate(&devices, &env, &SimOptions::default())
        });
        let world = build_world(make());
        bench_fn("table2", &format!("graph_build_{id}"), 10, || {
            build_graph(&world, 0)
        });
        let (mut bdd, vars, graph, _) = build_graph(&world, 0);
        bench_fn("table2", &format!("dest_reach_{id}"), 10, || {
            dest_reachability(&mut bdd, &vars, &graph, 2)
        });
    }
}
