//! Benchmark for the Figure 3 comparison on NET1: data plane generation
//! (imperative vs Datalog) and verification (BDD vs cubes). The full
//! experiment with printed speedups lives in the harness binary; this
//! bench tracks regressions in the hot paths. Plain timed loops
//! (`harness = false`); numbers are printed, not asserted.

use batnet::datalog::{datalog_routes, RoutingInputs};
use batnet::routing::{simulate, SimOptions};
use batnet_bench::{bench_fn, build_graph, build_world, multipath_consistency};

fn main() {
    let net = batnet_topogen::suite::net1();
    let devices = net.parse();
    let env = net.env.clone();

    bench_fn("fig3", "dpgen_imperative_net1", 10, || {
        simulate(&devices, &env, &SimOptions::default())
    });
    // The Datalog baseline takes ~a minute on full NET1 (that slowness IS
    // the Figure 3 result; `harness fig3` measures it once). The
    // regression bench tracks it on a 21-node slice instead.
    let small = batnet_topogen::enterprise::enterprise(
        "net1-small",
        &batnet_topogen::enterprise::EnterpriseSpec {
            cores: 4,
            dists: 8,
            accesses: 6,
            borders: 3,
            firewalls: 0,
            flat_access_percent: 0,
            nat: true,
        },
    );
    let sdevices = small.parse();
    let stopo = batnet::config::Topology::infer(&sdevices);
    let senv = small.env.clone();
    let inputs = RoutingInputs::for_network(&sdevices, &stopo);
    bench_fn("fig3", "dpgen_datalog_net1_small", 10, || {
        datalog_routes(&sdevices, &stopo, &inputs)
    });
    bench_fn("fig3", "dpgen_imperative_net1_small", 10, || {
        simulate(&sdevices, &senv, &SimOptions::default())
    });
    let world = build_world(batnet_topogen::suite::net1());
    bench_fn("fig3", "verify_bdd_net1", 10, || {
        let (mut bdd, _vars, graph, _) = build_graph(&world, 0);
        multipath_consistency(&mut bdd, &graph, 2)
    });
    // 2 starts keep the slow baseline's bench tractable; the harness
    // measures the full 24-start comparison once.
    bench_fn("fig3", "verify_cubes_net1", 10, || {
        let cn = batnet::baselines::CubeNetwork::build(&world.devices, &world.dp, &world.topo);
        let ing = cn.ingresses();
        let step = (ing.len() / 2).max(1);
        for (d, i) in ing.iter().step_by(step).take(2) {
            std::hint::black_box(cn.multipath_inconsistency(d, i));
        }
    });
}
