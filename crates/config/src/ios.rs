//! The `ios` dialect: a Cisco-IOS-flavoured block configuration language.
//!
//! This frontend follows the paper's Stage-1 architecture: the text is
//! first parsed into a dialect AST (sections of lines, mirroring IOS's
//! indentation structure), and the AST is then converted into the
//! vendor-independent model. Unrecognized statements become diagnostics —
//! never errors — so parse coverage is measurable (Lesson 3).
//!
//! ## Grammar (the subset we model)
//!
//! ```text
//! hostname NAME
//! ntp server A.B.C.D
//! ip name-server A.B.C.D
//! interface NAME
//!   description TEXT...
//!   ip address A.B.C.D MASK | A.B.C.D/LEN [secondary]
//!   ip access-group ACL in|out
//!   ip ospf cost N | ip ospf area N | ip ospf passive
//!   zone-member security ZONE
//!   mtu N
//!   shutdown
//! ip route PREFIX (MASK NH | NH) [DISTANCE] | ip route PREFIX null0
//! router ospf N
//!   router-id A.B.C.D
//!   auto-cost reference-bandwidth MBPS
//!   redistribute connected|static
//! router bgp ASN
//!   bgp router-id A.B.C.D
//!   network PREFIX [mask MASK]
//!   redistribute connected|static|ospf
//!   neighbor IP remote-as ASN
//!   neighbor IP route-map NAME in|out
//!   neighbor IP next-hop-self | send-community | description TEXT
//! ip prefix-list NAME seq N permit|deny PREFIX [ge N] [le N]
//! ip community-list standard NAME permit|deny A:B
//! route-map NAME permit|deny SEQ
//!   match ip address prefix-list NAME...
//!   match community NAME...
//!   match as-path regex REGEX
//!   match tag N | match metric N
//!   set local-preference N | set metric N | set tag N
//!   set community A:B... [additive]
//!   set as-path prepend ASN...
//!   set ip next-hop A.B.C.D
//! ip access-list extended NAME
//!   [SEQ] permit|deny PROTO SRC [PORTSPEC] DST [PORTSPEC] [established] [icmp-type N]
//! ip nat pool NAME FIRST LAST
//! ip nat source list ACL pool POOL [interface IFACE] [port N]
//! ip nat source static LOCAL GLOBAL [interface IFACE]
//! ip nat destination static GLOBAL LOCAL [port N]
//! zone security NAME
//! zone-pair security FROM TO acl ACL
//! zone default-permit
//! ```
//!
//! Address forms in ACLs: `any`, `host IP`, `IP WILDCARD` (contiguous
//! wildcard masks only), `PREFIX/LEN`. Port specs: `eq N`, `range A B`,
//! `gt N`, `lt N`.

use crate::diag::{Diagnostics, Severity};
use crate::vi::*;
use batnet_net::{Community, HeaderSpace, Ip, IpProtocol, IpRange, PortRange, Prefix, TcpFlags};

/// One source line, tokenized.
#[derive(Clone, Debug)]
pub struct Line {
    /// 1-based line number.
    pub no: usize,
    /// Whitespace-split words.
    pub words: Vec<String>,
}

impl Line {
    fn word(&self, i: usize) -> &str {
        self.words.get(i).map(String::as_str).unwrap_or("")
    }
    fn text(&self) -> String {
        self.words.join(" ")
    }
}

/// A top-level statement plus its indented children — the dialect AST.
#[derive(Clone, Debug)]
pub struct Section {
    /// The header line (`interface Ethernet1`, `router bgp 65001`, …).
    pub header: Line,
    /// Indented body lines.
    pub body: Vec<Line>,
}

/// Parses raw text into sections.
pub fn parse_ast(text: &str) -> Vec<Section> {
    let mut sections: Vec<Section> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let no = idx + 1;
        let trimmed = raw.trim_end();
        if trimmed.trim().is_empty() || trimmed.trim_start().starts_with('!') {
            continue;
        }
        let indented = trimmed.starts_with(' ') || trimmed.starts_with('\t');
        let words: Vec<String> = trimmed.split_whitespace().map(str::to_string).collect();
        let line = Line { no, words };
        if indented {
            if let Some(last) = sections.last_mut() {
                last.body.push(line);
            } else {
                // Indented line with no open section: treat as top-level.
                sections.push(Section { header: line, body: Vec::new() });
            }
        } else {
            sections.push(Section { header: line, body: Vec::new() });
        }
    }
    sections
}

/// Parses an `ios`-dialect config into the VI model plus diagnostics.
pub fn parse(name: &str, text: &str) -> (Device, Diagnostics) {
    let mut device = Device::new(name);
    let mut diags = Diagnostics::new();
    let sections = parse_ast(text);
    // NAT pools are referenced by later statements; collect them first.
    let mut pools: std::collections::BTreeMap<String, IpRange> = std::collections::BTreeMap::new();
    for s in &sections {
        let w = &s.header.words;
        if w.len() >= 5 && w[0] == "ip" && w[1] == "nat" && w[2] == "pool" {
            match (w[4].parse::<Ip>(), s.header.word(5).parse::<Ip>()) {
                (Ok(start), Ok(end)) if start <= end => {
                    pools.insert(w[3].clone(), IpRange { start, end });
                }
                _ => diags.push(
                    Severity::ParseError,
                    s.header.no,
                    format!("bad nat pool: {}", s.header.text()),
                ),
            }
        }
    }
    for s in &sections {
        convert_section(s, &mut device, &mut diags, &pools);
    }
    expand_nat_lists(&mut device, &mut diags);
    device.lint_suppressions = crate::suppress::scan_suppressions(text);
    (device, diags)
}

fn convert_section(
    s: &Section,
    d: &mut Device,
    diags: &mut Diagnostics,
    pools: &std::collections::BTreeMap<String, IpRange>,
) {
    let h = &s.header;
    match h.word(0) {
        "hostname" => d.name = h.word(1).to_string(),
        "ntp" if h.word(1) == "server" => match h.word(2).parse() {
            Ok(ip) => d.ntp_servers.push(ip),
            Err(_) => diags.push(Severity::ParseError, h.no, "bad ntp server"),
        },
        "ip" => convert_ip_statement(s, d, diags, pools),
        "interface" => convert_interface(s, d, diags),
        "router" => match h.word(1) {
            "ospf" => convert_ospf(s, d, diags),
            "bgp" => convert_bgp(s, d, diags),
            other => diags.push(
                Severity::UnrecognizedLine,
                h.no,
                format!("unsupported routing process: {other}"),
            ),
        },
        "route-map" => convert_route_map(s, d, diags),
        "zone" if h.word(1) == "security" => {
            let name = h.word(2).to_string();
            d.stateful = true;
            d.zones.entry(name.clone()).or_insert_with(|| Zone {
                name,
                interfaces: Vec::new(),
            });
        }
        "zone" if h.word(1) == "default-permit" => d.zone_default_permit = true,
        "zone-pair" if h.word(1) == "security" => {
            // zone-pair security FROM TO acl ACL
            let from = h.word(2).to_string();
            let to = h.word(3).to_string();
            if h.word(4) == "acl" {
                let acl_name = h.word(5).to_string();
                let acl = match d.acls.get(&acl_name) {
                    Some(a) => a.clone(),
                    None => {
                        diags.push(
                            Severity::UndefinedReference,
                            h.no,
                            format!("zone-pair references undefined acl {acl_name}"),
                        );
                        // Documented default: undefined zone policy ACL
                        // denies (empty ACL).
                        Acl::new(acl_name)
                    }
                };
                d.zone_policies.push(ZonePolicy {
                    from_zone: from,
                    to_zone: to,
                    acl,
                });
            } else {
                diags.push(Severity::UnrecognizedLine, h.no, h.text());
            }
        }
        _ => diags.push(Severity::UnrecognizedLine, h.no, h.text()),
    }
}

fn convert_ip_statement(
    s: &Section,
    d: &mut Device,
    diags: &mut Diagnostics,
    pools: &std::collections::BTreeMap<String, IpRange>,
) {
    let h = &s.header;
    match h.word(1) {
        "name-server" => match h.word(2).parse() {
            Ok(ip) => d.dns_servers.push(ip),
            Err(_) => diags.push(Severity::ParseError, h.no, "bad name-server"),
        },
        "route" => convert_static_route(h, d, diags),
        "prefix-list" => convert_prefix_list(h, d, diags),
        "community-list" => convert_community_list(h, d, diags),
        "access-list" => convert_acl(s, d, diags),
        "nat" => convert_nat(h, d, diags, pools),
        _ => diags.push(Severity::UnrecognizedLine, h.no, h.text()),
    }
}

/// Parses `PREFIX/LEN` or `ADDR MASK` starting at word `i`; returns the
/// prefix and the index of the next unconsumed word.
fn parse_prefix_at(line: &Line, i: usize) -> Option<(Prefix, usize)> {
    let w = line.word(i);
    if let Ok(p) = w.parse::<Prefix>() {
        return Some((p, i + 1));
    }
    let ip: Ip = w.parse().ok()?;
    let mask: Ip = line.word(i + 1).parse().ok()?;
    let len = mask_to_len(mask)?;
    Some((Prefix::new(ip, len), i + 2))
}

/// Converts a contiguous netmask (255.255.255.0) to a prefix length.
fn mask_to_len(mask: Ip) -> Option<u8> {
    let m = mask.0;
    if m == 0 {
        return Some(0);
    }
    let len = m.leading_ones();
    // Contiguous check: all ones must be leading.
    if len < 32 && m << len != 0 {
        return None;
    }
    Some(len as u8)
}

/// Converts a contiguous *wildcard* mask (0.0.0.255) to a prefix length.
fn wildcard_to_len(wild: Ip) -> Option<u8> {
    mask_to_len(Ip(!wild.0))
}

fn convert_static_route(h: &Line, d: &mut Device, diags: &mut Diagnostics) {
    // ip route PREFIX[/LEN | MASK] (NEXTHOP | null0) [DISTANCE]
    let Some((prefix, mut i)) = parse_prefix_at(h, 2) else {
        diags.push(Severity::ParseError, h.no, format!("bad static route: {}", h.text()));
        return;
    };
    let nh_word = h.word(i);
    let next_hop = if nh_word.eq_ignore_ascii_case("null0") {
        i += 1;
        NextHop::Discard
    } else {
        match nh_word.parse::<Ip>() {
            Ok(ip) => {
                i += 1;
                NextHop::Ip(ip)
            }
            Err(_) => {
                diags.push(Severity::ParseError, h.no, format!("bad next hop: {}", h.text()));
                return;
            }
        }
    };
    let admin_distance = h.word(i).parse().unwrap_or(1);
    d.static_routes.push(StaticRoute {
        prefix,
        next_hop,
        admin_distance,
    });
}

fn convert_interface(s: &Section, d: &mut Device, diags: &mut Diagnostics) {
    let name = s.header.word(1).to_string();
    if name.is_empty() {
        diags.push(Severity::ParseError, s.header.no, "interface without a name");
        return;
    }
    let mut iface = d
        .interfaces
        .remove(&name)
        .unwrap_or_else(|| Interface::new(name.clone()));
    for l in &s.body {
        match (l.word(0), l.word(1)) {
            ("description", _) => iface.description = Some(l.words[1..].join(" ")),
            ("shutdown", _) => iface.enabled = false,
            ("mtu", m) => match m.parse() {
                Ok(v) => iface.mtu = v,
                Err(_) => diags.push(Severity::ParseError, l.no, "bad mtu"),
            },
            ("ip", "address") => match parse_prefix_at(l, 2) {
                Some((_, next)) => {
                    // parse_prefix_at canonicalizes; we need the raw IP too.
                    let ip: Ip = l
                        .word(2)
                        .split('/')
                        .next()
                        .unwrap_or("")
                        .parse()
                        .unwrap_or(Ip::ZERO);
                    let len = {
                        let w = l.word(2);
                        if let Some((_, len)) = w.split_once('/') {
                            len.parse().unwrap_or(32)
                        } else {
                            l.word(3).parse::<Ip>().ok().and_then(mask_to_len).unwrap_or(32)
                        }
                    };
                    if l.word(next) == "secondary" {
                        iface.secondary_addresses.push((ip, len));
                    } else {
                        iface.address = Some((ip, len));
                    }
                }
                None => diags.push(Severity::ParseError, l.no, format!("bad ip address: {}", l.text())),
            },
            ("ip", "access-group") => {
                let acl = l.word(2).to_string();
                match l.word(3) {
                    "in" => iface.acl_in = Some(acl),
                    "out" => iface.acl_out = Some(acl),
                    _ => diags.push(Severity::ParseError, l.no, "access-group needs in|out"),
                }
            }
            ("ip", "ospf") => match l.word(2) {
                "cost" => iface.ospf_cost = l.word(3).parse().ok(),
                "area" => iface.ospf_area = l.word(3).parse().ok(),
                "passive" => iface.ospf_passive = true,
                _ => diags.push(Severity::UnrecognizedLine, l.no, l.text()),
            },
            ("zone-member", "security") => iface.zone = Some(l.word(2).to_string()),
            _ => diags.push(Severity::UnrecognizedLine, l.no, l.text()),
        }
    }
    d.interfaces.insert(name, iface);
}

fn convert_ospf(s: &Section, d: &mut Device, diags: &mut Diagnostics) {
    let mut proc = d.ospf.take().unwrap_or(OspfProcess {
        router_id: None,
        reference_bandwidth_mbps: 100_000,
        redistribute_connected: false,
        redistribute_static: false,
        default_cost: 1,
    });
    for l in &s.body {
        match (l.word(0), l.word(1)) {
            ("router-id", _) => proc.router_id = l.word(1).parse().ok(),
            ("auto-cost", "reference-bandwidth") => {
                proc.reference_bandwidth_mbps = l.word(2).parse().unwrap_or(100_000)
            }
            ("redistribute", "connected") => proc.redistribute_connected = true,
            ("redistribute", "static") => proc.redistribute_static = true,
            _ => diags.push(Severity::UnrecognizedLine, l.no, l.text()),
        }
    }
    d.ospf = Some(proc);
}

fn convert_bgp(s: &Section, d: &mut Device, diags: &mut Diagnostics) {
    let asn = match s.header.word(2).parse() {
        Ok(a) => a,
        Err(_) => {
            diags.push(Severity::ParseError, s.header.no, "router bgp needs an ASN");
            return;
        }
    };
    let mut proc = d.bgp.take().unwrap_or_else(|| BgpProcess::new(asn));
    proc.asn = asn;
    for l in &s.body {
        match (l.word(0), l.word(1)) {
            ("bgp", "router-id") => proc.router_id = l.word(2).parse().ok(),
            ("network", _) => {
                let p = if l.word(2) == "mask" {
                    l.word(1)
                        .parse::<Ip>()
                        .ok()
                        .zip(l.word(3).parse::<Ip>().ok().and_then(mask_to_len))
                        .map(|(ip, len)| Prefix::new(ip, len))
                } else {
                    l.word(1).parse().ok()
                };
                match p {
                    Some(p) => proc.networks.push(p),
                    None => diags.push(Severity::ParseError, l.no, format!("bad network: {}", l.text())),
                }
            }
            ("redistribute", "connected") => proc.redistribute_connected = true,
            ("redistribute", "static") => proc.redistribute_static = true,
            ("redistribute", "ospf") => proc.redistribute_ospf = true,
            ("neighbor", _) => convert_bgp_neighbor(l, &mut proc, diags),
            _ => diags.push(Severity::UnrecognizedLine, l.no, l.text()),
        }
    }
    d.bgp = Some(proc);
}

fn convert_bgp_neighbor(l: &Line, proc: &mut BgpProcess, diags: &mut Diagnostics) {
    let Ok(peer) = l.word(1).parse::<Ip>() else {
        diags.push(Severity::ParseError, l.no, format!("bad neighbor address: {}", l.text()));
        return;
    };
    // `remote-as` creates the neighbor; other statements modify it.
    if l.word(2) == "remote-as" {
        match l.word(3).parse() {
            Ok(asn) => {
                if let Some(n) = proc.neighbors.iter_mut().find(|n| n.peer_ip == peer) {
                    n.remote_as = asn;
                    n.src.extend_to(l.no);
                } else {
                    let mut nb = BgpNeighbor::new(peer, asn);
                    nb.src = SourceSpan::at(l.no);
                    proc.neighbors.push(nb);
                }
            }
            Err(_) => diags.push(Severity::ParseError, l.no, "bad remote-as"),
        }
        return;
    }
    let Some(n) = proc.neighbors.iter_mut().find(|n| n.peer_ip == peer) else {
        diags.push(
            Severity::ParseError,
            l.no,
            format!("neighbor {peer} configured before remote-as"),
        );
        return;
    };
    // The stanza span grows to cover every statement about this peer.
    n.src.extend_to(l.no);
    match l.word(2) {
        "route-map" => {
            let name = l.word(3).to_string();
            match l.word(4) {
                "in" => n.import_policy = Some(name),
                "out" => n.export_policy = Some(name),
                _ => diags.push(Severity::ParseError, l.no, "route-map needs in|out"),
            }
        }
        "next-hop-self" => n.next_hop_self = true,
        "send-community" => n.send_community = true,
        "description" => n.description = Some(l.words[3..].join(" ")),
        _ => diags.push(Severity::UnrecognizedLine, l.no, l.text()),
    }
}

fn convert_prefix_list(h: &Line, d: &mut Device, diags: &mut Diagnostics) {
    // ip prefix-list NAME seq N permit|deny PREFIX [ge N] [le N]
    let name = h.word(2).to_string();
    let mut i = 3;
    let seq = if h.word(i) == "seq" {
        let s = h.word(i + 1).parse().unwrap_or(0);
        i += 2;
        s
    } else {
        (d.prefix_lists.get(&name).map(|p| p.entries.len() as u32).unwrap_or(0) + 1) * 5
    };
    let action = match h.word(i) {
        "permit" => AclAction::Permit,
        "deny" => AclAction::Deny,
        _ => {
            diags.push(Severity::ParseError, h.no, format!("bad prefix-list: {}", h.text()));
            return;
        }
    };
    i += 1;
    let Ok(prefix) = h.word(i).parse::<Prefix>() else {
        diags.push(Severity::ParseError, h.no, format!("bad prefix: {}", h.text()));
        return;
    };
    i += 1;
    let mut ge = None;
    let mut le = None;
    while i < h.words.len() {
        match h.word(i) {
            "ge" => {
                ge = h.word(i + 1).parse().ok();
                i += 2;
            }
            "le" => {
                le = h.word(i + 1).parse().ok();
                i += 2;
            }
            _ => {
                diags.push(Severity::UnrecognizedLine, h.no, h.text());
                break;
            }
        }
    }
    d.prefix_lists
        .entry(name.clone())
        .or_insert_with(|| PrefixList {
            name,
            entries: Vec::new(),
        })
        .entries
        .push(PrefixListEntry {
            seq,
            action,
            prefix,
            ge,
            le,
        });
}

fn convert_community_list(h: &Line, d: &mut Device, diags: &mut Diagnostics) {
    // ip community-list standard NAME permit|deny A:B
    if h.word(2) != "standard" {
        diags.push(Severity::UnrecognizedLine, h.no, h.text());
        return;
    }
    let name = h.word(3).to_string();
    let action = match h.word(4) {
        "permit" => AclAction::Permit,
        "deny" => AclAction::Deny,
        _ => {
            diags.push(Severity::ParseError, h.no, h.text());
            return;
        }
    };
    let Ok(community) = h.word(5).parse::<Community>() else {
        diags.push(Severity::ParseError, h.no, format!("bad community: {}", h.text()));
        return;
    };
    d.community_lists
        .entry(name.clone())
        .or_insert_with(|| CommunityList {
            name,
            entries: Vec::new(),
        })
        .entries
        .push(CommunityListEntry { action, community });
}

fn convert_route_map(s: &Section, d: &mut Device, diags: &mut Diagnostics) {
    // route-map NAME permit|deny SEQ
    let name = s.header.word(1).to_string();
    let action = match s.header.word(2) {
        "permit" => AclAction::Permit,
        "deny" => AclAction::Deny,
        _ => {
            diags.push(Severity::ParseError, s.header.no, "route-map needs permit|deny");
            return;
        }
    };
    let seq = s.header.word(3).parse().unwrap_or(10);
    let mut clause = RouteMapClause {
        seq,
        action,
        matches: Vec::new(),
        sets: Vec::new(),
        src: SourceSpan::range(s.header.no, s.body.last().map_or(s.header.no, |l| l.no)),
    };
    for l in &s.body {
        match (l.word(0), l.word(1)) {
            ("match", "ip") if l.word(2) == "address" && l.word(3) == "prefix-list" => {
                clause
                    .matches
                    .push(RouteMapMatch::PrefixLists(l.words[4..].to_vec()));
            }
            ("match", "community") => {
                clause
                    .matches
                    .push(RouteMapMatch::CommunityLists(l.words[2..].to_vec()));
            }
            ("match", "as-path") if l.word(2) == "regex" => {
                clause
                    .matches
                    .push(RouteMapMatch::AsPathRegex(l.word(3).to_string()));
            }
            ("match", "tag") => match l.word(2).parse() {
                Ok(t) => clause.matches.push(RouteMapMatch::Tag(t)),
                Err(_) => diags.push(Severity::ParseError, l.no, "bad tag"),
            },
            ("match", "metric") => match l.word(2).parse() {
                Ok(m) => clause.matches.push(RouteMapMatch::Metric(m)),
                Err(_) => diags.push(Severity::ParseError, l.no, "bad metric"),
            },
            ("set", "local-preference") => match l.word(2).parse() {
                Ok(lp) => clause.sets.push(RouteMapSet::LocalPref(lp)),
                Err(_) => diags.push(Severity::ParseError, l.no, "bad local-preference"),
            },
            ("set", "metric") => match l.word(2).parse() {
                Ok(m) => clause.sets.push(RouteMapSet::Metric(m)),
                Err(_) => diags.push(Severity::ParseError, l.no, "bad metric"),
            },
            ("set", "tag") => match l.word(2).parse() {
                Ok(t) => clause.sets.push(RouteMapSet::Tag(t)),
                Err(_) => diags.push(Severity::ParseError, l.no, "bad tag"),
            },
            ("set", "community") => {
                let mut communities = Vec::new();
                let mut additive = false;
                for w in &l.words[2..] {
                    if w == "additive" {
                        additive = true;
                    } else if let Ok(c) = w.parse() {
                        communities.push(c);
                    } else {
                        diags.push(Severity::ParseError, l.no, format!("bad community {w}"));
                    }
                }
                clause.sets.push(RouteMapSet::Community { communities, additive });
            }
            ("set", "as-path") if l.word(2) == "prepend" => {
                // `set as-path prepend 65001 65001` — count repetitions.
                let asns: Vec<batnet_net::Asn> =
                    l.words[3..].iter().filter_map(|w| w.parse().ok()).collect();
                if let Some(&first) = asns.first() {
                    clause.sets.push(RouteMapSet::AsPathPrepend {
                        asn: first,
                        count: asns.len() as u32,
                    });
                } else {
                    diags.push(Severity::ParseError, l.no, "prepend needs an ASN");
                }
            }
            ("set", "ip") if l.word(2) == "next-hop" => match l.word(3).parse() {
                Ok(ip) => clause.sets.push(RouteMapSet::NextHop(ip)),
                Err(_) => diags.push(Severity::ParseError, l.no, "bad next-hop"),
            },
            _ => diags.push(Severity::UnrecognizedLine, l.no, l.text()),
        }
    }
    let rm = d
        .route_maps
        .entry(name.clone())
        .or_insert_with(|| RouteMap {
            name,
            clauses: Vec::new(),
            src: SourceSpan::at(s.header.no),
        });
    rm.src.extend_to(s.body.last().map_or(s.header.no, |l| l.no));
    rm.clauses.push(clause);
    // Keep clauses ordered by sequence number regardless of file order.
    rm.clauses.sort_by_key(|c| c.seq);
}

/// Parses one ACL address term starting at `i`; returns ranges (empty =
/// any) and next index.
fn parse_acl_addr(l: &Line, i: usize) -> Option<(Vec<IpRange>, usize)> {
    match l.word(i) {
        "any" => Some((Vec::new(), i + 1)),
        "host" => {
            let ip: Ip = l.word(i + 1).parse().ok()?;
            Some((vec![IpRange::single(ip)], i + 2))
        }
        w => {
            if let Ok(p) = w.parse::<Prefix>() {
                return Some((vec![IpRange::from_prefix(p)], i + 1));
            }
            let ip: Ip = w.parse().ok()?;
            // Next word may be a wildcard mask; if absent/invalid treat as host.
            if let Some(len) = l.word(i + 1).parse::<Ip>().ok().and_then(wildcard_to_len) {
                Some((vec![IpRange::from_prefix(Prefix::new(ip, len))], i + 2))
            } else {
                Some((vec![IpRange::single(ip)], i + 1))
            }
        }
    }
}

/// Parses an optional port spec at `i`; returns ranges (empty = any) and
/// next index.
fn parse_port_spec(l: &Line, i: usize) -> (Vec<PortRange>, usize) {
    match l.word(i) {
        "eq" => {
            if let Ok(p) = l.word(i + 1).parse() {
                (vec![PortRange::single(p)], i + 2)
            } else {
                (Vec::new(), i)
            }
        }
        "range" => match (l.word(i + 1).parse::<u16>(), l.word(i + 2).parse::<u16>()) {
            (Ok(a), Ok(b)) if a <= b => (vec![PortRange::new(a, b)], i + 3),
            _ => (Vec::new(), i),
        },
        "gt" => {
            if let Ok(p) = l.word(i + 1).parse::<u16>() {
                (vec![PortRange::new(p.saturating_add(1), u16::MAX)], i + 2)
            } else {
                (Vec::new(), i)
            }
        }
        "lt" => {
            if let Ok(p) = l.word(i + 1).parse::<u16>() {
                (vec![PortRange::new(0, p.saturating_sub(1))], i + 2)
            } else {
                (Vec::new(), i)
            }
        }
        _ => (Vec::new(), i),
    }
}

fn convert_acl(s: &Section, d: &mut Device, diags: &mut Diagnostics) {
    // ip access-list extended NAME
    if s.header.word(2) != "extended" {
        diags.push(Severity::UnrecognizedLine, s.header.no, s.header.text());
        return;
    }
    let name = s.header.word(3).to_string();
    let mut acl = d.acls.remove(&name).unwrap_or_else(|| Acl::new(name.clone()));
    if !acl.src.is_known() {
        acl.src = SourceSpan::at(s.header.no);
    }
    // The block span covers the header plus every body line (re-opened
    // ACLs keep their original start and grow the end).
    acl.src.extend_to(s.body.last().map_or(s.header.no, |l| l.no));
    for l in &s.body {
        let mut i = 0;
        let seq = if let Ok(n) = l.word(0).parse::<u32>() {
            i = 1;
            n
        } else {
            (acl.lines.len() as u32 + 1) * 10
        };
        let action = match l.word(i) {
            "permit" => AclAction::Permit,
            "deny" => AclAction::Deny,
            _ => {
                diags.push(Severity::ParseError, l.no, format!("bad acl line: {}", l.text()));
                continue;
            }
        };
        i += 1;
        let Some(proto) = IpProtocol::parse_keyword(l.word(i)) else {
            diags.push(Severity::ParseError, l.no, format!("bad protocol: {}", l.text()));
            continue;
        };
        i += 1;
        let Some((src_ips, next)) = parse_acl_addr(l, i) else {
            diags.push(Severity::ParseError, l.no, format!("bad source: {}", l.text()));
            continue;
        };
        i = next;
        let (src_ports, next) = parse_port_spec(l, i);
        i = next;
        let Some((dst_ips, next)) = parse_acl_addr(l, i) else {
            diags.push(Severity::ParseError, l.no, format!("bad destination: {}", l.text()));
            continue;
        };
        i = next;
        let (dst_ports, next) = parse_port_spec(l, i);
        i = next;
        let mut space = HeaderSpace {
            src_ips,
            dst_ips,
            src_ports,
            dst_ports,
            protocols: proto.into_iter().collect(),
            ..HeaderSpace::default()
        };
        while i < l.words.len() {
            match l.word(i) {
                "established" => {
                    space.established = true;
                    i += 1;
                }
                "icmp-type" => {
                    if let Ok(t) = l.word(i + 1).parse() {
                        space.icmp_types.push(t);
                    }
                    i += 2;
                }
                "syn" => {
                    space.tcp_flags_set = Some(TcpFlags::SYN);
                    i += 1;
                }
                other => {
                    diags.push(Severity::UnrecognizedLine, l.no, format!("acl keyword {other}"));
                    i += 1;
                }
            }
        }
        acl.lines.push(AclLine {
            seq,
            action,
            space,
            text: l.text(),
        });
    }
    d.acls.insert(name, acl);
}

fn convert_nat(
    h: &Line,
    d: &mut Device,
    diags: &mut Diagnostics,
    pools: &std::collections::BTreeMap<String, IpRange>,
) {
    match (h.word(2), h.word(3)) {
        ("pool", _) => {} // collected in the pre-pass
        ("source", "static") => {
            // ip nat source static LOCAL GLOBAL [interface IFACE]
            let (Ok(local), Ok(global)) = (h.word(4).parse::<Ip>(), h.word(5).parse::<Ip>()) else {
                diags.push(Severity::ParseError, h.no, format!("bad nat: {}", h.text()));
                return;
            };
            let interface = (h.word(6) == "interface").then(|| h.word(7).to_string());
            d.nat_rules.push(NatRule {
                kind: NatKind::Source,
                interface,
                match_space: HeaderSpace::any().src_prefix(Prefix::host(local)),
                pool: IpRange::single(global),
                port: None,
                text: h.text(),
            });
        }
        ("destination", "static") => {
            // ip nat destination static GLOBAL LOCAL [port N]
            let (Ok(global), Ok(local)) = (h.word(4).parse::<Ip>(), h.word(5).parse::<Ip>()) else {
                diags.push(Severity::ParseError, h.no, format!("bad nat: {}", h.text()));
                return;
            };
            let port = (h.word(6) == "port").then(|| h.word(7).parse().ok()).flatten();
            d.nat_rules.push(NatRule {
                kind: NatKind::Destination,
                interface: None,
                match_space: HeaderSpace::any().dst_prefix(Prefix::host(global)),
                pool: IpRange::single(local),
                port,
                text: h.text(),
            });
        }
        ("source", "list") => {
            // ip nat source list ACL pool POOL [interface IFACE] [port N]
            let acl_name = h.word(4).to_string();
            if h.word(5) != "pool" {
                diags.push(Severity::ParseError, h.no, format!("bad nat: {}", h.text()));
                return;
            }
            let Some(&pool) = pools.get(h.word(6)) else {
                diags.push(
                    Severity::UndefinedReference,
                    h.no,
                    format!("nat references undefined pool {}", h.word(6)),
                );
                return;
            };
            let mut i = 7;
            let mut interface = None;
            let mut port = None;
            while i < h.words.len() {
                match h.word(i) {
                    "interface" => {
                        interface = Some(h.word(i + 1).to_string());
                        i += 2;
                    }
                    "port" => {
                        port = h.word(i + 1).parse().ok();
                        i += 2;
                    }
                    _ => {
                        diags.push(Severity::UnrecognizedLine, h.no, h.text());
                        break;
                    }
                }
            }
            // Stash the ACL name in `text`; `expand_nat_lists` resolves it
            // into per-line rules after all ACLs are parsed.
            d.nat_rules.push(NatRule {
                kind: NatKind::Source,
                interface,
                match_space: HeaderSpace::any(),
                pool,
                port,
                text: format!("@list:{acl_name} {}", h.text()),
            });
        }
        _ => diags.push(Severity::UnrecognizedLine, h.no, h.text()),
    }
}

/// Resolves `ip nat source list ACL …` rules into one rule per permit line
/// of the referenced ACL (so NAT match spaces stay single header spaces).
fn expand_nat_lists(d: &mut Device, diags: &mut Diagnostics) {
    let mut out = Vec::with_capacity(d.nat_rules.len());
    for rule in std::mem::take(&mut d.nat_rules) {
        if let Some(rest) = rule.text.strip_prefix("@list:") {
            let (acl_name, orig_text) = rest.split_once(' ').unwrap_or((rest, ""));
            match d.acls.get(acl_name) {
                Some(acl) => {
                    for line in &acl.lines {
                        if line.action == AclAction::Permit {
                            out.push(NatRule {
                                match_space: line.space.clone(),
                                text: format!("{orig_text} [{}]", line.text),
                                ..rule.clone()
                            });
                        }
                    }
                }
                None => diags.push(
                    Severity::UndefinedReference,
                    0,
                    format!("nat references undefined acl {acl_name}"),
                ),
            }
        } else {
            out.push(rule);
        }
    }
    d.nat_rules = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
hostname r1
ntp server 10.255.0.1
ip name-server 10.255.0.53
!
interface Ethernet1
 description to r2
 ip address 10.0.0.1 255.255.255.0
 ip access-group ACLIN in
 ip ospf cost 10
 ip ospf area 0
interface Ethernet2
 ip address 10.0.1.1/24
 shutdown
interface Loopback0
 ip address 1.1.1.1/32
!
ip route 10.99.0.0 255.255.0.0 10.0.0.2
ip route 0.0.0.0/0 null0 250
!
router ospf 1
 router-id 1.1.1.1
 redistribute connected
router bgp 65001
 bgp router-id 1.1.1.1
 network 10.5.0.0 mask 255.255.0.0
 neighbor 10.0.0.2 remote-as 65002
 neighbor 10.0.0.2 route-map RM-IN in
 neighbor 10.0.0.2 route-map RM-OUT out
 neighbor 10.0.0.2 next-hop-self
!
ip prefix-list PL seq 5 permit 10.0.0.0/8 le 24
ip community-list standard CL permit 65001:100
!
route-map RM-IN permit 10
 match ip address prefix-list PL
 set local-preference 200
route-map RM-IN deny 20
route-map RM-OUT permit 10
 set community 65001:100 additive
!
ip access-list extended ACLIN
 10 permit tcp 10.0.0.0 0.0.0.255 any eq 80
 20 permit tcp any host 10.0.5.5 range 8000 8100
 30 permit tcp any any established
 40 deny ip any any
!
ip nat pool P1 203.0.113.0 203.0.113.7
ip nat source list ACLIN pool P1 interface Ethernet1
ip nat source static 10.0.5.5 203.0.113.99
";

    fn parsed() -> (Device, Diagnostics) {
        parse("r1", SAMPLE)
    }

    #[test]
    fn full_sample_parses_cleanly() {
        let (_, diags) = parsed();
        if let Some(d) = diags.items().first() {
            panic!("unexpected diagnostic: {d}");
        }
    }

    #[test]
    fn hostname_and_management() {
        let (d, _) = parsed();
        assert_eq!(d.name, "r1");
        assert_eq!(d.ntp_servers, vec!["10.255.0.1".parse().unwrap()]);
        assert_eq!(d.dns_servers, vec!["10.255.0.53".parse().unwrap()]);
    }

    #[test]
    fn interfaces_parse() {
        let (d, _) = parsed();
        assert_eq!(d.interfaces.len(), 3);
        let e1 = &d.interfaces["Ethernet1"];
        assert_eq!(e1.address, Some(("10.0.0.1".parse().unwrap(), 24)));
        assert_eq!(e1.acl_in.as_deref(), Some("ACLIN"));
        assert_eq!(e1.ospf_cost, Some(10));
        assert_eq!(e1.ospf_area, Some(0));
        assert_eq!(e1.description.as_deref(), Some("to r2"));
        assert!(e1.enabled);
        let e2 = &d.interfaces["Ethernet2"];
        assert!(!e2.enabled);
        assert_eq!(e2.address, Some(("10.0.1.1".parse().unwrap(), 24)));
        let lo = &d.interfaces["Loopback0"];
        assert_eq!(lo.address, Some(("1.1.1.1".parse().unwrap(), 32)));
    }

    #[test]
    fn static_routes_parse() {
        let (d, _) = parsed();
        assert_eq!(d.static_routes.len(), 2);
        assert_eq!(d.static_routes[0].prefix.to_string(), "10.99.0.0/16");
        assert_eq!(
            d.static_routes[0].next_hop,
            NextHop::Ip("10.0.0.2".parse().unwrap())
        );
        assert_eq!(d.static_routes[0].admin_distance, 1);
        assert_eq!(d.static_routes[1].next_hop, NextHop::Discard);
        assert_eq!(d.static_routes[1].admin_distance, 250);
    }

    #[test]
    fn routing_processes_parse() {
        let (d, _) = parsed();
        let ospf = d.ospf.as_ref().unwrap();
        assert_eq!(ospf.router_id, Some("1.1.1.1".parse().unwrap()));
        assert!(ospf.redistribute_connected);
        let bgp = d.bgp.as_ref().unwrap();
        assert_eq!(bgp.asn.0, 65001);
        assert_eq!(bgp.networks, vec!["10.5.0.0/16".parse().unwrap()]);
        assert_eq!(bgp.neighbors.len(), 1);
        let n = &bgp.neighbors[0];
        assert_eq!(n.remote_as.0, 65002);
        assert_eq!(n.import_policy.as_deref(), Some("RM-IN"));
        assert_eq!(n.export_policy.as_deref(), Some("RM-OUT"));
        assert!(n.next_hop_self);
    }

    #[test]
    fn policy_structures_parse() {
        let (d, _) = parsed();
        let pl = &d.prefix_lists["PL"];
        assert_eq!(pl.entries.len(), 1);
        assert_eq!(pl.entries[0].le, Some(24));
        let rm = &d.route_maps["RM-IN"];
        assert_eq!(rm.clauses.len(), 2);
        assert_eq!(rm.clauses[0].seq, 10);
        assert_eq!(rm.clauses[1].action, AclAction::Deny);
        assert!(d.community_lists.contains_key("CL"));
    }

    #[test]
    fn acl_parses_with_ports_and_flags() {
        let (d, _) = parsed();
        let acl = &d.acls["ACLIN"];
        assert_eq!(acl.lines.len(), 4);
        let l0 = &acl.lines[0];
        assert_eq!(l0.seq, 10);
        assert_eq!(l0.space.dst_ports, vec![PortRange::single(80)]);
        assert_eq!(
            l0.space.src_ips,
            vec![IpRange::from_prefix("10.0.0.0/24".parse().unwrap())]
        );
        let l1 = &acl.lines[1];
        assert_eq!(l1.space.dst_ports, vec![PortRange::new(8000, 8100)]);
        assert_eq!(
            l1.space.dst_ips,
            vec![IpRange::single("10.0.5.5".parse().unwrap())]
        );
        assert!(acl.lines[2].space.established);
        assert_eq!(acl.lines[3].action, AclAction::Deny);
    }

    #[test]
    fn nat_rules_expand_from_list() {
        let (d, _) = parsed();
        // 3 permit lines of ACLIN + 1 static source rule.
        assert_eq!(d.nat_rules.len(), 4);
        let listed: Vec<_> = d
            .nat_rules
            .iter()
            .filter(|r| r.interface.as_deref() == Some("Ethernet1"))
            .collect();
        assert_eq!(listed.len(), 3);
        assert_eq!(listed[0].pool.size(), 8);
        let stat = d.nat_rules.iter().find(|r| r.interface.is_none()).unwrap();
        assert_eq!(stat.pool, IpRange::single("203.0.113.99".parse().unwrap()));
    }

    #[test]
    fn unrecognized_lines_become_diagnostics() {
        let (_, diags) = parse(
            "r1",
            "hostname r1\nsome mystery knob\ninterface e1\n fancy feature on\n",
        );
        assert_eq!(diags.count(Severity::UnrecognizedLine), 2);
        assert!(diags.coverage(4) < 1.0);
    }

    #[test]
    fn undefined_pool_reference_diagnosed() {
        let (_, diags) = parse(
            "r1",
            "ip access-list extended A\n 10 permit ip any any\nip nat source list A pool NOPE\n",
        );
        assert_eq!(diags.count(Severity::UndefinedReference), 1);
    }

    #[test]
    fn mask_parsing_edge_cases() {
        assert_eq!(mask_to_len(Ip(0)), Some(0));
        assert_eq!(mask_to_len("255.255.255.255".parse().unwrap()), Some(32));
        assert_eq!(mask_to_len("255.255.254.0".parse().unwrap()), Some(23));
        assert_eq!(mask_to_len("255.0.255.0".parse().unwrap()), None, "non-contiguous");
        assert_eq!(wildcard_to_len("0.0.0.255".parse().unwrap()), Some(24));
        assert_eq!(wildcard_to_len("0.0.255.255".parse().unwrap()), Some(16));
    }

    #[test]
    fn block_structures_carry_line_ranges() {
        let (d, _) = parsed();
        // The ACL block span covers the header plus all four lines.
        let acl = &d.acls["ACLIN"];
        assert!(acl.src.is_known());
        assert_eq!(acl.src.end() - acl.src.line, 4);
        // Each route-map clause spans its own section.
        let rm = &d.route_maps["RM-IN"];
        let c10 = &rm.clauses[0];
        assert_eq!(c10.src.end() - c10.src.line, 2, "permit 10 has two body lines");
        let c20 = &rm.clauses[1];
        assert_eq!(c20.src.end(), c20.src.line, "deny 20 is a bare header");
        // The map's own span stretches over both clause sections.
        assert!(rm.src.end() >= c20.src.line);
        // The neighbor stanza covers remote-as through next-hop-self.
        let nb = &d.bgp.as_ref().unwrap().neighbors[0];
        assert_eq!(nb.src.end() - nb.src.line, 3);
    }

    #[test]
    fn route_map_clauses_sorted_by_seq() {
        let text = "route-map RM permit 20\nroute-map RM permit 10\n set metric 5\n";
        let (d, _) = parse("r1", text);
        let rm = &d.route_maps["RM"];
        assert_eq!(rm.clauses[0].seq, 10);
        assert_eq!(rm.clauses[1].seq, 20);
    }

    #[test]
    fn zones_parse() {
        let text = "\
zone security trust
zone security untrust
zone-pair security trust untrust acl Z1
ip access-list extended Z1
 10 permit tcp any any eq 443
interface e1
 zone-member security trust
";
        // Note: zone-pair appears before the ACL here, exercising the
        // undefined-at-that-point branch (IOS would accept this ordering;
        // our single pass documents the fail-closed default).
        let (d, diags) = parse("fw1", text);
        assert!(d.stateful);
        assert_eq!(d.zones.len(), 2);
        assert_eq!(d.zone_policies.len(), 1);
        assert_eq!(diags.count(Severity::UndefinedReference), 1);
        assert_eq!(d.interfaces["e1"].zone.as_deref(), Some("trust"));
    }
}
