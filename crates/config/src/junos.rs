//! The `junos` dialect: a Juniper-flavoured `set`-path configuration
//! language.
//!
//! Every statement is one `set` line whose words form a path into a
//! configuration tree. Unlike the [`crate::ios`] dialect there is no
//! indentation structure; the "AST" is the set of paths, and conversion
//! walks them in file order (with two pre-passes for structures referenced
//! before definition: named communities and firewall filters).
//!
//! ## Grammar (the subset we model)
//!
//! ```text
//! set system host-name NAME
//! set system ntp server IP
//! set system name-server IP
//! set interfaces IF unit 0 family inet address IP/LEN
//! set interfaces IF unit 0 family inet filter input|output FILTER
//! set interfaces IF disable
//! set interfaces IF mtu N
//! set interfaces IF description TEXT...
//! set routing-options router-id IP
//! set routing-options autonomous-system ASN
//! set routing-options static route PREFIX next-hop IP
//! set routing-options static route PREFIX discard
//! set protocols ospf reference-bandwidth MBPS
//! set protocols ospf area N interface IF [metric N | passive]
//! set protocols ospf redistribute connected|static
//! set protocols bgp group G type external|internal
//! set protocols bgp group G neighbor IP peer-as ASN
//! set protocols bgp group G neighbor IP import|export POLICY
//! set protocols bgp group G neighbor IP next-hop-self
//! set protocols bgp group G import|export POLICY          (group default)
//! set protocols bgp redistribute connected|static|ospf
//! set protocols bgp network PREFIX
//! set policy-options prefix-list NAME PREFIX [orlonger]
//! set policy-options community CNAME members A:B
//! set policy-options policy-statement P term T from prefix-list NAME
//! set policy-options policy-statement P term T from community CNAME
//! set policy-options policy-statement P term T from as-path-regex RE
//! set policy-options policy-statement P term T from protocol static|ospf|connected
//! set policy-options policy-statement P term T then local-preference N
//! set policy-options policy-statement P term T then metric N
//! set policy-options policy-statement P term T then community add CNAME
//! set policy-options policy-statement P term T then as-path-prepend ASN [N]
//! set policy-options policy-statement P term T then next-hop IP
//! set policy-options policy-statement P term T then accept|reject
//! set firewall filter F term T from source-address PREFIX
//! set firewall filter F term T from destination-address PREFIX
//! set firewall filter F term T from protocol NAME
//! set firewall filter F term T from source-port N[-M]
//! set firewall filter F term T from destination-port N[-M]
//! set firewall filter F term T from tcp-established
//! set firewall filter F term T then accept|discard
//! set security zones security-zone Z interfaces IF
//! set security policies from-zone A to-zone B filter F
//! set security default-permit
//! set security nat source rule R match source-address PREFIX
//! set security nat source rule R match interface IF
//! set security nat source rule R then translate IP [to IP]
//! set security nat destination rule R match destination-address PREFIX
//! set security nat destination rule R then translate IP [port N]
//! ```

use crate::diag::{Diagnostics, Severity};
use crate::vi::*;
use batnet_net::{Asn, Community, HeaderSpace, Ip, IpProtocol, IpRange, PortRange, Prefix};
use std::collections::BTreeMap;

struct Path<'a> {
    no: usize,
    words: Vec<&'a str>,
}

impl<'a> Path<'a> {
    fn word(&self, i: usize) -> &'a str {
        self.words.get(i).copied().unwrap_or("")
    }
    fn text(&self) -> String {
        self.words.join(" ")
    }
}

/// Parses a `junos`-dialect config into the VI model plus diagnostics.
pub fn parse(name: &str, text: &str) -> (Device, Diagnostics) {
    let mut d = Device::new(name);
    let mut diags = Diagnostics::new();
    let mut paths: Vec<Path> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        if words.first() != Some(&"set") {
            diags.push(Severity::UnrecognizedLine, no, line.to_string());
            continue;
        }
        paths.push(Path {
            no,
            words: words[1..].to_vec(),
        });
    }

    // Pre-pass 1: named communities (referenced by policy statements).
    let mut communities: BTreeMap<String, Vec<Community>> = BTreeMap::new();
    for p in &paths {
        if p.word(0) == "policy-options" && p.word(1) == "community" && p.word(3) == "members" {
            if let Ok(c) = p.word(4).parse::<Community>() {
                communities.entry(p.word(2).to_string()).or_default().push(c);
            } else {
                diags.push(Severity::ParseError, p.no, format!("bad community: {}", p.text()));
            }
        }
    }
    for (cname, members) in &communities {
        d.community_lists.insert(
            cname.clone(),
            CommunityList {
                name: cname.clone(),
                entries: members
                    .iter()
                    .map(|&community| CommunityListEntry {
                        action: AclAction::Permit,
                        community,
                    })
                    .collect(),
            },
        );
    }

    // Track term/rule ordering and BGP group state across lines.
    let mut state = ConvertState::default();
    for p in &paths {
        convert_path(p, &mut d, &mut diags, &communities, &mut state);
    }
    // Post-passes: zone policies referencing firewall filters (order-
    // independent, unlike the single-pass ios dialect), NAT rule assembly,
    // and the router id for processes configured after `routing-options`.
    finish(&mut d, &mut diags, state);
    d.lint_suppressions = crate::suppress::scan_suppressions(text);
    (d, diags)
}

#[derive(Default)]
struct ConvertState {
    /// BGP group → (type external?, group import, group export).
    groups: BTreeMap<String, GroupState>,
    /// policy-statement → ordered term names (for seq assignment).
    policy_terms: BTreeMap<String, Vec<String>>,
    /// firewall filter → ordered term names.
    filter_terms: BTreeMap<String, Vec<String>>,
    /// NAT rules under construction: (kind, rule name) → builder.
    nat: BTreeMap<(u8, String), NatBuilder>,
    /// NAT rule order of first appearance.
    nat_order: Vec<(u8, String)>,
    /// Zone policies referencing filters, resolved in a post-pass.
    pending_zone_policies: Vec<(String, String, String, usize)>,
    /// Local AS from routing-options (used by internal groups).
    local_as: Option<Asn>,
    /// Router id from routing-options, applied to processes in the
    /// post-pass (the processes may be configured on later lines).
    router_id: Option<Ip>,
}

#[derive(Default, Clone)]
struct GroupState {
    external: Option<bool>,
    import: Option<String>,
    export: Option<String>,
}

#[derive(Default, Clone)]
struct NatBuilder {
    space: HeaderSpace,
    interface: Option<String>,
    pool: Option<IpRange>,
    port: Option<u16>,
    text: String,
}

fn convert_path(
    p: &Path,
    d: &mut Device,
    diags: &mut Diagnostics,
    communities: &BTreeMap<String, Vec<Community>>,
    st: &mut ConvertState,
) {
    match p.word(0) {
        "system" => match (p.word(1), p.word(2)) {
            ("host-name", _) => d.name = p.word(2).to_string(),
            ("ntp", "server") => match p.word(3).parse() {
                Ok(ip) => d.ntp_servers.push(ip),
                Err(_) => diags.push(Severity::ParseError, p.no, "bad ntp server"),
            },
            ("name-server", _) => match p.word(2).parse() {
                Ok(ip) => d.dns_servers.push(ip),
                Err(_) => diags.push(Severity::ParseError, p.no, "bad name-server"),
            },
            _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
        },
        "interfaces" => convert_interface(p, d, diags),
        "routing-options" => match p.word(1) {
            "router-id" => match p.word(2).parse() {
                Ok(id) => st.router_id = Some(id),
                Err(_) => diags.push(Severity::ParseError, p.no, "bad router-id"),
            },
            "autonomous-system" => {
                st.local_as = p.word(2).parse().ok();
            }
            "static" if p.word(2) == "route" => {
                let Ok(prefix) = p.word(3).parse::<Prefix>() else {
                    diags.push(Severity::ParseError, p.no, format!("bad static route: {}", p.text()));
                    return;
                };
                let next_hop = match p.word(4) {
                    "discard" => NextHop::Discard,
                    "next-hop" => match p.word(5).parse() {
                        Ok(ip) => NextHop::Ip(ip),
                        Err(_) => {
                            diags.push(Severity::ParseError, p.no, "bad next-hop");
                            return;
                        }
                    },
                    _ => {
                        diags.push(Severity::UnrecognizedLine, p.no, p.text());
                        return;
                    }
                };
                d.static_routes.push(StaticRoute {
                    prefix,
                    next_hop,
                    admin_distance: 5, // Junos static preference
                });
            }
            _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
        },
        "protocols" => match p.word(1) {
            "ospf" => convert_ospf(p, d, diags, st),
            "bgp" => convert_bgp(p, d, diags, st),
            _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
        },
        "policy-options" => convert_policy_options(p, d, diags, communities, st),
        "firewall" => convert_firewall(p, d, diags, st),
        "security" => convert_security(p, d, diags, st),
        _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
    }
}

fn convert_interface(p: &Path, d: &mut Device, diags: &mut Diagnostics) {
    let name = p.word(1).to_string();
    if name.is_empty() {
        diags.push(Severity::ParseError, p.no, "interface without a name");
        return;
    }
    let iface = d
        .interfaces
        .entry(name.clone())
        .or_insert_with(|| Interface::new(name));
    match p.word(2) {
        "disable" => iface.enabled = false,
        "mtu" => iface.mtu = p.word(3).parse().unwrap_or(1500),
        "description" => iface.description = Some(p.words[3..].join(" ")),
        "unit" if p.word(4) == "family" && p.word(5) == "inet" => match p.word(6) {
            "address" => match p.word(7).parse::<Prefix>() {
                Ok(_) => {
                    let (ip_s, len_s) = p.word(7).split_once('/').unwrap_or((p.word(7), "32"));
                    let ip: Ip = ip_s.parse().unwrap_or(Ip::ZERO);
                    let len: u8 = len_s.parse().unwrap_or(32);
                    if iface.address.is_none() {
                        iface.address = Some((ip, len));
                    } else {
                        iface.secondary_addresses.push((ip, len));
                    }
                }
                Err(_) => diags.push(Severity::ParseError, p.no, format!("bad address: {}", p.text())),
            },
            "filter" => match p.word(7) {
                "input" => iface.acl_in = Some(p.word(8).to_string()),
                "output" => iface.acl_out = Some(p.word(8).to_string()),
                _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
            },
            _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
        },
        _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
    }
}

fn convert_ospf(p: &Path, d: &mut Device, diags: &mut Diagnostics, _st: &mut ConvertState) {
    let proc = d.ospf.get_or_insert_with(|| OspfProcess {
        router_id: None,
        reference_bandwidth_mbps: 100_000,
        redistribute_connected: false,
        redistribute_static: false,
        default_cost: 1,
    });
    match p.word(2) {
        "reference-bandwidth" => {
            proc.reference_bandwidth_mbps = p.word(3).parse().unwrap_or(100_000)
        }
        "redistribute" => match p.word(3) {
            "connected" => proc.redistribute_connected = true,
            "static" => proc.redistribute_static = true,
            _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
        },
        "area" => {
            // set protocols ospf area N interface IF [metric N | passive]
            let Ok(area) = p.word(3).parse::<u32>() else {
                diags.push(Severity::ParseError, p.no, "bad area");
                return;
            };
            if p.word(4) != "interface" {
                diags.push(Severity::UnrecognizedLine, p.no, p.text());
                return;
            }
            let ifname = p.word(5).to_string();
            let iface = d
                .interfaces
                .entry(ifname.clone())
                .or_insert_with(|| Interface::new(ifname));
            iface.ospf_area = Some(area);
            match p.word(6) {
                "" => {}
                "metric" => iface.ospf_cost = p.word(7).parse().ok(),
                "passive" => iface.ospf_passive = true,
                _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
            }
        }
        _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
    }
}

fn convert_bgp(p: &Path, d: &mut Device, diags: &mut Diagnostics, st: &mut ConvertState) {
    let local_as = st.local_as.unwrap_or(Asn(0));
    let proc = d.bgp.get_or_insert_with(|| BgpProcess::new(local_as));
    if proc.asn.0 == 0 {
        proc.asn = local_as;
    }
    match p.word(2) {
        "redistribute" => match p.word(3) {
            "connected" => proc.redistribute_connected = true,
            "static" => proc.redistribute_static = true,
            "ospf" => proc.redistribute_ospf = true,
            _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
        },
        "network" => match p.word(3).parse() {
            Ok(pref) => proc.networks.push(pref),
            Err(_) => diags.push(Severity::ParseError, p.no, "bad network"),
        },
        "group" => {
            let group = p.word(3).to_string();
            match p.word(4) {
                "type" => {
                    st.groups.entry(group).or_default().external =
                        Some(p.word(5) == "external");
                }
                "import" => st.groups.entry(group).or_default().import = Some(p.word(5).to_string()),
                "export" => st.groups.entry(group).or_default().export = Some(p.word(5).to_string()),
                "neighbor" => {
                    let Ok(peer) = p.word(5).parse::<Ip>() else {
                        diags.push(Severity::ParseError, p.no, "bad neighbor address");
                        return;
                    };
                    let gs = st.groups.entry(group).or_default().clone();
                    let n = if let Some(n) = proc.neighbors.iter_mut().find(|n| n.peer_ip == peer) {
                        n.src.extend_to(p.no);
                        n
                    } else {
                        let default_as = if gs.external == Some(false) {
                            proc.asn
                        } else {
                            Asn(0)
                        };
                        let mut nb = BgpNeighbor::new(peer, default_as);
                        nb.import_policy = gs.import.clone();
                        nb.export_policy = gs.export.clone();
                        nb.src = SourceSpan::at(p.no);
                        proc.neighbors.push(nb);
                        proc.neighbors.last_mut().expect("just pushed")
                    };
                    match p.word(6) {
                        "" => {}
                        "peer-as" => match p.word(7).parse() {
                            Ok(asn) => n.remote_as = asn,
                            Err(_) => diags.push(Severity::ParseError, p.no, "bad peer-as"),
                        },
                        "import" => n.import_policy = Some(p.word(7).to_string()),
                        "export" => n.export_policy = Some(p.word(7).to_string()),
                        "next-hop-self" => n.next_hop_self = true,
                        _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
                    }
                }
                _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
            }
        }
        _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
    }
}

fn term_seq(terms: &mut Vec<String>, term: &str) -> u32 {
    if let Some(pos) = terms.iter().position(|t| t == term) {
        (pos as u32 + 1) * 10
    } else {
        terms.push(term.to_string());
        terms.len() as u32 * 10
    }
}

fn convert_policy_options(
    p: &Path,
    d: &mut Device,
    diags: &mut Diagnostics,
    communities: &BTreeMap<String, Vec<Community>>,
    st: &mut ConvertState,
) {
    match p.word(1) {
        "prefix-list" => {
            let name = p.word(2).to_string();
            let Ok(prefix) = p.word(3).parse::<Prefix>() else {
                diags.push(Severity::ParseError, p.no, format!("bad prefix: {}", p.text()));
                return;
            };
            let orlonger = p.word(4) == "orlonger";
            let pl = d
                .prefix_lists
                .entry(name.clone())
                .or_insert_with(|| PrefixList {
                    name,
                    entries: Vec::new(),
                });
            pl.entries.push(PrefixListEntry {
                seq: (pl.entries.len() as u32 + 1) * 5,
                action: AclAction::Permit,
                prefix,
                ge: None,
                le: if orlonger { Some(32) } else { None },
            });
        }
        "community" => {} // handled in the pre-pass
        "policy-statement" => {
            let policy = p.word(2).to_string();
            if p.word(3) != "term" {
                diags.push(Severity::UnrecognizedLine, p.no, p.text());
                return;
            }
            let term = p.word(4);
            let seq = term_seq(st.policy_terms.entry(policy.clone()).or_default(), term);
            let rm = d
                .route_maps
                .entry(policy.clone())
                .or_insert_with(|| RouteMap {
                    name: policy,
                    clauses: Vec::new(),
                    src: SourceSpan::at(p.no),
                });
            rm.src.extend_to(p.no);
            let clause = if let Some(c) = rm.clauses.iter_mut().find(|c| c.seq == seq) {
                c.src.extend_to(p.no);
                c
            } else {
                rm.clauses.push(RouteMapClause {
                    seq,
                    action: AclAction::Permit,
                    matches: Vec::new(),
                    sets: Vec::new(),
                    src: SourceSpan::at(p.no),
                });
                rm.clauses.sort_by_key(|c| c.seq);
                rm.clauses
                    .iter_mut()
                    .find(|c| c.seq == seq)
                    .expect("just inserted")
            };
            match (p.word(5), p.word(6)) {
                ("from", "prefix-list") => clause
                    .matches
                    .push(RouteMapMatch::PrefixLists(vec![p.word(7).to_string()])),
                ("from", "community") => clause
                    .matches
                    .push(RouteMapMatch::CommunityLists(vec![p.word(7).to_string()])),
                ("from", "as-path-regex") => clause
                    .matches
                    .push(RouteMapMatch::AsPathRegex(p.word(7).trim_matches('"').to_string())),
                ("from", "protocol") => {
                    let proto = match p.word(7) {
                        "static" => Some(RouteProtocol::Static),
                        "ospf" => Some(RouteProtocol::Ospf),
                        "connected" | "direct" => Some(RouteProtocol::Connected),
                        _ => None,
                    };
                    match proto {
                        Some(pr) => clause.matches.push(RouteMapMatch::Protocol(pr)),
                        None => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
                    }
                }
                ("then", "local-preference") => match p.word(7).parse() {
                    Ok(lp) => clause.sets.push(RouteMapSet::LocalPref(lp)),
                    Err(_) => diags.push(Severity::ParseError, p.no, "bad local-preference"),
                },
                ("then", "metric") => match p.word(7).parse() {
                    Ok(m) => clause.sets.push(RouteMapSet::Metric(m)),
                    Err(_) => diags.push(Severity::ParseError, p.no, "bad metric"),
                },
                ("then", "next-hop") => match p.word(7).parse() {
                    Ok(ip) => clause.sets.push(RouteMapSet::NextHop(ip)),
                    Err(_) => diags.push(Severity::ParseError, p.no, "bad next-hop"),
                },
                ("then", "community") if p.word(7) == "add" => {
                    let cname = p.word(8);
                    match communities.get(cname) {
                        Some(members) => clause.sets.push(RouteMapSet::Community {
                            communities: members.clone(),
                            additive: true,
                        }),
                        None => diags.push(
                            Severity::UndefinedReference,
                            p.no,
                            format!("undefined community {cname}"),
                        ),
                    }
                }
                ("then", "as-path-prepend") => match p.word(7).parse::<Asn>() {
                    Ok(asn) => {
                        let count = p.word(8).parse().unwrap_or(1);
                        clause.sets.push(RouteMapSet::AsPathPrepend { asn, count });
                    }
                    Err(_) => diags.push(Severity::ParseError, p.no, "bad prepend"),
                },
                ("then", "accept") => clause.action = AclAction::Permit,
                ("then", "reject") => clause.action = AclAction::Deny,
                _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
            }
        }
        _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
    }
}

fn parse_port_term(s: &str) -> Option<PortRange> {
    if let Some((a, b)) = s.split_once('-') {
        let a = a.parse().ok()?;
        let b = b.parse().ok()?;
        (a <= b).then(|| PortRange::new(a, b))
    } else {
        s.parse().ok().map(PortRange::single)
    }
}

fn convert_firewall(p: &Path, d: &mut Device, diags: &mut Diagnostics, st: &mut ConvertState) {
    // set firewall filter F term T from|then ...
    if p.word(1) != "filter" || p.word(3) != "term" {
        diags.push(Severity::UnrecognizedLine, p.no, p.text());
        return;
    }
    let fname = p.word(2).to_string();
    let term = p.word(4);
    let seq = term_seq(st.filter_terms.entry(fname.clone()).or_default(), term);
    let acl = d.acls.entry(fname.clone()).or_insert_with(|| {
        let mut a = Acl::new(fname);
        a.src = SourceSpan::at(p.no);
        a
    });
    acl.src.extend_to(p.no);
    let line = if let Some(l) = acl.lines.iter_mut().find(|l| l.seq == seq) {
        l
    } else {
        acl.lines.push(AclLine {
            seq,
            action: AclAction::Permit,
            space: HeaderSpace::any(),
            text: format!("term {term}"),
        });
        acl.lines.sort_by_key(|l| l.seq);
        acl.lines.iter_mut().find(|l| l.seq == seq).expect("just inserted")
    };
    match (p.word(5), p.word(6)) {
        ("from", "source-address") => match p.word(7).parse::<Prefix>() {
            Ok(pr) => line.space.src_ips.push(IpRange::from_prefix(pr)),
            Err(_) => diags.push(Severity::ParseError, p.no, "bad source-address"),
        },
        ("from", "destination-address") => match p.word(7).parse::<Prefix>() {
            Ok(pr) => line.space.dst_ips.push(IpRange::from_prefix(pr)),
            Err(_) => diags.push(Severity::ParseError, p.no, "bad destination-address"),
        },
        ("from", "protocol") => match IpProtocol::parse_keyword(p.word(7)) {
            Some(Some(proto)) => line.space.protocols.push(proto),
            Some(None) => {}
            None => diags.push(Severity::ParseError, p.no, "bad protocol"),
        },
        ("from", "source-port") => match parse_port_term(p.word(7)) {
            Some(r) => line.space.src_ports.push(r),
            None => diags.push(Severity::ParseError, p.no, "bad source-port"),
        },
        ("from", "destination-port") => match parse_port_term(p.word(7)) {
            Some(r) => line.space.dst_ports.push(r),
            None => diags.push(Severity::ParseError, p.no, "bad destination-port"),
        },
        ("from", "tcp-established") => line.space.established = true,
        ("then", "accept") => line.action = AclAction::Permit,
        ("then", "discard") | ("then", "reject") => line.action = AclAction::Deny,
        _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
    }
    line.text = format!("term {term}: {}", line.space);
}

fn convert_security(p: &Path, d: &mut Device, diags: &mut Diagnostics, st: &mut ConvertState) {
    d.stateful = true;
    match p.word(1) {
        "default-permit" => d.zone_default_permit = true,
        "zones" if p.word(2) == "security-zone" => {
            let zname = p.word(3).to_string();
            let zone = d.zones.entry(zname.clone()).or_insert_with(|| Zone {
                name: zname,
                interfaces: Vec::new(),
            });
            if p.word(4) == "interfaces" {
                zone.interfaces.push(p.word(5).to_string());
            }
        }
        "policies" if p.word(2) == "from-zone" && p.word(4) == "to-zone" => {
            if p.word(6) == "filter" {
                st.pending_zone_policies.push((
                    p.word(3).to_string(),
                    p.word(5).to_string(),
                    p.word(7).to_string(),
                    p.no,
                ));
            } else {
                diags.push(Severity::UnrecognizedLine, p.no, p.text());
            }
        }
        "nat" => {
            let kind = match p.word(2) {
                "source" => 0u8,
                "destination" => 1u8,
                _ => {
                    diags.push(Severity::UnrecognizedLine, p.no, p.text());
                    return;
                }
            };
            if p.word(3) != "rule" {
                diags.push(Severity::UnrecognizedLine, p.no, p.text());
                return;
            }
            let rname = p.word(4).to_string();
            let key = (kind, rname);
            if !st.nat.contains_key(&key) {
                st.nat_order.push(key.clone());
            }
            let b = st.nat.entry(key).or_default();
            b.text = format!("nat {} rule {}", p.word(2), p.word(4));
            match (p.word(5), p.word(6)) {
                ("match", "source-address") => match p.word(7).parse::<Prefix>() {
                    Ok(pr) => b.space.src_ips.push(IpRange::from_prefix(pr)),
                    Err(_) => diags.push(Severity::ParseError, p.no, "bad source-address"),
                },
                ("match", "destination-address") => match p.word(7).parse::<Prefix>() {
                    Ok(pr) => b.space.dst_ips.push(IpRange::from_prefix(pr)),
                    Err(_) => diags.push(Severity::ParseError, p.no, "bad destination-address"),
                },
                ("match", "interface") => b.interface = Some(p.word(7).to_string()),
                ("then", "translate") => {
                    let Ok(start) = p.word(7).parse::<Ip>() else {
                        diags.push(Severity::ParseError, p.no, "bad translate address");
                        return;
                    };
                    let mut end = start;
                    let mut i = 8;
                    while i < p.words.len() {
                        match p.word(i) {
                            "to" => {
                                end = p.word(i + 1).parse().unwrap_or(start);
                                i += 2;
                            }
                            "port" => {
                                b.port = p.word(i + 1).parse().ok();
                                i += 2;
                            }
                            _ => {
                                diags.push(Severity::UnrecognizedLine, p.no, p.text());
                                break;
                            }
                        }
                    }
                    b.pool = Some(IpRange { start, end: end.max(start) });
                }
                _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
            }
        }
        _ => diags.push(Severity::UnrecognizedLine, p.no, p.text()),
    }
}

fn finish(d: &mut Device, diags: &mut Diagnostics, st: ConvertState) {
    if let Some(id) = st.router_id {
        if let Some(bgp) = &mut d.bgp {
            bgp.router_id = Some(id);
        }
        if let Some(ospf) = &mut d.ospf {
            ospf.router_id = Some(id);
        }
    }
    if let (Some(asn), Some(bgp)) = (st.local_as, &mut d.bgp) {
        if bgp.asn.0 == 0 {
            bgp.asn = asn;
        }
    }
    for (from, to, filter, no) in st.pending_zone_policies {
        match d.acls.get(&filter) {
            Some(acl) => {
                let acl = acl.clone();
                d.zone_policies.push(ZonePolicy {
                    from_zone: from,
                    to_zone: to,
                    acl,
                });
            }
            None => {
                diags.push(
                    Severity::UndefinedReference,
                    no,
                    format!("zone policy references undefined filter {filter}"),
                );
                d.zone_policies.push(ZonePolicy {
                    from_zone: from,
                    to_zone: to,
                    acl: Acl::new(filter),
                });
            }
        }
    }
    for key in st.nat_order {
        let b = &st.nat[&key];
        let Some(pool) = b.pool else {
            diags.push(
                Severity::ParseError,
                0,
                format!("nat rule {} has no translate action", key.1),
            );
            continue;
        };
        d.nat_rules.push(NatRule {
            kind: if key.0 == 0 { NatKind::Source } else { NatKind::Destination },
            interface: b.interface.clone(),
            match_space: b.space.clone(),
            pool,
            port: b.port,
            text: b.text.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
set system host-name j1
set system ntp server 10.255.0.1
set interfaces ge-0/0/0 unit 0 family inet address 10.0.0.1/24
set interfaces ge-0/0/0 unit 0 family inet filter input FW-IN
set interfaces ge-0/0/1 unit 0 family inet address 10.0.1.1/24
set interfaces ge-0/0/1 disable
set interfaces lo0 unit 0 family inet address 2.2.2.2/32
set routing-options router-id 2.2.2.2
set routing-options autonomous-system 65010
set routing-options static route 10.99.0.0/16 next-hop 10.0.0.2
set routing-options static route 10.98.0.0/16 discard
set protocols ospf area 0 interface ge-0/0/0 metric 15
set protocols ospf area 0 interface lo0 passive
set protocols ospf redistribute static
set protocols bgp group ext type external
set protocols bgp group ext export EXP
set protocols bgp group ext neighbor 10.0.0.2 peer-as 65020
set protocols bgp group ext neighbor 10.0.0.2 import IMP
set protocols bgp group int type internal
set protocols bgp group int neighbor 2.2.2.9
set protocols bgp network 10.50.0.0/16
set policy-options prefix-list PL 10.0.0.0/8 orlonger
set policy-options community CUST members 65010:100
set policy-options policy-statement IMP term 1 from prefix-list PL
set policy-options policy-statement IMP term 1 then local-preference 150
set policy-options policy-statement IMP term 1 then community add CUST
set policy-options policy-statement IMP term 1 then accept
set policy-options policy-statement IMP term 99 then reject
set policy-options policy-statement EXP term 1 from protocol static
set policy-options policy-statement EXP term 1 then accept
set firewall filter FW-IN term web from protocol tcp
set firewall filter FW-IN term web from destination-port 80
set firewall filter FW-IN term web then accept
set firewall filter FW-IN term deny-rest then discard
set security zones security-zone trust interfaces ge-0/0/0
set security zones security-zone untrust interfaces ge-0/0/1
set security policies from-zone untrust to-zone trust filter FW-IN
set security nat source rule snat match source-address 10.0.0.0/8
set security nat source rule snat match interface ge-0/0/1
set security nat source rule snat then translate 203.0.113.1 to 203.0.113.4
";

    fn parsed() -> (Device, Diagnostics) {
        parse("j1", SAMPLE)
    }

    #[test]
    fn sample_parses_cleanly() {
        let (_, diags) = parsed();
        if let Some(item) = diags.items().first() {
            panic!("unexpected diagnostic: {item}");
        }
    }

    #[test]
    fn basic_structure() {
        let (d, _) = parsed();
        assert_eq!(d.name, "j1");
        assert_eq!(d.interfaces.len(), 3);
        let ge0 = &d.interfaces["ge-0/0/0"];
        assert_eq!(ge0.address, Some(("10.0.0.1".parse().unwrap(), 24)));
        assert_eq!(ge0.acl_in.as_deref(), Some("FW-IN"));
        assert_eq!(ge0.ospf_cost, Some(15));
        assert_eq!(ge0.ospf_area, Some(0));
        assert!(!d.interfaces["ge-0/0/1"].enabled);
        assert!(d.interfaces["lo0"].ospf_passive);
    }

    #[test]
    fn static_routes_with_junos_preference() {
        let (d, _) = parsed();
        assert_eq!(d.static_routes.len(), 2);
        assert_eq!(d.static_routes[0].admin_distance, 5);
        assert_eq!(d.static_routes[1].next_hop, NextHop::Discard);
    }

    #[test]
    fn bgp_groups_resolve() {
        let (d, _) = parsed();
        let bgp = d.bgp.as_ref().unwrap();
        assert_eq!(bgp.asn.0, 65010);
        assert_eq!(bgp.neighbors.len(), 2);
        let ext = bgp.neighbors.iter().find(|n| n.remote_as.0 == 65020).unwrap();
        assert_eq!(ext.import_policy.as_deref(), Some("IMP"));
        assert_eq!(ext.export_policy.as_deref(), Some("EXP"), "group default applies");
        let int = bgp
            .neighbors
            .iter()
            .find(|n| n.peer_ip == "2.2.2.9".parse().unwrap())
            .unwrap();
        assert_eq!(int.remote_as.0, 65010, "internal group peers at local AS");
        assert_eq!(bgp.networks, vec!["10.50.0.0/16".parse().unwrap()]);
    }

    #[test]
    fn policy_statement_terms_in_order() {
        let (d, _) = parsed();
        let imp = &d.route_maps["IMP"];
        assert_eq!(imp.clauses.len(), 2);
        assert_eq!(imp.clauses[0].action, AclAction::Permit);
        assert_eq!(imp.clauses[0].matches.len(), 1);
        assert_eq!(imp.clauses[0].sets.len(), 2);
        assert_eq!(imp.clauses[1].action, AclAction::Deny);
        // prefix-list orlonger → le 32
        let pl = &d.prefix_lists["PL"];
        assert_eq!(pl.entries[0].le, Some(32));
    }

    #[test]
    fn firewall_filter_to_acl() {
        let (d, _) = parsed();
        let acl = &d.acls["FW-IN"];
        assert_eq!(acl.lines.len(), 2);
        assert_eq!(acl.lines[0].action, AclAction::Permit);
        assert_eq!(acl.lines[0].space.dst_ports, vec![PortRange::single(80)]);
        assert_eq!(acl.lines[1].action, AclAction::Deny);
        assert!(acl.lines[1].space.is_unconstrained());
    }

    #[test]
    fn zones_and_policies() {
        let (d, _) = parsed();
        assert!(d.stateful);
        assert_eq!(d.zones.len(), 2);
        assert_eq!(d.zones["trust"].interfaces, vec!["ge-0/0/0".to_string()]);
        assert_eq!(d.zone_policies.len(), 1);
        assert_eq!(d.zone_policies[0].from_zone, "untrust");
        assert_eq!(d.zone_policies[0].acl.lines.len(), 2);
    }

    #[test]
    fn nat_rule_assembled_across_lines() {
        let (d, _) = parsed();
        assert_eq!(d.nat_rules.len(), 1);
        let r = &d.nat_rules[0];
        assert_eq!(r.kind, NatKind::Source);
        assert_eq!(r.interface.as_deref(), Some("ge-0/0/1"));
        assert_eq!(r.pool.size(), 4);
    }

    #[test]
    fn undefined_community_reference() {
        let text = "set policy-options policy-statement P term 1 then community add NOPE\n";
        let (_, diags) = parse("j1", text);
        assert_eq!(diags.count(Severity::UndefinedReference), 1);
    }

    #[test]
    fn non_set_lines_flagged() {
        let (_, diags) = parse("j1", "delete interfaces ge-0/0/0\n# comment ok\n");
        assert_eq!(diags.count(Severity::UnrecognizedLine), 1);
    }
}
