//! Parse diagnostics: warnings, unrecognized lines, undefined references.
//!
//! Lesson 3 of the paper: fidelity problems come from the long tail of
//! configuration constructs and their undocumented interactions. A
//! production analysis tool must therefore (a) never abort on input it does
//! not understand, and (b) report *exactly* what it skipped, so parse
//! coverage is measurable. Diagnostics are that report.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Statement understood but noteworthy (e.g. deprecated form).
    Info,
    /// Statement skipped: outside the model. The analysis proceeds but the
    /// model may be incomplete in ways the user should know about.
    UnrecognizedLine,
    /// Statement referenced a structure that is not defined anywhere.
    /// Batfish applies the documented default behaviour (see the module
    /// docs of `vi::policy`) and records this.
    UndefinedReference,
    /// Statement was malformed and dropped.
    ParseError,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "info",
            Severity::UnrecognizedLine => "unrecognized-line",
            Severity::UndefinedReference => "undefined-reference",
            Severity::ParseError => "parse-error",
        };
        write!(f, "{s}")
    }
}

/// One diagnostic attached to a device config.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Diagnostic class.
    pub severity: Severity,
    /// 1-based line number in the source file (0 when synthesized).
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl Diagnostic {
    /// Convenience constructor.
    pub fn new(severity: Severity, line: usize, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity,
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: [{}] {}", self.line, self.severity, self.message)
    }
}

/// A sink for diagnostics produced while parsing one device.
#[derive(Clone, Debug, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty sink.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Records a diagnostic.
    pub fn push(&mut self, severity: Severity, line: usize, message: impl Into<String>) {
        self.items.push(Diagnostic::new(severity, line, message));
    }

    /// All recorded diagnostics in source order.
    pub fn items(&self) -> &[Diagnostic] {
        &self.items
    }

    /// Consumes the sink.
    pub fn into_items(self) -> Vec<Diagnostic> {
        self.items
    }

    /// Count of diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.items.iter().filter(|d| d.severity == severity).count()
    }

    /// Parse coverage: fraction of meaningful lines that were recognized,
    /// given the total number of non-blank non-comment lines.
    pub fn coverage(&self, total_lines: usize) -> f64 {
        if total_lines == 0 {
            return 1.0;
        }
        let missed = self.count(Severity::UnrecognizedLine) + self.count(Severity::ParseError);
        1.0 - (missed as f64 / total_lines as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_coverage() {
        let mut d = Diagnostics::new();
        d.push(Severity::UnrecognizedLine, 3, "mystery knob");
        d.push(Severity::UndefinedReference, 9, "route-map NOPE");
        d.push(Severity::UnrecognizedLine, 12, "another");
        assert_eq!(d.count(Severity::UnrecognizedLine), 2);
        assert_eq!(d.count(Severity::ParseError), 0);
        assert!((d.coverage(100) - 0.98).abs() < 1e-9);
        assert_eq!(d.coverage(0), 1.0);
        assert_eq!(d.items().len(), 3);
    }

    #[test]
    fn display_forms() {
        let d = Diagnostic::new(Severity::UndefinedReference, 7, "acl MISSING");
        assert_eq!(d.to_string(), "line 7: [undefined-reference] acl MISSING");
    }
}
