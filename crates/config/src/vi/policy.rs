//! Routing policy in the VI model: route maps, prefix lists, community
//! lists, and the route attributes they operate on.
//!
//! ## Documented default semantics (Lesson 3)
//!
//! The paper's motivating fidelity example: *"What should happen to
//! incoming routing announcements when a BGP neighbor is configured to use
//! a route map that is not defined anywhere?"* Vendors do not document
//! these cases; a model must pick a behaviour and state it. Ours:
//!
//! * **Undefined route map referenced by a neighbor** → fail closed: all
//!   routes are rejected in that direction. (Recorded at parse time as an
//!   `UndefinedReference` diagnostic; the lint crate surfaces it.)
//! * **Undefined prefix list / community list inside a `match`** → the
//!   match fails (the clause does not apply), evaluation continues with the
//!   next clause.
//! * **Route map with no matching clause** → implicit deny, as on IOS.
//! * **Clause with no `match` lines** → matches everything.

use batnet_net::{AsPath, Asn, Community, Ip, Prefix};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use super::acl::AclAction;

/// BGP origin attribute, ordered by preference (IGP best).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RouteOrigin {
    /// Originated by a `network` statement (best).
    Igp,
    /// Learned via EGP (historic).
    Egp,
    /// Redistributed (worst).
    Incomplete,
}

/// The protocol a route entered the RIB from. Ordering is not meaningful;
/// administrative distance (in `batnet-routing`) decides protocol
/// preference.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RouteProtocol {
    /// Directly connected subnet.
    Connected,
    /// Static route.
    Static,
    /// OSPF intra/inter-area.
    Ospf,
    /// BGP, learned from an external peer.
    Ebgp,
    /// BGP, learned from an internal peer.
    Ibgp,
    /// Locally originated BGP route (network statement / redistribution).
    BgpLocal,
}

impl fmt::Display for RouteProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RouteProtocol::Connected => "connected",
            RouteProtocol::Static => "static",
            RouteProtocol::Ospf => "ospf",
            RouteProtocol::Ebgp => "ebgp",
            RouteProtocol::Ibgp => "ibgp",
            RouteProtocol::BgpLocal => "bgp-local",
        };
        write!(f, "{s}")
    }
}

/// The mutable attribute bundle a routing policy reads and writes.
///
/// This is the policy-facing view of a route; `batnet-routing` wraps it
/// with protocol bookkeeping (and interns it — §4.1.3: thirteen properties
/// moved into one shared object).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RouteAttrs {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Protocol the route came from.
    pub protocol: RouteProtocol,
    /// BGP next hop (also used for IGP next hop in policy matches).
    pub next_hop: Ip,
    /// BGP local preference (default 100).
    pub local_pref: u32,
    /// Multi-exit discriminator / IGP metric.
    pub med: u32,
    /// BGP AS path.
    pub as_path: AsPath,
    /// BGP communities.
    pub communities: BTreeSet<Community>,
    /// BGP origin.
    pub origin: RouteOrigin,
    /// Route tag (redistribution bookkeeping).
    pub tag: u32,
}

impl RouteAttrs {
    /// Fresh attributes for a route to `prefix` from `protocol`.
    pub fn new(prefix: Prefix, protocol: RouteProtocol) -> RouteAttrs {
        RouteAttrs {
            prefix,
            protocol,
            next_hop: Ip::ZERO,
            local_pref: 100,
            med: 0,
            as_path: AsPath::empty(),
            communities: BTreeSet::new(),
            origin: RouteOrigin::Incomplete,
            tag: 0,
        }
    }
}

/// One entry of a prefix list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefixListEntry {
    /// Sequence number.
    pub seq: u32,
    /// Permit or deny.
    pub action: AclAction,
    /// The base prefix.
    pub prefix: Prefix,
    /// `ge` bound: matched prefixes must be at least this long.
    pub ge: Option<u8>,
    /// `le` bound: matched prefixes must be at most this long.
    pub le: Option<u8>,
}

impl PrefixListEntry {
    /// IOS semantics: the candidate's network must fall under `prefix`,
    /// and its length must satisfy `ge`/`le`; with neither bound, the match
    /// is exact.
    pub fn matches(&self, candidate: &Prefix) -> bool {
        if !self.prefix.contains_prefix(candidate) {
            return false;
        }
        match (self.ge, self.le) {
            (None, None) => candidate.len() == self.prefix.len(),
            (ge, le) => {
                let lo = ge.unwrap_or(self.prefix.len());
                let hi = le.unwrap_or(32);
                (lo..=hi).contains(&candidate.len())
            }
        }
    }
}

/// An ordered prefix list with implicit trailing deny.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PrefixList {
    /// List name.
    pub name: String,
    /// Entries in sequence order.
    pub entries: Vec<PrefixListEntry>,
}

impl PrefixList {
    /// First-match evaluation; implicit deny when nothing matches.
    pub fn permits(&self, candidate: &Prefix) -> bool {
        for e in &self.entries {
            if e.matches(candidate) {
                return e.action == AclAction::Permit;
            }
        }
        false
    }
}

/// One entry of a community list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommunityListEntry {
    /// Permit or deny.
    pub action: AclAction,
    /// The community to match.
    pub community: Community,
}

/// A standard community list: a route matches if any of its communities
/// hits a permit entry before hitting a deny entry for that community.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CommunityList {
    /// List name.
    pub name: String,
    /// Entries in order.
    pub entries: Vec<CommunityListEntry>,
}

impl CommunityList {
    /// Does the route's community set match this list?
    pub fn matches(&self, communities: &BTreeSet<Community>) -> bool {
        for e in &self.entries {
            if communities.contains(&e.community) {
                return e.action == AclAction::Permit;
            }
        }
        false
    }
}

/// A `match` line in a route-map clause. All match lines of a clause must
/// pass (conjunction); list-valued variants OR over their names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteMapMatch {
    /// Match the route's prefix against any of these prefix lists.
    PrefixLists(Vec<String>),
    /// Match the route's communities against any of these community lists.
    CommunityLists(Vec<String>),
    /// Match the AS path against a regex (see
    /// [`batnet_net::bgp::simple_regex_match`] for the dialect).
    AsPathRegex(String),
    /// Match the MED/metric exactly.
    Metric(u32),
    /// Match the route tag exactly.
    Tag(u32),
    /// Match the source protocol (used by redistribution policies).
    Protocol(RouteProtocol),
}

/// A `set` line in a route-map clause, applied when the clause permits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteMapSet {
    /// Set BGP local preference.
    LocalPref(u32),
    /// Set MED/metric.
    Metric(u32),
    /// Replace or extend the community set.
    Community {
        /// Communities to write.
        communities: Vec<Community>,
        /// Extend instead of replace (`additive`).
        additive: bool,
    },
    /// Prepend `asn` to the AS path `count` times.
    AsPathPrepend {
        /// ASN to prepend.
        asn: Asn,
        /// Repetitions.
        count: u32,
    },
    /// Override the next hop.
    NextHop(Ip),
    /// Set the route tag.
    Tag(u32),
}

/// One clause (`route-map NAME permit SEQ`) of a route map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteMapClause {
    /// Sequence number (clauses evaluate in ascending order).
    pub seq: u32,
    /// Clause action: permit applies sets and accepts; deny rejects.
    pub action: AclAction,
    /// Match conditions (conjunction; empty = match all).
    pub matches: Vec<RouteMapMatch>,
    /// Attribute rewrites applied on permit.
    pub sets: Vec<RouteMapSet>,
    /// Where the clause's block was defined (start..end line range).
    pub src: super::device::SourceSpan,
}

/// A named route map.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RouteMap {
    /// Map name.
    pub name: String,
    /// Clauses in sequence order.
    pub clauses: Vec<RouteMapClause>,
    /// Where the map's first clause was defined in the source config.
    pub src: super::device::SourceSpan,
}

/// Outcome of route-map evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyResult {
    /// Route accepted; attribute rewrites already applied.
    Permit,
    /// Route rejected (explicit deny clause or the implicit trailing deny).
    Deny,
}

impl RouteMap {
    /// Evaluates the map against `attrs`, mutating attributes when a permit
    /// clause fires. `prefix_lists`/`community_lists` come from the owning
    /// device; missing lists follow the documented defaults above.
    pub fn evaluate(
        &self,
        attrs: &mut RouteAttrs,
        prefix_lists: &BTreeMap<String, PrefixList>,
        community_lists: &BTreeMap<String, CommunityList>,
    ) -> PolicyResult {
        for clause in &self.clauses {
            if clause.matches(attrs, prefix_lists, community_lists) {
                if clause.action == AclAction::Deny {
                    return PolicyResult::Deny;
                }
                for set in &clause.sets {
                    apply_set(set, attrs);
                }
                return PolicyResult::Permit;
            }
        }
        PolicyResult::Deny
    }
}

impl RouteMapClause {
    /// Do all match lines pass for `attrs`?
    pub fn matches(
        &self,
        attrs: &RouteAttrs,
        prefix_lists: &BTreeMap<String, PrefixList>,
        community_lists: &BTreeMap<String, CommunityList>,
    ) -> bool {
        self.matches.iter().all(|m| match m {
            RouteMapMatch::PrefixLists(names) => names.iter().any(|n| {
                // Undefined list → the match fails (documented default).
                prefix_lists.get(n).is_some_and(|pl| pl.permits(&attrs.prefix))
            }),
            RouteMapMatch::CommunityLists(names) => names
                .iter()
                .any(|n| community_lists.get(n).is_some_and(|cl| cl.matches(&attrs.communities))),
            RouteMapMatch::AsPathRegex(re) => attrs.as_path.matches_regex(re),
            RouteMapMatch::Metric(m) => attrs.med == *m,
            RouteMapMatch::Tag(t) => attrs.tag == *t,
            RouteMapMatch::Protocol(p) => attrs.protocol == *p,
        })
    }
}

fn apply_set(set: &RouteMapSet, attrs: &mut RouteAttrs) {
    match set {
        RouteMapSet::LocalPref(lp) => attrs.local_pref = *lp,
        RouteMapSet::Metric(m) => attrs.med = *m,
        RouteMapSet::Community { communities, additive } => {
            if !additive {
                attrs.communities.clear();
            }
            attrs.communities.extend(communities.iter().copied());
        }
        RouteMapSet::AsPathPrepend { asn, count } => {
            attrs.as_path = attrs.as_path.prepend(*asn, *count as usize);
        }
        RouteMapSet::NextHop(ip) => attrs.next_hop = *ip,
        RouteMapSet::Tag(t) => attrs.tag = *t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vi::SourceSpan;

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn pl(name: &str, entries: Vec<PrefixListEntry>) -> (String, PrefixList) {
        (
            name.to_string(),
            PrefixList {
                name: name.to_string(),
                entries,
            },
        )
    }

    #[test]
    fn prefix_list_exact_vs_ranged() {
        let exact = PrefixListEntry {
            seq: 5,
            action: AclAction::Permit,
            prefix: pfx("10.0.0.0/8"),
            ge: None,
            le: None,
        };
        assert!(exact.matches(&pfx("10.0.0.0/8")));
        assert!(!exact.matches(&pfx("10.1.0.0/16")));

        let ranged = PrefixListEntry {
            seq: 10,
            action: AclAction::Permit,
            prefix: pfx("10.0.0.0/8"),
            ge: Some(16),
            le: Some(24),
        };
        assert!(!ranged.matches(&pfx("10.0.0.0/8")));
        assert!(ranged.matches(&pfx("10.1.0.0/16")));
        assert!(ranged.matches(&pfx("10.1.2.0/24")));
        assert!(!ranged.matches(&pfx("10.1.2.0/25")));
        assert!(!ranged.matches(&pfx("11.0.0.0/16")));

        let le_only = PrefixListEntry {
            seq: 15,
            action: AclAction::Permit,
            prefix: pfx("0.0.0.0/0"),
            ge: None,
            le: Some(24),
        };
        assert!(le_only.matches(&pfx("10.0.0.0/8")));
        assert!(le_only.matches(&pfx("0.0.0.0/0")));
        assert!(!le_only.matches(&pfx("10.0.0.0/25")));
    }

    #[test]
    fn prefix_list_first_match_and_implicit_deny() {
        let (_, list) = pl(
            "PL",
            vec![
                PrefixListEntry {
                    seq: 5,
                    action: AclAction::Deny,
                    prefix: pfx("10.9.0.0/16"),
                    ge: None,
                    le: Some(32),
                },
                PrefixListEntry {
                    seq: 10,
                    action: AclAction::Permit,
                    prefix: pfx("10.0.0.0/8"),
                    ge: None,
                    le: Some(32),
                },
            ],
        );
        assert!(!list.permits(&pfx("10.9.1.0/24")), "deny entry first");
        assert!(list.permits(&pfx("10.8.1.0/24")));
        assert!(!list.permits(&pfx("192.168.0.0/16")), "implicit deny");
    }

    #[test]
    fn community_list_matching() {
        let cl = CommunityList {
            name: "CL".into(),
            entries: vec![
                CommunityListEntry {
                    action: AclAction::Deny,
                    community: Community::new(65001, 666),
                },
                CommunityListEntry {
                    action: AclAction::Permit,
                    community: Community::new(65001, 100),
                },
            ],
        };
        let mut comms = BTreeSet::new();
        comms.insert(Community::new(65001, 100));
        assert!(cl.matches(&comms));
        comms.insert(Community::new(65001, 666));
        assert!(!cl.matches(&comms), "deny entry takes precedence (order)");
        assert!(!cl.matches(&BTreeSet::new()));
    }

    fn simple_map() -> RouteMap {
        RouteMap {
            name: "RM".into(),
            src: SourceSpan::default(),
            clauses: vec![
                RouteMapClause {
                    seq: 10,
                    action: AclAction::Permit,
                    matches: vec![RouteMapMatch::PrefixLists(vec!["PL".into()])],
                    sets: vec![
                        RouteMapSet::LocalPref(200),
                        RouteMapSet::Community {
                            communities: vec![Community::new(65001, 1)],
                            additive: true,
                        },
                    ],
                    src: SourceSpan::default(),
                },
                RouteMapClause {
                    seq: 20,
                    action: AclAction::Deny,
                    matches: vec![],
                    sets: vec![],
                    src: SourceSpan::default(),
                },
            ],
        }
    }

    #[test]
    fn route_map_permit_applies_sets() {
        let map = simple_map();
        let mut pls = BTreeMap::new();
        let (k, v) = pl(
            "PL",
            vec![PrefixListEntry {
                seq: 5,
                action: AclAction::Permit,
                prefix: pfx("10.0.0.0/8"),
                ge: None,
                le: Some(32),
            }],
        );
        pls.insert(k, v);
        let cls = BTreeMap::new();
        let mut attrs = RouteAttrs::new(pfx("10.1.0.0/16"), RouteProtocol::Ebgp);
        assert_eq!(map.evaluate(&mut attrs, &pls, &cls), PolicyResult::Permit);
        assert_eq!(attrs.local_pref, 200);
        assert!(attrs.communities.contains(&Community::new(65001, 1)));
    }

    #[test]
    fn route_map_falls_to_deny_clause() {
        let map = simple_map();
        let pls = BTreeMap::new(); // PL undefined → match fails
        let cls = BTreeMap::new();
        let mut attrs = RouteAttrs::new(pfx("10.1.0.0/16"), RouteProtocol::Ebgp);
        assert_eq!(map.evaluate(&mut attrs, &pls, &cls), PolicyResult::Deny);
        assert_eq!(attrs.local_pref, 100, "deny must not mutate attributes");
    }

    #[test]
    fn route_map_implicit_deny_without_clauses() {
        let map = RouteMap {
            name: "EMPTY".into(),
            src: SourceSpan::default(),
            clauses: vec![],
        };
        let mut attrs = RouteAttrs::new(pfx("10.0.0.0/8"), RouteProtocol::Ebgp);
        assert_eq!(
            map.evaluate(&mut attrs, &BTreeMap::new(), &BTreeMap::new()),
            PolicyResult::Deny
        );
    }

    #[test]
    fn as_path_regex_match_line() {
        let map = RouteMap {
            name: "RM".into(),
            src: SourceSpan::default(),
            clauses: vec![RouteMapClause {
                seq: 10,
                action: AclAction::Permit,
                matches: vec![RouteMapMatch::AsPathRegex("_65002_".into())],
                sets: vec![RouteMapSet::AsPathPrepend {
                    asn: Asn(65001),
                    count: 3,
                }],
                src: SourceSpan::default(),
            }],
        };
        let mut attrs = RouteAttrs::new(pfx("10.0.0.0/8"), RouteProtocol::Ebgp);
        attrs.as_path = AsPath(vec![Asn(65002), Asn(65003)]);
        assert_eq!(
            map.evaluate(&mut attrs, &BTreeMap::new(), &BTreeMap::new()),
            PolicyResult::Permit
        );
        assert_eq!(attrs.as_path.length(), 5);
        assert_eq!(attrs.as_path.0[0], Asn(65001));
    }

    #[test]
    fn conjunction_of_matches() {
        let clause = RouteMapClause {
            seq: 10,
            action: AclAction::Permit,
            matches: vec![
                RouteMapMatch::Tag(7),
                RouteMapMatch::Protocol(RouteProtocol::Static),
            ],
            sets: vec![],
            src: SourceSpan::default(),
        };
        let mut attrs = RouteAttrs::new(pfx("10.0.0.0/8"), RouteProtocol::Static);
        attrs.tag = 7;
        assert!(clause.matches(&attrs, &BTreeMap::new(), &BTreeMap::new()));
        attrs.tag = 8;
        assert!(!clause.matches(&attrs, &BTreeMap::new(), &BTreeMap::new()));
    }

    #[test]
    fn community_replace_vs_additive() {
        let mut attrs = RouteAttrs::new(pfx("10.0.0.0/8"), RouteProtocol::Ebgp);
        attrs.communities.insert(Community::new(1, 1));
        apply_set(
            &RouteMapSet::Community {
                communities: vec![Community::new(2, 2)],
                additive: true,
            },
            &mut attrs,
        );
        assert_eq!(attrs.communities.len(), 2);
        apply_set(
            &RouteMapSet::Community {
                communities: vec![Community::new(3, 3)],
                additive: false,
            },
            &mut attrs,
        );
        assert_eq!(attrs.communities.len(), 1);
        assert!(attrs.communities.contains(&Community::new(3, 3)));
    }
}
