//! NAT rules in the VI model.
//!
//! The general device pipeline (§7.2 of the paper) has distinct source-NAT
//! and destination-NAT steps whose placement relative to routing and
//! filtering varies by vendor. The VI model keeps rules in one ordered
//! list; the pipeline decides where each kind fires (dest-NAT before the
//! routing lookup, source-NAT after, matching the most common vendor
//! arrangement, with pre/post filter semantics noted on the pipeline).

use batnet_net::{Flow, HeaderSpace, Ip, IpRange};

/// Which header a rule rewrites.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NatKind {
    /// Rewrite the source address (and optionally source port) — applied on
    /// egress, after the routing lookup.
    Source,
    /// Rewrite the destination address (and optionally destination port) —
    /// applied on ingress, before the routing lookup.
    Destination,
}

/// One NAT rule. Rules are evaluated in configuration order; the first
/// match fires and rewriting stops (per-kind).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NatRule {
    /// Source or destination NAT.
    pub kind: NatKind,
    /// Restrict the rule to packets leaving (source NAT) or entering
    /// (destination NAT) this interface; `None` = any interface.
    pub interface: Option<String>,
    /// Packets the rule applies to.
    pub match_space: HeaderSpace,
    /// Translated address pool. A single-address pool is a classic
    /// static/interface NAT; wider pools model dynamic PAT deterministically
    /// by index-mapping (see [`NatRule::translate`]).
    pub pool: IpRange,
    /// Optional port rewrite: when set, the translated port.
    pub port: Option<u16>,
    /// Original configuration text for annotation.
    pub text: String,
}

impl NatRule {
    /// Does the rule match this flow (header component only — the caller
    /// checks the interface restriction)?
    pub fn matches(&self, flow: &Flow) -> bool {
        self.match_space.matches(flow)
    }

    /// The concrete translation the rule applies to `flow`.
    ///
    /// Pool selection is deterministic: the pre-NAT address is index-mapped
    /// into the pool (`addr mod pool_size`). Real PAT devices pick
    /// dynamically, but any *specific* choice is a sound member of the
    /// symbolic relation the BDD engine uses, and determinism keeps the
    /// differential tests meaningful.
    pub fn translate(&self, flow: &Flow) -> Flow {
        let mut out = *flow;
        match self.kind {
            NatKind::Source => {
                out.src_ip = self.pick_pool_ip(flow.src_ip);
                if let Some(p) = self.port {
                    if out.protocol.has_ports() {
                        out.src_port = p;
                    }
                }
            }
            NatKind::Destination => {
                out.dst_ip = self.pick_pool_ip(flow.dst_ip);
                if let Some(p) = self.port {
                    if out.protocol.has_ports() {
                        out.dst_port = p;
                    }
                }
            }
        }
        out
    }

    fn pick_pool_ip(&self, original: Ip) -> Ip {
        let size = self.pool.size();
        let offset = (original.0 as u64) % size;
        Ip((self.pool.start.0 as u64 + offset) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batnet_net::Prefix;

    fn ip(s: &str) -> Ip {
        s.parse().unwrap()
    }

    #[test]
    fn static_source_nat() {
        let rule = NatRule {
            kind: NatKind::Source,
            interface: Some("e1".into()),
            match_space: HeaderSpace::any().src_prefix("10.0.0.0/8".parse::<Prefix>().unwrap()),
            pool: IpRange::single(ip("203.0.113.1")),
            port: None,
            text: "nat source 10/8 -> 203.0.113.1".into(),
        };
        let f = Flow::tcp(ip("10.1.2.3"), 40000, ip("8.8.8.8"), 443);
        assert!(rule.matches(&f));
        let t = rule.translate(&f);
        assert_eq!(t.src_ip, ip("203.0.113.1"));
        assert_eq!(t.dst_ip, f.dst_ip, "destination untouched by source NAT");
        assert_eq!(t.src_port, 40000);
    }

    #[test]
    fn dest_nat_with_port() {
        let rule = NatRule {
            kind: NatKind::Destination,
            interface: None,
            match_space: HeaderSpace::any().dst_prefix(Prefix::host(ip("203.0.113.10"))).dst_port(80),
            pool: IpRange::single(ip("10.0.5.5")),
            port: Some(8080),
            text: "dnat vip".into(),
        };
        let f = Flow::tcp(ip("1.2.3.4"), 5555, ip("203.0.113.10"), 80);
        assert!(rule.matches(&f));
        let t = rule.translate(&f);
        assert_eq!(t.dst_ip, ip("10.0.5.5"));
        assert_eq!(t.dst_port, 8080);
        assert_eq!(t.src_ip, f.src_ip);
        // Non-matching port: rule must not match.
        let g = Flow::tcp(ip("1.2.3.4"), 5555, ip("203.0.113.10"), 443);
        assert!(!rule.matches(&g));
    }

    #[test]
    fn pool_mapping_is_deterministic_and_in_pool() {
        let rule = NatRule {
            kind: NatKind::Source,
            interface: None,
            match_space: HeaderSpace::any(),
            pool: IpRange {
                start: ip("203.0.113.0"),
                end: ip("203.0.113.7"),
            },
            port: None,
            text: "pat pool".into(),
        };
        for host in 0..32u32 {
            let f = Flow::udp(Ip(0x0a000000 + host), 1000, ip("8.8.8.8"), 53);
            let t1 = rule.translate(&f);
            let t2 = rule.translate(&f);
            assert_eq!(t1, t2, "deterministic");
            assert!(rule.pool.contains(t1.src_ip), "stays in pool");
        }
    }
}
