//! The vendor-independent (VI) configuration model.
//!
//! Every dialect frontend lowers into these types; everything downstream —
//! route simulation, BDD analysis, traceroute, linting — consumes only this
//! model. This is the paper's "normalized representation … vendor-
//! independent" (§2, Stage 1), evolved from Datalog facts into typed data.

mod acl;
mod device;
mod nat;
mod policy;

pub use acl::{Acl, AclAction, AclLine};
pub use device::{
    BgpNeighbor, BgpProcess, Device, Interface, NextHop, OspfProcess, SourceSpan, StaticRoute,
    Zone, ZonePolicy,
};
pub use nat::{NatKind, NatRule};
pub use policy::{
    CommunityList, CommunityListEntry, PolicyResult, PrefixList, PrefixListEntry, RouteAttrs,
    RouteMap, RouteMapClause, RouteMapMatch, RouteMapSet, RouteOrigin, RouteProtocol,
};
